"""repro.async_serving — the event-driven C10K serving plane.

A virtual-time reactor (with an asyncio adapter for the wall-clock
path) multiplexes thousands of per-session state machines onto the
existing gateway/router frontends, and resumption tickets amortize the
attestation+DHKE handshake across reconnects.  See
:mod:`repro.async_serving.tier` for the layering and
:mod:`repro.hypervisor.resumption` for the ticket protocol.
"""

from repro.async_serving.bench import (
    C10kBenchConfig,
    C10kBenchReport,
    run_c10k_bench,
)
from repro.async_serving.reactor import (
    AsyncioReactorAdapter,
    ReactorHandle,
    VirtualReactor,
)
from repro.async_serving.session import (
    AsyncSession,
    InvalidSessionTransition,
    SessionState,
)
from repro.async_serving.tier import (
    AsyncServingConfig,
    AsyncServingTier,
    ModelHandshakeEngine,
    ServiceHandshakeEngine,
    ServiceTenant,
    SessionCapacityError,
    SessionClosedError,
    drive_open_loop,
)
