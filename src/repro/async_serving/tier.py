"""The async serving tier: C10K multiplexing over the gateway fleet.

One :class:`AsyncServingTier` owns a reactor, a frontend (a single
:class:`~repro.serving.gateway.Gateway` or a shard-aware
:class:`~repro.serving.router.ShardSessionRouter`), and a *handshake
engine* that knows how sessions are established, suspended into
resumption tickets, and resumed:

* :class:`ModelHandshakeEngine` — virtual-cost handshakes with *real*
  sealed tickets (mint/redeem through the same
  :class:`~repro.hypervisor.resumption.TicketSealer` codepath the
  hypervisor uses, including epoch binding and single-use), no ECC.
  This is what lets ``bench_c10k`` hold 10,000 concurrent sessions in
  one process in CI time.
* :class:`ServiceHandshakeEngine` — the full pipeline: per-tenant
  :class:`~repro.core.user.PreExecutionClient` attestation+DHKE,
  hypervisor-minted tickets, and SessionDirectory updates so
  ReattachableBundle payloads re-resolve to the resumed session.

Dispatch is cooperative and non-blocking: ``submit`` never waits.  An
ACTIVE session dispatches straight onto the frontend; a HANDSHAKING or
RESUMED session queues the payload on its backlog; a SUSPENDED session
starts a one-round-trip ticket redemption.  A ticket the hypervisor
refuses as :class:`~repro.hypervisor.resumption.StaleTicketError`
(restart since mint) falls back to a full handshake — typed, counted,
never retried as a transient fault.

``run()`` merges the reactor's event heap with the frontend's
completion heap in time order, mirroring the tie-breaking the
synchronous gateway already uses (completions due at T run before an
arrival at T).  With resumption disabled and pure payload factories, a
seeded reactor-driven open-loop run is byte-identical to
:func:`repro.serving.loadgen.run_open_loop` — the tier keeps its own
metrics registry and adds no spans of its own, so the gateway's trace,
metrics, wire bytes, and the world digest all hash equal (the
``c10k-bench`` identity gate).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.crypto.kdf import Drbg, hkdf_sha256
from repro.hardware.timing import CostModel
from repro.hypervisor.resumption import StaleTicketError, TicketSealer, TicketState
from repro.serving.gateway import Gateway, GatewayRequest, RequestStatus
from repro.serving.loadgen import LoadReport, LoadSession, arrival_times
from repro.serving.metrics import MetricsRegistry
from repro.serving.router import ShardSessionRouter
from repro.telemetry.tracer import tracer_for
from repro.async_serving.reactor import VirtualReactor
from repro.async_serving.session import AsyncSession, SessionState


class SessionCapacityError(Exception):
    """Non-blocking admission refusal: the tier is at its session cap."""

    def __init__(self, limit: int) -> None:
        super().__init__(f"serving tier at capacity ({limit} live sessions)")
        self.limit = limit


class SessionClosedError(Exception):
    """A payload arrived for a session that already closed."""


# ----------------------------------------------------------------------
# Handshake engines
# ----------------------------------------------------------------------

class ModelHandshakeEngine:
    """Virtual-time handshakes, real sealed tickets.

    Establishment and resumption charge the paper's costs (attestation
    45 ms + DHKE 55 ms full; ``ticket_resume_us`` resumed) as reactor
    delays; the tickets themselves go through the real
    :class:`TicketSealer` — epoch-bound AAD, single-use, typed stale
    refusal — so the C10K run exercises the actual refusal paths.
    ``advance_epoch()`` models a hypervisor restart: every outstanding
    ticket goes stale at once.
    """

    def __init__(self, cost: CostModel | None = None, seed: int = 1) -> None:
        self.cost = cost or CostModel()
        self.epoch = 0
        self._sealer = TicketSealer(
            hkdf_sha256(seed.to_bytes(8, "big"), info=b"c10k-model-ticket")
        )
        self._rng = Drbg(seed.to_bytes(8, "big"),
                         personalization=b"c10k-handshake")

    @property
    def full_handshake_us(self) -> float:
        return self.cost.attestation_us + self.cost.dhke_us

    @property
    def resume_us(self) -> float:
        return self.cost.ticket_resume_us

    def open(self, session: AsyncSession) -> None:
        session.live = session.routing_id

    def suspend(self, session: AsyncSession) -> None:
        state = TicketState(
            session_id=session.routing_id,
            user_public=b"",
            hv_signing_secret=b"",
            resumption_secret=self._rng.random_bytes(32),
            send_watermark=0,
            recv_watermark=0,
            shard_affinity=session.shard_affinity,
            ring_digest=session.ring_digest,
        )
        session.parked = self._sealer.mint(state, epoch=self.epoch)
        session.live = None

    def resume(self, session: AsyncSession) -> None:
        state = self._sealer.redeem(session.parked, current_epoch=self.epoch)
        session.parked = None
        session.live = state

    def close(self, session: AsyncSession) -> None:
        session.live = None
        session.parked = None

    def advance_epoch(self) -> None:
        """Model a hypervisor restart: outstanding tickets go stale."""
        self.epoch += 1


@dataclass
class ServiceTenant:
    """One real tenant: its client, session directory, and home device."""

    client: Any                 # PreExecutionClient
    directory: Any              # repro.recovery.supervisor.SessionDirectory
    device_index: int = 0


class ServiceHandshakeEngine:
    """The full-pipeline engine for integration runs.

    ``open`` performs real attestation+DHKE; ``suspend``/``resume`` go
    through the hypervisor's ticket mint/redeem.  Every establishment
    and resumption updates the tenant's SessionDirectory, so
    ReattachableBundle payloads follow the session across suspensions
    and hypervisor restarts alike.
    """

    def __init__(self, service: Any,
                 tenants: dict[bytes, ServiceTenant]) -> None:
        self.service = service
        self.tenants = tenants
        cost = service.devices[0].hypervisor.cost
        self.full_handshake_us = cost.attestation_us + cost.dhke_us
        self.resume_us = cost.ticket_resume_us

    def _tenant(self, session: AsyncSession) -> ServiceTenant:
        return self.tenants[session.routing_id]

    def open(self, session: AsyncSession) -> None:
        tenant = self._tenant(session)
        device = self.service.devices[tenant.device_index]
        session.live = tenant.client.connect(self.service, device)
        session.device_index = tenant.device_index
        tenant.directory.set(tenant.device_index, session.live)

    def suspend(self, session: AsyncSession) -> None:
        tenant = self._tenant(session)
        session.parked = tenant.client.suspend(
            session.live,
            shard_affinity=session.shard_affinity,
            ring_digest=session.ring_digest,
        )
        session.live = None

    def resume(self, session: AsyncSession) -> None:
        tenant = self._tenant(session)
        session.live = tenant.client.resume(session.parked)
        session.parked = None
        tenant.directory.set(tenant.device_index, session.live)

    def close(self, session: AsyncSession) -> None:
        session.live = None
        session.parked = None


# ----------------------------------------------------------------------
# The tier
# ----------------------------------------------------------------------

@dataclass
class AsyncServingConfig:
    """Admission and lifecycle policy for one tier."""

    # Non-blocking admission: live sessions (any non-CLOSED state) above
    # this raise a typed SessionCapacityError instead of queueing.
    max_sessions: int = 16_384
    # Idle eviction: an ACTIVE session with nothing queued or in flight
    # for this long is suspended into a ticket.  ``None`` disables.
    suspend_after_us: float | None = 2_000_000.0
    # Master switch; False also disables idle eviction, which is what
    # the identity gate runs with.
    resumption: bool = True


class AsyncServingTier:
    """Event-driven multiplexer of AsyncSessions onto a gateway frontend."""

    def __init__(
        self,
        reactor: VirtualReactor,
        frontend: Gateway | ShardSessionRouter,
        engine: Any,
        config: AsyncServingConfig | None = None,
        metrics: MetricsRegistry | None = None,
        flight: Any = None,
    ) -> None:
        self.reactor = reactor
        self.frontend = frontend
        self.engine = engine
        self.config = config or AsyncServingConfig()
        # Deliberately a *separate* registry from the frontend's: tier
        # bookkeeping must not perturb the gateway metrics the identity
        # gate hashes.
        self.metrics = metrics or MetricsRegistry()
        # Optional repro.telemetry.flight.FlightRecorder: lifecycle
        # entries ring per session, typed failures seal dumps.
        self.flight = flight
        self._router = frontend if isinstance(frontend, ShardSessionRouter) else None
        self.sessions: dict[bytes, AsyncSession] = {}
        self.live_sessions = 0
        self.peak_live = 0
        self.outcomes: list[GatewayRequest] = []
        # Open handshake spans by routing id (ended in _finish_handshake).
        self._handshake_spans: dict[bytes, Any] = {}

    @property
    def _tracer(self):
        """The tier's own tracer, keyed off the *reactor* — a separate
        clock domain from the service SimClock, so async-plane spans
        can never land in (or perturb) the frontend's trace."""
        return tracer_for(self.reactor)

    def _note(self, session: AsyncSession, name: str, **data: object) -> None:
        if self.flight is not None:
            self.flight.note(
                session.routing_id, "event", name, self.reactor.now_us, **data
            )

    # -- admission ------------------------------------------------------

    def _admit(self, routing_id: bytes,
               device_index: int | None) -> AsyncSession:
        existing = self.sessions.get(routing_id)
        if existing is not None and existing.is_live:
            raise ValueError(
                f"session {routing_id.hex()[:16]} is already live"
            )
        if self.live_sessions >= self.config.max_sessions:
            self.metrics.counter("tier.sessions_rejected").inc()
            raise SessionCapacityError(self.config.max_sessions)
        now = self.reactor.now_us
        session = AsyncSession(
            routing_id=routing_id,
            opened_at_us=now,
            last_activity_us=now,
            device_index=device_index,
        )
        self._derive_affinity(session)
        self.sessions[routing_id] = session
        self.live_sessions += 1
        self.peak_live = max(self.peak_live, self.live_sessions)
        self.metrics.gauge("tier.live_sessions").set(self.live_sessions)
        self._tracer.record(
            "tier.admit", "async", 0.0,
            session=routing_id.hex()[:16],
            shard=session.shard_affinity,
            live=self.live_sessions,
        )
        self._note(session, "tier.admit", shard=session.shard_affinity)
        return session

    def open_session(self, routing_id: bytes,
                     device_index: int | None = None) -> AsyncSession:
        """Admit and start the full handshake; returns HANDSHAKING."""
        session = self._admit(routing_id, device_index)
        self._begin_full_handshake(session)
        return session

    def adopt_session(self, routing_id: bytes,
                      live: Any = None,
                      device_index: int | None = None) -> AsyncSession:
        """Admit an already-attested session directly as ACTIVE.

        The identity gate uses this: the synchronous baseline also
        establishes its sessions before driving load, so the reactor run
        must not charge a handshake the baseline didn't.
        """
        session = self._admit(routing_id, device_index)
        session.live = live
        session.transition(SessionState.ACTIVE, self.reactor.now_us)
        return session

    def close_session(self, routing_id: bytes) -> None:
        session = self.sessions[routing_id]
        if session.state == SessionState.CLOSED:
            return
        self._cancel_suspend(session)
        session.transition(SessionState.CLOSED, self.reactor.now_us)
        if self.engine is not None:
            self.engine.close(session)
        self.live_sessions -= 1
        self.metrics.gauge("tier.live_sessions").set(self.live_sessions)

    def close_all(self) -> None:
        for routing_id in list(self.sessions):
            self.close_session(routing_id)

    # -- submission -----------------------------------------------------

    def submit(self, routing_id: bytes, payload: Any, *,
               priority: int = 0, deadline_us: float | None = None) -> None:
        """Non-blocking: dispatch, queue on the session, or start a resume."""
        session = self.sessions.get(routing_id)
        if session is None or session.state == SessionState.CLOSED:
            raise SessionClosedError(
                f"no live session {routing_id.hex()[:16]}"
            )
        session.submitted += 1
        session.last_activity_us = self.reactor.now_us
        self._cancel_suspend(session)
        if session.state == SessionState.ACTIVE:
            self._dispatch(session, payload, priority, deadline_us)
        elif session.state == SessionState.SUSPENDED:
            session.backlog.append((payload, priority, deadline_us))
            self._begin_resume(session)
        else:  # HANDSHAKING or RESUMED: a handshake is already in flight
            session.backlog.append((payload, priority, deadline_us))

    def _dispatch(self, session: AsyncSession, payload: Any,
                  priority: int, deadline_us: float | None) -> None:
        request = self.frontend.submit(
            session.routing_id,
            payload,
            at_us=self.reactor.now_us,
            priority=priority,
            deadline_us=deadline_us,
            device_index=session.device_index,
        )
        if request.status == RequestStatus.REJECTED:
            self.outcomes.append(request)
            self._note(
                session, "tier.dispatch_rejected",
                request_id=request.request_id,
                reason=request.reject_reason,
            )
        else:
            session.in_flight += 1
            self._note(
                session, "tier.dispatch", request_id=request.request_id
            )

    # -- handshakes -----------------------------------------------------

    def _begin_full_handshake(self, session: AsyncSession) -> None:
        self.engine.open(session)
        session.full_handshakes += 1
        tracer = self._tracer
        if tracer.enabled:
            self._handshake_spans[session.routing_id] = tracer.start_span(
                "tier.handshake", "async",
                attributes={
                    "session": session.routing_id.hex()[:16],
                    "kind": "full",
                },
            )
        self._note(session, "tier.handshake_begin", kind="full")
        self.reactor.call_later(
            self.engine.full_handshake_us, self._finish_handshake,
            session, "full",
        )

    def _begin_resume(self, session: AsyncSession) -> None:
        try:
            self.engine.resume(session)
        except StaleTicketError as stale:
            # The hypervisor restarted since the mint.  Typed, counted,
            # and resolved by a fresh full handshake — never retried as
            # a transient fault (the sealed secrets are gone for good).
            self.metrics.counter("tier.stale_tickets").inc()
            session.stale_fallbacks += 1
            self._tracer.record(
                "tier.stale_fallback", "async", 0.0,
                session=session.routing_id.hex()[:16],
                minted_epoch=stale.minted_epoch,
                current_epoch=stale.current_epoch,
            )
            if self.flight is not None:
                self._note(
                    session, "tier.stale_fallback",
                    minted_epoch=stale.minted_epoch,
                    current_epoch=stale.current_epoch,
                )
                self.flight.seal_if_triggered(
                    session.routing_id,
                    type(stale).__name__,
                    str(stale),
                    self.reactor.now_us,
                )
            session.transition(SessionState.HANDSHAKING, self.reactor.now_us)
            self._begin_full_handshake(session)
            return
        session.transition(SessionState.RESUMED, self.reactor.now_us)
        self._refresh_affinity(session)
        session.resumes += 1
        tracer = self._tracer
        if tracer.enabled:
            self._handshake_spans[session.routing_id] = tracer.start_span(
                "tier.handshake", "async",
                attributes={
                    "session": session.routing_id.hex()[:16],
                    "kind": "resumed",
                    "shard": session.shard_affinity,
                },
            )
        self._note(session, "tier.handshake_begin", kind="resumed",
                   shard=session.shard_affinity)
        self.reactor.call_later(
            self.engine.resume_us, self._finish_handshake, session, "resumed"
        )

    def _finish_handshake(self, session: AsyncSession, kind: str) -> None:
        open_span = self._handshake_spans.pop(session.routing_id, None)
        if session.state == SessionState.CLOSED:
            if open_span is not None:
                self._tracer.end_span(open_span.set(outcome="closed"))
            return
        session.transition(SessionState.ACTIVE, self.reactor.now_us)
        if kind == "full":
            self.metrics.counter("tier.full_handshakes").inc()
            self.metrics.histogram("tier.handshake_full_us").observe(
                self.engine.full_handshake_us
            )
        else:
            self.metrics.counter("tier.resumed").inc()
            self.metrics.histogram("tier.handshake_resumed_us").observe(
                self.engine.resume_us
            )
        backlog, session.backlog = session.backlog, []
        if open_span is not None:
            self._tracer.end_span(
                open_span.set(outcome="active", backlog=len(backlog))
            )
        self._note(session, "tier.handshake_done", kind=kind,
                   backlog=len(backlog))
        for payload, priority, deadline_us in backlog:
            self._dispatch(session, payload, priority, deadline_us)
        if not backlog:
            self._arm_suspend(session, self.reactor.now_us)

    # -- suspension -----------------------------------------------------

    def _cancel_suspend(self, session: AsyncSession) -> None:
        if session.suspend_timer is not None:
            session.suspend_timer.cancel()
            session.suspend_timer = None

    def _arm_suspend(self, session: AsyncSession, base_us: float) -> None:
        if not self.config.resumption or self.config.suspend_after_us is None:
            return
        if session.state != SessionState.ACTIVE or session.in_flight:
            return
        self._cancel_suspend(session)
        session.suspend_timer = self.reactor.call_at(
            max(base_us, self.reactor.now_us) + self.config.suspend_after_us,
            self._maybe_suspend, session,
        )

    def _maybe_suspend(self, session: AsyncSession) -> None:
        session.suspend_timer = None
        if (session.state != SessionState.ACTIVE or session.in_flight
                or session.backlog):
            return
        self.engine.suspend(session)
        session.transition(SessionState.SUSPENDED, self.reactor.now_us)
        session.suspends += 1
        self.metrics.counter("tier.suspended").inc()
        self._tracer.record(
            "tier.suspend", "async", 0.0,
            session=session.routing_id.hex()[:16],
            shard=session.shard_affinity,
            suspends=session.suspends,
        )
        self._note(session, "tier.suspend", shard=session.shard_affinity)

    # -- shard affinity -------------------------------------------------

    def _derive_affinity(self, session: AsyncSession) -> None:
        if self._router is None:
            return
        session.shard_affinity = self._router.shard_for_session(
            session.routing_id
        )
        session.ring_digest = self._router.ring.table_digest()

    def _refresh_affinity(self, session: AsyncSession) -> None:
        """On resume: keep the sticky pin unless the ring changed."""
        if self._router is None:
            return
        current = self._router.ring.table_digest()
        if session.ring_digest != current:
            session.shard_affinity = self._router.shard_for_session(
                session.routing_id
            )
            session.ring_digest = current
            self.metrics.counter("tier.affinity_rederived").inc()

    def rebind_frontend(self, frontend: Gateway | ShardSessionRouter) -> None:
        """Swap the frontend (topology change).  Callers drain first:
        in-flight requests on the old frontend are not migrated."""
        self.frontend = frontend
        self._router = (
            frontend if isinstance(frontend, ShardSessionRouter) else None
        )

    # -- the merged event loop -----------------------------------------

    def run(self) -> None:
        """Drive reactor events and frontend completions to quiescence.

        Two event sources, one time order: completions due at or before
        the next reactor event are absorbed first (matching the
        synchronous gateway, whose ``submit(at_us=T)`` runs every event
        with ``finish <= T`` before enqueuing the arrival).
        """
        while True:
            next_event = self.reactor.peek_next_us()
            next_done = self.frontend.next_completion_us()
            if next_done is not None and (
                next_event is None or next_done <= next_event
            ):
                self._absorb(self.frontend.advance_until(next_done))
            elif next_event is not None:
                self.reactor.run_until(next_event)
            else:
                break
        self._absorb(self.frontend.drain())

    def _absorb(self, terminal: list[GatewayRequest]) -> None:
        for request in terminal:
            self.outcomes.append(request)
            if (self.flight is not None
                    and request.status == RequestStatus.FAILED
                    and request.failure is not None):
                at = request.finished_at_us
                self.flight.note(
                    request.session_id, "event", "tier.request_failed",
                    self.reactor.now_us if at is None else at,
                    request_id=request.request_id,
                    cause=request.failure.cause_type,
                )
                self.flight.seal_if_triggered(
                    request.session_id,
                    request.failure.cause_type,
                    request.failure.message,
                    self.reactor.now_us if at is None else at,
                )
            session = self.sessions.get(request.session_id)
            if session is None:
                continue
            session.in_flight -= 1
            finished = request.finished_at_us
            if finished is not None:
                session.last_activity_us = max(
                    session.last_activity_us, finished
                )
            if (session.state == SessionState.ACTIVE
                    and not session.in_flight and not session.backlog):
                self._arm_suspend(session, session.last_activity_us)

    # -- reporting ------------------------------------------------------

    def load_report(self, start_us: float) -> LoadReport:
        """The same shape ``run_open_loop`` returns, from tier outcomes."""
        metrics = (
            self.frontend.metrics.snapshot()
            if isinstance(self.frontend, Gateway)
            else self._merged_frontend_metrics()
        )
        rejected: dict[str, int] = {}
        failed_by_reason: dict[str, int] = {}
        completed = expired = failed = 0
        for request in self.outcomes:
            if request.status == RequestStatus.COMPLETED:
                completed += 1
            elif request.status == RequestStatus.EXPIRED:
                expired += 1
            elif request.status == RequestStatus.FAILED:
                failed += 1
                reason = request.failure.cause_type
                failed_by_reason[reason] = failed_by_reason.get(reason, 0) + 1
            elif request.status == RequestStatus.REJECTED:
                rejected[request.reject_reason] = (
                    rejected.get(request.reject_reason, 0) + 1
                )
        return LoadReport(
            submitted=len(self.outcomes),
            completed=completed,
            expired=expired,
            rejected_by_reason=rejected,
            duration_us=self.frontend.now_us - start_us,
            outcomes=list(self.outcomes),
            metrics=metrics,
            failed=failed,
            failed_by_reason=failed_by_reason,
        )

    def _merged_frontend_metrics(self) -> dict[str, float]:
        assert self._router is not None
        if self._router.metrics is not None:
            return self._router.metrics.snapshot()
        merged: dict[str, float] = {}
        for shard_id in self._router.shard_ids:
            gateway = self._router.gateway_of_shard(shard_id)
            for key, value in gateway.metrics.snapshot().items():
                merged[f"shard{shard_id}.{key}"] = value
        return merged


# ----------------------------------------------------------------------
# Open-loop driver (the reactor twin of loadgen.run_open_loop)
# ----------------------------------------------------------------------

def drive_open_loop(
    tier: AsyncServingTier,
    sessions: list[LoadSession],
    *,
    rate_rps: float,
    total_requests: int,
    seed: int = 1,
    pattern: str = "poisson",
    deadline_us: float | None = None,
) -> LoadReport:
    """Schedule the exact ``run_open_loop`` arrival sequence on the reactor.

    Same DRBG personalization, same arrival draws, same round-robin and
    per-session ordinals — so with resumption disabled, adopted (pre-
    attested) sessions, and side-effect-free payload factories, the
    frontend observes a byte-identical submission sequence and the
    identity gate holds.  Payload factories are invoked inside the
    arrival event (not at scheduling time), preserving creation order
    relative to dispatches.
    """
    rng = Drbg(seed.to_bytes(8, "big"), personalization=b"loadgen-open")
    start_us = tier.frontend.now_us

    def arrive(session: LoadSession, ordinal: int) -> None:
        tier.submit(
            session.session_id,
            session.make_payload(ordinal),
            priority=session.priority,
            deadline_us=deadline_us,
        )

    ordinals = [0] * len(sessions)
    for index, at_us in enumerate(
        arrival_times(rate_rps, total_requests, rng, pattern)
    ):
        session = sessions[index % len(sessions)]
        tier.reactor.call_at(
            start_us + at_us, arrive, session, ordinals[index % len(sessions)]
        )
        ordinals[index % len(sessions)] += 1
    tier.run()
    return tier.load_report(start_us)


__all__ = [
    "AsyncServingConfig",
    "AsyncServingTier",
    "ModelHandshakeEngine",
    "ServiceHandshakeEngine",
    "ServiceTenant",
    "SessionCapacityError",
    "SessionClosedError",
    "drive_open_loop",
]
