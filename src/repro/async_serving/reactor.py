"""The event-driven reactor core: one loop, thousands of sessions.

Two interchangeable reactors drive the serving tier:

* :class:`VirtualReactor` — a pure virtual-time event loop in the same
  time domain as :class:`~repro.hardware.timing.SimClock`.  Every event
  fires at an exact simulated microsecond in a deterministic order
  (time, then scheduling sequence), so identically-seeded runs are
  byte-identical — the property every bench gate in this repo leans on.
* :class:`AsyncioReactorAdapter` — the same surface mapped onto a real
  ``asyncio`` loop for the wall-clock path, with ``time_scale`` turning
  virtual microseconds into loop seconds.  Useful for demos against
  real sockets; nothing deterministic is gated on it.

Neither reactor knows anything about sessions or gateways: they
schedule callbacks.  The tier composes them with the gateway's own
virtual event heap by merging "next reactor event" against "next
gateway completion" in time order (see ``tier.AsyncServingTier.run``).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable


class ReactorHandle:
    """A scheduled callback; ``cancel()`` is O(1), the heap skips it."""

    __slots__ = ("at_us", "seq", "callback", "args", "cancelled", "_reactor")

    def __init__(self, at_us: float, seq: int, callback: Callable[..., Any],
                 args: tuple, reactor: "VirtualReactor") -> None:
        self.at_us = at_us
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self._reactor = reactor

    def cancel(self) -> None:
        if not self.cancelled:
            self.cancelled = True
            self._reactor._pending -= 1

    def __lt__(self, other: "ReactorHandle") -> bool:
        return (self.at_us, self.seq) < (other.at_us, other.seq)


class VirtualReactor:
    """Deterministic virtual-time event loop.

    Events fire strictly in ``(at_us, scheduling order)``; a callback
    may schedule further events (including at the current instant —
    they run in the same pass).  Time never flows backwards.
    """

    def __init__(self, start_us: float = 0.0) -> None:
        self._now_us = start_us
        self._seq = 0
        self._heap: list[ReactorHandle] = []
        self._pending = 0
        self.events_fired = 0

    @property
    def now_us(self) -> float:
        return self._now_us

    @property
    def pending(self) -> int:
        """Scheduled, not-yet-fired, not-cancelled events."""
        return self._pending

    def call_at(self, at_us: float, callback: Callable[..., Any],
                *args: Any) -> ReactorHandle:
        if at_us < self._now_us:
            raise ValueError(
                f"cannot schedule at {at_us} (now is {self._now_us})"
            )
        self._seq += 1
        handle = ReactorHandle(at_us, self._seq, callback, args, self)
        heapq.heappush(self._heap, handle)
        self._pending += 1
        return handle

    def call_later(self, delay_us: float, callback: Callable[..., Any],
                   *args: Any) -> ReactorHandle:
        if delay_us < 0:
            raise ValueError("delay must be non-negative")
        return self.call_at(self._now_us + delay_us, callback, *args)

    def peek_next_us(self) -> float | None:
        """Fire time of the earliest live event, or ``None`` when idle."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].at_us if self._heap else None

    def run_until(self, deadline_us: float) -> int:
        """Fire every event due at or before ``deadline_us``; returns count.

        The clock lands exactly on ``deadline_us`` afterwards (or stays
        put if the deadline is in the past).
        """
        fired = 0
        while self._heap:
            head = self._heap[0]
            if head.cancelled:
                heapq.heappop(self._heap)
                continue
            if head.at_us > deadline_us:
                break
            heapq.heappop(self._heap)
            self._pending -= 1
            self._now_us = head.at_us
            self.events_fired += 1
            fired += 1
            head.callback(*head.args)
        if deadline_us > self._now_us:
            self._now_us = deadline_us
        return fired

    def run_until_idle(self) -> int:
        """Drain the heap completely (callbacks may keep extending it)."""
        fired = 0
        while True:
            next_us = self.peek_next_us()
            if next_us is None:
                return fired
            fired += self.run_until(next_us)


class _AdapterHandle:
    """Cancellation wrapper keeping the adapter's pending count honest."""

    __slots__ = ("_adapter", "_timer", "cancelled", "fired")

    def __init__(self, adapter: "AsyncioReactorAdapter") -> None:
        self._adapter = adapter
        self._timer = None
        self.cancelled = False
        self.fired = False

    def cancel(self) -> None:
        if self.cancelled or self.fired:
            return
        self.cancelled = True
        if self._timer is not None:
            self._timer.cancel()
        self._adapter._on_settled()


class AsyncioReactorAdapter:
    """The reactor surface over a private ``asyncio`` event loop.

    ``time_scale`` is wall-clock seconds per virtual microsecond; the
    default ``1e-6`` runs virtual time at real speed, smaller values
    compress it.  ``run_until_idle`` returns once every scheduled (and
    transitively scheduled) callback has run — the loop stops itself
    when the pending count hits zero.
    """

    def __init__(self, time_scale: float = 1e-6) -> None:
        import asyncio

        if time_scale <= 0:
            raise ValueError("time_scale must be positive")
        self._loop = asyncio.new_event_loop()
        self._origin = self._loop.time()
        self._time_scale = time_scale
        self._pending = 0
        self.events_fired = 0

    @property
    def now_us(self) -> float:
        return (self._loop.time() - self._origin) / self._time_scale

    @property
    def pending(self) -> int:
        return self._pending

    def _on_settled(self) -> None:
        self._pending -= 1
        if self._pending == 0 and self._loop.is_running():
            self._loop.stop()

    def call_at(self, at_us: float, callback: Callable[..., Any],
                *args: Any) -> _AdapterHandle:
        handle = _AdapterHandle(self)

        def runner() -> None:
            if handle.cancelled:
                return
            handle.fired = True
            self.events_fired += 1
            try:
                callback(*args)
            finally:
                self._on_settled()

        self._pending += 1
        handle._timer = self._loop.call_at(
            self._origin + at_us * self._time_scale, runner
        )
        return handle

    def call_later(self, delay_us: float, callback: Callable[..., Any],
                   *args: Any) -> _AdapterHandle:
        if delay_us < 0:
            raise ValueError("delay must be non-negative")
        return self.call_at(self.now_us + delay_us, callback, *args)

    def run_until_idle(self) -> int:
        before = self.events_fired
        while self._pending:
            self._loop.run_forever()
        return self.events_fired - before

    def close(self) -> None:
        self._loop.close()


__all__ = ["AsyncioReactorAdapter", "ReactorHandle", "VirtualReactor"]
