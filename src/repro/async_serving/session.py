"""Per-session state machines for the async serving tier.

Every connected user is one :class:`AsyncSession` record — a few
hundred bytes, never a thread or a channel object while suspended —
walking the lifecycle::

    HANDSHAKING ──► ACTIVE ──► SUSPENDED ──► RESUMED ──► ACTIVE …
         │             │            │            │
         └─────────────┴────────────┴────────────┴──► CLOSED

* ``HANDSHAKING`` — the full attestation+DHKE is in flight; arriving
  payloads queue on the session.
* ``ACTIVE`` — dispatching onto the gateway/router.
* ``SUSPENDED`` — idle-evicted: the hypervisor sealed the session into
  a resumption ticket and dropped it from memory.  The tier keeps only
  this record and the client-held ticket state.
* ``RESUMED`` — a ticket redemption is in flight (one round-trip);
  payloads queue exactly as in ``HANDSHAKING``.
* ``SUSPENDED → HANDSHAKING`` is the *stale-ticket fallback*: the
  hypervisor restarted since the mint, the ticket was refused with a
  typed ``StaleTicketError``, and the only way back in is a fresh full
  handshake.

Transitions outside the map raise :class:`InvalidSessionTransition` —
a tier bug, never load-dependent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


class SessionState:
    HANDSHAKING = "handshaking"
    ACTIVE = "active"
    SUSPENDED = "suspended"
    RESUMED = "resumed"
    CLOSED = "closed"


_ALLOWED: dict[str, frozenset[str]] = {
    SessionState.HANDSHAKING: frozenset(
        {SessionState.ACTIVE, SessionState.CLOSED}
    ),
    SessionState.ACTIVE: frozenset(
        {SessionState.SUSPENDED, SessionState.CLOSED}
    ),
    SessionState.SUSPENDED: frozenset(
        # RESUMED via ticket; HANDSHAKING is the stale-ticket fallback.
        {SessionState.RESUMED, SessionState.HANDSHAKING, SessionState.CLOSED}
    ),
    SessionState.RESUMED: frozenset(
        {SessionState.ACTIVE, SessionState.CLOSED}
    ),
    SessionState.CLOSED: frozenset(),
}

# States in which the session counts against the tier's live-session cap.
LIVE_STATES = frozenset({
    SessionState.HANDSHAKING,
    SessionState.ACTIVE,
    SessionState.SUSPENDED,
    SessionState.RESUMED,
})


class InvalidSessionTransition(Exception):
    """The tier attempted a lifecycle edge the state machine forbids."""

    def __init__(self, routing_id: bytes, src: str, dst: str) -> None:
        super().__init__(
            f"session {routing_id.hex()[:16]}: illegal transition "
            f"{src} -> {dst}"
        )
        self.routing_id = routing_id
        self.src = src
        self.dst = dst


@dataclass
class AsyncSession:
    """One multiplexed session's bookkeeping (a record, not a thread)."""

    routing_id: bytes               # stable id: shard routing + gateway accounting
    opened_at_us: float
    state: str = SessionState.HANDSHAKING
    last_activity_us: float = 0.0
    device_index: int | None = None
    shard_affinity: int = -1
    ring_digest: str = ""
    # Engine-specific handles: the live client session while ACTIVE, the
    # suspended (ticket) state while SUSPENDED.
    live: Any = None
    parked: Any = None
    # Payloads that arrived mid-handshake/mid-resume, flushed on ACTIVE.
    backlog: list[Any] = field(default_factory=list)
    in_flight: int = 0
    suspend_timer: Any = None
    # Lifecycle accounting for the bench gates.
    full_handshakes: int = 0
    resumes: int = 0
    suspends: int = 0
    stale_fallbacks: int = 0
    submitted: int = 0

    def transition(self, dst: str, at_us: float) -> None:
        if dst not in _ALLOWED.get(self.state, frozenset()):
            raise InvalidSessionTransition(self.routing_id, self.state, dst)
        self.state = dst
        self.last_activity_us = at_us

    @property
    def is_live(self) -> bool:
        return self.state in LIVE_STATES


__all__ = [
    "AsyncSession",
    "InvalidSessionTransition",
    "LIVE_STATES",
    "SessionState",
]
