"""The C10K async-serving benchmark (``c10k-bench``).

Four seeded scenarios, every gate deterministic:

1. **Identity** — the same open-loop serving run through the full real
   pipeline twice: once driven synchronously by
   :func:`~repro.serving.loadgen.run_open_loop`, once by the reactor
   tier with resumption disabled.  The tier is pure scheduling — so the
   two runs must be byte-identical: same Chrome trace JSON, same
   gateway metrics snapshot, same wire bytes, same world-state digest.
2. **C10K** — 10,000 concurrent sessions multiplexed by one tier over a
   sharded gateway fleet (model-mode executors, real sealed tickets).
   Sessions go idle between bursts, get suspended into tickets, and
   resume on the next burst.  Gates: peak live sessions ≥ the target,
   every expected resume happened via ticket (zero stale fallbacks),
   every dispatched request completed, and p99 resumed-handshake cost
   ≤ 5% of the full attestation+DHKE handshake.
3. **Determinism** — a smaller copy of the C10K scenario run twice with
   the same seed; the full metrics + outcome digests must match.
4. **Epoch bump** — the model hypervisor "restarts" mid-run; every
   outstanding ticket must be refused as a typed
   :class:`~repro.hypervisor.resumption.StaleTicketError` (which the
   fault policies must classify non-retryable) and every session must
   recover through the full-handshake fallback with no lost requests.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

from repro.core.device import DeviceConfig
from repro.core.service import HarDTAPEService
from repro.core.user import PreExecutionClient
from repro.faults.policy import RetryPolicy
from repro.hardware.timing import CostModel
from repro.hypervisor.bundle_codec import TransactionBundle, encode_bundle
from repro.hypervisor.hypervisor import SecurityFeatures
from repro.hypervisor.resumption import StaleTicketError
from repro.recovery.bench import wire_hash, world_digest
from repro.serving.gateway import (
    FleetModelExecutor,
    Gateway,
    GatewayConfig,
    ServiceExecutor,
)
from repro.serving.loadgen import (
    LoadReport,
    LoadSession,
    run_open_loop,
    synthetic_profiles,
)
from repro.serving.metrics import MetricsRegistry
from repro.serving.router import ShardSessionRouter
from repro.telemetry.exporters import render_chrome_trace
from repro.telemetry.tracer import TraceSampler, install_tracer, uninstall_tracer
from repro.workloads.generator import EvaluationSetConfig, build_evaluation_set
from repro.async_serving.reactor import VirtualReactor
from repro.async_serving.tier import (
    AsyncServingConfig,
    AsyncServingTier,
    ModelHandshakeEngine,
    drive_open_loop,
)


@dataclass
class C10kBenchConfig:
    """One c10k-bench invocation."""

    seed: int = 1
    # -- identity scenario (real pipeline, small) ----------------------
    identity_tenants: int = 3
    identity_requests: int = 9
    identity_rate_rps: float = 40.0
    device_count: int = 2
    hevms_per_device: int = 2
    security_level: str = "full"
    blocks: int = 1
    txs_per_block: int = 4
    trace_sample_rate: float = 1.0
    # -- C10K scenario (model mode, sharded fleet) ---------------------
    concurrency_target: int = 10_000
    rounds: int = 2               # suspend/resume cycles per session
    shards: int = 8
    cores_per_shard: int = 64
    open_window_us: float = 2_000_000.0
    round_gap_us: float = 1_000_000.0
    suspend_after_us: float = 200_000.0
    max_resumed_cost_share: float = 0.05   # p99 resumed / p99 full
    # -- determinism + epoch scenarios (small model runs) --------------
    determinism_sessions: int = 256
    epoch_sessions: int = 64

    @classmethod
    def smoke(cls, seed: int = 1) -> "C10kBenchConfig":
        """CI-sized: the 10k concurrency gate stays (it IS the bench);
        the real-pipeline identity run and side scenarios shrink."""
        return cls(
            seed=seed,
            identity_tenants=2,
            identity_requests=6,
            rounds=2,
            determinism_sessions=128,
            epoch_sessions=32,
        )


# ----------------------------------------------------------------------
# Scenario 1: identity (reactor off == synchronous baseline)
# ----------------------------------------------------------------------

@dataclass
class _IdentityArtifacts:
    trace_hash: str
    metrics_hash: str
    wire_hash: str
    digest: str
    load: LoadReport


def _run_identity_stack(config: C10kBenchConfig,
                        reactor_driven: bool) -> _IdentityArtifacts:
    """One full real-pipeline open-loop run, sync or reactor-driven."""
    evalset = build_evaluation_set(
        EvaluationSetConfig(blocks=config.blocks,
                            txs_per_block=config.txs_per_block)
    )
    service = HarDTAPEService(
        evalset.node,
        SecurityFeatures.from_level(config.security_level),
        device_count=config.device_count,
        device_config=DeviceConfig(hevm_count=config.hevms_per_device),
        charge_fees=False,
    )
    metrics = MetricsRegistry()
    tracer = install_tracer(
        service.clock, TraceSampler(config.trace_sample_rate, config.seed)
    )
    try:
        gateway = Gateway(
            ServiceExecutor(service), GatewayConfig(),
            metrics=metrics, tracer=tracer,
        )
        sessions: list[LoadSession] = []
        transactions = evalset.transactions
        for tenant in range(config.identity_tenants):
            client = PreExecutionClient(
                service.manufacturer.root_public_key,
                rng_seed=bytes([tenant + 1]) * 32,
            )
            home = tenant % config.device_count
            user = client.connect(service, service.devices[home])

            def make_payload(ordinal: int, offset: int = tenant,
                             user=user):
                tx = transactions[(offset + ordinal) % len(transactions)]
                bundle = TransactionBundle(
                    transactions=(tx,), block_number=service.synced_height
                )
                encoded = encode_bundle(bundle)
                # Sealed at dispatch time (the gateway invokes the
                # callable), matching the serving-plane idiom.
                return lambda: user.channel.seal(encoded)

            sessions.append(
                LoadSession(
                    session_id=user.session_id,
                    make_payload=make_payload,
                    device_index=home,
                )
            )

        if reactor_driven:
            tier = AsyncServingTier(
                VirtualReactor(start_us=gateway.now_us),
                gateway,
                engine=None,
                config=AsyncServingConfig(resumption=False),
            )
            for load_session in sessions:
                tier.adopt_session(
                    load_session.session_id,
                    device_index=load_session.device_index,
                )
            load = drive_open_loop(
                tier, sessions,
                rate_rps=config.identity_rate_rps,
                total_requests=config.identity_requests,
                seed=config.seed,
            )
        else:
            load = run_open_loop(
                gateway, sessions,
                rate_rps=config.identity_rate_rps,
                total_requests=config.identity_requests,
                seed=config.seed,
            )
        trace_json = render_chrome_trace(tracer)
    finally:
        uninstall_tracer(service.clock)
    return _IdentityArtifacts(
        trace_hash=hashlib.sha256(trace_json.encode()).hexdigest(),
        metrics_hash=hashlib.sha256(
            json.dumps(metrics.snapshot(), sort_keys=True).encode()
        ).hexdigest(),
        wire_hash=wire_hash([load]),
        digest=world_digest(service),
        load=load,
    )


# ----------------------------------------------------------------------
# Scenarios 2–4: model-mode tier runs
# ----------------------------------------------------------------------

@dataclass
class _ModelRunResult:
    tier_metrics: dict[str, float]
    load: LoadReport
    peak_live: int
    live_at_end: int
    stale_fallbacks: int
    digest: str


def _run_model_tier(
    config: C10kBenchConfig,
    *,
    session_count: int,
    epoch_bump_before_round: int | None = None,
    open_window_us: float | None = None,
) -> _ModelRunResult:
    """One C10K-shaped model run: open, burst, suspend, resume, repeat."""
    cost = CostModel()
    engine = ModelHandshakeEngine(cost, seed=config.seed)
    gateways = {
        shard: Gateway(
            FleetModelExecutor(config.cores_per_shard, cost),
            GatewayConfig(max_queue_depth=session_count * 2,
                          max_in_flight_per_session=4),
        )
        for shard in range(config.shards)
    }
    router = ShardSessionRouter(gateways)
    reactor = VirtualReactor()
    tier = AsyncServingTier(
        reactor, router, engine,
        config=AsyncServingConfig(
            max_sessions=session_count,
            suspend_after_us=config.suspend_after_us,
            resumption=True,
        ),
    )
    profiles = synthetic_profiles(cost, "mixed", count=16, seed=config.seed)

    def open_and_submit(rid: bytes, ordinal: int) -> None:
        tier.open_session(rid)
        tier.submit(rid, profiles[ordinal % len(profiles)])

    def burst(rid: bytes, ordinal: int) -> None:
        tier.submit(rid, profiles[ordinal % len(profiles)])

    if epoch_bump_before_round is not None:
        bumped = False

        def maybe_bump() -> None:
            nonlocal bumped
            if not bumped:
                engine.advance_epoch()
                bumped = True

    if open_window_us is None:
        open_window_us = config.open_window_us
    stride = open_window_us / session_count
    for index in range(session_count):
        rid = b"c10k-%08d" % index
        t_open = index * stride
        reactor.call_at(t_open, open_and_submit, rid, index)
        for round_no in range(1, config.rounds + 1):
            at = t_open + round_no * config.round_gap_us
            if (epoch_bump_before_round is not None
                    and round_no == epoch_bump_before_round
                    and index == 0):
                reactor.call_at(at - 1.0, maybe_bump)
            reactor.call_at(at, burst, rid, index + round_no)
    start_us = router.now_us
    tier.run()
    load = tier.load_report(start_us)
    snapshot = tier.metrics.snapshot()
    digest = hashlib.sha256(
        json.dumps(
            {
                "tier": snapshot,
                "completed": load.completed,
                "failed": load.failed,
                "rejected": load.rejected,
                "duration_us": load.duration_us,
            },
            sort_keys=True,
        ).encode()
    ).hexdigest()
    return _ModelRunResult(
        tier_metrics=snapshot,
        load=load,
        peak_live=tier.peak_live,
        live_at_end=sum(
            1 for s in tier.sessions.values() if s.is_live
        ),
        stale_fallbacks=sum(
            s.stale_fallbacks for s in tier.sessions.values()
        ),
        digest=digest,
    )


# ----------------------------------------------------------------------
# Report and gates
# ----------------------------------------------------------------------

@dataclass
class C10kBenchReport:
    seed: int
    identity: dict[str, bool]
    c10k: dict
    determinism: dict
    epoch: dict
    gate_failures: list[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.gate_failures

    def to_json(self) -> str:
        return json.dumps(
            {
                "bench": "c10k",
                "seed": self.seed,
                "identity": self.identity,
                "c10k": self.c10k,
                "determinism": self.determinism,
                "epoch": self.epoch,
                "gate_failures": self.gate_failures,
                "passed": self.passed,
            },
            indent=2,
            sort_keys=True,
        )

    def summary_lines(self) -> list[str]:
        ratio = self.c10k["resumed_p99_us"] / self.c10k["full_p99_us"]
        lines = [
            "identity (reactor, resumption off vs synchronous baseline): "
            + (
                "byte-identical"
                if all(self.identity.values())
                else "DIVERGED "
                + str(sorted(k for k, v in self.identity.items() if not v))
            ),
            f"c10k: {self.c10k['peak_live']} concurrent sessions "
            f"(target {self.c10k['target']}), "
            f"{self.c10k['completed']} requests completed, "
            f"{self.c10k['resumed']} ticket resumes / "
            f"{self.c10k['full_handshakes']} full handshakes",
            "  handshake cost p50/p99: full "
            f"{self.c10k['full_p50_us'] / 1000:.1f}/"
            f"{self.c10k['full_p99_us'] / 1000:.1f} ms, resumed "
            f"{self.c10k['resumed_p50_us'] / 1000:.2f}/"
            f"{self.c10k['resumed_p99_us'] / 1000:.2f} ms "
            f"(p99 share {ratio:.2%})",
            "determinism: "
            + (
                "seeded rerun digest matches"
                if self.determinism["matches"]
                else "DIGEST MISMATCH"
            ),
            f"epoch bump: {self.epoch['stale_refused']} stale ticket(s) "
            f"refused typed, {self.epoch['fallback_handshakes']} "
            f"fallback handshake(s), "
            f"{self.epoch['completed']} requests completed",
        ]
        if self.gate_failures:
            lines.append("gate failures:")
            lines.extend(f"  - {failure}" for failure in self.gate_failures)
        else:
            lines.append("all gates passed")
        return lines


def run_c10k_bench(config: C10kBenchConfig) -> C10kBenchReport:
    failures: list[str] = []

    # 1. Identity.
    sync_run = _run_identity_stack(config, reactor_driven=False)
    reactor_run = _run_identity_stack(config, reactor_driven=True)
    identity = {
        "trace": sync_run.trace_hash == reactor_run.trace_hash,
        "metrics": sync_run.metrics_hash == reactor_run.metrics_hash,
        "wire": sync_run.wire_hash == reactor_run.wire_hash,
        "digest": sync_run.digest == reactor_run.digest,
    }
    for name, equal in identity.items():
        if not equal:
            failures.append(
                f"identity: the reactor-driven run changed the {name} "
                f"bytes of a resumption-disabled seeded run"
            )

    # 2. C10K.
    c10k = _run_model_tier(config, session_count=config.concurrency_target)
    tm = c10k.tier_metrics
    expected_resumes = config.concurrency_target * config.rounds
    c10k_obj = {
        "target": config.concurrency_target,
        "peak_live": c10k.peak_live,
        "live_at_end": c10k.live_at_end,
        "shards": config.shards,
        "completed": c10k.load.completed,
        "failed": c10k.load.failed,
        "rejected": c10k.load.rejected,
        "full_handshakes": int(tm.get("tier.full_handshakes", 0)),
        "resumed": int(tm.get("tier.resumed", 0)),
        "suspended": int(tm.get("tier.suspended", 0)),
        "stale_fallbacks": c10k.stale_fallbacks,
        "full_p50_us": tm.get("tier.handshake_full_us.p50", 0.0),
        "full_p99_us": tm.get("tier.handshake_full_us.p99", 0.0),
        "resumed_p50_us": tm.get("tier.handshake_resumed_us.p50", 0.0),
        "resumed_p99_us": tm.get("tier.handshake_resumed_us.p99", 0.0),
        "digest": c10k.digest,
    }
    if c10k.peak_live < config.concurrency_target:
        failures.append(
            f"c10k: peaked at {c10k.peak_live} concurrent sessions, "
            f"target {config.concurrency_target}"
        )
    if c10k_obj["resumed"] != expected_resumes:
        failures.append(
            f"c10k: {c10k_obj['resumed']} ticket resumes, expected "
            f"{expected_resumes} (stale fallbacks: {c10k.stale_fallbacks})"
        )
    if c10k.load.failed or c10k.load.rejected:
        failures.append(
            f"c10k: {c10k.load.failed} failed / {c10k.load.rejected} "
            f"rejected requests in an under-capacity run"
        )
    if c10k_obj["full_p99_us"] <= 0:
        failures.append("c10k: no full-handshake samples recorded")
    else:
        share = c10k_obj["resumed_p99_us"] / c10k_obj["full_p99_us"]
        if share > config.max_resumed_cost_share:
            failures.append(
                f"c10k: p99 resumed handshake is {share:.1%} of the full "
                f"handshake, cap is {config.max_resumed_cost_share:.0%}"
            )

    # 3. Determinism (smaller twin, run twice).
    det_a = _run_model_tier(config, session_count=config.determinism_sessions)
    det_b = _run_model_tier(config, session_count=config.determinism_sessions)
    determinism = {
        "sessions": config.determinism_sessions,
        "digest": det_a.digest,
        "matches": det_a.digest == det_b.digest,
    }
    if not determinism["matches"]:
        failures.append("determinism: seeded rerun produced a different digest")

    # 4. Epoch bump: every ticket refused typed, every session recovers.
    # Compress the open window so every session has handshaken AND idled
    # into SUSPENDED (minting its ticket at epoch 0) before the bump fires
    # at round_gap - 1us; only then does "all tickets refused" hold exactly.
    epoch = _run_model_tier(
        config,
        session_count=config.epoch_sessions,
        epoch_bump_before_round=1,
        open_window_us=50_000.0,
    )
    em = epoch.tier_metrics
    epoch_obj = {
        "sessions": config.epoch_sessions,
        "stale_refused": int(em.get("tier.stale_tickets", 0)),
        "fallback_handshakes": epoch.stale_fallbacks,
        "resumed": int(em.get("tier.resumed", 0)),
        "completed": epoch.load.completed,
        "failed": epoch.load.failed,
        "rejected": epoch.load.rejected,
        "stale_retryable": RetryPolicy().is_recoverable(
            StaleTicketError(0, 1)
        ),
    }
    if epoch_obj["stale_refused"] < config.epoch_sessions:
        failures.append(
            f"epoch: only {epoch_obj['stale_refused']} stale refusals for "
            f"{config.epoch_sessions} outstanding tickets"
        )
    if epoch.load.failed or epoch.load.rejected:
        failures.append(
            f"epoch: {epoch.load.failed} failed / {epoch.load.rejected} "
            f"rejected requests after the epoch bump"
        )
    if epoch_obj["stale_retryable"]:
        failures.append(
            "epoch: RetryPolicy classifies StaleTicketError as retryable"
        )

    return C10kBenchReport(
        seed=config.seed,
        identity=identity,
        c10k=c10k_obj,
        determinism=determinism,
        epoch=epoch_obj,
        gate_failures=failures,
    )


__all__ = ["C10kBenchConfig", "C10kBenchReport", "run_c10k_bench"]
