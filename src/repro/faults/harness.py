"""The chaos harness: drive serving-layer load under injected faults.

One :func:`run_chaos` call builds a multi-device service, arms a
:class:`~repro.faults.plan.FaultPlan` over it, fronts it with the
recovering gateway executor, and drives the closed-loop load generator
— then folds what happened into a :class:`ChaosReport`: goodput
degradation versus the fault-free baseline, how much recovery cost
(extra virtual time burned by retries/backoff/failover), and a
by-reason account of every shed, failed-over, and aborted bundle.

Determinism contract: everything — load arrival order, fault decisions,
recovery timing — derives from ``(config.seed, plan)`` through seeded
DRBGs and virtual time, so the same config reproduces the same
:class:`ChaosReport` bit for bit.  With an all-zero-rate plan the armed
run is byte-identical to an unarmed one (the chaos bench asserts both).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.device import DeviceConfig
from repro.core.service import HarDTAPEService
from repro.core.user import PreExecutionClient
from repro.faults.errors import AttestationError
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultKind, FaultPlan, FaultRule
from repro.faults.policy import FailoverBundle, ResilientServiceExecutor, RetryPolicy
from repro.hypervisor.bundle_codec import TransactionBundle, encode_bundle
from repro.hypervisor.hypervisor import SecurityFeatures
from repro.serving.gateway import Gateway, GatewayConfig
from repro.serving.loadgen import LoadReport, LoadSession, run_closed_loop
from repro.serving.metrics import MetricsRegistry

# The fault kinds the serving path exercises end to end.  Attestation
# and sync faults fire at session-setup/sync time, not per bundle, and
# have their own dedicated tests.
SERVING_FAULT_KINDS = (
    FaultKind.DMA_DROP,
    FaultKind.DMA_DUPLICATE,
    FaultKind.DMA_CORRUPT,
    FaultKind.ORAM_STALL,
    FaultKind.ORAM_TAG_CORRUPT,
    FaultKind.HEVM_CRASH,
)

_CONNECT_ATTEMPTS = 4


@dataclass
class ChaosConfig:
    """One chaos run: fleet shape, load shape, and the fault plan."""

    seed: int = 1
    fault_rate: float = 0.0
    kinds: tuple[str, ...] = SERVING_FAULT_KINDS
    plan: FaultPlan | None = None          # overrides (fault_rate, kinds)
    armed: bool = True                     # False: no injector at all
    device_count: int = 2
    hevms_per_device: int = 2
    tenants: int = 4
    requests_per_tenant: int = 5
    security_level: str = "full"
    max_attempts: int = 4
    backoff_us: float = 200.0
    # Breakers must heal within a run (virtual runs last ~hundreds of
    # ms): trip after 5 straight failures, hold for 50 virtual ms.
    breaker_threshold: int = 5
    breaker_reset_us: float = 50_000.0
    # Rates are per *decision point*, and ORAM path reads are ~25×
    # denser than channel messages (dozens per bundle vs one).  Scaling
    # the ORAM kinds down by the density ratio makes ``fault_rate``
    # mean roughly "probability one bundle attempt is hit" uniformly
    # across kinds, so escalation curves compare like with like.
    oram_rate_scale: float = 0.04
    # A stall (40 ms) longer than the budget (25 ms) forces the typed
    # OramTimeoutError path rather than silent absorption.
    oram_stall_us: float = 40_000.0
    oram_response_budget_us: float = 25_000.0
    # Which CryptoBackend tier the fleet's channels run on.  The fault
    # plane predates the pluggable backends, so the zero-rate identity
    # gate sweeps every tier (bench_fault_recovery) — a backend that
    # diverged under injected faults would silently fork the wire.
    crypto_backend: str | None = None   # None: DeviceConfig's default

    def build_plan(self) -> FaultPlan:
        if self.plan is not None:
            return self.plan
        oram_kinds = (FaultKind.ORAM_STALL, FaultKind.ORAM_TAG_CORRUPT)
        rules = [
            FaultRule(
                kind,
                self.fault_rate
                * (self.oram_rate_scale if kind in oram_kinds else 1.0),
                stall_us=self.oram_stall_us,
            )
            for kind in self.kinds
        ]
        return FaultPlan(self.seed, rules)


@dataclass
class ChaosReport:
    """Everything the fault-recovery bench reports for one run."""

    seed: int
    fault_rate: float
    load: LoadReport
    injected_by_kind: dict[str, int]
    recovered: int                 # completed only thanks to retry/failover
    failed_over: int               # completed on a different device
    attestation_retries: int
    metrics: dict[str, float] = field(default_factory=dict)

    @property
    def injected_total(self) -> int:
        return sum(self.injected_by_kind.values())

    @property
    def goodput_tps(self) -> float:
        return self.load.throughput_tps

    @property
    def completion_rate(self) -> float:
        return self.load.completion_rate

    def summary_lines(self) -> list[str]:
        lines = [
            f"seed {self.seed}, fault rate {self.fault_rate:.1%}: "
            f"{self.injected_total} fault(s) injected",
            f"goodput {self.goodput_tps:.1f} tx/s, completion rate "
            f"{self.completion_rate:.1%} ({self.load.completed} ok / "
            f"{self.load.failed} failed / {self.load.rejected} shed)",
            f"recovered {self.recovered} bundle(s), "
            f"{self.failed_over} via failover",
        ]
        for kind in sorted(self.injected_by_kind):
            lines.append(f"  injected[{kind}]: {self.injected_by_kind[kind]}")
        lines.extend(f"  {line}" for line in self.load.summary_lines())
        return lines


def _connect_tenant(client: PreExecutionClient, service, device):
    """Attest one device, retrying past injected attestation failures."""
    retries = 0
    for attempt in range(_CONNECT_ATTEMPTS):
        try:
            return client.connect(service, device), retries
        except AttestationError:
            if attempt == _CONNECT_ATTEMPTS - 1:
                raise
            retries += 1
    raise AssertionError("unreachable")


def run_chaos(config: ChaosConfig, evalset) -> ChaosReport:
    """One seeded chaos run over ``evalset``'s node and transactions."""
    service = HarDTAPEService(
        evalset.node,
        SecurityFeatures.from_level(config.security_level),
        device_count=config.device_count,
        device_config=DeviceConfig(
            hevm_count=config.hevms_per_device,
            oram_response_budget_us=config.oram_response_budget_us,
            **(
                {"crypto_backend": config.crypto_backend}
                if config.crypto_backend is not None
                else {}
            ),
        ),
        charge_fees=False,
    )
    metrics = MetricsRegistry()
    plan = config.build_plan()
    if config.armed:
        FaultInjector(plan, metrics).arm_service(service)

    # Each tenant attests a session on *every* device so bundles can
    # fail over; its home device spreads round-robin over the fleet.
    sessions: list[LoadSession] = []
    transactions = evalset.transactions
    attestation_retries = 0
    for tenant in range(config.tenants):
        client = PreExecutionClient(
            service.manufacturer.root_public_key,
            rng_seed=bytes([tenant + 1]) * 32,
        )
        by_device = {}
        for index, device in enumerate(service.devices):
            by_device[index], retries = _connect_tenant(client, service, device)
            attestation_retries += retries
        home = tenant % config.device_count

        def make_payload(ordinal: int, offset: int = tenant, devices=by_device):
            tx = transactions[(offset + ordinal) % len(transactions)]
            bundle = TransactionBundle(
                transactions=(tx,), block_number=service.synced_height
            )
            return FailoverBundle(devices, encode_bundle(bundle))

        sessions.append(
            LoadSession(
                session_id=by_device[home].session_id,
                make_payload=make_payload,
                device_index=home,
            )
        )

    executor = ResilientServiceExecutor(
        service,
        retry=RetryPolicy(
            max_attempts=config.max_attempts, backoff_us=config.backoff_us
        ),
        metrics=metrics,
        failure_threshold=config.breaker_threshold,
        breaker_reset_us=config.breaker_reset_us,
    )
    gateway = Gateway(executor, GatewayConfig(), metrics=metrics)
    load = run_closed_loop(
        gateway, sessions, requests_per_session=config.requests_per_tenant
    )

    injected_by_kind: dict[str, int] = {}
    for record in plan.log:
        injected_by_kind[record.kind] = injected_by_kind.get(record.kind, 0) + 1
    completions = [
        request
        for request in load.outcomes
        if request.failure is None and request.recovery is not None
    ]
    recovered = sum(1 for r in completions if r.recovery.recovered)
    failed_over = sum(1 for r in completions if r.recovery.failover is not None)
    return ChaosReport(
        seed=config.seed,
        fault_rate=config.fault_rate,
        load=load,
        injected_by_kind=injected_by_kind,
        recovered=recovered,
        failed_over=failed_over,
        attestation_retries=attestation_retries,
        metrics=metrics.snapshot(),
    )


def run_escalation(
    rates: list[float], evalset, seed: int = 1, **config_kwargs
) -> list[ChaosReport]:
    """One chaos run per fault rate, same seed: the degradation curve."""
    return [
        run_chaos(
            ChaosConfig(seed=seed, fault_rate=rate, **config_kwargs), evalset
        )
        for rate in rates
    ]


__all__ = [
    "SERVING_FAULT_KINDS",
    "ChaosConfig",
    "ChaosReport",
    "run_chaos",
    "run_escalation",
]
