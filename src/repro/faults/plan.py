"""Deterministic fault plans: *what* can fail, *when*, and *how often*.

A :class:`FaultPlan` is the single source of nondeterminism for a chaos
run.  It owns one seeded :class:`~repro.crypto.kdf.Drbg` **per fault
kind** (forked from the plan seed by kind label), so whether the Nth
decision of one kind fires depends only on ``(seed, kind, N)`` — never
on how decision points of *other* kinds interleave with it.  That makes
every injection reproducible from ``(seed, plan)`` alone, which is the
bar the chaos benchmarks assert bit-for-bit.

No wall clock anywhere: schedules are windows in **virtual** µs
(:class:`~repro.hardware.timing.SimClock` time), and "random" is the
HMAC-DRBG.  Two runs with the same seed and plan inject the same faults
at the same decision points, full stop.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.crypto.kdf import Drbg


def _derive_all(cls):
    """Set ``cls.ALL`` to every upper-case string attribute, in
    definition order.  Keeping the tuple derived (rather than
    hand-maintained) guarantees a newly declared kind is provisioned a
    DRBG fork and fire/decision counters — it cannot silently drift out
    of the plan's maps.  Drbg forks are label-keyed, so appending kinds
    never shifts the streams of existing ones."""
    cls.ALL = tuple(
        value
        for name, value in vars(cls).items()
        if name.isupper() and name != "ALL" and isinstance(value, str)
    )
    return cls


@_derive_all
class FaultKind:
    """String identities of every injectable fault (stable metric names)."""

    DMA_DROP = "dma-drop"                  # channel message lost on the wire
    DMA_DUPLICATE = "dma-duplicate"        # channel message delivered twice
    DMA_CORRUPT = "dma-corrupt"            # channel ciphertext bit-flipped
    ORAM_TAG_CORRUPT = "oram-tag-corrupt"  # AES-GCM tag corrupted in storage
    ORAM_STALL = "oram-stall"              # ORAM server answers late
    HEVM_CRASH = "hevm-crash"              # core dies mid-bundle
    ATTESTATION_FAIL = "attestation-fail"  # report tampered before the user
    SYNC_STALE_HEADER = "sync-stale-header"  # Node serves a forked root
    HYPERVISOR_CRASH = "hypervisor-crash"  # whole Hypervisor cold-restarts
    # Byzantine kinds: the device is not failing, it is *lying*.
    HEVM_RESULT_TAMPER = "hevm-result-tamper"  # execution result falsified
    RECEIPT_FORGE = "receipt-forge"        # receipt signed with a bad sig
    RECEIPT_OMIT = "receipt-omit"          # receipt silently withheld
    SYNC_EQUIVOCATE = "sync-equivocate"    # block withheld from ORAM sync

    ALL: tuple[str, ...]  # derived by @_derive_all


@dataclass(frozen=True)
class FaultRule:
    """One armed fault kind: probability per decision point, plus limits.

    ``rate`` is the per-decision-point firing probability.  ``max_fires``
    caps total injections (handy for "crash exactly once" tests);
    ``after_us``/``until_us`` window the rule in virtual time;
    ``stall_us`` parameterizes how long an ``oram-stall`` holds the
    answer.
    """

    kind: str
    rate: float
    max_fires: int | None = None
    after_us: float = 0.0
    until_us: float = math.inf
    stall_us: float = 50_000.0

    def __post_init__(self) -> None:
        if self.kind not in FaultKind.ALL:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {self.rate}")
        if self.max_fires is not None and self.max_fires < 0:
            raise ValueError("max_fires must be non-negative")
        if self.stall_us < 0:
            raise ValueError("stall_us must be non-negative")


@dataclass(frozen=True)
class InjectionRecord:
    """One injected fault, for the audit log every chaos run keeps."""

    index: int
    kind: str
    site: str
    sim_time_us: float
    detail: str = ""


class FaultPlan:
    """Seeded, self-logging decision oracle for the injector.

    ``decide(kind, now_us)`` is called at every decision point (every
    channel message, ORAM path read, transaction start, ...).  It draws
    from the kind's private DRBG stream whenever the kind is armed with
    a nonzero rate — even when the time window or fire cap then vetoes
    the injection — so the stream position stays a pure function of the
    decision count.  Kinds armed at rate 0 (and kinds with no rule) skip
    the draw entirely: a zero-rate plan perturbs *nothing*, which is why
    the zero-rate chaos run reproduces the baseline bit-for-bit.
    """

    def __init__(self, seed: int, rules: list[FaultRule] | None = None) -> None:
        if not 0 <= seed < 2**64:
            raise ValueError("seed must fit in 64 bits")
        self.seed = seed
        self._rules: dict[str, FaultRule] = {}
        for rule in rules or []:
            if rule.kind in self._rules:
                raise ValueError(f"duplicate rule for kind {rule.kind!r}")
            self._rules[rule.kind] = rule
        root = Drbg(seed.to_bytes(8, "big"), personalization=b"fault-plan")
        self._streams = {
            kind: root.fork(b"kind:" + kind.encode()) for kind in FaultKind.ALL
        }
        self._fires: dict[str, int] = {kind: 0 for kind in FaultKind.ALL}
        self._decisions: dict[str, int] = {kind: 0 for kind in FaultKind.ALL}
        self.log: list[InjectionRecord] = []

    @classmethod
    def uniform(
        cls,
        seed: int,
        rate: float,
        kinds: tuple[str, ...] = FaultKind.ALL,
        **rule_kwargs,
    ) -> "FaultPlan":
        """Arm every ``kinds`` entry at the same ``rate``."""
        return cls(seed, [FaultRule(kind, rate, **rule_kwargs) for kind in kinds])

    def rule(self, kind: str) -> FaultRule | None:
        return self._rules.get(kind)

    def fires(self, kind: str) -> int:
        """How many times ``kind`` has fired so far."""
        return self._fires[kind]

    def decisions(self, kind: str) -> int:
        """How many decision points ``kind`` has seen so far."""
        return self._decisions[kind]

    def _uniform01(self, kind: str) -> float:
        raw = int.from_bytes(self._streams[kind].random_bytes(8), "big")
        return raw / 2.0**64

    def decide(self, kind: str, now_us: float) -> bool:
        """Should ``kind`` fire at this decision point?"""
        rule = self._rules.get(kind)
        if rule is None or rule.rate == 0.0:
            return False
        self._decisions[kind] += 1
        draw = self._uniform01(kind)  # always drawn: position == decision count
        if not (rule.after_us <= now_us < rule.until_us):
            return False
        if rule.max_fires is not None and self._fires[kind] >= rule.max_fires:
            return False
        if draw >= rule.rate:
            return False
        self._fires[kind] += 1
        return True

    def record(self, kind: str, site: str, now_us: float, detail: str = "") -> None:
        """Append one injection to the audit log."""
        self.log.append(
            InjectionRecord(len(self.log), kind, site, now_us, detail)
        )

    @property
    def total_injected(self) -> int:
        return len(self.log)


__all__ = ["FaultKind", "FaultPlan", "FaultRule", "InjectionRecord"]
