"""Typed, composable recovery policies over the fault plane's errors.

Three building blocks, each deterministic in virtual time:

* :class:`RetryPolicy` — how many attempts a bundle gets and how long
  (virtual µs, exponential) to back off between them.  Retrying is safe
  by construction: pre-execution runs on a journaled overlay that is
  never committed, a failed channel ``open`` never consumes the nonce,
  and a failed ORAM access leaves the client untouched.
* :class:`CircuitBreaker` — per-device failure counting; a device that
  keeps failing is held *open* for a cool-down window so retries go
  elsewhere instead of hammering a sick component.
* :class:`ResilientServiceExecutor` — the gateway executor that puts
  them together: retry with backoff, circuit-break per device, and
  **fail over** a bundle to another device with an idle HEVM (via the
  service's ``try_pick_device`` routing) when its home device keeps
  failing.  A rescue by failover is recorded as a typed
  :class:`~repro.faults.errors.FailedOverError` outcome in the metrics;
  exhausted recovery surfaces as
  :class:`~repro.faults.errors.BundleFailedError` carrying the virtual
  time the attempts consumed.

Every error the policies recover from is typed (see
:mod:`repro.faults.errors`); anything untyped propagates loudly — an
unexpected exception is a bug, not a fault to absorb.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.crypto.gcm import AuthenticationError
from repro.faults.errors import (
    BundleFailedError,
    ChannelError,
    CircuitOpenError,
    DmaDropError,
    FailedOverError,
    HevmCrashError,
    OramTimeoutError,
    QuarantinedDeviceError,
)
from repro.telemetry.tracer import tracer_for

# The transient, retry-safe failures.  Deliberate-tamper signals that
# retrying cannot fix (SyncError from a forged proof chain,
# AttestationError, UnknownSessionError) are intentionally absent — as
# is the resumption plane's StaleTicketError: a ticket minted before a
# hypervisor restart names secrets that were scrubbed for good, so the
# only correct reaction is a fresh full handshake, never a retry
# (gated in bench_c10k and tests/integration/test_async_resumption.py).
RECOVERABLE_ERRORS: tuple[type[Exception], ...] = (
    ChannelError,          # corrupted/duplicated DMA message (tag/sig/replay)
    DmaDropError,          # DMA message lost in transit
    HevmCrashError,        # core died mid-bundle; scrubbed and released
    OramTimeoutError,      # storage server stalled past the budget
    AuthenticationError,   # one tampered AEAD blob (transient read corruption)
)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff in virtual time."""

    max_attempts: int = 3
    backoff_us: float = 200.0
    multiplier: float = 2.0
    recoverable: tuple[type[Exception], ...] = RECOVERABLE_ERRORS

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("need at least one attempt")
        if self.backoff_us < 0 or self.multiplier < 1.0:
            raise ValueError("backoff must be non-negative, multiplier >= 1")

    def is_recoverable(self, error: Exception) -> bool:
        return isinstance(error, self.recoverable)

    def backoff_for(self, failures: int) -> float:
        """Backoff after the ``failures``-th failure (1-based)."""
        return self.backoff_us * self.multiplier ** (failures - 1)


class CircuitBreaker:
    """Count failures per target; hold the target open past a threshold.

    Closed → open after ``failure_threshold`` consecutive failures; open
    rejects with :class:`CircuitOpenError` until the cool-down window of
    virtual time passes, then one trial call is let through (half-open):
    success closes the breaker *and* resets the window to its base;
    a failed trial re-opens it with a **doubled** window (capped at
    ``max_reset_us``), so a persistently sick device backs off
    geometrically instead of getting probed at a fixed cadence.
    """

    def __init__(
        self,
        target: str,
        failure_threshold: int = 5,
        reset_after_us: float = 1_000_000.0,
        max_reset_us: float | None = None,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("need failure_threshold >= 1")
        self.target = target
        self.failure_threshold = failure_threshold
        self.reset_after_us = reset_after_us
        self.max_reset_us = (
            max_reset_us if max_reset_us is not None else reset_after_us * 8.0
        )
        if self.max_reset_us < reset_after_us:
            raise ValueError("max_reset_us must be >= reset_after_us")
        self._current_reset_us = reset_after_us
        self._consecutive_failures = 0
        self._open_until_us: float | None = None
        self._half_open = False

    @property
    def is_open(self) -> bool:
        return self._open_until_us is not None

    @property
    def current_reset_us(self) -> float:
        """The cool-down the *next* open (or re-open) will use."""
        return self._current_reset_us

    def allow(self, now_us: float) -> None:
        """Raise :class:`CircuitOpenError` while the cool-down holds."""
        if self._open_until_us is None:
            return
        if now_us < self._open_until_us:
            raise CircuitOpenError(self.target, self._open_until_us)
        # Window elapsed: this call is the half-open trial.
        self._half_open = True

    def record_success(self) -> None:
        self._consecutive_failures = 0
        self._open_until_us = None
        self._half_open = False
        self._current_reset_us = self.reset_after_us

    def force_open(self, until_us: float = math.inf) -> None:
        """Open the breaker by decree, bypassing the failure count.

        The quarantine policy's lever: an audit verdict is proof of a
        lying device, so the breaker opens immediately and — by default —
        indefinitely; only an explicit quarantine release closes it.
        """
        self._half_open = False
        self._open_until_us = until_us

    def record_failure(self, now_us: float) -> None:
        if self._half_open:
            # The trial call failed: re-open immediately with a doubled
            # (capped) window — don't wait for the threshold again.
            self._half_open = False
            self._current_reset_us = min(
                self._current_reset_us * 2.0, self.max_reset_us
            )
            self._open_until_us = now_us + self._current_reset_us
            return
        self._consecutive_failures += 1
        if self._consecutive_failures >= self.failure_threshold:
            self._open_until_us = now_us + self._current_reset_us


@dataclass
class RecoveryOutcome:
    """What recovery did for one bundle (attached to the gateway request)."""

    attempts: int = 0
    retries: int = 0
    backoff_us: float = 0.0
    recovered_errors: list[str] = field(default_factory=list)
    failover: FailedOverError | None = None

    @property
    def recovered(self) -> bool:
        """Did this bundle need (and survive) any recovery at all?"""
        return bool(self.recovered_errors)


class FailoverBundle:
    """A payload a tenant can run on any device it holds a session on.

    Gateway payloads are normally bound to one session/device; failover
    needs the *bundle* to be re-sealable for another device's channel.
    A tenant that attested sessions on several devices wraps them here;
    ``seal_for`` seals the encoded bundle late (at attempt time) so the
    per-channel nonces stay strictly increasing across retries.
    """

    def __init__(self, sessions: dict[int, object], encoded_bundle: bytes) -> None:
        if not sessions:
            raise ValueError("need at least one device session")
        self._sessions = dict(sessions)
        self._encoded = encoded_bundle

    @property
    def device_indices(self) -> tuple[int, ...]:
        return tuple(sorted(self._sessions))

    def session_for(self, device_index: int) -> bytes:
        return self._sessions[device_index].session_id

    def seal_for(self, device_index: int):
        session = self._sessions[device_index]
        if session.device.hypervisor.features.encryption:
            return session.channel.seal(self._encoded)
        return self._encoded

    def open_with(self, device_index: int, sealed_out):
        """Open a trace report produced by ``device_index``'s channel."""
        session = self._sessions[device_index]
        if session.device.hypervisor.features.encryption:
            return session.channel.open(sealed_out)
        return sealed_out


class QuarantinePolicy:
    """Trust-but-verify enforcement: isolate provably lying devices.

    A failed receipt audit is not a transient fault — it is evidence.
    The policy's response, in order: **quarantine** the device (set
    membership, metrics, indefinite ``force_open`` on every bound
    executor's breaker, flight-recorder seal), **repair** shared trust
    state if the lie was an equivocated sync (full update replay via
    ``service.repair_sync``), and **heal** the victim bundle by
    re-executing it on a healthy device the tenant holds a session on.
    The serving planes keep running degraded: quarantined devices'
    slots are skipped and overflow sheds with a typed
    ``quarantined-capacity`` reason instead of queueing forever.

    Deterministic and metrics-only on the happy path: a bound policy
    with nothing quarantined touches neither clock nor randomness, so
    clean runs stay byte-identical.
    """

    def __init__(self, service, metrics=None, flight=None) -> None:
        self.service = service
        self._metrics = metrics
        self._flight = flight
        self.quarantined: set[int] = set()
        self._executors: list = []
        self.quarantines = 0
        self.releases = 0
        self.heals = 0
        self.resyncs = 0

    # -- wiring ---------------------------------------------------------

    def bind(self, executor) -> "QuarantinePolicy":
        """Attach to an executor: its breakers become our enforcement."""
        executor.quarantine = self
        self._executors.append(executor)
        return self

    # -- predicates -----------------------------------------------------

    def is_quarantined(self, device_index: int) -> bool:
        return device_index in self.quarantined

    @property
    def any_quarantined(self) -> bool:
        return bool(self.quarantined)

    def healthy_indices(self) -> list[int]:
        return [
            index
            for index in range(len(self.service.devices))
            if index not in self.quarantined
        ]

    # -- state transitions ----------------------------------------------

    def _set_gauge(self) -> None:
        if self._metrics is not None:
            self._metrics.gauge("quarantine.devices").set(
                len(self.quarantined)
            )

    def quarantine(
        self, device_index: int, cause: Exception, *, session_id=None
    ) -> bool:
        """Isolate ``device_index``; returns False if already isolated."""
        if device_index in self.quarantined:
            return False
        now_us = self.service.clock.now_us
        self.quarantined.add(device_index)
        self.quarantines += 1
        cause_name = type(cause).__name__
        if self._metrics is not None:
            self._metrics.counter("quarantine.quarantined").inc()
            self._metrics.counter(
                "quarantine.quarantined",
                device=str(device_index),
                cause=cause_name,
            ).inc()
        self._set_gauge()
        for executor in self._executors:
            executor.breakers[device_index].force_open()
        if self._flight is not None and session_id is not None:
            self._flight.note(
                session_id, "event", "quarantine.quarantined", now_us,
                device=device_index, cause=cause_name,
            )
            self._flight.seal_if_triggered(
                session_id, cause_name, str(cause), now_us
            )
        return True

    def release(self, device_index: int) -> bool:
        """Re-admit a repaired device (operator action, not automatic)."""
        if device_index not in self.quarantined:
            return False
        self.quarantined.discard(device_index)
        self.releases += 1
        if self._metrics is not None:
            self._metrics.counter(
                "quarantine.released", device=str(device_index)
            ).inc()
        self._set_gauge()
        for executor in self._executors:
            executor.breakers[device_index].record_success()
        return True

    # -- healing --------------------------------------------------------

    def _repair_sync_if_stale(self) -> None:
        """Replay sync history when the shared ORAM missed a block.

        An equivocated sync leaves ``last_verified_root`` behind the
        node's root at the claimed height; any other audit failure
        leaves it current, making the replay a no-op we skip.  The
        ``blocks_synced`` guard avoids a spurious replay on deployments
        that never synced (root is ``None`` until the first
        ``sync_block``).
        """
        service = self.service
        device = service.devices[0]
        if device.oram_backend is None or service.stats.blocks_synced == 0:
            return
        tip_root = service.node.block_at(
            service.synced_height
        ).block.header.state_root
        if device.hypervisor.last_verified_root == tip_root:
            return
        replayed = service.repair_sync()
        self.resyncs += 1
        if self._metrics is not None:
            self._metrics.counter("quarantine.resynced").inc()
            self._metrics.counter(
                "quarantine.resynced_blocks"
            ).inc(replayed)

    def heal(
        self, bundle: FailoverBundle, from_index: int, *, session_id=None
    ):
        """Re-execute an audited-bad bundle on a healthy device.

        Returns ``(target_index, sealed_out)``.  Raises
        :class:`~repro.faults.errors.QuarantinedDeviceError` when no
        healthy session-holding device remains — the caller's signal to
        shed the request rather than serve a tainted result.
        """
        self._repair_sync_if_stale()
        target = None
        for index in bundle.device_indices:
            device = self.service.devices[index]
            if (
                index != from_index
                and index not in self.quarantined
                and device.idle_hevms > 0
            ):
                target = index
                break
        if target is None:
            error = QuarantinedDeviceError(
                from_index, tuple(self.quarantined)
            )
            if self._flight is not None and session_id is not None:
                self._flight.seal_if_triggered(
                    session_id, type(error).__name__, str(error),
                    self.service.clock.now_us,
                )
            raise error
        sealed_out, _, _, _ = self.service.submit_bundle(
            self.service.devices[target],
            bundle.session_for(target),
            bundle.seal_for(target),
        )
        self.heals += 1
        if self._metrics is not None:
            self._metrics.counter("quarantine.healed").inc()
            self._metrics.counter(
                "quarantine.healed",
                from_device=str(from_index),
                to_device=str(target),
            ).inc()
        return target, sealed_out


class ResilientServiceExecutor:
    """A drop-in for :class:`~repro.serving.gateway.ServiceExecutor`
    that retries, circuit-breaks, and fails over.

    On the happy path it is byte-identical to the plain executor: one
    ``submit_bundle`` call, service time measured as the SimClock delta,
    no metrics touched — which is why an armed-but-zero-rate chaos run
    reproduces the baseline bit-for-bit.  Failures consume virtual time
    (the failed attempts plus backoff), so a recovered bundle's service
    time honestly includes its recovery cost.
    """

    def __init__(
        self,
        service,
        retry: RetryPolicy | None = None,
        metrics=None,
        failure_threshold: int = 5,
        breaker_reset_us: float = 1_000_000.0,
        supervisor=None,
    ) -> None:
        self.service = service
        self.retry = retry or RetryPolicy()
        self._metrics = metrics
        # Recovery-plane escalation (``repro.recovery``): when an error
        # is not retryable in place (HypervisorCrashError,
        # RollbackDetectedError), the supervisor may repair the world —
        # cold-restart the Hypervisor, re-sync the ORAM — and report the
        # error as now-retryable.  ``None`` keeps the historical
        # behaviour: unrecoverable errors propagate immediately.
        self._supervisor = supervisor
        self.breakers = {
            index: CircuitBreaker(
                f"device{index}", failure_threshold, breaker_reset_us
            )
            for index in range(len(service.devices))
        }
        self.slots: list[int | None] = []
        for index, device in enumerate(service.devices):
            self.slots.extend([index] * device.config.hevm_count)
        # Set by QuarantinePolicy.bind(); None keeps the historical
        # behaviour (and the byte-identity of unquarantined runs).
        self.quarantine: QuarantinePolicy | None = None

    # -- one attempt ----------------------------------------------------

    def _run_once(self, request, device_index: int):
        payload = request.payload
        if hasattr(payload, "seal_for"):
            session_id = payload.session_for(device_index)
            sealed = payload.seal_for(device_index)
        elif callable(payload):
            session_id, sealed = request.session_id, payload()
        else:
            session_id, sealed = request.session_id, payload
        device = self.service.devices[device_index]
        sealed_out, _, _, _ = self.service.submit_bundle(
            device, session_id, sealed
        )
        return sealed_out

    # -- failover routing -----------------------------------------------

    def _failover_target(self, from_index: int, payload) -> int | None:
        """Another device with an idle HEVM the payload can run on."""
        if not hasattr(payload, "seal_for"):
            return None  # single-session payload: nowhere else to go
        allowed = set(payload.device_indices)
        if self.quarantine is not None:
            allowed -= self.quarantine.quarantined
        picked = self.service.try_pick_device()
        if picked is not None:
            index = self.service.devices.index(picked)
            if index != from_index and index in allowed:
                return index
        for index, device in enumerate(self.service.devices):
            if index != from_index and index in allowed and device.idle_hevms > 0:
                return index
        return None

    # -- the executor protocol ------------------------------------------

    def execute(self, request, start_us: float):
        if request.device_index is None:
            raise ValueError("service-path requests are session/device bound")
        clock = self.service.clock
        tracer = tracer_for(clock)
        # Bridge gateway time onto the device clock for every span the
        # attempts (and backoffs) below record.
        with tracer.shifted(start_us - clock.now_us):
            return self._execute_traced(request, tracer)

    def _execute_traced(self, request, tracer):
        clock = self.service.clock
        attempt_start = clock.now_us
        outcome = RecoveryOutcome()
        current = request.device_index
        last_error: Exception | None = None

        while outcome.attempts < self.retry.max_attempts:
            outcome.attempts += 1
            breaker = self.breakers[current]
            try:
                breaker.allow(clock.now_us)
                result = self._run_once(request, current)
            except CircuitOpenError as error:
                last_error = error  # not a new device failure: no count
            except Exception as error:
                recoverable = self.retry.is_recoverable(error)
                if not recoverable and self._supervisor is not None:
                    recoverable = self._supervisor.intervene(error, current)
                if not recoverable:
                    # Untyped/unrepairable: a bug, not a fault — but the
                    # attempts still consumed virtual slot time, so hand
                    # the accounting to the gateway before propagating.
                    request.recovery = outcome
                    try:
                        error.service_us = clock.now_us - attempt_start
                    except AttributeError:  # pragma: no cover - frozen exc
                        pass
                    raise
                last_error = error
                breaker.record_failure(clock.now_us)
                outcome.recovered_errors.append(type(error).__name__)
                name = type(error).__name__
                if self._metrics is not None:
                    self._metrics.counter("recovery.errors").inc()
                    self._metrics.counter("recovery.errors", error=name).inc()
                active = tracer.active
                if active is not None:
                    # The active span is gateway-domain (shift 0); the
                    # event is timed on the device clock, so pre-shift.
                    active.event(
                        "fault",
                        clock.now_us + tracer.shift_us,
                        error=name,
                        attempt=outcome.attempts,
                        device=current,
                    )
            else:
                breaker.record_success()
                request.recovery = outcome
                if outcome.recovered and self._metrics is not None:
                    self._metrics.counter("recovery.recovered").inc()
                return clock.now_us - attempt_start, result

            if outcome.attempts >= self.retry.max_attempts:
                break
            backoff = self.retry.backoff_for(outcome.attempts)
            tracer.record(
                "recovery.backoff", "recovery", backoff, attempt=outcome.attempts
            )
            clock.advance_us(backoff)
            outcome.backoff_us += backoff
            outcome.retries += 1
            if self._metrics is not None:
                self._metrics.counter("recovery.retries").inc()
            target = self._failover_target(current, request.payload)
            if target is not None:
                assert last_error is not None
                outcome.failover = FailedOverError(current, target, last_error)
                if self._metrics is not None:
                    self._metrics.counter("gateway.failover").inc()
                    self._metrics.counter(
                        "faults.outcome", outcome="FailedOverError"
                    ).inc()
                active = tracer.active
                if active is not None:
                    active.event(
                        "failover",
                        clock.now_us + tracer.shift_us,
                        from_device=current,
                        to_device=target,
                    )
                current = target

        assert last_error is not None
        request.recovery = outcome
        raise BundleFailedError(
            outcome.attempts, last_error, clock.now_us - attempt_start
        )


__all__ = [
    "RECOVERABLE_ERRORS",
    "CircuitBreaker",
    "FailoverBundle",
    "QuarantinePolicy",
    "RecoveryOutcome",
    "ResilientServiceExecutor",
    "RetryPolicy",
]
