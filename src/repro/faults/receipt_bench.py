"""The receipt-audit benchmark (``receipt-bench``): four seeded gates.

1. **Byzantine detection + healing** — for each per-bundle Byzantine
   fault kind (``hevm-result-tamper``, ``receipt-forge``,
   ``receipt-omit``) a two-device fleet runs with receipts on and
   device 0 armed as the cheater at rate 1.0.  Every injected lie must
   surface as the expected typed error
   (:class:`~repro.hypervisor.receipts.ReceiptMismatchError` /
   :class:`~repro.hypervisor.receipts.ReceiptMissingError`), quarantine
   the cheater, and heal the victim bundle on the honest device to the
   exact ground-truth result — with the healer's own receipt auditing
   clean.  Detection is counted against the plan's injection log:
   100%, no misses.
2. **Equivocated sync** — device 0 withholds a block from the shared
   ORAM while the synced height advances.  A transaction whose control
   flow depends on the withheld block (an ERC-20 transfer funded only
   by that block) exposes the stale world as a commitment mismatch; the
   quarantine policy must replay the sync history
   (``service.repair_sync``) and heal to the clean twin's world digest.
3. **Identity** — a seeded closed-loop serving run with receipts *on*
   must be byte-identical (trace, metrics, wire, world digest) to the
   same run with receipts *off*; the on-run must actually have produced
   receipts (vacuity guard) and a zero-rate armed twin of every
   Byzantine scenario must audit with zero false positives.
4. **Sublinearity** — the verifier-side audit cost
   (:meth:`~repro.hypervisor.receipts.ReceiptAuditor.spot_check` hash
   operations) must grow far slower than trace length: for each 8×
   length step the cost may grow by at most 4× (measured growth is
   logarithmic, ~1.3×).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

from repro.core.device import DeviceConfig
from repro.core.service import HarDTAPEService
from repro.core.user import PreExecutionClient
from repro.evm.executor import execute_transaction
from repro.evm.tracer import StructTracer
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultKind, FaultPlan, FaultRule
from repro.faults.policy import FailoverBundle, QuarantinePolicy
from repro.hypervisor.bundle_codec import (
    TransactionBundle,
    decode_trace_report,
    encode_bundle,
)
from repro.hypervisor.hypervisor import SecurityFeatures
from repro.hypervisor.receipts import (
    ReceiptAuditor,
    ReceiptMismatchError,
    ReceiptMissingError,
)
from repro.node import EthereumNode
from repro.recovery.bench import wire_hash, world_digest
from repro.serving.gateway import Gateway, GatewayConfig, ServiceExecutor
from repro.serving.loadgen import LoadSession, run_closed_loop
from repro.serving.metrics import MetricsRegistry
from repro.state import Account, Transaction, to_address
from repro.state.journal import JournaledState
from repro.telemetry.exporters import render_chrome_trace
from repro.telemetry.flight import FlightRecorder
from repro.telemetry.tracer import install_tracer, uninstall_tracer
from repro.telemetry.unified import (
    StepTraceRecord,
    UnifiedStepTrace,
    from_struct_logs,
    group_for_op,
)
from repro.workloads.contracts import erc20
from repro.workloads.generator import EvaluationSetConfig, build_evaluation_set

# The lies (as opposed to failures) the fault plane can inject: the
# device misreports instead of crashing.  Every one must be caught by
# the receipt audit, never by a timeout or a tag check.
BYZANTINE_FAULT_KINDS = (
    FaultKind.HEVM_RESULT_TAMPER,
    FaultKind.RECEIPT_FORGE,
    FaultKind.RECEIPT_OMIT,
    FaultKind.SYNC_EQUIVOCATE,
)

# The first typed check each kind must trip in the auditor.
_EXPECTED_FIELD = {
    FaultKind.HEVM_RESULT_TAMPER: "commitment",
    FaultKind.RECEIPT_FORGE: "signature",
    FaultKind.RECEIPT_OMIT: "missing",
    FaultKind.SYNC_EQUIVOCATE: "commitment",
}


@dataclass
class ReceiptBenchConfig:
    """One receipt-bench invocation."""

    seed: int = 1
    device_count: int = 2
    hevms_per_device: int = 2
    blocks: int = 1
    txs_per_block: int = 4
    cheat_rounds: int = 3          # bundles the cheater lies about, per kind
    samples_per_tx: int = 2        # step openings the auditor spot-checks
    # -- identity scenario ---------------------------------------------
    identity_tenants: int = 2
    identity_requests: int = 6     # per tenant, closed loop
    # -- sublinearity scenario -----------------------------------------
    audit_lengths: tuple[int, ...] = (64, 512, 4096)
    audit_samples: int = 8

    @classmethod
    def smoke(cls, seed: int = 1) -> "ReceiptBenchConfig":
        """CI-sized: fewer cheats and requests, same gates."""
        return cls(seed=seed, cheat_rounds=2, identity_requests=4)


def _receipt_features() -> SecurityFeatures:
    features = SecurityFeatures.from_level("full")
    features.receipts = True
    return features


def _ground_truth(service, tx):
    """Offline re-execution on the node's synced state, fees off.

    This is the auditor's trust anchor: the SP/user's own full node
    (``repro.node``) replaying the transaction it asked the device to
    pre-execute.
    """
    state = JournaledState(
        service.node.state_at(service.synced_height).copy()
    )
    struct = StructTracer(capture_stack=False)
    result = execute_transaction(
        state,
        service.pending_chain_context(),
        tx,
        tracer=struct,
        charge_fees=False,
    )
    return result, from_struct_logs(struct.logs)


def _audit_bundle(
    auditor, service, device_index, session, bundle_id, expected_trace
):
    """One spot-check of ``device_index``'s receipt for ``bundle_id``."""
    hypervisor = service.devices[device_index].hypervisor
    return auditor.audit(
        bundle_id,
        hypervisor.receipt_for(bundle_id),
        [expected_trace],
        verify_key=session.peer_public,
        opening=lambda tx_index, step_index: hypervisor.receipt_opening(
            bundle_id, tx_index, step_index
        ),
    )


@dataclass
class _CaseOutcome:
    kind: str
    fires: int = 0
    detections: int = 0
    fields: list[str] = field(default_factory=list)
    heals: int = 0
    heal_results_exact: int = 0
    heal_audits_passed: int = 0
    dumps: int = 0
    audits_failed: int = 0
    resyncs: int = 0
    digest: str = ""

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "fires": self.fires,
            "detections": self.detections,
            "fields": self.fields,
            "heals": self.heals,
            "heal_results_exact": self.heal_results_exact,
            "heal_audits_passed": self.heal_audits_passed,
            "dumps": self.dumps,
            "audits_failed": self.audits_failed,
            "resyncs": self.resyncs,
            "digest": self.digest,
        }


# ----------------------------------------------------------------------
# Gate 1: per-bundle Byzantine kinds (tamper / forge / omit)
# ----------------------------------------------------------------------


def _run_byzantine_case(
    config: ReceiptBenchConfig, kind: str, *, rate: float
) -> _CaseOutcome:
    """Drive ``config.cheat_rounds`` bundles at a cheating device.

    Only device 0 is armed — the modeled adversary is one Byzantine
    device in an otherwise honest fleet — so failover targets stay
    trustworthy.  ``rate=0.0`` is the clean twin: the exact same run
    with the injector armed but never firing (the zero-false-positive
    baseline every faulted case's digest is compared against).
    """
    evalset = build_evaluation_set(
        EvaluationSetConfig(
            blocks=config.blocks, txs_per_block=config.txs_per_block
        )
    )
    service = HarDTAPEService(
        evalset.node,
        _receipt_features(),
        device_count=config.device_count,
        device_config=DeviceConfig(hevm_count=config.hevms_per_device),
        charge_fees=False,
    )
    plan = FaultPlan(config.seed, [FaultRule(kind, rate)])
    FaultInjector(plan).arm_device(service.devices[0])
    client = PreExecutionClient(
        service.manufacturer.root_public_key, rng_seed=b"\x01" * 32
    )
    sessions = {
        index: client.connect(service, device)
        for index, device in enumerate(service.devices)
    }
    flight = FlightRecorder(32)
    quarantine = QuarantinePolicy(
        service, metrics=MetricsRegistry(), flight=flight
    )
    auditor = ReceiptAuditor(
        samples_per_tx=config.samples_per_tx, seed=config.seed
    )
    outcome = _CaseOutcome(kind=kind)

    # Mid-run chain growth so the final world digest is non-trivial.
    evalset.node.add_block([evalset.transactions[-1]])
    service.sync_new_blocks()

    for round_no in range(config.cheat_rounds):
        tx = evalset.transactions[round_no % len(evalset.transactions)]
        bundle = TransactionBundle(
            transactions=(tx,), block_number=service.synced_height
        )
        bundle_id = bundle.bundle_id()
        failover = FailoverBundle(sessions, encode_bundle(bundle))
        service.submit_bundle(
            service.devices[0], failover.session_for(0), failover.seal_for(0)
        )
        expected_result, expected_trace = _ground_truth(service, tx)
        try:
            _audit_bundle(
                auditor, service, 0, sessions[0], bundle_id, expected_trace
            )
        except (ReceiptMismatchError, ReceiptMissingError) as error:
            outcome.detections += 1
            outcome.fields.append(
                error.field
                if isinstance(error, ReceiptMismatchError)
                else "missing"
            )
            quarantine.quarantine(
                0, error, session_id=sessions[0].session_id
            )
            target, sealed_out = quarantine.heal(
                failover, 0, session_id=sessions[0].session_id
            )
            outcome.heals += 1
            report = decode_trace_report(
                failover.open_with(target, sealed_out)
            )
            healed = report.traces[0]
            if (
                healed.status == expected_result.status
                and healed.gas_used == expected_result.gas_used
            ):
                outcome.heal_results_exact += 1
            _audit_bundle(
                auditor, service, target, sessions[target], bundle_id,
                expected_trace,
            )
            outcome.heal_audits_passed += 1
            quarantine.release(0)

    outcome.fires = sum(1 for record in plan.log if record.kind == kind)
    outcome.dumps = len(flight.dumps)
    outcome.audits_failed = auditor.audits_failed
    outcome.resyncs = quarantine.resyncs
    outcome.digest = world_digest(service)
    return outcome


# ----------------------------------------------------------------------
# Gate 2: equivocated sync (the withheld-block lie)
# ----------------------------------------------------------------------


def _run_equivocate_case(
    config: ReceiptBenchConfig, *, rate: float
) -> _CaseOutcome:
    """A lie about the *world*, not about one bundle.

    The cheating device withholds a block from the shared ORAM while
    its synced height advances.  The audited transaction is an ERC-20
    transfer whose sender is funded only by the withheld block: on the
    stale world the balance guard jumps to the revert path, so the step
    trace — op and gas sequence, which the commitment covers — diverges
    from ground truth even though step traces never commit stack
    values.
    """
    alice, bob, poor = to_address(0xA1), to_address(0xB2), to_address(0xC3)
    token = to_address(0x70CE)
    node = EthereumNode(genesis_accounts={
        alice: Account(balance=10**20),
        token: Account(
            code=erc20.erc20_runtime(),
            storage={erc20.balance_slot(alice): 10**6},
        ),
    })
    node.add_block([])
    service = HarDTAPEService(
        node,
        _receipt_features(),
        device_count=config.device_count,
        device_config=DeviceConfig(hevm_count=config.hevms_per_device),
        charge_fees=False,
    )
    plan = FaultPlan(
        config.seed, [FaultRule(FaultKind.SYNC_EQUIVOCATE, rate)]
    )
    FaultInjector(plan).arm_device(service.devices[0])
    client = PreExecutionClient(
        service.manufacturer.root_public_key, rng_seed=b"\x02" * 32
    )
    sessions = {
        index: client.connect(service, device)
        for index, device in enumerate(service.devices)
    }
    flight = FlightRecorder(32)
    quarantine = QuarantinePolicy(
        service, metrics=MetricsRegistry(), flight=flight
    )
    auditor = ReceiptAuditor(
        samples_per_tx=config.samples_per_tx, seed=config.seed
    )
    outcome = _CaseOutcome(kind=FaultKind.SYNC_EQUIVOCATE)

    def pre_execute_and_audit(tx) -> tuple:
        bundle = TransactionBundle(
            transactions=(tx,), block_number=service.synced_height
        )
        failover = FailoverBundle(sessions, encode_bundle(bundle))
        service.submit_bundle(
            service.devices[0], failover.session_for(0), failover.seal_for(0)
        )
        expected_result, expected_trace = _ground_truth(service, tx)
        return bundle.bundle_id(), failover, expected_result, expected_trace

    # Pre-lie bundle: must audit clean (in-run false-positive guard).
    bundle_id, _, _, trace = pre_execute_and_audit(
        Transaction(
            sender=alice, to=token, data=erc20.transfer_calldata(bob, 42)
        )
    )
    _audit_bundle(auditor, service, 0, sessions[0], bundle_id, trace)

    # The withheld block: it alone funds ``poor``.
    node.add_block([
        Transaction(
            sender=alice, to=token,
            data=erc20.transfer_calldata(poor, 1_000),
        )
    ])
    service.sync_new_blocks()

    # The detection bundle: poor's transfer succeeds on the fresh world,
    # reverts on the stale one.
    bundle_id, failover, expected_result, trace = pre_execute_and_audit(
        Transaction(
            sender=poor, to=token, data=erc20.transfer_calldata(bob, 5)
        )
    )
    try:
        _audit_bundle(auditor, service, 0, sessions[0], bundle_id, trace)
    except ReceiptMismatchError as error:
        outcome.detections += 1
        outcome.fields.append(error.field)
        quarantine.quarantine(0, error, session_id=sessions[0].session_id)
        target, sealed_out = quarantine.heal(
            failover, 0, session_id=sessions[0].session_id
        )
        outcome.heals += 1
        healed = decode_trace_report(
            failover.open_with(target, sealed_out)
        ).traces[0]
        if (
            healed.status == expected_result.status
            and healed.gas_used == expected_result.gas_used
        ):
            outcome.heal_results_exact += 1
        _audit_bundle(
            auditor, service, target, sessions[target], bundle_id, trace
        )
        outcome.heal_audits_passed += 1

    outcome.fires = sum(
        1 for record in plan.log
        if record.kind == FaultKind.SYNC_EQUIVOCATE
    )
    outcome.dumps = len(flight.dumps)
    outcome.audits_failed = auditor.audits_failed
    outcome.resyncs = quarantine.resyncs
    outcome.digest = world_digest(service)
    return outcome


# ----------------------------------------------------------------------
# Gate 3: receipts on == receipts off (frontend bytes)
# ----------------------------------------------------------------------


def _identity_run(config: ReceiptBenchConfig, *, receipts: bool) -> dict:
    """One seeded closed-loop serving run, receipts on or off."""
    evalset = build_evaluation_set(
        EvaluationSetConfig(
            blocks=config.blocks, txs_per_block=config.txs_per_block
        )
    )
    features = SecurityFeatures.from_level("full")
    features.receipts = receipts
    service = HarDTAPEService(
        evalset.node,
        features,
        device_count=config.device_count,
        device_config=DeviceConfig(hevm_count=config.hevms_per_device),
        charge_fees=False,
    )
    metrics = MetricsRegistry()
    tracer = install_tracer(service.clock)
    try:
        gateway = Gateway(
            ServiceExecutor(service), GatewayConfig(),
            metrics=metrics, tracer=tracer,
        )
        sessions: list[LoadSession] = []
        transactions = evalset.transactions
        for tenant in range(config.identity_tenants):
            client = PreExecutionClient(
                service.manufacturer.root_public_key,
                rng_seed=bytes([tenant + 1]) * 32,
            )
            home = tenant % config.device_count
            user = client.connect(service, service.devices[home])

            def make_payload(ordinal: int, offset: int = tenant, user=user):
                tx = transactions[(offset + ordinal) % len(transactions)]
                bundle = TransactionBundle(
                    transactions=(tx,), block_number=service.synced_height
                )
                encoded = encode_bundle(bundle)
                return lambda: user.channel.seal(encoded)

            sessions.append(
                LoadSession(
                    session_id=user.session_id,
                    make_payload=make_payload,
                    device_index=home,
                )
            )
        load = run_closed_loop(
            gateway, sessions, requests_per_session=config.identity_requests
        )
        trace_json = render_chrome_trace(tracer)
    finally:
        uninstall_tracer(service.clock)
    return {
        "trace": hashlib.sha256(trace_json.encode()).hexdigest(),
        "metrics": hashlib.sha256(
            json.dumps(metrics.snapshot(), sort_keys=True).encode()
        ).hexdigest(),
        "wire": wire_hash([load]),
        "digest": world_digest(service),
        "completed": load.completed,
        "receipts_stored": sum(
            len(device.hypervisor._receipts) for device in service.devices
        ),
    }


# ----------------------------------------------------------------------
# Gate 4: audit cost sublinear in trace length
# ----------------------------------------------------------------------

_SCALING_OPS = ("ADD", "MUL", "PUSH1", "MLOAD", "SSTORE")


def _synthetic_trace(length: int) -> UnifiedStepTrace:
    return UnifiedStepTrace(records=tuple(
        StepTraceRecord(
            index=index,
            depth=1,
            pc=index * 2,
            op=_SCALING_OPS[index % len(_SCALING_OPS)],
            group=group_for_op(_SCALING_OPS[index % len(_SCALING_OPS)]),
            gas=1_000_000 - index,
        )
        for index in range(length)
    ))


def _audit_scaling(config: ReceiptBenchConfig) -> list[dict]:
    auditor = ReceiptAuditor(
        samples_per_tx=config.samples_per_tx, seed=config.seed
    )
    rows = []
    for length in config.audit_lengths:
        trace = _synthetic_trace(length)
        checked, hash_ops = auditor.spot_check(
            trace, trace.commitment(), config.audit_samples
        )
        rows.append(
            {"length": length, "checked": checked, "hash_ops": hash_ops}
        )
    return rows


# ----------------------------------------------------------------------
# Report and gates
# ----------------------------------------------------------------------


@dataclass
class ReceiptBenchReport:
    seed: int
    byzantine: list[dict]
    identity: dict
    scaling: list[dict]
    gate_failures: list[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.gate_failures

    def to_json(self) -> str:
        return json.dumps(
            {
                "bench": "receipt",
                "seed": self.seed,
                "byzantine": self.byzantine,
                "identity": self.identity,
                "scaling": self.scaling,
                "gate_failures": self.gate_failures,
                "passed": self.passed,
            },
            indent=2,
            sort_keys=True,
        )

    def summary_lines(self) -> list[str]:
        lines = []
        for case in self.byzantine:
            lines.append(
                f"byzantine[{case['kind']}]: {case['detections']}/"
                f"{case['fires']} lies detected"
                f" ({', '.join(sorted(set(case['fields']))) or 'none'}), "
                f"{case['heals']} healed, "
                f"{case['heal_results_exact']} exact, "
                f"{case['dumps']} flight dumps"
                + (f", {case['resyncs']} resync(s)"
                   if case["resyncs"] else "")
            )
        lines.append(
            "identity (receipts on vs off): "
            + (
                "byte-identical"
                if all(self.identity["equal"].values())
                else "DIVERGED " + str(sorted(
                    name for name, ok in self.identity["equal"].items()
                    if not ok
                ))
            )
            + f" ({self.identity['receipts_stored']} receipts signed)"
        )
        lines.append(
            "audit cost: "
            + ", ".join(
                f"{row['length']} steps -> {row['hash_ops']} hashes"
                for row in self.scaling
            )
            + " (sublinear)"
        )
        if self.gate_failures:
            lines.append("gate failures:")
            lines.extend(f"  - {failure}" for failure in self.gate_failures)
        else:
            lines.append("all gates passed")
        return lines


def run_receipt_bench(config: ReceiptBenchConfig) -> ReceiptBenchReport:
    failures: list[str] = []

    # 1 + 2. Byzantine cases, each against a zero-rate clean twin.
    per_bundle_kinds = (
        FaultKind.HEVM_RESULT_TAMPER,
        FaultKind.RECEIPT_FORGE,
        FaultKind.RECEIPT_OMIT,
    )
    cases: list[_CaseOutcome] = [
        _run_byzantine_case(config, kind, rate=1.0)
        for kind in per_bundle_kinds
    ]
    twin = _run_byzantine_case(
        config, FaultKind.HEVM_RESULT_TAMPER, rate=0.0
    )
    cases.append(_run_equivocate_case(config, rate=1.0))
    equivocate_twin = _run_equivocate_case(config, rate=0.0)

    for case in cases:
        kind = case.kind
        if case.fires < 1:
            failures.append(f"byzantine[{kind}]: the plan never fired")
        if case.detections != case.fires:
            failures.append(
                f"byzantine[{kind}]: {case.detections} detections for "
                f"{case.fires} injected lies — every lie must be caught"
            )
        expected_field = _EXPECTED_FIELD[kind]
        if any(field_ != expected_field for field_ in case.fields):
            failures.append(
                f"byzantine[{kind}]: detected as {sorted(set(case.fields))}, "
                f"expected the {expected_field} check"
            )
        if case.heal_results_exact != case.detections:
            failures.append(
                f"byzantine[{kind}]: {case.heal_results_exact} of "
                f"{case.detections} healed bundles matched ground truth"
            )
        if case.heal_audits_passed != case.detections:
            failures.append(
                f"byzantine[{kind}]: the healing device's receipt failed "
                f"its own audit"
            )
        if case.dumps != case.detections:
            failures.append(
                f"byzantine[{kind}]: {case.dumps} flight dumps sealed for "
                f"{case.detections} quarantines"
            )
        clean_digest = (
            equivocate_twin.digest
            if kind == FaultKind.SYNC_EQUIVOCATE
            else twin.digest
        )
        if case.digest != clean_digest:
            failures.append(
                f"byzantine[{kind}]: post-heal world digest diverges from "
                f"the clean twin"
            )
    equivocate = cases[-1]
    if equivocate.resyncs != 1:
        failures.append(
            f"byzantine[{FaultKind.SYNC_EQUIVOCATE}]: {equivocate.resyncs} "
            f"sync replays, expected exactly 1"
        )
    for name, twin_case in (("per-bundle", twin),
                            ("equivocate", equivocate_twin)):
        if twin_case.fires or twin_case.detections:
            failures.append(
                f"clean twin ({name}): fired {twin_case.fires}, detected "
                f"{twin_case.detections} — zero-rate plans must be inert"
            )
        if twin_case.audits_failed:
            failures.append(
                f"clean twin ({name}): {twin_case.audits_failed} false "
                f"positives on an honest fleet"
            )

    # 3. Identity: receipts on vs off.
    off = _identity_run(config, receipts=False)
    on = _identity_run(config, receipts=True)
    equal = {
        name: off[name] == on[name]
        for name in ("trace", "metrics", "wire", "digest")
    }
    for name, ok in equal.items():
        if not ok:
            failures.append(
                f"identity: enabling receipts changed the {name} bytes of "
                f"a seeded run"
            )
    if on["receipts_stored"] == 0:
        failures.append(
            "identity: receipts-on run signed no receipts (vacuous gate)"
        )
    if off["receipts_stored"] != 0:
        failures.append(
            "identity: receipts-off run still signed receipts"
        )
    identity = {
        "equal": equal,
        "completed": on["completed"],
        "receipts_stored": on["receipts_stored"],
    }

    # 4. Sublinearity.
    scaling = _audit_scaling(config)
    for before, after in zip(scaling, scaling[1:]):
        length_ratio = after["length"] / before["length"]
        cost_ratio = after["hash_ops"] / max(before["hash_ops"], 1)
        if cost_ratio >= length_ratio / 2:
            failures.append(
                f"sublinearity: cost grew {cost_ratio:.2f}x over a "
                f"{length_ratio:.0f}x longer trace "
                f"({before['length']} -> {after['length']} steps)"
            )

    return ReceiptBenchReport(
        seed=config.seed,
        byzantine=[case.to_dict() for case in cases],
        identity=identity,
        scaling=scaling,
        gate_failures=failures,
    )


__all__ = [
    "BYZANTINE_FAULT_KINDS",
    "ReceiptBenchConfig",
    "ReceiptBenchReport",
    "run_receipt_bench",
]
