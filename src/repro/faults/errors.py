"""Typed errors of the fault-injection plane.

Every fault the plane can inject surfaces as a *typed* exception at the
component boundary where the paper's Hypervisor would detect it — never
as a generic crash — so recovery policies can dispatch on the type and
metrics can account for every failure by name.  Detection errors that
already exist in the substrates keep their homes and are re-exported
here for one-stop imports:

* :class:`~repro.hypervisor.channel.ChannelError` — authenticated-DMA
  tag / signature / replay failure on a channel message,
* :class:`~repro.crypto.gcm.AuthenticationError` — AES-GCM tag failure
  on an ORAM bucket or encrypted-store blob,
* :class:`~repro.hypervisor.sync.SyncError` — Merkle proof rejection
  during block sync,
* :class:`~repro.hypervisor.attestation.AttestationError` — report
  verification failure on the user side,
* :class:`~repro.oram.client.OramTimeoutError` /
  :class:`~repro.oram.server.OramServerStall` — the untrusted store
  stalling past (or within) the client's virtual-time budget,
* :class:`~repro.hypervisor.hypervisor.UnknownSessionError` — a bundle
  for a session id the Hypervisor never established,
* :class:`~repro.hypervisor.hypervisor.HypervisorCrashError` — the whole
  Hypervisor cold-restarted, losing volatile trusted state,
* :class:`~repro.oram.client.RollbackDetectedError` — the SP served an
  authentic-but-stale ORAM tree (freshness violation, not corruption).
"""

from __future__ import annotations

from repro.crypto.gcm import AuthenticationError
from repro.hypervisor.attestation import AttestationError
from repro.hypervisor.channel import ChannelError
from repro.hypervisor.hypervisor import HypervisorCrashError, UnknownSessionError
from repro.hypervisor.receipts import (
    ReceiptError,
    ReceiptMismatchError,
    ReceiptMissingError,
)
from repro.hypervisor.sync import SyncError
from repro.oram.client import OramTimeoutError, RollbackDetectedError
from repro.oram.server import OramServerStall


class FaultError(Exception):
    """Base class of errors raised *by* the fault plane itself."""


class DmaDropError(FaultError):
    """An authenticated-DMA message was dropped on the wire.

    The receiver never sees the message; in the synchronous simulation
    the drop surfaces at the submission call site.
    """


class HevmCrashError(FaultError):
    """An HEVM core crashed mid-bundle (workflow steps 4-9).

    The Hypervisor scrubs and releases the core before this propagates,
    so the crashed core returns to the idle pool state-free.
    """

    def __init__(self, core_id: int, txs_completed: int) -> None:
        super().__init__(
            f"HEVM core {core_id} crashed after {txs_completed} transaction(s)"
        )
        self.core_id = core_id
        self.txs_completed = txs_completed


class CircuitOpenError(FaultError):
    """A circuit breaker refused the operation (failing component)."""

    def __init__(self, target: str, until_us: float) -> None:
        super().__init__(f"circuit for {target} open until t={until_us:.0f} µs")
        self.target = target
        self.until_us = until_us


class FailedOverError(FaultError):
    """Typed outcome marker: a bundle completed only after re-dispatch.

    Recorded (by name) in the metrics registry and on the request's
    recovery record whenever gateway-level failover rescued a bundle
    from a faulted HEVM/device; raised as the terminal error when even
    the failover target could not complete the bundle.
    """

    def __init__(self, from_device: int, to_device: int, cause: Exception) -> None:
        super().__init__(
            f"bundle failed over from device {from_device} to {to_device} "
            f"after {type(cause).__name__}"
        )
        self.from_device = from_device
        self.to_device = to_device
        self.cause = cause


class BundleFailedError(FaultError):
    """Recovery exhausted: the bundle could not be completed.

    Carries the virtual time the attempts consumed (``service_us``) so
    the gateway can account the slot occupancy of the failed request.
    """

    def __init__(self, attempts: int, last_error: Exception, service_us: float) -> None:
        super().__init__(
            f"bundle failed after {attempts} attempt(s): "
            f"{type(last_error).__name__}: {last_error}"
        )
        self.attempts = attempts
        self.last_error = last_error
        self.service_us = service_us


class QuarantinedDeviceError(FaultError):
    """A bundle could not be healed: every candidate device is quarantined.

    The quarantine policy's terminal refusal — raised when an audit
    failure demands re-execution but no healthy device holds a session
    for the bundle.  Seals a flight-recorder dump like every other
    terminal failure.
    """

    def __init__(self, from_device: int, quarantined: tuple[int, ...]) -> None:
        super().__init__(
            f"no healthy failover target for device {from_device}; "
            f"quarantined devices: {sorted(quarantined)}"
        )
        self.from_device = from_device
        self.quarantined = tuple(quarantined)


__all__ = [
    "AttestationError",
    "AuthenticationError",
    "BundleFailedError",
    "ChannelError",
    "CircuitOpenError",
    "DmaDropError",
    "FailedOverError",
    "FaultError",
    "HevmCrashError",
    "HypervisorCrashError",
    "OramServerStall",
    "OramTimeoutError",
    "QuarantinedDeviceError",
    "ReceiptError",
    "ReceiptMismatchError",
    "ReceiptMissingError",
    "RollbackDetectedError",
    "SyncError",
    "UnknownSessionError",
]
