"""The fault injector: arms a :class:`FaultPlan` onto live components.

The injector is the glue between the plan (the seeded decision oracle)
and the substrate seams the components expose (``hypervisor.faults``,
``core.fault_hook``, ``synchronizer.faults``, ``store.fault_hook``, and
a wrapping :class:`FaultyOramServer` in front of the ORAM client).  Each
hook asks the plan whether its kind fires *at this decision point*; when
it does, the injector perturbs the data exactly the way the modeled
adversary/failure would — flip ciphertext bits, lose a DMA message,
stall the storage server, kill a core — and logs the injection.

Injection must be undetectable when nothing fires: hooks return their
inputs unchanged, draw no randomness from component RNGs, advance no
clocks, and touch no metrics.  A run with an armed all-zero-rate plan is
therefore bit-for-bit identical to an unarmed run — the chaos bench's
baseline criterion.
"""

from __future__ import annotations

from dataclasses import replace

from repro.crypto.ecc import Signature
from repro.faults.errors import ChannelError, DmaDropError, HevmCrashError
from repro.faults.plan import FaultKind, FaultPlan
from repro.hypervisor.channel import SealedMessage
from repro.oram.server import OramServer, OramServerStall


def _flip_low_bit(data: bytes, offset: int = -1) -> bytes:
    """Return ``data`` with one bit flipped (default: in the last byte,
    which for AEAD blobs sits inside the authentication tag)."""
    index = offset if offset >= 0 else len(data) + offset
    return data[:index] + bytes([data[index] ^ 0x01]) + data[index + 1:]


class FaultyOramServer:
    """A faulty frontend over the real :class:`OramServer`.

    Models the two ways the untrusted storage tier misbehaves without
    breaking the ORAM protocol itself: answering *late* (``oram-stall``,
    a typed :class:`OramServerStall` carrying the virtual delay) and
    answering *wrong* (``oram-tag-corrupt``, one bit flipped in one
    returned ciphertext, caught by the client's AEAD check).  Corruption
    happens on the returned copy only — the stored buckets stay intact,
    so a retried read succeeds, exactly like a transient DMA/bus error.

    Everything else (geometry, writes, stats, observers) delegates to
    the wrapped server untouched.
    """

    def __init__(self, inner: OramServer, injector: "FaultInjector") -> None:
        self._inner = inner
        self._injector = injector

    def __getattr__(self, name: str):
        return getattr(self._inner, name)

    def read_path(self, leaf: int, sim_time_us: float = 0.0):
        plan = self._injector.plan
        if plan.decide(FaultKind.ORAM_STALL, sim_time_us):
            rule = plan.rule(FaultKind.ORAM_STALL)
            assert rule is not None
            self._injector._fired(
                FaultKind.ORAM_STALL,
                "oram.server.read_path",
                sim_time_us,
                f"stalled {rule.stall_us:.0f} µs on leaf {leaf}",
            )
            raise OramServerStall(rule.stall_us)
        buckets = self._inner.read_path(leaf, sim_time_us)
        if plan.decide(FaultKind.ORAM_TAG_CORRUPT, sim_time_us):
            for node in sorted(buckets):
                if buckets[node]:
                    blobs = list(buckets[node])
                    blobs[0] = _flip_low_bit(blobs[0])
                    buckets[node] = blobs
                    self._injector._fired(
                        FaultKind.ORAM_TAG_CORRUPT,
                        "oram.server.read_path",
                        sim_time_us,
                        f"corrupted one slot of node {node}",
                    )
                    break
        return buckets


class FaultInjector:
    """Arms a plan's faults onto a service/device and implements the hooks."""

    def __init__(self, plan: FaultPlan, metrics=None) -> None:
        self.plan = plan
        self._metrics = metrics

    # -- bookkeeping (only ever called when a fault actually fires) -----

    def _fired(self, kind: str, site: str, now_us: float, detail: str = "") -> None:
        self.plan.record(kind, site, now_us, detail)
        if self._metrics is not None:
            self._metrics.counter("faults.injected").inc()
            self._metrics.counter("faults.injected", kind=kind).inc()

    # -- arming ---------------------------------------------------------

    def arm_service(self, service) -> "FaultInjector":
        """Arm every device of a :class:`~repro.core.service.HarDTAPEService`.

        The shared ORAM server is wrapped once; every device's client is
        repointed at the faulty frontend.
        """
        faulty_server = None
        if service.oram_server is not None:
            faulty_server = FaultyOramServer(service.oram_server, self)
        for device in service.devices:
            self.arm_device(device, faulty_server=faulty_server)
        return self

    def arm_device(self, device, faulty_server: FaultyOramServer | None = None):
        """Arm one :class:`~repro.core.device.HarDTAPEDevice`."""
        device.hypervisor.faults = self
        for core in device.cores:
            core.fault_hook = self.on_hevm_tx
        if device.hypervisor.synchronizer is not None:
            device.hypervisor.synchronizer.faults = self
        if device.oram_backend is not None:
            client = device.oram_backend._client
            if isinstance(client.server, FaultyOramServer):
                # Already armed (e.g. re-arming after a Hypervisor
                # restart re-installed the shared client): wrapping
                # twice would double every decision draw.
                pass
            else:
                if faulty_server is None:
                    faulty_server = FaultyOramServer(client.server, self)
                client.server = faulty_server
        return self

    def arm_store(self, store) -> "FaultInjector":
        """Arm an :class:`~repro.oram.encrypted_store.EncryptedKvStore`."""
        store.fault_hook = self.on_store_read
        return self

    # -- channel (authenticated DMA) hooks ------------------------------

    def on_channel_receive(
        self, message: SealedMessage, now_us: float
    ) -> SealedMessage:
        """Called on every inbound sealed bundle before ``channel.open``."""
        if self.plan.decide(FaultKind.DMA_DROP, now_us):
            self._fired(
                FaultKind.DMA_DROP,
                "hypervisor.channel.receive",
                now_us,
                f"dropped message nonce={int.from_bytes(message.nonce, 'big')}",
            )
            raise DmaDropError("authenticated-DMA message lost in transit")
        if self.plan.decide(FaultKind.DMA_CORRUPT, now_us):
            self._fired(
                FaultKind.DMA_CORRUPT,
                "hypervisor.channel.receive",
                now_us,
                "flipped one ciphertext bit",
            )
            return replace(message, ciphertext=_flip_low_bit(message.ciphertext))
        return message

    def after_channel_open(
        self, channel, message: SealedMessage, now_us: float
    ) -> None:
        """Called after a successful ``channel.open`` of ``message``.

        A duplicated DMA delivery re-presents the very same sealed
        message; the channel's counter-nonce replay check must reject
        it.  The rejection is the *expected* recovery — it is recorded
        as absorbed, and a failure to reject would be a protocol bug
        worth crashing the run over.
        """
        if self.plan.decide(FaultKind.DMA_DUPLICATE, now_us):
            try:
                channel.open(message)
            except ChannelError:
                self._fired(
                    FaultKind.DMA_DUPLICATE,
                    "hypervisor.channel.receive",
                    now_us,
                    "duplicate delivery rejected by replay protection",
                )
                if self._metrics is not None:
                    self._metrics.counter(
                        "faults.absorbed", kind=FaultKind.DMA_DUPLICATE
                    ).inc()
            else:  # pragma: no cover - would be a replay-protection hole
                raise AssertionError(
                    "duplicated channel message was accepted twice"
                )

    # -- HEVM hook ------------------------------------------------------

    def on_hevm_tx(self, core, txs_completed: int) -> None:
        """Called before each transaction of a bundle starts on ``core``."""
        now_us = core.clock.now_us
        if self.plan.decide(FaultKind.HEVM_CRASH, now_us):
            self._fired(
                FaultKind.HEVM_CRASH,
                f"hardware.hevm.core{core.core_id}",
                now_us,
                f"crashed after {txs_completed} tx(s)",
            )
            raise HevmCrashError(core.core_id, txs_completed)

    # -- Hypervisor crash hooks -----------------------------------------

    def _maybe_crash(self, hypervisor, phase: str, now_us: float) -> None:
        if self.plan.decide(FaultKind.HYPERVISOR_CRASH, now_us):
            error = hypervisor.crash(phase)
            self._fired(
                FaultKind.HYPERVISOR_CRASH,
                f"hypervisor.{phase}",
                now_us,
                f"generation {hypervisor.generation} died",
            )
            raise error

    def on_bundle_admission(self, hypervisor, now_us: float) -> None:
        """Crash point A: right after bundle admission, pre-assignment."""
        self._maybe_crash(hypervisor, "bundle.admission", now_us)

    def on_bundle_sealing(self, hypervisor, now_us: float) -> None:
        """Crash point B: execution done, trace not yet sealed/sent."""
        self._maybe_crash(hypervisor, "bundle.sealing", now_us)

    # -- attestation hook -----------------------------------------------

    def on_attestation(self, report, now_us: float):
        """Called on every outbound attestation report."""
        if self.plan.decide(FaultKind.ATTESTATION_FAIL, now_us):
            self._fired(
                FaultKind.ATTESTATION_FAIL,
                "hypervisor.attestation",
                now_us,
                "tampered report signature",
            )
            bad = Signature(report.signature.r ^ 1, report.signature.s)
            return replace(report, signature=bad)
        return report

    # -- block-sync hook ------------------------------------------------

    def on_sync_root(self, state_root: bytes, now_us: float) -> bytes:
        """Called with the state root of every block about to be applied."""
        if self.plan.decide(FaultKind.SYNC_STALE_HEADER, now_us):
            self._fired(
                FaultKind.SYNC_STALE_HEADER,
                "hypervisor.sync.apply_block",
                now_us,
                "served a forked/stale state root",
            )
            return _flip_low_bit(state_root, offset=0)
        return state_root

    # -- Byzantine hooks: the device lies instead of failing ------------

    def on_hevm_result(self, results, struct_logs, now_us: float):
        """Called with a bundle's execution results before sealing.

        A firing ``hevm-result-tamper`` falsifies the last transaction's
        gas accounting *and* the matching step-trace entry: the cheating
        device stays self-consistent (it signs a receipt over the trace
        it reports), so only comparison against node ground truth — the
        receipt audit — can expose it.
        """
        if self.plan.decide(FaultKind.HEVM_RESULT_TAMPER, now_us) and results:
            results[-1].gas_used ^= 0x1
            if struct_logs and struct_logs[-1]:
                struct_logs[-1][-1].gas ^= 0x1
            self._fired(
                FaultKind.HEVM_RESULT_TAMPER,
                "hypervisor.bundle.result",
                now_us,
                "falsified gas accounting of the last transaction",
            )
        return results, struct_logs

    def on_receipt(self, receipt, now_us: float):
        """Called with every signed receipt before it is retained.

        ``receipt-omit`` withholds it entirely (returns ``None``);
        ``receipt-forge`` perturbs the signature — modeling a device
        whose signing key does not match its attested session identity.
        """
        if self.plan.decide(FaultKind.RECEIPT_OMIT, now_us):
            self._fired(
                FaultKind.RECEIPT_OMIT,
                "hypervisor.bundle.receipt",
                now_us,
                "withheld the bundle receipt",
            )
            return None
        if self.plan.decide(FaultKind.RECEIPT_FORGE, now_us):
            self._fired(
                FaultKind.RECEIPT_FORGE,
                "hypervisor.bundle.receipt",
                now_us,
                "forged the receipt signature",
            )
            bad = Signature(receipt.signature.r ^ 1, receipt.signature.s)
            return replace(receipt, signature=bad)
        return receipt

    def on_sync_equivocate(self, now_us: float) -> bool:
        """Called once per block at the top of ``sync_new_blocks``.

        A firing ``sync-equivocate`` makes the device *withhold* the
        block from its ORAM: the service's synced height advances but
        the device keeps pre-executing on stale world state — an
        internally consistent lie that only ground-truth receipt audits
        (or diverging world digests) can expose.
        """
        if self.plan.decide(FaultKind.SYNC_EQUIVOCATE, now_us):
            self._fired(
                FaultKind.SYNC_EQUIVOCATE,
                "core.service.sync_new_blocks",
                now_us,
                "withheld a block from the ORAM sync",
            )
            return True
        return False

    # -- encrypted-store hook -------------------------------------------

    def on_store_read(self, blob: bytes, now_us: float) -> bytes:
        """Called with every blob the encrypted K-V store is about to
        decrypt; corruption lands in the AES-GCM tag region."""
        if self.plan.decide(FaultKind.ORAM_TAG_CORRUPT, now_us):
            self._fired(
                FaultKind.ORAM_TAG_CORRUPT,
                "oram.encrypted_store.get",
                now_us,
                "flipped one tag bit",
            )
            return _flip_low_bit(blob)
        return blob


__all__ = ["FaultInjector", "FaultyOramServer"]
