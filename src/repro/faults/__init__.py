"""The deterministic fault-injection plane (``repro.faults``).

HarDTAPE's security story is exception handling: the Hypervisor is the
component charged with surviving a malicious or merely flaky SP —
tampered DMA messages, stalled or corrupted ORAM storage, forked block
headers, dying cores.  This package exercises exactly those paths, on
purpose and reproducibly:

* :mod:`~repro.faults.plan` — *what* fails: seeded, virtual-time fault
  schedules (:class:`FaultPlan` / :class:`FaultRule`) whose every
  decision derives from ``(seed, kind, decision index)``;
* :mod:`~repro.faults.injector` — *where* it fails:
  :class:`FaultInjector` arms a plan onto the substrate seams (channel
  receive, ORAM path reads, HEVM transaction starts, attestation
  reports, sync roots);
* :mod:`~repro.faults.policy` — *how it recovers*: retry with backoff,
  per-device circuit breakers, and gateway-level failover
  (:class:`ResilientServiceExecutor`), all typed end to end;
* :mod:`~repro.faults.harness` — the chaos harness driving serving-layer
  load under escalating fault rates (:func:`run_chaos`).

Layering: ``faults`` sits *beside* ``serving`` above the substrates.
Substrate modules never import it — they only expose inert seams
(``.faults`` / ``.fault_hook`` attributes, ``None`` in production).
"""

from repro.faults.errors import (
    AttestationError,
    AuthenticationError,
    BundleFailedError,
    ChannelError,
    CircuitOpenError,
    DmaDropError,
    FailedOverError,
    FaultError,
    HevmCrashError,
    HypervisorCrashError,
    OramServerStall,
    OramTimeoutError,
    QuarantinedDeviceError,
    ReceiptError,
    ReceiptMismatchError,
    ReceiptMissingError,
    RollbackDetectedError,
    SyncError,
    UnknownSessionError,
)
from repro.faults.harness import (
    SERVING_FAULT_KINDS,
    ChaosConfig,
    ChaosReport,
    run_chaos,
    run_escalation,
)
from repro.faults.injector import FaultInjector, FaultyOramServer
from repro.faults.plan import FaultKind, FaultPlan, FaultRule, InjectionRecord
from repro.faults.policy import (
    RECOVERABLE_ERRORS,
    CircuitBreaker,
    FailoverBundle,
    QuarantinePolicy,
    RecoveryOutcome,
    ResilientServiceExecutor,
    RetryPolicy,
)

__all__ = [
    "RECOVERABLE_ERRORS",
    "SERVING_FAULT_KINDS",
    "AttestationError",
    "AuthenticationError",
    "BundleFailedError",
    "ChannelError",
    "ChaosConfig",
    "ChaosReport",
    "CircuitBreaker",
    "CircuitOpenError",
    "DmaDropError",
    "FailedOverError",
    "FailoverBundle",
    "FaultError",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FaultRule",
    "FaultyOramServer",
    "HevmCrashError",
    "HypervisorCrashError",
    "InjectionRecord",
    "OramServerStall",
    "OramTimeoutError",
    "QuarantinePolicy",
    "QuarantinedDeviceError",
    "ReceiptError",
    "ReceiptMismatchError",
    "ReceiptMissingError",
    "RecoveryOutcome",
    "RollbackDetectedError",
    "ResilientServiceExecutor",
    "RetryPolicy",
    "SyncError",
    "UnknownSessionError",
    "run_chaos",
    "run_escalation",
]
