"""Simulated Ethereum full node (chain, traces, proofs)."""

from repro.node.node import EthereumNode, ExecutedBlock

__all__ = ["EthereumNode", "ExecutedBlock"]
