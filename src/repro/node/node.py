"""A simulated Ethereum full node.

Plays two roles from the paper:

* the **Node** in the HarDTAPE deployment — SP-controlled, serving fresh
  on-chain data with Merkle proofs during block synchronization, and
* the **ground truth** of §VI-B — a standard node whose
  ``debug_traceTransaction`` output HarDTAPE traces must match.

The node executes blocks with the same functional EVM, keeps one
committed :class:`~repro.state.world.WorldState` snapshot per block so
historical versions can be queried, and serves account/storage proofs
against any block's state root.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.evm.executor import TransactionResult, execute_transaction
from repro.evm.interpreter import ChainContext
from repro.evm.tracer import StructLog, StructTracer
from repro.hypervisor.sync import AccountUpdate
from repro.state.receipts import Receipt, block_bloom, find_logs, receipts_root
from repro.state.account import Account, Address, to_address
from repro.state.blocks import Block, BlockHeader, Transaction
from repro.state.journal import JournaledState
from repro.state.world import WorldState


@dataclass
class ExecutedBlock:
    """A sealed block plus its execution artefacts."""

    block: Block
    results: list[TransactionResult]
    pre_state: WorldState
    post_state: WorldState
    touched_accounts: set[Address] = field(default_factory=set)
    receipts: list[Receipt] = field(default_factory=list)

    def receipts_root(self) -> bytes:
        return receipts_root(self.receipts)


class EthereumNode:
    """Chain + state + trace/proof RPC surface."""

    def __init__(
        self,
        genesis_accounts: dict[Address, Account] | None = None,
        chain_id: int = 1,
        coinbase: Address = to_address(0xC0FFEE),
        block_interval_s: int = 12,
    ) -> None:
        self.chain_id = chain_id
        self.coinbase = coinbase
        self.block_interval_s = block_interval_s
        genesis_state = WorldState(
            {addr: acct.copy() for addr, acct in (genesis_accounts or {}).items()}
        )
        genesis_header = BlockHeader(
            number=0,
            parent_hash=b"\x00" * 32,
            state_root=genesis_state.commit(),
            timestamp=1_700_000_000,
            coinbase=coinbase,
            chain_id=chain_id,
        )
        self._blocks: list[ExecutedBlock] = [
            ExecutedBlock(
                block=Block(genesis_header, []),
                results=[],
                pre_state=genesis_state.copy(),
                post_state=genesis_state,
            )
        ]
        self._block_hashes: dict[int, bytes] = {0: genesis_header.block_hash()}

    # ------------------------------------------------------------------
    # Chain growth
    # ------------------------------------------------------------------

    @property
    def latest(self) -> ExecutedBlock:
        return self._blocks[-1]

    @property
    def height(self) -> int:
        return self.latest.block.number

    def state_at(self, block_number: int) -> WorldState:
        """The committed world state *after* executing ``block_number``."""
        return self.block_at(block_number).post_state

    def block_at(self, number: int) -> ExecutedBlock:
        """The executed block at ``number`` (0 = genesis)."""
        if not 0 <= number < len(self._blocks):
            raise KeyError(f"unknown block {number}")
        return self._blocks[number]

    def _block(self, number: int) -> ExecutedBlock:
        return self.block_at(number)

    def chain_context(self, header: BlockHeader) -> ChainContext:
        return ChainContext(header, dict(self._block_hashes))

    def add_block(self, transactions: list[Transaction]) -> ExecutedBlock:
        """Execute and seal a new block on the tip."""
        parent = self.latest
        header = BlockHeader(
            number=parent.block.number + 1,
            parent_hash=parent.block.block_hash(),
            state_root=b"\x00" * 32,  # filled after execution
            timestamp=parent.block.header.timestamp + self.block_interval_s,
            coinbase=self.coinbase,
            chain_id=self.chain_id,
        )
        pre_state = parent.post_state.copy()
        working = parent.post_state.copy()
        chain = self.chain_context(header)
        results: list[TransactionResult] = []
        receipts: list[Receipt] = []
        cumulative_gas = 0
        touched: set[Address] = set()
        for tx in transactions:
            journal = JournaledState(working)
            result = execute_transaction(journal, chain, tx)
            results.append(result)
            cumulative_gas += result.gas_used
            receipts.append(
                Receipt(result.status, cumulative_gas, list(result.logs))
            )
            write_set = result.write_set
            assert write_set is not None
            working.apply_writes(
                write_set.balances,
                write_set.nonces,
                write_set.storage,
                write_set.codes,
                write_set.deleted,
            )
            touched.update(write_set.balances)
            touched.update(write_set.nonces)
            touched.update(addr for addr, _ in write_set.storage)
            touched.update(write_set.codes)
            touched.update(write_set.deleted)
        sealed_header = BlockHeader(
            number=header.number,
            parent_hash=header.parent_hash,
            state_root=working.commit(),
            timestamp=header.timestamp,
            coinbase=header.coinbase,
            gas_limit=header.gas_limit,
            base_fee=header.base_fee,
            prev_randao=header.prev_randao,
            chain_id=header.chain_id,
        )
        executed = ExecutedBlock(
            block=Block(sealed_header, list(transactions)),
            results=results,
            pre_state=pre_state,
            post_state=working,
            touched_accounts=touched,
            receipts=receipts,
        )
        self._blocks.append(executed)
        self._block_hashes[sealed_header.number] = sealed_header.block_hash()
        return executed

    # ------------------------------------------------------------------
    # RPC surface
    # ------------------------------------------------------------------

    def debug_trace_transaction(
        self, block_number: int, tx_index: int, capture_stack: bool = True
    ) -> tuple[list[StructLog], TransactionResult]:
        """Re-execute a past transaction and return its struct trace.

        This is the quicknode ``debug_traceTransaction`` stand-in used
        as the §VI-B correctness ground truth.
        """
        executed = self._block(block_number)
        if not 0 <= tx_index < len(executed.block.transactions):
            raise KeyError(f"block {block_number} has no tx {tx_index}")
        working = executed.pre_state.copy()
        chain = self.chain_context(executed.block.header)
        result: TransactionResult | None = None
        logs: list[StructLog] = []
        for index, tx in enumerate(executed.block.transactions[:tx_index + 1]):
            journal = JournaledState(working)
            if index == tx_index:
                tracer = StructTracer(capture_stack=capture_stack)
                result = execute_transaction(journal, chain, tx, tracer=tracer)
                logs = tracer.logs
            else:
                result_prev = execute_transaction(journal, chain, tx)
                write_set = result_prev.write_set
                assert write_set is not None
                working.apply_writes(
                    write_set.balances,
                    write_set.nonces,
                    write_set.storage,
                    write_set.codes,
                    write_set.deleted,
                )
        assert result is not None
        return logs, result

    def unified_trace(self, block_number: int, tx_index: int):
        """The committed :class:`~repro.telemetry.unified.UnifiedStepTrace`
        of a past transaction — ``debug_trace_transaction`` lifted into
        the canonical schema (same re-execution, stack capture off since
        the schema commits to pc/op/group/gas/depth only).
        """
        from repro.telemetry.unified import from_struct_logs

        logs, _ = self.debug_trace_transaction(
            block_number, tx_index, capture_stack=False
        )
        return from_struct_logs(logs)

    def get_logs(
        self,
        from_block: int,
        to_block: int,
        address: Address | None = None,
        topic: int | None = None,
    ) -> list[tuple[int, int, "object"]]:
        """eth_getLogs: (block, tx index, log) tuples in the range.

        Block-level blooms prune non-matching blocks before receipts are
        examined, exactly as a real node serves log filters.
        """
        matches = []
        for number in range(from_block, min(to_block, self.height) + 1):
            executed = self._block(number)
            bloom = block_bloom(executed.receipts)
            if address is not None and not bloom.might_contain(address):
                continue
            if topic is not None and not bloom.might_contain(
                topic.to_bytes(32, "big")
            ):
                continue
            for tx_index, log in find_logs(executed.receipts, address, topic):
                matches.append((number, tx_index, log))
        return matches

    def get_proof(
        self, address: Address, storage_keys: list[int], block_number: int
    ) -> AccountUpdate:
        """eth_getProof: account + storage proofs at a block."""
        state = self.state_at(block_number)
        account = state.accounts.get(address, Account()).copy()
        return AccountUpdate(
            address=address,
            account=account,
            account_proof=state.prove_account(address),
            storage_proofs={
                key: state.prove_storage(address, key) for key in storage_keys
            },
        )

    def sync_updates_for(self, block_number: int) -> list[AccountUpdate]:
        """Everything a synchronizer needs to ingest ``block_number``."""
        executed = self._block(block_number)
        updates = []
        for address in sorted(executed.touched_accounts):
            account = executed.post_state.accounts.get(address, Account()).copy()
            updates.append(
                AccountUpdate(
                    address=address,
                    account=account,
                    account_proof=executed.post_state.prove_account(address),
                    storage_proofs={
                        key: executed.post_state.prove_storage(address, key)
                        for key in account.storage
                    },
                )
            )
        return updates
