"""Recursive Length Prefix (RLP) serialization, per the Ethereum spec."""

from repro.rlp.codec import DecodingError, decode, encode, encode_uint, decode_uint

__all__ = ["DecodingError", "decode", "encode", "encode_uint", "decode_uint"]
