"""RLP encoding and decoding.

RLP serializes nested lists of byte strings; Ethereum uses it for
accounts, transactions, and Merkle Patricia Trie nodes.  ``encode``
accepts ``bytes`` and (recursively) ``list``/``tuple`` of the same;
integers must be converted with :func:`encode_uint` first, mirroring the
spec's big-endian minimal encoding.
"""

from __future__ import annotations

RlpItem = bytes | list["RlpItem"]


class DecodingError(Exception):
    """Raised for malformed RLP input."""


def encode_uint(value: int) -> bytes:
    """Encode a non-negative integer as the minimal big-endian bytes.

    Zero encodes to the empty string per the Ethereum convention.
    """
    if value < 0:
        raise ValueError("RLP integers must be non-negative")
    if value == 0:
        return b""
    return value.to_bytes((value.bit_length() + 7) // 8, "big")


def decode_uint(data: bytes) -> int:
    """Inverse of :func:`encode_uint`; rejects non-minimal encodings."""
    if data[:1] == b"\x00":
        raise DecodingError("non-minimal integer encoding")
    return int.from_bytes(data, "big")


def _encode_length(length: int, offset: int) -> bytes:
    if length < 56:
        return bytes([offset + length])
    length_bytes = encode_uint(length)
    return bytes([offset + 55 + len(length_bytes)]) + length_bytes


def encode(item: RlpItem) -> bytes:
    """RLP-encode a byte string or a nested list of byte strings."""
    if isinstance(item, (bytes, bytearray)):
        data = bytes(item)
        if len(data) == 1 and data[0] < 0x80:
            return data
        return _encode_length(len(data), 0x80) + data
    if isinstance(item, (list, tuple)):
        payload = b"".join(encode(sub) for sub in item)
        return _encode_length(len(payload), 0xC0) + payload
    raise TypeError(f"cannot RLP-encode {type(item).__name__}")


def _decode_at(data: bytes, pos: int) -> tuple[RlpItem, int]:
    if pos >= len(data):
        raise DecodingError("unexpected end of input")
    prefix = data[pos]
    if prefix < 0x80:
        return bytes([prefix]), pos + 1
    if prefix < 0xB8:  # short string
        length = prefix - 0x80
        end = pos + 1 + length
        if end > len(data):
            raise DecodingError("string extends past end of input")
        payload = data[pos + 1:end]
        if length == 1 and payload[0] < 0x80:
            raise DecodingError("single byte below 0x80 must encode itself")
        return payload, end
    if prefix < 0xC0:  # long string
        length_size = prefix - 0xB7
        length_end = pos + 1 + length_size
        if length_end > len(data):
            raise DecodingError("length field extends past end of input")
        length = int.from_bytes(data[pos + 1:length_end], "big")
        if length < 56 or data[pos + 1] == 0:
            raise DecodingError("non-canonical long-string length")
        end = length_end + length
        if end > len(data):
            raise DecodingError("string extends past end of input")
        return data[length_end:end], end
    if prefix < 0xF8:  # short list
        length = prefix - 0xC0
        end = pos + 1 + length
        if end > len(data):
            raise DecodingError("list extends past end of input")
        return _decode_list(data, pos + 1, end), end
    # long list
    length_size = prefix - 0xF7
    length_end = pos + 1 + length_size
    if length_end > len(data):
        raise DecodingError("length field extends past end of input")
    length = int.from_bytes(data[pos + 1:length_end], "big")
    if length < 56 or data[pos + 1] == 0:
        raise DecodingError("non-canonical long-list length")
    end = length_end + length
    if end > len(data):
        raise DecodingError("list extends past end of input")
    return _decode_list(data, length_end, end), end


def _decode_list(data: bytes, start: int, end: int) -> list[RlpItem]:
    items: list[RlpItem] = []
    pos = start
    while pos < end:
        item, pos = _decode_at(data, pos)
        items.append(item)
    if pos != end:
        raise DecodingError("list payload length mismatch")
    return items


def decode(data: bytes) -> RlpItem:
    """Decode a single RLP item; rejects trailing bytes."""
    item, end = _decode_at(bytes(data), 0)
    if end != len(data):
        raise DecodingError("trailing bytes after RLP item")
    return item
