"""Command-line interface.

::

    python -m repro.cli demo                # quickstart scenario
    python -m repro.cli evalset --blocks 4  # build + describe an evaluation set
    python -m repro.cli figure4             # the Figure 4 sweep
    python -m repro.cli trace --tx 0        # opcode-level trace of one tx
    python -m repro.cli resources           # the §VI-A area table
    python -m repro.cli serve-bench         # gateway saturation sweep (§VI-D)
    python -m repro.cli chaos-bench         # fault injection + recovery sweep
    python -m repro.cli trace-bench         # traced run + critical-path table
    python -m repro.cli perf-bench          # crypto/ORAM before/after speedup
    python -m repro.cli recovery-bench      # crash recovery + rollback gates
    python -m repro.cli shard-bench         # sharded-fleet scale-out gates
    python -m repro.cli c10k-bench          # 10k-session async tier + resumption gates
    python -m repro.cli obs-bench           # observability: identity, reconciliation, alerts
    python -m repro.cli receipt-bench       # signed receipts: Byzantine detection + quarantine gates

``serve-bench`` and ``chaos-bench`` accept ``--workers N`` to fan their
sweep rows across processes (deterministic: results are reduced in
input order, so the output is identical to ``--workers 1``).

Everything runs offline and deterministically.
"""

from __future__ import annotations

import argparse
import sys

from repro.core import HarDTAPEService, PreExecutionClient, SecurityFeatures
from repro.workloads import EvaluationSetConfig, build_evaluation_set


def _build_evalset(args) -> "object":
    config = EvaluationSetConfig(
        blocks=args.blocks,
        txs_per_block=args.txs_per_block,
        seed=args.seed,
    )
    return build_evaluation_set(config)


def cmd_demo(args) -> int:
    from repro.node import EthereumNode
    from repro.state import Account, Transaction, to_address
    from repro.workloads.contracts import erc20

    alice, bob, token = to_address(0xA1), to_address(0xB2), to_address(0x70CE)
    node = EthereumNode(genesis_accounts={
        alice: Account(balance=10**20),
        token: Account(code=erc20.erc20_runtime(),
                       storage={erc20.balance_slot(alice): 10**6}),
    })
    node.add_block([])
    service = HarDTAPEService(node, SecurityFeatures.from_level(args.level))
    client = PreExecutionClient(service.manufacturer.root_public_key)
    session = client.connect(service)
    print(f"attested device {service.devices[0].serial.decode()} "
          f"(level -{args.level})")
    report, elapsed, _ = client.pre_execute(service, session, [
        Transaction(sender=alice, to=token,
                    data=erc20.transfer_calldata(bob, 42)),
    ])
    trace = report.traces[0]
    print(f"pre-executed in {elapsed / 1000:.1f} ms (simulated): "
          f"status={trace.status} gas={trace.gas_used}")
    return 0


def cmd_evalset(args) -> int:
    evalset = _build_evalset(args)
    node = evalset.node
    print(f"evaluation set: seed={args.seed}, {node.height} blocks, "
          f"{len(evalset.transactions)} pre-executable transactions")
    print(f"contracts: {len(evalset.population.profiles)} profile, "
          "2 ERC-20, 1 DEX, 1 rollup, 1 honeypot")
    sizes = sorted(evalset.population.profile_sizes.values())
    print(f"profile code sizes: {sizes[0]}..{sizes[-1]} bytes")
    gas = [
        result.gas_used
        for number in range(2, node.height + 1)
        for result in node.block_at(number).results
    ]
    print(f"gas per tx: min={min(gas)} median={sorted(gas)[len(gas)//2]} "
          f"max={max(gas)}")
    return 0


def cmd_figure4(args) -> int:
    evalset = _build_evalset(args)
    transactions = evalset.transactions[:args.limit]
    print(f"{'config':>10} {'mean ms':>9}  (over {len(transactions)} txs)")
    for level in ("raw", "E", "ES", "ESO", "full"):
        service = HarDTAPEService(
            evalset.node, SecurityFeatures.from_level(level), charge_fees=False
        )
        client = PreExecutionClient(service.manufacturer.root_public_key)
        session = client.connect(service)
        total = 0.0
        for tx in transactions:
            _, elapsed, _ = client.pre_execute(service, session, [tx])
            total += elapsed
        print(f"{'-' + level:>10} {total / len(transactions) / 1000:>9.1f}")
    return 0


def cmd_trace(args) -> int:
    evalset = _build_evalset(args)
    service = HarDTAPEService(
        evalset.node, SecurityFeatures.from_level("full"), charge_fees=False
    )
    if not 0 <= args.tx < len(evalset.transactions):
        print(f"tx index out of range (0..{len(evalset.transactions) - 1})",
              file=sys.stderr)
        return 1
    tx = evalset.transactions[args.tx]
    device = service.devices[0]
    results, _, _, struct_traces = device.cores[0].run_bundle(
        [tx], service.pending_chain_context(),
        service._synced_state, device.oram_backend,
        storage_via_oram=True, code_via_oram=True,
        struct_trace=True, charge_fees=False,
    )
    logs = struct_traces[0]
    print(f"tx {args.tx}: to=0x{tx.to.hex()} status={results[0].status} "
          f"gas={results[0].gas_used} steps={len(logs)}")
    for entry in logs[:args.steps]:
        top = f"0x{entry.stack[-1]:x}" if entry.stack else "-"
        print(f"  pc={entry.pc:<6} {entry.op:<14} gas={entry.gas:<10} "
              f"depth={entry.depth} top={top}")
    if len(logs) > args.steps:
        print(f"  ... {len(logs) - args.steps} more steps")
    return 0


def cmd_disasm(args) -> int:
    from repro.evm.disassembler import format_listing, selector_candidates
    from repro.workloads.contracts import dex, erc20, honeypot, rollup
    from repro.workloads.contracts.profile import profile_runtime
    from repro.state import to_address

    library = {
        "erc20": erc20.erc20_runtime,
        "dex": lambda: dex.dex_runtime(to_address(0xA), to_address(0xB)),
        "rollup": rollup.rollup_runtime,
        "honeypot": honeypot.honeypot_runtime,
        "profile": profile_runtime,
    }
    if args.contract in library:
        code = library[args.contract]()
    else:
        try:
            code = bytes.fromhex(args.contract.removeprefix("0x"))
        except ValueError:
            print(f"unknown contract {args.contract!r}; choose from "
                  f"{sorted(library)} or pass hex bytecode", file=sys.stderr)
            return 1
    print(f"; {len(code)} bytes")
    selectors = selector_candidates(code)
    if selectors:
        print("; dispatch selectors: "
              + ", ".join(f"0x{s:08x}" for s in selectors))
    print(format_listing(code))
    return 0


def cmd_resources(args) -> int:
    from repro.hardware.resources import (
        HEVM_COMPONENTS,
        HypervisorMemoryBudget,
        hevm_resources,
        max_hevms,
    )

    total = hevm_resources()
    print("per-HEVM FPGA resources (model, calibrated to the paper):")
    for name, vector in HEVM_COMPONENTS.items():
        print(f"  {name:18s} {vector.luts:>8,} LUT {vector.ffs:>8,} FF "
              f"{vector.bram_bytes // 1024:>5} KB")
    print(f"  {'TOTAL':18s} {total.luts:>8,} LUT {total.ffs:>8,} FF "
          f"{total.bram_bytes // 1024:>5} KB")
    count, bottleneck = max_hevms()
    print(f"\nHEVMs per XCZU15EV: {count} ({bottleneck}-bound)")
    budget = HypervisorMemoryBudget()
    print(f"Hypervisor memory: {budget.binary_kb}+{budget.peak_stack_kb} "
          f"= {budget.total_kb} KB of {budget.ocm_kb} KB OCM")
    return 0


def cmd_serve_bench(args) -> int:
    from repro.hardware.timing import CostModel
    from repro.serving import (
        FleetModelExecutor,
        Gateway,
        GatewayConfig,
        QueueDepthShedPolicy,
        model_sessions,
        run_open_loop,
        synthetic_profiles,
    )

    cost = CostModel(ethernet_rtt_us=args.rtt_us)
    profiles = synthetic_profiles(
        cost, kind=args.workload, seed=args.seed
    )
    try:
        sweep = [int(token) for token in args.hevms.split(",")]
    except ValueError:
        print(f"invalid --hevms {args.hevms!r}: expected comma-separated "
              "integers, e.g. 5,10,25", file=sys.stderr)
        return 2
    if any(cores <= 0 for cores in sweep):
        print(f"invalid --hevms {args.hevms!r}: fleet sizes must be positive",
              file=sys.stderr)
        return 2

    from repro.perf.parallel import run_parallel
    from repro.perf.workers import serve_bench_row

    print(f"closed-loop sweep ({args.workload} workload, "
          f"{args.requests} requests/session, rtt={args.rtt_us:g} µs"
          + (f", {args.workers} workers" if args.workers > 1 else "")
          + "):")
    print(f"{'HEVMs':>6} {'tx/s':>9} {'per-HEVM':>9} "
          f"{'server util':>12} {'p99 latency':>12}")
    rows = run_parallel(
        serve_bench_row,
        [(cores, args.workload, args.seed, args.rtt_us, args.requests)
         for cores in sweep],
        workers=args.workers,
    )
    for cores, tps, per_hevm, util, p99_ms in rows:
        print(f"{cores:>6} {tps:>9.1f} {per_hevm:>9.2f} "
              f"{util:>11.1%} {p99_ms:>10.1f}ms")

    if args.overload_rate > 0:
        cores = sweep[len(sweep) // 2]
        executor = FleetModelExecutor(core_count=cores, cost=cost)
        gateway = Gateway(
            executor,
            GatewayConfig(max_queue_depth=4 * cores,
                          max_in_flight_per_session=4),
            admission=QueueDepthShedPolicy(shed_depth=2 * cores),
        )
        report = run_open_loop(
            gateway, model_sessions(cores, profiles),
            rate_rps=args.overload_rate,
            total_requests=args.requests * cores,
            seed=args.seed, pattern="poisson",
        )
        print(f"\nopen-loop overload ({cores} HEVMs, "
              f"{args.overload_rate:g} req/s offered):")
        for line in report.summary_lines():
            print(f"  {line}")
    return 0


def cmd_chaos_bench(args) -> int:
    from repro.faults import ChaosConfig, run_chaos

    try:
        rates = [float(token) for token in args.rates.split(",")]
    except ValueError:
        print(f"invalid --rates {args.rates!r}: expected comma-separated "
              "numbers in [0, 1], e.g. 0,0.02,0.05", file=sys.stderr)
        return 2
    if any(not 0.0 <= rate <= 1.0 for rate in rates):
        print(f"invalid --rates {args.rates!r}: fault rates must be in [0, 1]",
              file=sys.stderr)
        return 2
    if not 0 <= args.seed < 2**64:
        print(f"invalid --seed {args.seed}: must be a non-negative 64-bit "
              "integer", file=sys.stderr)
        return 2
    if min(args.devices, args.tenants, args.requests) <= 0:
        print("invalid fleet/load shape: --devices, --tenants and --requests "
              "must be positive", file=sys.stderr)
        return 2

    print(f"chaos sweep: seed={args.seed}, {args.devices} device(s), "
          f"{args.tenants} tenant(s) x {args.requests} request(s)"
          + (f", {args.workers} workers" if args.workers > 1 else ""))
    if args.workers > 1:
        from repro.perf.parallel import run_parallel
        from repro.perf.workers import chaos_rate_row

        reports = run_parallel(
            chaos_rate_row,
            [(rate, args.seed, args.devices, args.tenants, args.requests,
              args.blocks, args.txs_per_block) for rate in rates],
            workers=args.workers,
        )
        for lines in reports:
            print()
            for line in lines:
                print(line)
        return 0
    evalset = build_evaluation_set(EvaluationSetConfig(
        blocks=args.blocks, txs_per_block=args.txs_per_block,
    ))
    for rate in rates:
        report = run_chaos(
            ChaosConfig(
                seed=args.seed,
                fault_rate=rate,
                device_count=args.devices,
                tenants=args.tenants,
                requests_per_tenant=args.requests,
            ),
            evalset,
        )
        print()
        for line in report.summary_lines():
            print(line)
    return 0


def cmd_trace_bench(args) -> int:
    import json

    from repro.telemetry.bench import TraceBenchConfig, run_trace_bench

    if not 0.0 <= args.sample_rate <= 1.0:
        print(f"invalid --sample-rate {args.sample_rate}: must be in [0, 1]",
              file=sys.stderr)
        return 2
    if min(args.devices, args.tenants, args.requests) <= 0:
        print("invalid fleet/load shape: --devices, --tenants and --requests "
              "must be positive", file=sys.stderr)
        return 2

    evalset = build_evaluation_set(EvaluationSetConfig(
        blocks=args.blocks, txs_per_block=args.txs_per_block,
    ))
    config = TraceBenchConfig(
        seed=args.seed,
        sample_rate=args.sample_rate,
        device_count=args.devices,
        tenants=args.tenants,
        requests_per_tenant=args.requests,
    )
    report = run_trace_bench(config, evalset)
    for line in report.summary_lines():
        print(line)

    failures = 0
    for row in report.reconciliation:
        if abs(row.delta_us) > config.tolerance_us:
            print(f"RECONCILIATION FAILED: {row.name} traced "
                  f"{row.traced_us} µs vs model {row.model_us} µs "
                  f"(tolerance {config.tolerance_us} µs)", file=sys.stderr)
            failures += 1

    # The export must parse back and the run must reproduce byte for byte.
    json.loads(report.chrome_json)
    if not args.skip_determinism_check:
        rerun = run_trace_bench(config, evalset)
        if (rerun.chrome_json != report.chrome_json
                or rerun.prometheus_text != report.prometheus_text):
            print("DETERMINISM FAILED: identically seeded re-run produced "
                  "different export bytes", file=sys.stderr)
            failures += 1
        else:
            print("\ndeterminism: re-run byte-identical "
                  f"({len(report.chrome_json)} trace bytes, "
                  f"{len(report.prometheus_text)} metrics bytes)")

    if args.trace_out:
        with open(args.trace_out, "w") as handle:
            handle.write(report.chrome_json)
        print(f"wrote Chrome trace to {args.trace_out} "
              "(load in Perfetto or chrome://tracing)")
    if args.metrics_out:
        with open(args.metrics_out, "w") as handle:
            handle.write(report.prometheus_text)
        print(f"wrote Prometheus metrics to {args.metrics_out}")
    return 1 if failures else 0


def cmd_perf_bench(args) -> int:
    from repro.perf.bench import PerfBenchConfig, run_perf_bench

    if args.smoke:
        config = PerfBenchConfig.smoke(
            seed=args.seed, min_speedup=args.min_speedup
        )
    else:
        config = PerfBenchConfig(seed=args.seed, min_speedup=args.min_speedup)
    report = run_perf_bench(config)
    for line in report.summary_lines():
        print(line)
    if args.json_out:
        with open(args.json_out, "w") as handle:
            handle.write(report.to_json())
        print(f"wrote {args.json_out}")
    if not report.identical:
        print("PERF-BENCH FAILED: optimized outputs diverge from baseline",
              file=sys.stderr)
        return 1
    if report.speedup < args.min_speedup:
        print(f"PERF-BENCH FAILED: speedup {report.speedup:.1f}x below the "
              f"{args.min_speedup:g}x regression gate", file=sys.stderr)
        return 1
    if not report.backends_identical:
        print("PERF-BENCH FAILED: crypto backends diverge pairwise "
              f"({', '.join(report.backend_mismatches)})", file=sys.stderr)
        return 1
    if report.backends and report.best_backend_speedup < args.min_speedup:
        print(f"PERF-BENCH FAILED: best backend speedup "
              f"{report.best_backend_speedup:.1f}x below the "
              f"{args.min_speedup:g}x gate", file=sys.stderr)
        return 1
    return 0


def cmd_recovery_bench(args) -> int:
    from repro.recovery.bench import RecoveryBenchConfig, run_recovery_bench

    if not 0 <= args.seed < 2**64:
        print(f"invalid --seed {args.seed}: must be a non-negative 64-bit "
              "integer", file=sys.stderr)
        return 2
    if args.smoke:
        config = RecoveryBenchConfig.smoke(seed=args.seed)
    else:
        config = RecoveryBenchConfig(seed=args.seed)
    report = run_recovery_bench(config)
    for line in report.summary_lines():
        print(line)
    if args.json_out:
        with open(args.json_out, "w") as handle:
            handle.write(report.to_json())
        print(f"wrote {args.json_out}")
    if not report.passed:
        print("RECOVERY-BENCH FAILED: "
              + "; ".join(report.gate_failures), file=sys.stderr)
        return 1
    return 0


def cmd_shard_bench(args) -> int:
    from repro.sharding.bench import ShardBenchConfig, run_shard_bench

    if not 0 <= args.seed < 2**64:
        print(f"invalid --seed {args.seed}: must be a non-negative 64-bit "
              "integer", file=sys.stderr)
        return 2
    if args.smoke:
        config = ShardBenchConfig.smoke(seed=args.seed)
    else:
        config = ShardBenchConfig(seed=args.seed)
    report = run_shard_bench(config)
    for line in report.summary_lines():
        print(line)
    if args.json_out:
        with open(args.json_out, "w") as handle:
            handle.write(report.to_json())
        print(f"wrote {args.json_out}")
    if not report.passed:
        print("SHARD-BENCH FAILED: "
              + "; ".join(report.gate_failures), file=sys.stderr)
        return 1
    return 0


def cmd_c10k_bench(args) -> int:
    from repro.async_serving.bench import C10kBenchConfig, run_c10k_bench

    if not 0 <= args.seed < 2**64:
        print(f"invalid --seed {args.seed}: must be a non-negative 64-bit "
              "integer", file=sys.stderr)
        return 2
    if args.smoke:
        config = C10kBenchConfig.smoke(seed=args.seed)
    else:
        config = C10kBenchConfig(seed=args.seed)
    if args.sessions:
        config.concurrency_target = args.sessions
    report = run_c10k_bench(config)
    for line in report.summary_lines():
        print(line)
    if args.json_out:
        with open(args.json_out, "w") as handle:
            handle.write(report.to_json())
        print(f"wrote {args.json_out}")
    if not report.passed:
        print("C10K-BENCH FAILED: "
              + "; ".join(report.gate_failures), file=sys.stderr)
        return 1
    return 0


def cmd_obs_bench(args) -> int:
    from repro.telemetry.obs_bench import ObsBenchConfig, run_obs_bench

    if not 0 <= args.seed < 2**64:
        print(f"invalid --seed {args.seed}: must be a non-negative 64-bit "
              "integer", file=sys.stderr)
        return 2
    if args.smoke:
        config = ObsBenchConfig.smoke(seed=args.seed)
    else:
        config = ObsBenchConfig(seed=args.seed)
    report = run_obs_bench(config)
    for line in report.summary_lines():
        print(line)
    if args.json_out:
        with open(args.json_out, "w") as handle:
            handle.write(report.to_json())
        print(f"wrote {args.json_out}")
    if not report.passed:
        print("OBS-BENCH FAILED: "
              + "; ".join(report.gate_failures), file=sys.stderr)
        return 1
    return 0


def cmd_receipt_bench(args) -> int:
    from repro.faults.receipt_bench import (
        ReceiptBenchConfig,
        run_receipt_bench,
    )

    if not 0 <= args.seed < 2**64:
        print(f"invalid --seed {args.seed}: must be a non-negative 64-bit "
              "integer", file=sys.stderr)
        return 2
    if args.smoke:
        config = ReceiptBenchConfig.smoke(seed=args.seed)
    else:
        config = ReceiptBenchConfig(seed=args.seed)
    report = run_receipt_bench(config)
    for line in report.summary_lines():
        print(line)
    if args.json_out:
        with open(args.json_out, "w") as handle:
            handle.write(report.to_json())
        print(f"wrote {args.json_out}")
    if not report.passed:
        print("RECEIPT-BENCH FAILED: "
              + "; ".join(report.gate_failures), file=sys.stderr)
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="HarDTAPE reproduction CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="quickstart pre-execution scenario")
    demo.add_argument("--level", default="full",
                      choices=["raw", "E", "ES", "ESO", "full"])
    demo.set_defaults(func=cmd_demo)

    def add_evalset_args(p):
        p.add_argument("--blocks", type=int, default=2)
        p.add_argument("--txs-per-block", type=int, default=6)
        p.add_argument("--seed", type=int, default=19_145_194)

    evalset = sub.add_parser("evalset", help="build and describe an evaluation set")
    add_evalset_args(evalset)
    evalset.set_defaults(func=cmd_evalset)

    figure4 = sub.add_parser("figure4", help="per-tx time across security levels")
    add_evalset_args(figure4)
    figure4.add_argument("--limit", type=int, default=6)
    figure4.set_defaults(func=cmd_figure4)

    trace = sub.add_parser("trace", help="opcode-level trace of one evalset tx")
    add_evalset_args(trace)
    trace.add_argument("--tx", type=int, default=0)
    trace.add_argument("--steps", type=int, default=25)
    trace.set_defaults(func=cmd_trace)

    resources = sub.add_parser("resources", help="§VI-A area table")
    resources.set_defaults(func=cmd_resources)

    disasm = sub.add_parser(
        "disasm", help="disassemble a library contract or hex bytecode"
    )
    disasm.add_argument("contract",
                        help="erc20|dex|rollup|honeypot|profile or hex")
    disasm.set_defaults(func=cmd_disasm)

    serve = sub.add_parser(
        "serve-bench",
        help="drive the multi-tenant gateway to saturation (§VI-D)",
    )
    serve.add_argument("--hevms", default="5,10,15,20,25,30,40,50",
                       help="comma-separated fleet sizes to sweep")
    serve.add_argument("--requests", type=int, default=40,
                       help="requests per session (closed loop)")
    serve.add_argument("--workload", default="full-load",
                       choices=["full-load", "mixed"])
    serve.add_argument("--rtt-us", type=float, default=0.0,
                       help="Ethernet RTT per ORAM query (µs)")
    serve.add_argument("--overload-rate", type=float, default=5000.0,
                       help="open-loop offered load in req/s (0 disables)")
    serve.add_argument("--seed", type=int, default=1)
    serve.add_argument("--workers", type=int, default=1,
                       help="processes for the closed-loop sweep "
                            "(1 = serial; output is identical either way)")
    serve.set_defaults(func=cmd_serve_bench)

    chaos = sub.add_parser(
        "chaos-bench",
        help="drive the gateway under injected faults (repro.faults)",
    )
    chaos.add_argument("--rates", default="0,0.02,0.05",
                       help="comma-separated per-decision fault rates in [0, 1]")
    chaos.add_argument("--seed", type=int, default=1,
                       help="fault-plan seed (non-negative, 64-bit)")
    chaos.add_argument("--devices", type=int, default=2,
                       help="HarDTAPE devices in the fleet")
    chaos.add_argument("--tenants", type=int, default=4)
    chaos.add_argument("--requests", type=int, default=5,
                       help="requests per tenant (closed loop)")
    chaos.add_argument("--blocks", type=int, default=2)
    chaos.add_argument("--txs-per-block", type=int, default=6)
    chaos.add_argument("--workers", type=int, default=1,
                       help="processes for the rate sweep "
                            "(1 = serial; output is identical either way)")
    chaos.set_defaults(func=cmd_chaos_bench)

    trace_bench = sub.add_parser(
        "trace-bench",
        help="traced gateway run + critical-path attribution (repro.telemetry)",
    )
    trace_bench.add_argument("--seed", type=int, default=7,
                             help="sampler seed (trace is byte-reproducible)")
    trace_bench.add_argument("--sample-rate", type=float, default=1.0,
                             help="fraction of requests to trace, in [0, 1]")
    trace_bench.add_argument("--devices", type=int, default=2,
                             help="HarDTAPE devices in the fleet")
    trace_bench.add_argument("--tenants", type=int, default=3)
    trace_bench.add_argument("--requests", type=int, default=4,
                             help="requests per tenant (closed loop)")
    trace_bench.add_argument("--blocks", type=int, default=2)
    trace_bench.add_argument("--txs-per-block", type=int, default=6)
    trace_bench.add_argument("--trace-out", default="",
                             help="write the Chrome trace JSON here")
    trace_bench.add_argument("--metrics-out", default="",
                             help="write the Prometheus text exposition here")
    trace_bench.add_argument("--skip-determinism-check", action="store_true",
                             help="skip the byte-identity re-run")
    trace_bench.set_defaults(func=cmd_trace_bench)

    perf_bench = sub.add_parser(
        "perf-bench",
        help="before/after speedup of the crypto/ORAM substrate (repro.perf)",
    )
    perf_bench.add_argument("--seed", type=int, default=7)
    perf_bench.add_argument("--smoke", action="store_true",
                            help="CI-sized workload (same checks, ~10x faster)")
    perf_bench.add_argument("--min-speedup", type=float, default=3.0,
                            help="fail below this optimized/baseline ratio")
    perf_bench.add_argument("--json-out", default="",
                            help="write the BENCH_perf.json report here")
    perf_bench.set_defaults(func=cmd_perf_bench)

    recovery_bench = sub.add_parser(
        "recovery-bench",
        help="crash/restart chaos + rollback-attack gates (repro.recovery)",
    )
    recovery_bench.add_argument("--seed", type=int, default=1)
    recovery_bench.add_argument("--smoke", action="store_true",
                                help="CI-sized run (same gates, faster)")
    recovery_bench.add_argument("--json-out", default="",
                                help="write the BENCH_recovery.json report here")
    recovery_bench.set_defaults(func=cmd_recovery_bench)

    shard_bench = sub.add_parser(
        "shard-bench",
        help="sharded ORAM fleet: identity, scale-out, per-shard "
             "distinguisher (repro.sharding)",
    )
    shard_bench.add_argument("--seed", type=int, default=1)
    shard_bench.add_argument("--smoke", action="store_true",
                             help="CI-sized run (same gates, faster)")
    shard_bench.add_argument("--json-out", default="",
                             help="write the BENCH_shard.json report here")
    shard_bench.set_defaults(func=cmd_shard_bench)

    c10k_bench = sub.add_parser(
        "c10k-bench",
        help="async serving tier: 10k concurrent sessions, resumption "
             "cost + identity gates (repro.async_serving)",
    )
    c10k_bench.add_argument("--seed", type=int, default=1)
    c10k_bench.add_argument("--smoke", action="store_true",
                            help="CI-sized run (the 10k concurrency gate "
                                 "stays; side scenarios shrink)")
    c10k_bench.add_argument("--sessions", type=int, default=0,
                            help="override the concurrency target")
    c10k_bench.add_argument("--json-out", default="",
                            help="write the BENCH_c10k.json report here")
    c10k_bench.set_defaults(func=cmd_c10k_bench)

    obs_bench = sub.add_parser(
        "obs-bench",
        help="observability plane: arming-is-invisible identity, three-way "
             "trace reconciliation, deterministic fault alerts "
             "(repro.telemetry)",
    )
    obs_bench.add_argument("--seed", type=int, default=1)
    obs_bench.add_argument("--smoke", action="store_true",
                           help="CI-sized run (same gates, faster)")
    obs_bench.add_argument("--json-out", default="",
                           help="write the BENCH_obs.json report here")
    obs_bench.set_defaults(func=cmd_obs_bench)

    receipt_bench = sub.add_parser(
        "receipt-bench",
        help="signed pre-execution receipts: Byzantine detection, "
             "quarantine healing, receipts-invisible identity, sublinear "
             "audit cost (repro.faults)",
    )
    receipt_bench.add_argument("--seed", type=int, default=1)
    receipt_bench.add_argument("--smoke", action="store_true",
                               help="CI-sized run (same gates, faster)")
    receipt_bench.add_argument("--json-out", default="",
                               help="write the BENCH_receipt.json report here")
    receipt_bench.set_defaults(func=cmd_receipt_bench)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
