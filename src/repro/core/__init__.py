"""HarDTAPE's public API: device, service, and user client."""

from repro.core.device import (
    DeviceConfig,
    HarDTAPEDevice,
    RELEASE_IMAGE,
    RELEASE_MEASUREMENT,
)
from repro.core.service import HarDTAPEService, NoIdleHevmError, ServiceStats
from repro.core.user import PreExecutionClient, UserSession
from repro.hypervisor.bundle_codec import (
    TraceReport,
    TransactionBundle,
    TransactionTrace,
)
from repro.hypervisor.hypervisor import SecurityFeatures

__all__ = [
    "DeviceConfig",
    "HarDTAPEDevice",
    "HarDTAPEService",
    "NoIdleHevmError",
    "PreExecutionClient",
    "RELEASE_IMAGE",
    "RELEASE_MEASUREMENT",
    "SecurityFeatures",
    "ServiceStats",
    "TraceReport",
    "TransactionBundle",
    "TransactionTrace",
    "UserSession",
]
