"""The user-side pre-execution client.

Performs the full trust-establishment dance before sending anything:
verify the attestation report against the Manufacturer's public key and
the pinned firmware measurement, run DHKE, then exchange bundles and
traces over the secure channel.  A user following this flow cannot be
served by a fake pre-executor (attack A1) or fed tampered traces (A4).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.crypto.ecc import PrivateKey, PublicKey
from repro.hardware.timing import TimeBreakdown
from repro.hypervisor.attestation import derive_session_key, verify_report
from repro.hypervisor.bundle_codec import (
    TraceReport,
    TransactionBundle,
    decode_trace_report,
    encode_bundle,
)
from repro.hypervisor.channel import SecureChannel
from repro.core.device import RELEASE_MEASUREMENT, HarDTAPEDevice
from repro.core.service import HarDTAPEService
from repro.state.blocks import Transaction


@dataclass
class UserSession:
    """A live attested session with one device."""

    device: HarDTAPEDevice
    session_id: bytes
    channel: SecureChannel


class PreExecutionClient:
    """What an HFT designer runs on their own machine."""

    def __init__(
        self,
        manufacturer_public: PublicKey,
        expected_measurement: bytes = RELEASE_MEASUREMENT,
        rng_seed: bytes | None = None,
    ) -> None:
        self._manufacturer_public = manufacturer_public
        self._expected_measurement = expected_measurement
        self._seed = rng_seed or os.urandom(32)
        self._counter = 0

    def _fresh_key(self) -> PrivateKey:
        from repro.crypto.kdf import hkdf_sha256

        self._counter += 1
        return PrivateKey.from_bytes(
            hkdf_sha256(self._seed, info=b"user-key%d" % self._counter)
        )

    def connect(
        self, service: HarDTAPEService, device: HarDTAPEDevice | None = None
    ) -> UserSession:
        """Attest a device and establish the secure channel.

        Without an explicit ``device`` the service routes to an idle one
        (raising :class:`~repro.core.service.NoIdleHevmError` when
        saturated).  The serving gateway passes the device it selected so
        sessions land where capacity is.
        """
        if device is None:
            device = service.pick_device()
        nonce = self._fresh_key().secret.to_bytes(32, "big")

        report, hv_session_key, hv_dh_key = device.hypervisor.begin_attestation(nonce)
        verify_report(
            report,
            self._manufacturer_public,
            nonce,
            expected_measurement=self._expected_measurement,
        )

        user_session_key = self._fresh_key()
        user_dh_key = self._fresh_key()
        session_id = device.hypervisor.establish_session(
            report,
            hv_session_key,
            hv_dh_key,
            user_session_key.public_key(),
            user_dh_key.public_key(),
        )
        transcript = (
            nonce
            + report.session_public.to_bytes()
            + user_session_key.public_key().to_bytes()
        )
        aes_key = derive_session_key(user_dh_key, report.dh_public, transcript)
        channel = SecureChannel(
            aes_key,
            own_signing_key=user_session_key,
            peer_verify_key=report.session_public,
            sign_messages=device.hypervisor.features.signatures,
        )
        return UserSession(device=device, session_id=session_id, channel=channel)

    def pre_execute(
        self,
        service: HarDTAPEService,
        session: UserSession,
        transactions: list[Transaction],
    ) -> tuple[TraceReport, float, list[TimeBreakdown]]:
        """Simulate a bundle; returns (trace report, elapsed µs, breakdowns)."""
        bundle = TransactionBundle(
            transactions=tuple(transactions),
            block_number=service.synced_height,
        )
        payload = encode_bundle(bundle)
        if session.device.hypervisor.features.encryption:
            sealed = session.channel.seal(payload)
        else:
            sealed = payload
        sealed_out, elapsed, breakdowns, _ = service.submit_bundle(
            session.device, session.session_id, sealed
        )
        if session.device.hypervisor.features.encryption:
            report_bytes = session.channel.open(sealed_out)
        else:
            report_bytes = sealed_out
        report = decode_trace_report(report_bytes)
        if report.bundle_id != bundle.bundle_id():
            raise ValueError("trace report is for a different bundle")
        return report, elapsed, breakdowns
