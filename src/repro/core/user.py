"""The user-side pre-execution client.

Performs the full trust-establishment dance before sending anything:
verify the attestation report against the Manufacturer's public key and
the pinned firmware measurement, run DHKE, then exchange bundles and
traces over the secure channel.  A user following this flow cannot be
served by a fake pre-executor (attack A1) or fed tampered traces (A4).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.crypto.ecc import PrivateKey, PublicKey
from repro.hardware.timing import TimeBreakdown
from repro.hypervisor.attestation import derive_session_key, verify_report
from repro.hypervisor.bundle_codec import (
    TraceReport,
    TransactionBundle,
    decode_trace_report,
    encode_bundle,
)
from repro.hypervisor.channel import SecureChannel
from repro.core.device import RELEASE_MEASUREMENT, HarDTAPEDevice
from repro.core.service import HarDTAPEService
from repro.state.blocks import Transaction


@dataclass
class UserSession:
    """A live attested session with one device."""

    device: HarDTAPEDevice
    session_id: bytes
    channel: SecureChannel
    # Retained for suspend/resume: the user's session signing key and
    # the hypervisor's attested session verify key, so a resumed channel
    # re-binds the same identities without re-attesting.
    signing_key: PrivateKey | None = None
    peer_public: PublicKey | None = None


@dataclass
class SuspendedSession:
    """Client-held resumption state for a session the hypervisor evicted.

    The ticket is opaque (sealed under the device's PUF-bound key); the
    resumption secret arrived over the old secure channel.  Presenting
    the ticket plus a fresh nonce re-keys in one round-trip — no
    attestation report, no DHKE.
    """

    device: HarDTAPEDevice
    session_id: bytes           # the suspended (pre-resume) session id
    ticket: bytes
    resumption_secret: bytes
    signing_key: PrivateKey
    peer_public: PublicKey
    send_watermark: int         # user-side channel counters at suspend
    recv_watermark: int
    shard_affinity: int = -1


class PreExecutionClient:
    """What an HFT designer runs on their own machine."""

    def __init__(
        self,
        manufacturer_public: PublicKey,
        expected_measurement: bytes = RELEASE_MEASUREMENT,
        rng_seed: bytes | None = None,
    ) -> None:
        self._manufacturer_public = manufacturer_public
        self._expected_measurement = expected_measurement
        self._seed = rng_seed or os.urandom(32)
        self._counter = 0

    def _fresh_key(self) -> PrivateKey:
        from repro.crypto.kdf import hkdf_sha256

        self._counter += 1
        return PrivateKey.from_bytes(
            hkdf_sha256(self._seed, info=b"user-key%d" % self._counter)
        )

    def connect(
        self, service: HarDTAPEService, device: HarDTAPEDevice | None = None
    ) -> UserSession:
        """Attest a device and establish the secure channel.

        Without an explicit ``device`` the service routes to an idle one
        (raising :class:`~repro.core.service.NoIdleHevmError` when
        saturated).  The serving gateway passes the device it selected so
        sessions land where capacity is.
        """
        if device is None:
            device = service.pick_device()
        nonce = self._fresh_key().secret.to_bytes(32, "big")

        report, hv_session_key, hv_dh_key = device.hypervisor.begin_attestation(nonce)
        verify_report(
            report,
            self._manufacturer_public,
            nonce,
            expected_measurement=self._expected_measurement,
        )

        user_session_key = self._fresh_key()
        user_dh_key = self._fresh_key()
        session_id = device.hypervisor.establish_session(
            report,
            hv_session_key,
            hv_dh_key,
            user_session_key.public_key(),
            user_dh_key.public_key(),
        )
        transcript = (
            nonce
            + report.session_public.to_bytes()
            + user_session_key.public_key().to_bytes()
        )
        aes_key = derive_session_key(user_dh_key, report.dh_public, transcript)
        channel = SecureChannel(
            aes_key,
            own_signing_key=user_session_key,
            peer_verify_key=report.session_public,
            sign_messages=device.hypervisor.features.signatures,
            backend=device.hypervisor.crypto_backend,
        )
        return UserSession(
            device=device,
            session_id=session_id,
            channel=channel,
            signing_key=user_session_key,
            peer_public=report.session_public,
        )

    # ------------------------------------------------------------------
    # Session resumption (repro.async_serving)
    # ------------------------------------------------------------------

    def suspend(
        self,
        session: UserSession,
        *,
        shard_affinity: int = -1,
        ring_digest: str = "",
    ) -> SuspendedSession:
        """Park a session: the hypervisor seals it into a ticket and
        evicts it; the client keeps the ticket and resumption secret."""
        if session.signing_key is None or session.peer_public is None:
            raise ValueError("session predates resumption support")
        hypervisor = session.device.hypervisor
        ticket, sealed_secret = hypervisor.mint_resumption_ticket(
            session.session_id,
            shard_affinity=shard_affinity,
            ring_digest=ring_digest,
        )
        if hypervisor.features.encryption:
            secret = session.channel.open(sealed_secret)
        else:
            secret = bytes(sealed_secret)
        sent, received = session.channel.nonce_watermark
        return SuspendedSession(
            device=session.device,
            session_id=session.session_id,
            ticket=ticket,
            resumption_secret=secret,
            signing_key=session.signing_key,
            peer_public=session.peer_public,
            send_watermark=sent,
            recv_watermark=received,
            shard_affinity=shard_affinity,
        )

    def resume(
        self,
        suspended: SuspendedSession,
        device: HarDTAPEDevice | None = None,
    ) -> UserSession:
        """Redeem a ticket for a live session in one round-trip.

        Must target the device that minted the ticket (the sealing key
        is PUF-bound).  Raises
        :class:`~repro.hypervisor.resumption.StaleTicketError` if the
        hypervisor restarted since the mint — reconnect with
        :meth:`connect` instead.
        """
        from repro.crypto.kdf import hkdf_sha256

        device = device or suspended.device
        if device is not suspended.device:
            raise ValueError("resumption tickets are bound to their device")
        nonce = self._fresh_key().secret.to_bytes(32, "big")
        session_id = device.hypervisor.resume_session(suspended.ticket, nonce)
        aes_key = hkdf_sha256(
            suspended.resumption_secret,
            salt=b"hardtape-resume",
            info=nonce + suspended.session_id,
        )
        channel = SecureChannel(
            aes_key,
            own_signing_key=suspended.signing_key,
            peer_verify_key=suspended.peer_public,
            sign_messages=device.hypervisor.features.signatures,
            backend=device.hypervisor.crypto_backend,
        )
        channel.restore_nonce_watermark(
            suspended.send_watermark, suspended.recv_watermark
        )
        return UserSession(
            device=device,
            session_id=session_id,
            channel=channel,
            signing_key=suspended.signing_key,
            peer_public=suspended.peer_public,
        )

    def pre_execute(
        self,
        service: HarDTAPEService,
        session: UserSession,
        transactions: list[Transaction],
    ) -> tuple[TraceReport, float, list[TimeBreakdown]]:
        """Simulate a bundle; returns (trace report, elapsed µs, breakdowns)."""
        bundle = TransactionBundle(
            transactions=tuple(transactions),
            block_number=service.synced_height,
        )
        payload = encode_bundle(bundle)
        if session.device.hypervisor.features.encryption:
            sealed = session.channel.seal(payload)
        else:
            sealed = payload
        sealed_out, elapsed, breakdowns, _ = service.submit_bundle(
            session.device, session.session_id, sealed
        )
        if session.device.hypervisor.features.encryption:
            report_bytes = session.channel.open(sealed_out)
        else:
            report_bytes = sealed_out
        report = decode_trace_report(report_bytes)
        if report.bundle_id != bundle.bundle_id():
            raise ValueError("trace report is for a different bundle")
        return report, elapsed, breakdowns
