"""A HarDTAPE device: one chip package with its HEVMs and Hypervisor.

Assembles the full trusted stack — Manufacturer-provisioned PUF and
device identity, CSU secure boot, HEVM cores, Hypervisor firmware — plus
the device's connection to the SP-side ORAM server.  This is the unit
the SP buys and racks; :class:`~repro.core.service.HarDTAPEService`
operates one or more of them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.backend import (
    DEFAULT_BACKEND,
    UnknownBackendError,
    available_backends,
)
from repro.crypto.kdf import Drbg
from repro.crypto.puf import Manufacturer
from repro.hardware.csu import BootImage, ConfigurationSecurityUnit, MonotonicCounter
from repro.hardware.hevm import HevmCore
from repro.hardware.resources import max_hevms
from repro.hardware.timing import CostModel, SimClock
from repro.hypervisor.hypervisor import Hypervisor, SecurityFeatures
from repro.oram.adapter import ObliviousStateBackend
from repro.oram.client import PathOramClient
from repro.oram.hierarchical import PyramidOramClient
from repro.oram.server import OramServer
from repro.state.backend import StateBackend

# The shipping firmware image; its measurement is pinned by users.
RELEASE_IMAGE = BootImage(
    name="hardtape-hypervisor-v1",
    payload=b"hardtape hypervisor firmware v1.0.0 + hevm bitstream",
)
RELEASE_MEASUREMENT = RELEASE_IMAGE.measurement()


@dataclass
class DeviceConfig:
    """Per-device knobs (defaults match the paper's prototype)."""

    hevm_count: int = 3  # the XCZU15EV LUT budget allows three
    l2_bytes: int = 1024 * 1024
    oram_height: int = 12
    oram_bucket_size: int = 4
    stash_limit_blocks: int = 1024  # ~1 MB of on-chip stash
    # Which ORAM protocol backs the world state: "path" (the paper's
    # prototype) or "pyramid" (hierarchical layout; wins at small
    # working sets — see repro.oram.hierarchical.backend_for_working_set).
    oram_backend: str = "path"
    # On-chip top-cache bound for the pyramid backend (blocks); the
    # hierarchical analogue of stash_limit_blocks.
    pyramid_cache_blocks: int = 32
    # Virtual-time budget for one ORAM path read; a server stalling past
    # it surfaces as a typed OramTimeoutError instead of a hang.  None
    # absorbs any finite stall (the pre-fault-plane behaviour).
    oram_response_budget_us: float | None = None
    # Bound on the ORAM decrypt-memo cache (repro.perf); 0/None disables
    # memoization and restores the pre-memo wall-clock behaviour.  The
    # cache is host-process memory, invisible to the simulated protocol.
    oram_decrypt_memo_blocks: int | None = 4096
    # §II-C recursion: store the position map in a smaller ORAM instead
    # of fully on-chip (needed at real world-state scale; off by default
    # because the flat map is faster at simulation scale).
    recursive_position_map: bool = False
    # Oversized-frame handling: "abort" (paper) or "spill" (see
    # Layer2CallStack); l3_oram prices spills as full ORAM accesses.
    oversize_policy: str = "abort"
    l3_oram: bool = False
    # Which registered CryptoBackend tier runs this device's secure
    # channel AEAD and signature verification (repro.crypto.backend):
    # "reference", "numpy", or "hashlib".  Every tier is wire-identical;
    # the knob trades wall clock only.
    crypto_backend: str = DEFAULT_BACKEND

    # Backend names are validated here, at construction, so a typo'd
    # deployment dies with a typed error instead of failing deep in
    # device setup.
    KNOWN_ORAM_BACKENDS = ("path", "pyramid")

    def __post_init__(self) -> None:
        if self.crypto_backend not in available_backends():
            raise UnknownBackendError(
                "crypto", self.crypto_backend, available_backends()
            )
        if self.oram_backend not in self.KNOWN_ORAM_BACKENDS:
            raise UnknownBackendError(
                "oram", self.oram_backend, self.KNOWN_ORAM_BACKENDS
            )


class HarDTAPEDevice:
    """One chip, booted and ready to serve sessions."""

    def __init__(
        self,
        manufacturer: Manufacturer,
        serial: bytes,
        features: SecurityFeatures,
        direct_backend: StateBackend,
        oram_server: OramServer | None,
        clock: SimClock | None = None,
        cost: CostModel | None = None,
        config: DeviceConfig | None = None,
        boot_image: BootImage = RELEASE_IMAGE,
        oram_key: bytes | None = None,
        oram_client: PathOramClient | None = None,
    ) -> None:
        self.config = config or DeviceConfig()
        if self.config.hevm_count > max_hevms()[0]:
            raise ValueError(
                f"{self.config.hevm_count} HEVMs exceed the chip's "
                f"{max_hevms()[0]}-core budget ({max_hevms()[1]}-bound)"
            )
        self.serial = serial
        self.clock = clock or SimClock()
        self.cost = cost or CostModel()
        puf, identity = manufacturer.provision(serial)
        self.csu = ConfigurationSecurityUnit(puf, identity)
        self.features = features
        # Restart support (repro.recovery): the pieces a cold restart
        # reuses, plus the hardware monotonic counter that outlives the
        # firmware and pins the newest durable checkpoint.
        self._boot_image = boot_image
        self._direct_backend = direct_backend
        self._oram_server = oram_server
        self.restarts = 0
        self.nvram = MonotonicCounter()
        rng = Drbg(puf.derive_key(b"device-rng"))
        self.cores = [
            HevmCore(
                core_id=index,
                clock=self.clock,
                cost=self.cost,
                rng=rng.fork(b"core" + bytes([index])),
                l2_bytes=self.config.l2_bytes,
                swap_noise=features.swap_noise,
                oversize_policy=self.config.oversize_policy,
                l3_oram=self.config.l3_oram,
            )
            for index in range(self.config.hevm_count)
        ]
        self.oram_backend: ObliviousStateBackend | None = None
        need_oram = features.oram_storage or features.oram_code
        if oram_server is not None and need_oram:
            oram_key = oram_key or puf.derive_key(b"oram-key")
            if oram_client is not None:
                # Devices of one deployment share the full ORAM trust
                # state — key, stash, position map, anti-rollback
                # versions — transferred device-to-device over the same
                # DHKE channel as the key.  Independent per-device
                # clients over one tree would desynchronize: one
                # device's path write-back bumps node versions the
                # others' AAD checks still expect old, and remapped
                # blocks vanish from stale position maps.
                client = oram_client
            elif self.config.oram_backend == "pyramid":
                if self.config.recursive_position_map:
                    raise ValueError(
                        "recursive position maps apply to the path backend only"
                    )
                client = PyramidOramClient(
                    oram_server,
                    key=oram_key,
                    block_size=1024,
                    cache_limit=self.config.pyramid_cache_blocks,
                    rng=rng.fork(b"oram"),
                )
            else:
                position_map = None
                if self.config.recursive_position_map:
                    from repro.oram.recursive import DirectoryPositionMap

                    position_map = DirectoryPositionMap(
                        capacity=oram_server.capacity_blocks(),
                        key=puf.derive_key(b"posmap-key"),
                    )
                client = PathOramClient(
                    oram_server,
                    key=oram_key,
                    block_size=1024,
                    stash_limit=self.config.stash_limit_blocks,
                    rng=rng.fork(b"oram"),
                    position_map=position_map,
                    response_budget_us=self.config.oram_response_budget_us,
                    decrypt_memo_blocks=self.config.oram_decrypt_memo_blocks,
                )
            self.oram_backend = ObliviousStateBackend(
                client, clock=lambda: self.clock.now_us
            )
        self.hypervisor = Hypervisor(
            csu=self.csu,
            boot_image=boot_image,
            cores=self.cores,
            clock=self.clock,
            cost=self.cost,
            direct_backend=direct_backend,
            oram_backend=self.oram_backend,
            features=features,
            oram_key=oram_key,
            crypto_backend=self.config.crypto_backend,
        )

    @property
    def idle_hevms(self) -> int:
        return self.hypervisor.scheduler.idle_count

    # ------------------------------------------------------------------
    # Cold restart (repro.recovery)
    # ------------------------------------------------------------------

    def restart_hypervisor(
        self,
        oram_client: PathOramClient | None = None,
        oram_key: bytes | None = None,
    ) -> Hypervisor:
        """Cold-restart the firmware after a :class:`HypervisorCrashError`.

        Re-runs secure boot and builds a *successor* Hypervisor at the
        next generation.  Everything volatile is gone: cores are reset,
        sessions are empty, and the ORAM client is whatever the caller
        recovered — pass the client rebuilt from checkpoint + journal,
        or ``None`` to come up without an oblivious backend (a device
        that lost its trust state and awaits re-provisioning).
        """
        self.restarts += 1
        for core in self.cores:
            core.reset()
        self.oram_backend = None
        if oram_client is not None and self._oram_server is not None:
            self.oram_backend = ObliviousStateBackend(
                oram_client, clock=lambda: self.clock.now_us
            )
        self.hypervisor = Hypervisor(
            csu=self.csu,
            boot_image=self._boot_image,
            cores=self.cores,
            clock=self.clock,
            cost=self.cost,
            direct_backend=self._direct_backend,
            oram_backend=self.oram_backend,
            features=self.features,
            oram_key=oram_key,
            generation=self.restarts,
            crypto_backend=self.config.crypto_backend,
        )
        return self.hypervisor
