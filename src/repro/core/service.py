"""The SP-side pre-execution service.

Owns the Node, the ORAM server, and one or more HarDTAPE devices; keeps
the ORAM synchronized with the chain tip; and routes user sessions to
devices.  Note the trust split the design is all about: everything here
runs on SP hardware and is *untrusted* except the chip internals modeled
by :class:`~repro.core.device.HarDTAPEDevice`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.puf import Manufacturer
from repro.evm.interpreter import ChainContext
from repro.hardware.timing import CostModel, SimClock, TimeBreakdown
from repro.hypervisor.hypervisor import SecurityFeatures, UnknownSessionError
from repro.hypervisor.sync import SyncError
from repro.node.node import EthereumNode
from repro.oram.hierarchical import HierarchicalOramServer, build_oram_server
from repro.oram.server import OramServer
from repro.telemetry.tracer import tracer_for
from repro.core.device import DeviceConfig, HarDTAPEDevice
from repro.state.blocks import BlockHeader
from repro.state.world import WorldState


class NoIdleHevmError(RuntimeError):
    """Every HEVM across every device is busy (saturation, not a bug).

    The serving layer (`repro.serving.gateway`) consumes this typed
    signal to queue or shed instead of crashing the caller.
    """


@dataclass
class ServiceStats:
    bundles_served: int = 0
    transactions_served: int = 0
    blocks_synced: int = 0
    total_service_time_us: float = 0.0
    per_tx_breakdowns: list[TimeBreakdown] = field(default_factory=list)
    # Fault-plane observability: re-fetches after a Merkle rejection and
    # bundles bounced for naming a session this device never opened.
    sync_retries: int = 0
    unknown_sessions: int = 0
    # Recovery-plane observability: Hypervisor cold restarts survived.
    hypervisor_restarts: int = 0


class HarDTAPEService:
    """The pre-execution service a user connects to."""

    def __init__(
        self,
        node: EthereumNode,
        features: SecurityFeatures,
        manufacturer: Manufacturer | None = None,
        device_count: int = 1,
        device_config: DeviceConfig | None = None,
        cost: CostModel | None = None,
        charge_fees: bool = True,
    ) -> None:
        self.node = node
        self.features = features
        self.manufacturer = manufacturer or Manufacturer(b"hardtape-manufacturer")
        self.clock = SimClock()
        self.cost = cost or CostModel()
        self.charge_fees = charge_fees
        device_config = device_config or DeviceConfig()

        need_oram = features.oram_storage or features.oram_code
        self.oram_server: OramServer | HierarchicalOramServer | None = (
            build_oram_server(
                device_config.oram_backend,
                height=device_config.oram_height,
                bucket_size=device_config.oram_bucket_size,
                query_cpu_us=self.cost.oram_server_cpu_us,
            )
            if need_oram
            else None
        )
        # "For ORAM-disabled configurations these data are prefetched to
        # the untrusted memory" — the direct backend is that prefetch;
        # for ORAM configurations it doubles as the functional shadow.
        self._synced_state: WorldState = node.state_at(node.height).copy()
        self.devices: list[HarDTAPEDevice] = []
        shared_oram_key: bytes | None = None
        shared_oram_client = None
        for index in range(device_count):
            device = HarDTAPEDevice(
                manufacturer=self.manufacturer,
                serial=b"HDTP-%04d" % index,
                features=features,
                direct_backend=self._synced_state,
                oram_server=self.oram_server,
                clock=self.clock,
                cost=self.cost,
                config=device_config,
                oram_key=shared_oram_key,
                # One deployment = one ORAM trust state: the first
                # device's client (stash, position map, anti-rollback
                # versions) is shared, like the key, over device DHKE.
                oram_client=shared_oram_client,
            )
            if shared_oram_key is None:
                shared_oram_key = device.hypervisor.oram_key
            if shared_oram_client is None and device.oram_backend is not None:
                shared_oram_client = device.oram_backend._client
            self.devices.append(device)
        self.synced_height = node.height
        self.stats = ServiceStats()
        if need_oram:
            self._initial_oram_load()

    # ------------------------------------------------------------------
    # Shared ORAM trust state (recovery plane)
    # ------------------------------------------------------------------

    @property
    def shared_oram_client(self):
        """The deployment's single ORAM client, or ``None`` without ORAM."""
        for device in self.devices:
            if device.oram_backend is not None:
                return device.oram_backend.client
        return None

    def install_oram_client(self, client) -> None:
        """Repoint every device's oblivious backend at ``client``.

        The recovery path for a deployment-shared client: after a crash
        the successor client (rebuilt from checkpoint + journal) must
        replace the dead one on *all* devices, or the fleet would split
        into divergent stash/position/version views of one tree.
        """
        for device in self.devices:
            if device.oram_backend is not None:
                device.oram_backend.replace_client(client)

    # ------------------------------------------------------------------
    # Block synchronization (workflow step 11)
    # ------------------------------------------------------------------

    def _initial_oram_load(self) -> None:
        """Bootstrap: bulk-load the synced state into the ORAM.

        Matches the paper's setup where the evaluation-set data is
        "synchronized to the ORAM server" before measurements start.
        """
        device = self.devices[0]
        assert device.oram_backend is not None
        device.oram_backend.sync_world(self._synced_state.accounts)

    # A stale/forked header from a flaky Node is transient: re-fetching
    # the canonical block almost always clears it.  Deliberate tampering
    # is not — after this many rejections we surface the SyncError.
    SYNC_RETRY_LIMIT = 3

    def sync_new_blocks(self) -> int:
        """Verify-and-ingest every block past the synced height."""
        synced = 0
        device = self.devices[0]
        while self.synced_height < self.node.height:
            target = self.synced_height + 1
            executed = self.node.block_at(target)
            updates = self.node.sync_updates_for(target)
            # Byzantine seam (``sync-equivocate``): the device claims the
            # block was ingested but withholds it from its ORAM.  The
            # shadow copy and synced height still advance — the lie is
            # internally consistent — so detection falls to the receipt
            # audit, which compares pre-execution traces against node
            # ground truth at the *claimed* height.
            withheld = (
                device.hypervisor.faults is not None
                and device.hypervisor.faults.on_sync_equivocate(
                    self.clock.now_us
                )
            )
            if device.oram_backend is not None and not withheld:
                for attempt in range(self.SYNC_RETRY_LIMIT + 1):
                    try:
                        device.hypervisor.sync_block(
                            executed.block.header.state_root, updates
                        )
                        break
                    except SyncError:
                        if attempt == self.SYNC_RETRY_LIMIT:
                            raise
                        self.stats.sync_retries += 1
            # Mirror into the untrusted prefetch/shadow copy.
            for update in updates:
                self._synced_state.accounts[update.address] = update.account.copy()
            self.synced_height = target
            self.stats.blocks_synced += 1
            synced += 1
        return synced

    def repair_sync(self) -> int:
        """Replay every synced block into the ORAM, unconditionally.

        The quarantine policy's answer to ``sync-equivocate``: after an
        audit exposes stale pre-execution, replaying the full update
        history converges the ORAM onto the canonical tip (later blocks
        rewrite any key an equivocated block touched) and leaves
        ``last_verified_root`` at the tip's root.  Idempotent — replaying
        honestly-synced blocks rewrites the same values.
        """
        device = self.devices[0]
        if device.oram_backend is None:
            return 0
        replayed = 0
        for height in range(1, self.synced_height + 1):
            executed = self.node.block_at(height)
            updates = self.node.sync_updates_for(height)
            device.hypervisor.sync_block(
                executed.block.header.state_root, updates
            )
            replayed += 1
        return replayed

    # ------------------------------------------------------------------
    # Session + bundle front door
    # ------------------------------------------------------------------

    def pick_device(self) -> HarDTAPEDevice:
        """Route to a device with an idle HEVM, or raise :class:`NoIdleHevmError`."""
        device = self.try_pick_device()
        if device is None:
            raise NoIdleHevmError(
                f"all {sum(d.config.hevm_count for d in self.devices)} HEVMs "
                f"across {len(self.devices)} device(s) are busy"
            )
        return device

    def try_pick_device(self) -> HarDTAPEDevice | None:
        """Queue-aware routing: the idle device with the shallowest queue.

        Among devices with an idle HEVM, prefer the one whose scheduler
        queue is shallowest (most headroom); ``None`` when saturated.
        """
        candidates = [d for d in self.devices if d.idle_hevms > 0]
        if not candidates:
            return None
        return min(
            candidates,
            key=lambda d: (d.hypervisor.scheduler.queue_depth, -d.idle_hevms),
        )

    def least_loaded_device(self) -> HarDTAPEDevice:
        """The best device to bind a new session to, busy or not.

        Unlike :meth:`pick_device` this never raises: under saturation it
        returns the device with the most idle cores, breaking ties on the
        shallowest scheduler queue — the gateway binds sessions here and
        lets its own queue absorb the wait.
        """
        return min(
            self.devices,
            key=lambda d: (-d.idle_hevms, d.hypervisor.scheduler.queue_depth),
        )

    def queue_depths(self) -> list[int]:
        """Per-device scheduler queue depths (serving-layer observability)."""
        return [d.hypervisor.scheduler.queue_depth for d in self.devices]

    def pending_chain_context(self) -> ChainContext:
        """Simulate against a pending header on top of the synced tip."""
        tip = self.node.block_at(self.synced_height).block.header
        pending = BlockHeader(
            number=tip.number + 1,
            parent_hash=tip.block_hash(),
            state_root=tip.state_root,
            timestamp=tip.timestamp + self.node.block_interval_s,
            coinbase=tip.coinbase,
            gas_limit=tip.gas_limit,
            base_fee=tip.base_fee,
            chain_id=tip.chain_id,
        )
        return self.node.chain_context(pending)

    def submit_bundle(
        self, device: HarDTAPEDevice, session_id: bytes, sealed_bundle
    ):
        """Run one bundle; returns (sealed trace, elapsed µs, breakdowns)."""
        start = self.clock.now_us
        tracer = tracer_for(self.clock)
        with tracer.span(
            "service.bundle",
            "service",
            session=session_id.hex(),
            device=device.serial.decode("ascii", "replace"),
        ) as span:
            try:
                sealed_out, breakdowns, run_stats = device.hypervisor.submit_bundle(
                    session_id,
                    sealed_bundle,
                    self.pending_chain_context(),
                    charge_fees=self.charge_fees,
                )
            except UnknownSessionError:
                # Typed bounce (satellite of the fault plane): the caller
                # addressed a device this session was never opened on — count
                # it and let the session owner re-route, nothing to unwind.
                self.stats.unknown_sessions += 1
                span.set(error="UnknownSessionError")
                raise
            span.set(transactions=len(breakdowns), aborted=run_stats.aborted)
        elapsed = self.clock.now_us - start
        self.stats.bundles_served += 1
        self.stats.transactions_served += len(breakdowns)
        self.stats.total_service_time_us += elapsed
        self.stats.per_tx_breakdowns.extend(breakdowns)
        return sealed_out, elapsed, breakdowns, run_stats
