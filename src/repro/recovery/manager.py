"""The recovery manager: checkpoints, journaling, and cold recovery.

One :class:`RecoveryManager` guards one deployment.  Armed (via
:meth:`attach`) it sits on the inert recovery seams the substrates
expose — ``PathOramClient.recovery`` and ``Hypervisor.recovery`` — and
mirrors every trusted-state change into sealed records in an untrusted
:class:`~repro.recovery.store.DurableStore`:

* a **checkpoint** per epoch: the full
  :class:`~repro.recovery.state.TrustedState`, sealed;
* a **write-ahead nonce lease** before the client touches the wire;
* one **journal record** per completed ORAM access / session / sync
  root, sealed with the epoch+sequence bound into nonce and AAD.

Everything the armed hooks do is host-process work: no DRBG draws, no
clock advances, no tracer records — which is why a zero-crash run with
checkpointing armed is byte-identical (traces, metrics, wire bytes) to
one without, the bench's identity criterion.

Freshness of the *store itself* is pinned by the device's hardware
monotonic counter (:class:`~repro.hardware.csu.MonotonicCounter`): every
durable write advances it to the composite ``(epoch << 40) | seq``, and
:meth:`recover` refuses a store whose newest record disagrees — the SP
rolling back checkpoint + journal together is caught *at boot*, before
any stale state is trusted.  An SP rolling back only the ORAM tree is
caught later, at first access, by the restored version pins
(:class:`~repro.oram.client.RollbackDetectedError`).
"""

from __future__ import annotations

from repro.crypto.kdf import Drbg, hkdf_sha256
from repro.crypto.suite import CounterNonceSealer
from repro.oram.client import PathOramClient
from repro.recovery import journal
from repro.recovery.state import SessionRecord, TrustedState
from repro.recovery.store import DurableStore

# Sequence numbers get 40 bits per epoch; the composite (epoch << 40 | seq)
# is the sealer nonce, the NVRAM pin, and the total order over records.
_SEQ_BITS = 40


class RecoveryIntegrityError(Exception):
    """The durable store failed recovery-time verification.

    Missing checkpoint, a journal gap, an unsealable record, or — the
    attack this plane exists for — a store whose newest record is older
    than the device's hardware monotonic counter (the SP rolled back
    checkpoint and journal together).
    """


class _DeviceRecoverySink:
    """Per-device adapter so session records carry their device index."""

    def __init__(self, manager: "RecoveryManager", device_index: int) -> None:
        self._manager = manager
        self._device_index = device_index

    def on_session(self, session) -> None:
        self._manager.note_session(session, self._device_index)

    def on_sync_root(self, state_root: bytes) -> None:
        self._manager.note_sync_root(state_root)


class RecoveryManager:
    """Journals one deployment's trusted state into a durable store."""

    def __init__(
        self,
        device,
        store: DurableStore,
        checkpoint_interval: int = 8,
        lease_chunk: int = 256,
        oram_key: bytes = b"",
    ) -> None:
        if checkpoint_interval < 1:
            raise ValueError("checkpoint_interval must be >= 1")
        self._device = device
        self.store = store
        self.checkpoint_interval = checkpoint_interval
        self.lease_chunk = lease_chunk
        master = device.csu.derive_sealing_key(b"recovery")
        self._journal_sealer = CounterNonceSealer(
            hkdf_sha256(master, info=b"journal")
        )
        self._checkpoint_sealer = CounterNonceSealer(
            hkdf_sha256(master, info=b"checkpoint")
        )
        self.epoch = 0
        self.seq = 0
        self._accesses_since_checkpoint = 0
        self._leased_until = 0
        self._sessions: dict[str, SessionRecord] = {}
        self._sync_root: bytes | None = None
        self._client: PathOramClient | None = None
        self._service = None
        self._oram_key = oram_key
        # Observability (host-side counters, never simulated time).
        self.checkpoints_written = 0
        self.records_written = 0

    @property
    def device(self):
        """The anchor device whose CSU keys and NVRAM pin this store."""
        return self._device

    # ------------------------------------------------------------------
    # Store layout
    # ------------------------------------------------------------------

    @staticmethod
    def _checkpoint_key(epoch: int) -> str:
        return f"checkpoint/{epoch:012d}"

    @staticmethod
    def _journal_key(epoch: int, seq: int) -> str:
        return f"journal/{epoch:012d}/{seq:012d}"

    @staticmethod
    def _composite(epoch: int, seq: int) -> int:
        assert seq < (1 << _SEQ_BITS)
        return (epoch << _SEQ_BITS) | seq

    @staticmethod
    def _checkpoint_aad(epoch: int) -> bytes:
        return b"checkpoint|" + epoch.to_bytes(8, "big")

    @staticmethod
    def _journal_aad(epoch: int, seq: int) -> bytes:
        return b"journal|" + epoch.to_bytes(8, "big") + seq.to_bytes(8, "big")

    # ------------------------------------------------------------------
    # Arming
    # ------------------------------------------------------------------

    def attach(self, service) -> None:
        """Arm the seams fleet-wide and write the initial checkpoint."""
        client = service.shared_oram_client
        if client is None:
            raise ValueError("recovery requires an ORAM-enabled deployment")
        self._service = service
        self._client = client
        self._oram_key = service.devices[0].hypervisor.oram_key
        client.recovery = self
        for index, device in enumerate(service.devices):
            device.hypervisor.recovery = _DeviceRecoverySink(self, index)
            for session in device.hypervisor._sessions.values():
                self.note_session(session, index, journal_it=False)
        self.checkpoint()

    def attach_client(self, client: PathOramClient) -> None:
        """Arm just the ORAM-client seam, without a service.

        Sharded fleets run one manager per shard client; sessions and
        sync roots are fleet-level concerns handled elsewhere, so only
        the per-access journal hooks are wired here.
        """
        self._client = client
        client.recovery = self

    def reattach(self, service, client: PathOramClient) -> None:
        """Re-arm the seams after a restart (same epoch, same journal)."""
        self._service = service
        self._client = client
        client.recovery = self
        for index, device in enumerate(service.devices):
            device.hypervisor.recovery = _DeviceRecoverySink(self, index)

    # ------------------------------------------------------------------
    # Journal sinks (called from the armed seams)
    # ------------------------------------------------------------------

    def _append(self, kind: str, payload: dict) -> None:
        self.seq += 1
        composite = self._composite(self.epoch, self.seq)
        sealed = self._journal_sealer.seal(
            composite,
            journal.encode_record(kind, payload),
            aad=self._journal_aad(self.epoch, self.seq),
        )
        self.store.put(self._journal_key(self.epoch, self.seq), sealed)
        self._device.nvram.advance_to(composite)
        self.records_written += 1

    def reserve_nonces(self, nonce_counter: int, count: int) -> None:
        """Write-ahead lease: journal *before* the nonces hit the wire."""
        needed = nonce_counter + count
        if needed <= self._leased_until:
            return
        lease = needed + self.lease_chunk
        self._append(journal.LEASE, journal.lease_payload(lease))
        self._leased_until = lease

    def record_access(
        self,
        stash: dict[bytes, bytes | None],
        positions: dict[bytes, int | None],
        versions: dict[int, int],
        nonce_counter: int,
    ) -> None:
        """One completed ORAM access's absolute trusted-state delta."""
        self._append(
            journal.ACCESS,
            journal.access_payload(stash, positions, versions, nonce_counter),
        )
        self._accesses_since_checkpoint += 1
        if self._accesses_since_checkpoint >= self.checkpoint_interval:
            self.checkpoint()

    def note_session(self, session, device_index: int, journal_it: bool = True) -> None:
        record = SessionRecord(
            session_id=session.session_id,
            user_public=session.user_public.to_bytes(),
            device_index=device_index,
            established_at_us=session.established_at_us,
        )
        self._sessions[record.session_id.hex()] = record
        if journal_it:
            self._append(journal.SESSION, journal.session_payload(record))

    def note_sync_root(self, state_root: bytes) -> None:
        self._sync_root = state_root
        self._append(journal.ROOT, journal.root_payload(state_root))

    # Seam aliases the Hypervisor-side sink uses directly when the
    # manager itself is installed (single-device deployments in tests).
    def on_session(self, session) -> None:
        self.note_session(session, 0)

    def on_sync_root(self, state_root: bytes) -> None:
        self.note_sync_root(state_root)

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------

    def current_state(self) -> TrustedState:
        assert self._client is not None
        snapshot = self._client.snapshot_trusted_state()
        return TrustedState(
            stash=snapshot["stash"],
            positions=snapshot["positions"],
            node_versions=snapshot["node_versions"],
            nonce_counter=snapshot["nonce_counter"],
            leased_until=max(self._leased_until, snapshot["nonce_counter"]),
            oram_key=self._oram_key,
            block_size=self._client.block_size,
            sessions=dict(self._sessions),
            sync_root=self._sync_root,
        )

    def checkpoint(self) -> int:
        """Seal the full trusted state as a new epoch; prune the old one.

        Pure host-process work (no clocks, no DRBGs, no tracer): the
        hardware story is a background DMA engine draining to disk, so
        arming checkpoints must not perturb the simulated run.
        """
        state = self.current_state()
        old_epoch = self.epoch
        self.epoch += 1
        self.seq = 0
        self._accesses_since_checkpoint = 0
        self._leased_until = state.leased_until
        composite = self._composite(self.epoch, 0)
        sealed = self._checkpoint_sealer.seal(
            composite, state.encode(), aad=self._checkpoint_aad(self.epoch)
        )
        self.store.put(self._checkpoint_key(self.epoch), sealed)
        self._device.nvram.advance_to(composite)
        self.checkpoints_written += 1
        # The previous epoch is now fully superseded: drop its journal
        # and checkpoint (the NVRAM pin makes them unusable anyway).
        for key in self.store.keys(f"journal/{old_epoch:012d}/"):
            self.store.delete(key)
        self.store.delete(self._checkpoint_key(old_epoch))
        return self.epoch

    # ------------------------------------------------------------------
    # Recovery (cold restart)
    # ------------------------------------------------------------------

    @classmethod
    def recover(
        cls,
        device,
        store: DurableStore,
        checkpoint_interval: int = 8,
        lease_chunk: int = 256,
    ) -> tuple["RecoveryManager", TrustedState, int]:
        """Verify the store, unseal the checkpoint, replay the journal.

        Returns ``(manager, recovered_state, replayed_record_count)``.
        Raises :class:`RecoveryIntegrityError` on any freshness or
        integrity violation — a refused boot beats a rolled-back one.
        """
        manager = cls(device, store, checkpoint_interval, lease_chunk)
        checkpoints = store.keys("checkpoint/")
        if not checkpoints:
            raise RecoveryIntegrityError("durable store holds no checkpoint")
        epoch = int(checkpoints[-1].rsplit("/", 1)[1])
        journal_keys = store.keys(f"journal/{epoch:012d}/")
        last_seq = (
            int(journal_keys[-1].rsplit("/", 1)[1]) if journal_keys else 0
        )
        newest = cls._composite(epoch, last_seq)
        pinned = device.nvram.value
        if newest != pinned:
            raise RecoveryIntegrityError(
                f"store rollback detected: newest durable record is "
                f"epoch {epoch} seq {last_seq} (composite {newest}), but the "
                f"device monotonic counter pins {pinned}"
            )
        blob = store.get(cls._checkpoint_key(epoch))
        assert blob is not None
        try:
            plain = manager._checkpoint_sealer.open(
                cls._composite(epoch, 0), blob, aad=cls._checkpoint_aad(epoch)
            )
        except Exception as error:
            raise RecoveryIntegrityError(
                f"checkpoint epoch {epoch} failed to unseal: {error}"
            ) from error
        state = TrustedState.decode(plain)
        records: list[tuple[str, dict]] = []
        for seq in range(1, last_seq + 1):
            blob = store.get(cls._journal_key(epoch, seq))
            if blob is None:
                raise RecoveryIntegrityError(
                    f"journal gap: epoch {epoch} seq {seq} missing"
                )
            try:
                plain = manager._journal_sealer.open(
                    cls._composite(epoch, seq),
                    blob,
                    aad=cls._journal_aad(epoch, seq),
                )
            except Exception as error:
                raise RecoveryIntegrityError(
                    f"journal record epoch {epoch} seq {seq} failed to "
                    f"unseal: {error}"
                ) from error
            records.append(journal.decode_record(plain))
        journal.replay(state, records)
        manager.epoch = epoch
        manager.seq = last_seq
        manager._leased_until = state.leased_until
        manager._sessions = dict(state.sessions)
        manager._sync_root = state.sync_root
        manager._oram_key = state.oram_key
        return manager, state, len(records)

    def rebuild_client(
        self, state: TrustedState, server, generation: int
    ) -> PathOramClient:
        """Build the successor ORAM client from a recovered state.

        The client RNG is salted by ``generation`` so the successor
        never replays the eviction-randomness stream its predecessor
        already consumed against the same adversary-visible tree.
        """
        config = self._device.config
        client = PathOramClient(
            server,
            key=state.oram_key,
            block_size=state.block_size,
            stash_limit=config.stash_limit_blocks,
            rng=Drbg(
                self._device.csu.derive_sealing_key(
                    b"oram-rng-gen%d" % generation
                )
            ),
            response_budget_us=config.oram_response_budget_us,
            decrypt_memo_blocks=config.oram_decrypt_memo_blocks,
        )
        client.restore_trusted_state(
            {
                "stash": state.stash,
                "positions": state.positions,
                "node_versions": state.node_versions,
                "nonce_counter": state.nonce_counter,
            }
        )
        return client


__all__ = ["RecoveryIntegrityError", "RecoveryManager"]
