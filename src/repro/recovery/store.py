"""The untrusted durable store the recovery plane seals state into.

Models the SP-side disk (or cloud bucket) that survives a Hypervisor
crash.  It is *untrusted* in exactly the ORAM-server sense: it returns
whatever it wants — stale snapshots, missing records — and the trusted
side defends itself with AEAD sealing (confidentiality + integrity per
record) and the device's hardware monotonic counter (freshness of the
store as a whole).  ``snapshot``/``restore`` exist so tests and the
bench can *be* the malicious SP and roll the store back.
"""

from __future__ import annotations


class DurableStore:
    """A durable key → sealed-blob map on untrusted SP storage."""

    def __init__(self) -> None:
        self._blobs: dict[str, bytes] = {}

    def put(self, key: str, blob: bytes) -> None:
        self._blobs[key] = bytes(blob)

    def get(self, key: str) -> bytes | None:
        return self._blobs.get(key)

    def delete(self, key: str) -> None:
        self._blobs.pop(key, None)

    def keys(self, prefix: str = "") -> list[str]:
        return sorted(k for k in self._blobs if k.startswith(prefix))

    def __len__(self) -> int:
        return len(self._blobs)

    def total_bytes(self) -> int:
        return sum(len(blob) for blob in self._blobs.values())

    # -- adversary modelling -------------------------------------------

    def snapshot(self) -> dict[str, bytes]:
        """What a malicious SP squirrels away for a later rollback."""
        return dict(self._blobs)

    def restore(self, snapshot: dict[str, bytes]) -> None:
        """Roll the whole store back to an earlier snapshot (attack)."""
        self._blobs = dict(snapshot)


__all__ = ["DurableStore"]
