"""The crash-recovery chaos benchmark (``recovery-bench``).

Three scenarios, every gate seeded and deterministic:

1. **Identity** — the same zero-crash serving run twice, checkpointing
   disarmed vs armed.  Armed checkpointing is pure host-process work, so
   the two runs must be byte-identical: same Chrome trace JSON, same
   metrics snapshot, same wire bytes out of the gateway, same final
   world-state digest.
2. **Crash chaos** — the run again with a seeded
   ``hypervisor-crash`` rule killing the Hypervisor at virtual-time
   decision points mid-bundle (admission and sealing).  Every restart
   recovers from the durable store, re-attests tenants, and the gates
   demand: at least ``min_crashes`` crashes fired, every affected
   request either completed after recovery or terminated as a *typed*
   failure, and the converged world-state digest byte-identical to the
   zero-crash baseline.
3. **Rollback attack** — a scripted malicious SP: snapshot the ORAM
   tree, let the deployment move on, crash it, serve the stale tree to
   the restarted Hypervisor.  Gates: the very first post-restart access
   raises :class:`~repro.oram.client.RollbackDetectedError` (never
   silently absorbed), the re-sync policy heals the deployment, and a
   rollback of the durable store itself is refused at boot
   (:class:`~repro.recovery.manager.RecoveryIntegrityError`).

The world-state digest hashes the *logical* ORAM content — every real
block in the tree (decrypted under the pinned per-node versions) with
the stash overlaid.  Pre-execution never commits writes, so the digest
is a pure function of the sync history; crashes and restarts must not
change it.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

from repro.core.device import DeviceConfig
from repro.core.service import HarDTAPEService
from repro.core.user import PreExecutionClient
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultKind, FaultPlan, FaultRule
from repro.faults.policy import ResilientServiceExecutor, RetryPolicy
from repro.hypervisor.bundle_codec import TransactionBundle, encode_bundle
from repro.hypervisor.hypervisor import SecurityFeatures
from repro.oram.client import _KIND_REAL, RollbackDetectedError
from repro.recovery.manager import RecoveryIntegrityError, RecoveryManager
from repro.recovery.store import DurableStore
from repro.recovery.supervisor import (
    HypervisorSupervisor,
    ReattachableBundle,
    SessionDirectory,
)
from repro.serving.gateway import Gateway, GatewayConfig
from repro.serving.loadgen import LoadReport, LoadSession, run_closed_loop
from repro.serving.metrics import MetricsRegistry
from repro.telemetry.exporters import render_chrome_trace
from repro.telemetry.tracer import TraceSampler, install_tracer, uninstall_tracer
from repro.workloads.generator import EvaluationSetConfig, build_evaluation_set

# The error types a Hypervisor crash manifests as at the gateway: the
# crash itself, and the stale-session rejections that follow a restart.
CRASH_ERROR_TYPES = frozenset({"HypervisorCrashError", "UnknownSessionError"})


@dataclass
class RecoveryBenchConfig:
    """One recovery-bench invocation: fleet, load, and crash schedule."""

    seed: int = 1
    device_count: int = 2
    hevms_per_device: int = 2
    tenants: int = 3
    requests_per_tenant: int = 4   # per phase; two phases around a sync
    crash_rate: float = 0.2        # per crash decision point (2 / bundle)
    min_crashes: int = 3
    max_crashes: int = 4
    checkpoint_interval: int = 4
    sync_txs: int = 6              # mid-run block size
    max_attempts: int = 5
    backoff_us: float = 200.0
    breaker_threshold: int = 5
    breaker_reset_us: float = 50_000.0
    trace_sample_rate: float = 1.0
    security_level: str = "full"
    blocks: int = 2
    txs_per_block: int = 6

    @classmethod
    def smoke(cls, seed: int = 1) -> "RecoveryBenchConfig":
        """CI-sized: fewer tenants/requests, crash schedule kept hot."""
        return cls(
            seed=seed,
            tenants=2,
            requests_per_tenant=3,
            crash_rate=0.2,
            min_crashes=3,
            max_crashes=3,
            blocks=1,
            txs_per_block=4,
            sync_txs=4,
        )


@dataclass
class _RunArtifacts:
    """Everything one deployment run leaves behind for the gates."""

    trace_hash: str
    metrics_hash: str
    wire_hash: str
    digest: str
    loads: list[LoadReport]
    crashes_fired: int
    restarts: int
    affected: list
    checkpoints_written: int
    journal_records: int
    store_bytes: int

    @property
    def completed(self) -> int:
        return sum(load.completed for load in self.loads)

    @property
    def failed(self) -> int:
        return sum(load.failed for load in self.loads)

    @property
    def rejected(self) -> int:
        return sum(load.rejected for load in self.loads)


def _world_digest(service) -> str:
    """SHA-256 over the logical ORAM content: tree ∪ stash, by key."""
    client = service.shared_oram_client
    digest = hashlib.sha256()
    if client is None:
        return digest.hexdigest()
    content: dict[bytes, bytes] = {}
    # Read the raw server (not any fault wrapper) and decrypt under the
    # client's pinned versions — bypassing _decrypt_slot keeps the
    # client's stats untouched, so digesting perturbs nothing.
    for node, bucket in enumerate(service.oram_server.snapshot_tree()):
        aad = client._bucket_aad(node, client._node_versions.get(node, 0))
        for blob in bucket:
            plain = client._cipher.decrypt(blob[:12], blob[12:], aad)
            if plain[0] != _KIND_REAL:
                continue
            key_length = int.from_bytes(plain[1:3], "big")
            content[plain[3:3 + key_length]] = plain[67:67 + client.block_size]
    for key, payload in client._stash.items():
        content[key] = payload.ljust(client.block_size, b"\x00")
    for key in sorted(content):
        digest.update(len(key).to_bytes(2, "big"))
        digest.update(key)
        digest.update(content[key])
    return digest.hexdigest()


def _wire_hash(loads: list[LoadReport]) -> str:
    """SHA-256 over every completed request's wire bytes, in order."""
    digest = hashlib.sha256()
    for load in loads:
        for request in load.outcomes:
            if request.failure is not None or request.result is None:
                continue
            message = request.result
            if hasattr(message, "ciphertext"):
                digest.update(message.nonce)
                digest.update(message.ciphertext)
                if message.signature is not None:
                    digest.update(message.signature.to_bytes())
            else:
                digest.update(bytes(message))
    return digest.hexdigest()


def _affected_requests(loads: list[LoadReport]) -> list:
    """Requests a crash (or post-restart stale session) touched."""
    affected = []
    for load in loads:
        for request in load.outcomes:
            touched = False
            if request.recovery is not None and CRASH_ERROR_TYPES & set(
                request.recovery.recovered_errors
            ):
                touched = True
            if (
                request.failure is not None
                and request.failure.cause_type in CRASH_ERROR_TYPES
            ):
                touched = True
            if touched:
                affected.append(request)
    return affected


def _run_deployment(
    config: RecoveryBenchConfig, *, checkpointing: bool, crash_rate: float
) -> _RunArtifacts:
    """One full serving run: load, mid-run block sync, load again."""
    evalset = build_evaluation_set(
        EvaluationSetConfig(blocks=config.blocks, txs_per_block=config.txs_per_block)
    )
    service = HarDTAPEService(
        evalset.node,
        SecurityFeatures.from_level(config.security_level),
        device_count=config.device_count,
        device_config=DeviceConfig(hevm_count=config.hevms_per_device),
        charge_fees=False,
    )
    metrics = MetricsRegistry()
    plan = FaultPlan(
        config.seed,
        [
            FaultRule(
                FaultKind.HYPERVISOR_CRASH,
                crash_rate,
                max_fires=config.max_crashes,
            )
        ],
    )
    injector = FaultInjector(plan, metrics)
    injector.arm_service(service)
    tracer = install_tracer(
        service.clock, TraceSampler(config.trace_sample_rate, config.seed)
    )
    try:
        store = DurableStore()
        manager: RecoveryManager | None = None
        supervisor: HypervisorSupervisor | None = None
        if checkpointing:
            manager = RecoveryManager(
                service.devices[0],
                store,
                checkpoint_interval=config.checkpoint_interval,
            )
            manager.attach(service)
            supervisor = HypervisorSupervisor(
                service, manager, store, injector=injector, metrics=metrics
            )
        executor = ResilientServiceExecutor(
            service,
            retry=RetryPolicy(
                max_attempts=config.max_attempts, backoff_us=config.backoff_us
            ),
            metrics=metrics,
            failure_threshold=config.breaker_threshold,
            breaker_reset_us=config.breaker_reset_us,
            supervisor=supervisor,
        )
        gateway = Gateway(executor, GatewayConfig(), metrics=metrics, tracer=tracer)

        # Each tenant attests every device through a SessionDirectory, so
        # payloads re-resolve their session after a restart re-join.
        sessions: list[LoadSession] = []
        transactions = evalset.transactions
        for tenant in range(config.tenants):
            client = PreExecutionClient(
                service.manufacturer.root_public_key,
                rng_seed=bytes([tenant + 1]) * 32,
            )
            directory = SessionDirectory()
            for index, device in enumerate(service.devices):
                directory.set(index, client.connect(service, device))
            if supervisor is not None:

                def rejoin(device_index, device, client=client, directory=directory):
                    directory.set(device_index, client.connect(service, device))

                supervisor.rejoin_callbacks.append(rejoin)
            home = tenant % config.device_count

            def make_payload(ordinal: int, offset: int = tenant, directory=directory):
                tx = transactions[(offset + ordinal) % len(transactions)]
                bundle = TransactionBundle(
                    transactions=(tx,), block_number=service.synced_height
                )
                return ReattachableBundle(directory, encode_bundle(bundle))

            sessions.append(
                LoadSession(
                    session_id=directory.get(home).session_id,
                    make_payload=make_payload,
                    device_index=home,
                )
            )

        loads: list[LoadReport] = []
        for phase in range(2):
            loads.append(
                run_closed_loop(
                    gateway,
                    sessions,
                    requests_per_session=config.requests_per_tenant,
                )
            )
            if phase == 0:
                # A fresh block lands on-chain mid-run; sync it so the
                # final digest reflects state a crash could corrupt.
                evalset.node.add_block(list(transactions[: config.sync_txs]))
                service.sync_new_blocks()
        trace_json = render_chrome_trace(tracer)
    finally:
        uninstall_tracer(service.clock)

    if supervisor is not None and supervisor.manager is not None:
        manager = supervisor.manager  # latest generation, cumulative counters
    return _RunArtifacts(
        trace_hash=hashlib.sha256(trace_json.encode()).hexdigest(),
        metrics_hash=hashlib.sha256(
            json.dumps(metrics.snapshot(), sort_keys=True).encode()
        ).hexdigest(),
        wire_hash=_wire_hash(loads),
        digest=_world_digest(service),
        loads=loads,
        crashes_fired=plan.fires(FaultKind.HYPERVISOR_CRASH),
        restarts=supervisor.restarts if supervisor is not None else 0,
        affected=_affected_requests(loads),
        checkpoints_written=manager.checkpoints_written if manager else 0,
        journal_records=manager.records_written if manager else 0,
        store_bytes=store.total_bytes(),
    )


def _run_rollback_attack(config: RecoveryBenchConfig) -> dict:
    """Scripted malicious SP: stale tree after restart, then store rollback."""
    evalset = build_evaluation_set(
        EvaluationSetConfig(blocks=config.blocks, txs_per_block=config.txs_per_block)
    )
    service = HarDTAPEService(
        evalset.node,
        SecurityFeatures.from_level(config.security_level),
        device_count=config.device_count,
        device_config=DeviceConfig(hevm_count=config.hevms_per_device),
        charge_fees=False,
    )
    store = DurableStore()
    manager = RecoveryManager(
        service.devices[0], store, checkpoint_interval=config.checkpoint_interval
    )
    manager.attach(service)
    supervisor = HypervisorSupervisor(service, manager, store)
    client = service.shared_oram_client
    assert client is not None

    probe_key = b"recovery-bench/probe"
    client.access(probe_key, b"value-before-snapshot")
    manager.checkpoint()
    stale_tree = service.oram_server.snapshot_tree()
    # The deployment moves on: versions advance past the snapshot.
    client.access(probe_key, b"value-after-snapshot")
    for _ in range(2):
        client.access(probe_key)

    device = service.devices[0]
    device.hypervisor.crash("sp-rollback-attack")
    service.oram_server.restore_tree(stale_tree)
    supervisor.restart(0)

    detected_first_access = False
    served_version = expected_version = None
    client = service.shared_oram_client
    try:
        client.access(probe_key)
    except RollbackDetectedError as error:
        detected_first_access = True
        served_version = error.served_version
        expected_version = error.expected_version

    healed = False
    if detected_first_access:
        supervisor.resync(0)
        client = service.shared_oram_client
        # The probe block never came from chain state, so re-sync drops
        # it — the stale SP copy must NOT resurface.
        healed = client.access(probe_key) is None
        client.access(probe_key, b"post-resync")
        value = client.access(probe_key)
        healed = healed and value is not None and value.startswith(b"post-resync")

    # Second attack: roll back checkpoint + journal *together*.  The
    # hardware monotonic counter must refuse the boot outright.
    store_snapshot = store.snapshot()
    client.access(probe_key, b"advance-the-counter")
    device.hypervisor.crash("sp-store-rollback")
    store.restore(store_snapshot)
    store_rollback_refused = False
    try:
        RecoveryManager.recover(device, store)
    except RecoveryIntegrityError:
        store_rollback_refused = True

    return {
        "detected_first_access": detected_first_access,
        "served_version": served_version,
        "expected_version": expected_version,
        "rollbacks_counted": (
            service.shared_oram_client.stats.rollbacks_detected if detected_first_access else 0
        ),
        "healed": healed,
        "resyncs": supervisor.resyncs,
        "store_rollback_refused": store_rollback_refused,
    }


@dataclass
class RecoveryBenchReport:
    """All three scenarios' artifacts plus the pass/fail gates."""

    seed: int
    identity: dict[str, bool]
    baseline: dict
    crash: dict
    rollback: dict
    gate_failures: list[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.gate_failures

    def to_json(self) -> str:
        return json.dumps(
            {
                "bench": "recovery",
                "seed": self.seed,
                "identity": self.identity,
                "baseline": self.baseline,
                "crash": self.crash,
                "rollback": self.rollback,
                "gate_failures": self.gate_failures,
                "passed": self.passed,
            },
            indent=2,
            sort_keys=True,
        )

    def summary_lines(self) -> list[str]:
        lines = [
            "identity (checkpointing off vs on, zero crashes): "
            + (
                "byte-identical"
                if all(self.identity.values())
                else f"DIVERGED {sorted(k for k, v in self.identity.items() if not v)}"
            ),
            f"crash run: {self.crash['crashes_fired']} crash(es), "
            f"{self.crash['restarts']} restart(s), "
            f"{self.crash['completed']} ok / {self.crash['failed']} failed / "
            f"{self.crash['rejected']} shed",
            f"  affected by crashes: {self.crash['affected_total']} "
            f"({self.crash['affected_completed']} completed after recovery, "
            f"{self.crash['affected_failed_typed']} typed FAILED)",
            f"  durable store: {self.crash['checkpoints_written']} checkpoint(s), "
            f"{self.crash['journal_records']} journal record(s), "
            f"{self.crash['store_bytes']} bytes",
            "  world-state digest "
            + (
                "matches zero-crash baseline"
                if self.crash["digest"] == self.baseline["digest"]
                else "MISMATCH vs baseline"
            ),
            "rollback attack: "
            + (
                f"detected at first post-restart access "
                f"(version {self.rollback['served_version']} served, "
                f"{self.rollback['expected_version']} pinned), "
                + ("re-sync healed" if self.rollback["healed"] else "re-sync FAILED")
                if self.rollback["detected_first_access"]
                else "NOT DETECTED"
            ),
            "store rollback: "
            + (
                "refused at boot"
                if self.rollback["store_rollback_refused"]
                else "NOT refused"
            ),
        ]
        if self.gate_failures:
            lines.append("gate failures:")
            lines.extend(f"  - {failure}" for failure in self.gate_failures)
        else:
            lines.append("all gates passed")
        return lines


def _artifacts_obj(run: _RunArtifacts) -> dict:
    affected_completed = sum(1 for r in run.affected if r.failure is None)
    affected_failed_typed = sum(
        1
        for r in run.affected
        if r.failure is not None and r.failure.error_type and r.failure.cause_type
    )
    return {
        "trace_hash": run.trace_hash,
        "metrics_hash": run.metrics_hash,
        "wire_hash": run.wire_hash,
        "digest": run.digest,
        "completed": run.completed,
        "failed": run.failed,
        "rejected": run.rejected,
        "crashes_fired": run.crashes_fired,
        "restarts": run.restarts,
        "affected_total": len(run.affected),
        "affected_completed": affected_completed,
        "affected_failed_typed": affected_failed_typed,
        "checkpoints_written": run.checkpoints_written,
        "journal_records": run.journal_records,
        "store_bytes": run.store_bytes,
    }


def run_recovery_bench(config: RecoveryBenchConfig) -> RecoveryBenchReport:
    """All three scenarios, then the gates."""
    plain = _run_deployment(config, checkpointing=False, crash_rate=0.0)
    baseline = _run_deployment(config, checkpointing=True, crash_rate=0.0)
    crash = _run_deployment(
        config, checkpointing=True, crash_rate=config.crash_rate
    )
    rollback = _run_rollback_attack(config)

    identity = {
        "trace": plain.trace_hash == baseline.trace_hash,
        "metrics": plain.metrics_hash == baseline.metrics_hash,
        "wire": plain.wire_hash == baseline.wire_hash,
        "digest": plain.digest == baseline.digest,
    }

    failures: list[str] = []
    for name, equal in identity.items():
        if not equal:
            failures.append(
                f"identity: armed checkpointing changed the {name} bytes "
                f"of a zero-crash run"
            )
    if crash.crashes_fired < config.min_crashes:
        failures.append(
            f"crash run fired {crash.crashes_fired} crash(es), "
            f"need >= {config.min_crashes} (raise crash_rate or load)"
        )
    crash_obj = _artifacts_obj(crash)
    unaccounted = (
        crash_obj["affected_total"]
        - crash_obj["affected_completed"]
        - crash_obj["affected_failed_typed"]
    )
    if unaccounted:
        failures.append(
            f"{unaccounted} crash-affected request(s) neither completed nor "
            f"terminated as a typed failure"
        )
    if crash.digest != baseline.digest:
        failures.append(
            "crash run's converged world-state digest differs from the "
            "zero-crash baseline"
        )
    if not rollback["detected_first_access"]:
        failures.append(
            "SP tree rollback was not detected at the first post-restart access"
        )
    elif not rollback["healed"]:
        failures.append("re-sync did not heal the deployment after rollback")
    if not rollback["store_rollback_refused"]:
        failures.append(
            "durable-store rollback was not refused by the monotonic counter"
        )

    return RecoveryBenchReport(
        seed=config.seed,
        identity=identity,
        baseline=_artifacts_obj(baseline),
        crash=crash_obj,
        rollback=rollback,
        gate_failures=failures,
    )


# Public aliases: other planes' identity gates (async_serving's
# c10k-bench) hash the same artifacts a recovery run does.
world_digest = _world_digest
wire_hash = _wire_hash

__all__ = [
    "CRASH_ERROR_TYPES",
    "RecoveryBenchConfig",
    "RecoveryBenchReport",
    "run_recovery_bench",
    "wire_hash",
    "world_digest",
]
