"""repro.recovery — crash-consistent checkpointing and SP rollback defense.

The recovery plane keeps a HarDTAPE deployment *the same deployment*
across a Hypervisor crash: trusted state (ORAM stash/position map,
anti-rollback version pins, the AEAD nonce counter, session metadata,
the last verified sync root) is sealed into an untrusted
:class:`DurableStore` as periodic checkpoints plus a write-ahead
journal; recovery unseals the latest checkpoint, replays the journal
(idempotent by construction), rebuilds the ORAM client, and re-attests
every tenant.  Freshness of the store is pinned by the device's hardware
monotonic counter; freshness of the SP's ORAM tree by the restored
per-node version pins.

``repro.recovery.bench`` is imported lazily (it pulls in the serving
stack); everything else is re-exported here.
"""

from repro.recovery.store import DurableStore
from repro.recovery.state import SessionRecord, TrustedState
from repro.recovery import journal
from repro.recovery.manager import RecoveryIntegrityError, RecoveryManager
from repro.recovery.supervisor import (
    HypervisorSupervisor,
    ReattachableBundle,
    SessionDirectory,
)

__all__ = [
    "DurableStore",
    "HypervisorSupervisor",
    "ReattachableBundle",
    "RecoveryIntegrityError",
    "RecoveryManager",
    "SessionDirectory",
    "SessionRecord",
    "TrustedState",
    "journal",
]
