"""Write-ahead journal records and their replay semantics.

Four record kinds, each an *absolute* assignment over the checkpointed
:class:`~repro.recovery.state.TrustedState`:

* ``lease`` — a write-ahead nonce lease: "nonces up to N may be on the
  wire".  Written *before* the ORAM client seals anything with them, so
  a crash mid-access can never lead the successor to reuse a nonce the
  SP has already seen ciphertext under.
* ``access`` — the trusted-state delta of one completed ORAM access:
  the changed stash entries (``None`` = removed), changed positions,
  the path's new node versions, and the post-access nonce counter.
* ``session`` — session metadata upsert (re-join target after restart).
* ``root`` — the Merkle root block sync just verified.

Replay is **idempotent by construction**: every field a record touches
is set to an absolute value (or ``max``-ed, for the lease watermark), so
applying any prefix twice equals applying it once — the property test in
``tests/property/test_journal_replay.py`` hammers exactly this, because
a recovery that double-applies a record after an ill-timed crash must be
harmless.
"""

from __future__ import annotations

import json
from typing import Iterable

from repro.recovery.state import SessionRecord, TrustedState

LEASE = "lease"
ACCESS = "access"
SESSION = "session"
ROOT = "root"

KINDS = (LEASE, ACCESS, SESSION, ROOT)


def encode_record(kind: str, payload: dict) -> bytes:
    if kind not in KINDS:
        raise ValueError(f"unknown journal record kind {kind!r}")
    return json.dumps(
        {"kind": kind, "payload": payload},
        sort_keys=True,
        separators=(",", ":"),
    ).encode()


def decode_record(data: bytes) -> tuple[str, dict]:
    obj = json.loads(data.decode())
    kind = obj["kind"]
    if kind not in KINDS:
        raise ValueError(f"unknown journal record kind {kind!r}")
    return kind, obj["payload"]


# ----------------------------------------------------------------------
# Payload builders (trusted side, at journaling time)
# ----------------------------------------------------------------------


def lease_payload(until: int) -> dict:
    return {"until": until}


def access_payload(
    stash: dict[bytes, bytes | None],
    positions: dict[bytes, int | None],
    versions: dict[int, int],
    nonce_counter: int,
) -> dict:
    return {
        "stash": {
            k.hex(): (v.hex() if v is not None else None)
            for k, v in stash.items()
        },
        "positions": {k.hex(): v for k, v in positions.items()},
        "versions": {str(node): v for node, v in versions.items()},
        "nonce": nonce_counter,
    }


def session_payload(record: SessionRecord) -> dict:
    return record.to_obj()


def root_payload(state_root: bytes) -> dict:
    return {"root": state_root.hex()}


# ----------------------------------------------------------------------
# Replay (recovery side)
# ----------------------------------------------------------------------


def apply_record(state: TrustedState, kind: str, payload: dict) -> None:
    """Apply one record; absolute semantics make re-application a no-op."""
    if kind == LEASE:
        state.leased_until = max(state.leased_until, int(payload["until"]))
    elif kind == ACCESS:
        for key_hex, value_hex in payload["stash"].items():
            key = bytes.fromhex(key_hex)
            if value_hex is None:
                state.stash.pop(key, None)
            else:
                state.stash[key] = bytes.fromhex(value_hex)
        for key_hex, leaf in payload["positions"].items():
            key = bytes.fromhex(key_hex)
            if leaf is None:
                state.positions.pop(key, None)
            else:
                state.positions[key] = int(leaf)
        for node, version in payload["versions"].items():
            state.node_versions[int(node)] = int(version)
        state.nonce_counter = int(payload["nonce"])
    elif kind == SESSION:
        record = SessionRecord.from_obj(payload)
        state.sessions[record.session_id.hex()] = record
    elif kind == ROOT:
        state.sync_root = bytes.fromhex(payload["root"])
    else:  # pragma: no cover - decode_record already rejects
        raise ValueError(f"unknown journal record kind {kind!r}")


def replay(state: TrustedState, records: Iterable[tuple[str, dict]]) -> TrustedState:
    """Apply ``records`` in order; returns ``state`` for chaining.

    After replay the nonce counter is clamped up to the lease watermark:
    a crash may have burned leased nonces the access record never
    confirmed, and burning the rest of the lease is always safe while
    reuse never is.
    """
    for kind, payload in records:
        apply_record(state, kind, payload)
    state.nonce_counter = max(state.nonce_counter, state.leased_until)
    return state


__all__ = [
    "ACCESS",
    "KINDS",
    "LEASE",
    "ROOT",
    "SESSION",
    "access_payload",
    "apply_record",
    "decode_record",
    "encode_record",
    "lease_payload",
    "replay",
    "root_payload",
    "session_payload",
]
