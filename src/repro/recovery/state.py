"""The checkpointed trusted state and its deterministic encoding.

A :class:`TrustedState` is everything the Hypervisor must carry across a
cold restart to come back *the same deployment*: the ORAM client's stash
and position map, the per-node anti-rollback version pins, the AEAD
nonce counter (plus the write-ahead lease watermark), the shared ORAM
key, session *metadata*, and the last Merkle root block sync verified.

Session metadata deliberately excludes channel AES keys: the channels
are forward-secret (fresh DHKE per session), so a checkpoint that could
resurrect them would be the vulnerability, not the feature.  Recovery
re-runs attestation + DHKE instead; the metadata records who must be
re-joined.

Encoding is deterministic JSON (sorted keys, fixed separators, bytes as
hex) so identical states seal to identical plaintexts — the property the
journal-replay idempotence tests assert on.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field


def _hex_map(mapping: dict[bytes, bytes]) -> dict[str, str]:
    return {k.hex(): v.hex() for k, v in mapping.items()}


@dataclass
class SessionRecord:
    """Who held a session (re-join target), never the channel key."""

    session_id: bytes
    user_public: bytes       # serialized user session public key
    device_index: int
    established_at_us: float

    def to_obj(self) -> dict:
        return {
            "session_id": self.session_id.hex(),
            "user_public": self.user_public.hex(),
            "device_index": self.device_index,
            "established_at_us": self.established_at_us,
        }

    @classmethod
    def from_obj(cls, obj: dict) -> "SessionRecord":
        return cls(
            session_id=bytes.fromhex(obj["session_id"]),
            user_public=bytes.fromhex(obj["user_public"]),
            device_index=int(obj["device_index"]),
            established_at_us=float(obj["established_at_us"]),
        )


@dataclass
class TrustedState:
    """The recoverable trusted state of one deployment."""

    stash: dict[bytes, bytes] = field(default_factory=dict)
    positions: dict[bytes, int] = field(default_factory=dict)
    node_versions: dict[int, int] = field(default_factory=dict)
    nonce_counter: int = 0
    leased_until: int = 0             # write-ahead nonce lease watermark
    oram_key: bytes = b""
    block_size: int = 1024
    sessions: dict[str, SessionRecord] = field(default_factory=dict)
    sync_root: bytes | None = None

    def encode(self) -> bytes:
        obj = {
            "stash": _hex_map(self.stash),
            "positions": {k.hex(): v for k, v in self.positions.items()},
            "node_versions": {str(k): v for k, v in self.node_versions.items()},
            "nonce_counter": self.nonce_counter,
            "leased_until": self.leased_until,
            "oram_key": self.oram_key.hex(),
            "block_size": self.block_size,
            "sessions": {
                sid: record.to_obj() for sid, record in self.sessions.items()
            },
            "sync_root": self.sync_root.hex() if self.sync_root else None,
        }
        return json.dumps(obj, sort_keys=True, separators=(",", ":")).encode()

    @classmethod
    def decode(cls, data: bytes) -> "TrustedState":
        obj = json.loads(data.decode())
        return cls(
            stash={
                bytes.fromhex(k): bytes.fromhex(v)
                for k, v in obj["stash"].items()
            },
            positions={
                bytes.fromhex(k): int(v) for k, v in obj["positions"].items()
            },
            node_versions={
                int(k): int(v) for k, v in obj["node_versions"].items()
            },
            nonce_counter=int(obj["nonce_counter"]),
            leased_until=int(obj["leased_until"]),
            oram_key=bytes.fromhex(obj["oram_key"]),
            block_size=int(obj["block_size"]),
            sessions={
                sid: SessionRecord.from_obj(rec)
                for sid, rec in obj["sessions"].items()
            },
            sync_root=(
                bytes.fromhex(obj["sync_root"]) if obj["sync_root"] else None
            ),
        )

    def copy(self) -> "TrustedState":
        return TrustedState.decode(self.encode())


__all__ = ["SessionRecord", "TrustedState"]
