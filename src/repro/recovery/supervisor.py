"""Restart orchestration: from typed crash to re-joined deployment.

:class:`HypervisorSupervisor` plugs into
:class:`~repro.faults.policy.ResilientServiceExecutor` (its
``supervisor`` seam) and turns the two non-retryable recovery-plane
errors into retryable situations by *repairing the world first*:

* :class:`~repro.hypervisor.hypervisor.HypervisorCrashError` →
  :meth:`restart`: charge the cold-boot cost, recover trusted state from
  the durable store (checkpoint + journal replay), rebuild the ORAM
  client, cold-restart the firmware at the next generation, re-arm the
  fault plane, and invoke every tenant's re-join callback so attestation
  + DHKE re-establish live sessions — each phase a telemetry span on the
  ``recovery`` layer.
* :class:`~repro.oram.client.RollbackDetectedError` → :meth:`resync`:
  the SP served a stale tree; discard it and rebuild from verified chain
  state (the paper's block-sync path), keeping the nonce counter
  monotone.

In-flight work is *re-admitted* when its payload can re-resolve a live
session (:class:`ReattachableBundle`), and terminates as a typed FAILED
otherwise — either way under the gateway's existing deadline/slot
accounting, never silently.
"""

from __future__ import annotations

from repro.hypervisor.hypervisor import HypervisorCrashError, UnknownSessionError
from repro.oram.client import RollbackDetectedError
from repro.recovery.manager import RecoveryManager
from repro.recovery.store import DurableStore
from repro.telemetry.tracer import tracer_for


class SessionDirectory:
    """device index → the tenant's *current* session on that device.

    Re-join replaces entries in place, so payloads resolving through the
    directory always seal for a session the (possibly restarted)
    Hypervisor actually knows.
    """

    def __init__(self) -> None:
        self._sessions: dict[int, object] = {}

    def set(self, device_index: int, session) -> None:
        self._sessions[device_index] = session

    def get(self, device_index: int):
        return self._sessions[device_index]

    @property
    def device_indices(self) -> tuple[int, ...]:
        return tuple(sorted(self._sessions))


class ReattachableBundle:
    """A failover payload that re-resolves its session at seal time.

    The plain :class:`~repro.faults.policy.FailoverBundle` binds session
    objects at construction; after a Hypervisor restart those are dead
    and every re-seal lands as ``UnknownSessionError``.  Resolving
    through a :class:`SessionDirectory` instead means a retried attempt
    automatically picks up the re-joined session — the "re-admit
    in-flight gateway work" half of the recovery contract.
    """

    def __init__(self, directory: SessionDirectory, encoded_bundle: bytes) -> None:
        self._directory = directory
        self._encoded = encoded_bundle

    @property
    def device_indices(self) -> tuple[int, ...]:
        return self._directory.device_indices

    def session_for(self, device_index: int) -> bytes:
        return self._directory.get(device_index).session_id

    def seal_for(self, device_index: int):
        session = self._directory.get(device_index)
        if session.device.hypervisor.features.encryption:
            return session.channel.seal(self._encoded)
        return self._encoded

    def open_with(self, device_index: int, sealed_out):
        session = self._directory.get(device_index)
        if session.device.hypervisor.features.encryption:
            return session.channel.open(sealed_out)
        return sealed_out


class HypervisorSupervisor:
    """Repairs the deployment when the executor hits a dead Hypervisor."""

    def __init__(
        self,
        service,
        manager: RecoveryManager | None,
        store: DurableStore,
        injector=None,
        metrics=None,
    ) -> None:
        self.service = service
        self.manager = manager
        self.store = store
        self._injector = injector
        self._metrics = metrics
        # Tenant-side re-join hooks: callables ``(device_index, device)``
        # that re-run attestation + DHKE and update the tenant's
        # SessionDirectory.  Registered per tenant at setup.
        self.rejoin_callbacks: list = []
        self.restarts = 0
        self.resyncs = 0

    # ------------------------------------------------------------------
    # Executor seam
    # ------------------------------------------------------------------

    def intervene(self, error: Exception, device_index: int) -> bool:
        """Repair after ``error``; True iff a retry is now worthwhile."""
        if isinstance(error, HypervisorCrashError):
            self.restart(device_index)
            return True
        if isinstance(error, RollbackDetectedError):
            self.resync(device_index)
            return True
        if isinstance(error, UnknownSessionError):
            # Stale session id after a restart this supervisor performed:
            # the retry re-seals, and payloads resolving through a
            # SessionDirectory pick up the re-joined session.  Without a
            # prior restart it is a routing bug — propagate.
            return self.restarts > 0
        return False

    # ------------------------------------------------------------------
    # Cold restart
    # ------------------------------------------------------------------

    def restart(self, device_index: int) -> None:
        """The paper-faithful restart protocol, on virtual time.

        boot (secure boot + HEVM reset) → restore (unseal checkpoint,
        replay journal, rebuild the ORAM client) → rejoin (re-attest
        every tenant).  Each phase is charged through the cost model and
        recorded as a ``recovery``-layer span.
        """
        service = self.service
        device = service.devices[device_index]
        clock = service.clock
        cost = service.cost
        tracer = tracer_for(clock)

        tracer.record(
            "recovery.boot", "recovery", cost.hypervisor_reboot_us,
            device=device_index, generation=device.restarts + 1,
        )
        clock.advance_us(cost.hypervisor_reboot_us)

        # The durable store is sealed under (and NVRAM-pinned by) the
        # deployment's *anchor* device — the one the manager was built
        # on — so recovery always verifies against that anchor, whatever
        # device's hypervisor actually died.
        anchor = (
            self.manager.device if self.manager is not None
            else service.devices[0]
        )
        manager, state, replayed = RecoveryManager.recover(
            anchor,
            self.store,
            checkpoint_interval=(
                self.manager.checkpoint_interval if self.manager else 8
            ),
        )
        restore_us = (
            cost.checkpoint_restore_us
            + replayed * cost.journal_replay_record_us
        )
        tracer.record(
            "recovery.restore", "recovery", restore_us,
            epoch=manager.epoch, replayed_records=replayed,
        )
        clock.advance_us(restore_us)

        if self.manager is not None:
            # Carry the deployment-cumulative observability counters
            # across generations.
            manager.checkpoints_written += self.manager.checkpoints_written
            manager.records_written += self.manager.records_written
        client = manager.rebuild_client(
            state, service.oram_server, generation=device.restarts + 1
        )
        device.restart_hypervisor(client, oram_key=state.oram_key)
        service.install_oram_client(client)
        manager.reattach(service, client)
        self.manager = manager
        if self._injector is not None:
            # Fresh hypervisor/cores need re-arming; the shared client's
            # server re-wraps (arm_device skips double-wrapping).
            self._injector.arm_device(device)
        service.stats.hypervisor_restarts += 1
        self.restarts += 1
        if self._metrics is not None:
            self._metrics.counter("recovery.restarts").inc()

        with tracer.span(
            "recovery.rejoin", "recovery", device=device_index
        ) as span:
            for callback in self.rejoin_callbacks:
                callback(device_index, device)
            span.set(sessions=len(self.rejoin_callbacks))

    # ------------------------------------------------------------------
    # Rollback re-sync
    # ------------------------------------------------------------------

    def resync(self, device_index: int = 0) -> None:
        """Recovery policy for a detected SP tree rollback.

        The stale tree is worthless: discard it wholesale, keep the
        nonce counter (monotonicity must span the blobs the SP has
        already seen), and rebuild from the verified synced state —
        which the last pinned sync root attests.  Ends with a fresh
        checkpoint so the stale journal epoch can never resurface.
        """
        service = self.service
        client = service.shared_oram_client
        device = service.devices[device_index]
        assert client is not None and device.oram_backend is not None
        with tracer_for(service.clock).span(
            "recovery.resync", "recovery", device=device_index
        ) as span:
            client.server.reset_tree()
            client.forget_tree_state()
            pages = device.oram_backend.sync_world(
                service._synced_state.accounts
            )
            span.set(pages=pages)
        if self.manager is not None:
            self.manager.checkpoint()
        self.resyncs += 1
        if self._metrics is not None:
            self._metrics.counter("recovery.resyncs").inc()


__all__ = ["HypervisorSupervisor", "ReattachableBundle", "SessionDirectory"]
