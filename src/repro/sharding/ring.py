"""A deterministic consistent-hash ring for page-key placement.

HarDTAPE makes every state read one fixed-size ORAM page access, so the
world state partitions cleanly by page key: the ring hashes each shard
into ``vnodes`` points on a 64-bit circle and assigns a key to the
first shard point at or clockwise of the key's own hash.  Adding or
removing a shard therefore only moves the keys that land in the new
(or vacated) arcs — about K/N of K keys for an N-shard ring — while
every other key keeps its placement, which is what lets a live fleet
grow without re-encrypting every ORAM tree.

Everything is keyed BLAKE2b, so two rings built with the same seed,
shard ids and vnode count are byte-identical — ``table_digest`` exists
so tests (and operators comparing two gateways) can assert exactly
that.  Mutation returns a *new* ring: placement tables are part of the
deployment's attested configuration, never edited in place.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from typing import Iterable, Sequence

from repro.sharding.errors import RingConfigurationError

DEFAULT_RING_SEED = b"hardtape-shard-ring"


def _hash64(seed: bytes, data: bytes) -> int:
    """A keyed 64-bit point on the ring circle."""
    digest = hashlib.blake2b(data, digest_size=8, key=seed).digest()
    return int.from_bytes(digest, "big")


class ConsistentHashRing:
    """Maps page keys to shard ids with minimal-movement semantics."""

    def __init__(
        self,
        shard_ids: Iterable[int],
        *,
        vnodes: int = 128,
        seed: bytes = DEFAULT_RING_SEED,
    ) -> None:
        ids = list(shard_ids)
        if not ids:
            raise RingConfigurationError("a ring needs at least one shard")
        if len(set(ids)) != len(ids):
            raise RingConfigurationError(f"duplicate shard ids in {ids}")
        if any(sid < 0 for sid in ids):
            raise RingConfigurationError("shard ids must be non-negative")
        if vnodes < 1:
            raise RingConfigurationError("vnodes must be >= 1")
        if not 1 <= len(seed) <= 64:
            raise RingConfigurationError("ring seed must be 1..64 bytes")
        self._seed = bytes(seed)
        self._vnodes = vnodes
        self._shard_ids = tuple(sorted(ids))
        # Ties on the 64-bit point are broken by (point, shard, replica):
        # deterministic, and astronomically rare to begin with.
        points = []
        for sid in self._shard_ids:
            for replica in range(vnodes):
                token = b"vnode|%d|%d" % (sid, replica)
                points.append((_hash64(self._seed, token), sid, replica))
        points.sort()
        self._points = points
        self._keys = [point for point, _, _ in points]

    # -- placement -----------------------------------------------------

    def shard_for(self, key: bytes) -> int:
        """The shard owning ``key``: first point clockwise of its hash."""
        point = _hash64(self._seed, b"key|" + key)
        index = bisect_right(self._keys, point)
        if index == len(self._keys):
            index = 0  # wrap around the circle
        return self._points[index][1]

    def shards_for(self, keys: Iterable[bytes]) -> tuple[int, ...]:
        """The distinct shards touched by a key set, sorted ascending.

        Sorted order is the fleet-wide lock order for two-phase pins:
        every transaction acquiring in this order makes pin cycles (and
        so deadlocks) impossible.
        """
        return tuple(sorted({self.shard_for(key) for key in keys}))

    # -- topology ------------------------------------------------------

    @property
    def shard_ids(self) -> tuple[int, ...]:
        return self._shard_ids

    @property
    def vnodes(self) -> int:
        return self._vnodes

    @property
    def seed(self) -> bytes:
        return self._seed

    def with_shard(self, shard_id: int) -> "ConsistentHashRing":
        """A new ring with ``shard_id`` added; existing arcs unchanged."""
        if shard_id in self._shard_ids:
            raise RingConfigurationError(f"shard {shard_id} already on the ring")
        return ConsistentHashRing(
            self._shard_ids + (shard_id,), vnodes=self._vnodes, seed=self._seed
        )

    def without_shard(self, shard_id: int) -> "ConsistentHashRing":
        """A new ring with ``shard_id`` drained off the circle."""
        if shard_id not in self._shard_ids:
            raise RingConfigurationError(f"shard {shard_id} is not on the ring")
        remaining = [sid for sid in self._shard_ids if sid != shard_id]
        return ConsistentHashRing(remaining, vnodes=self._vnodes, seed=self._seed)

    # -- reproducibility -----------------------------------------------

    def table_digest(self) -> str:
        """SHA-256 over the full point table: the ring's identity.

        Two rings with equal digests route every possible key
        identically — the byte-stability property the seeded-run
        invariant needs from the placement layer.
        """
        hasher = hashlib.sha256()
        hasher.update(b"%d|%d|" % (len(self._shard_ids), self._vnodes))
        for point, sid, replica in self._points:
            hasher.update(point.to_bytes(8, "big"))
            hasher.update(b"%d|%d|" % (sid, replica))
        return hasher.hexdigest()

    def assignment_counts(self, keys: Sequence[bytes]) -> dict[int, int]:
        """How many of ``keys`` each shard owns (balance diagnostics)."""
        counts = {sid: 0 for sid in self._shard_ids}
        for key in keys:
            counts[self.shard_for(key)] += 1
        return counts

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ConsistentHashRing(shards={self._shard_ids}, "
            f"vnodes={self._vnodes}, digest={self.table_digest()[:12]})"
        )
