"""The shard scale-out benchmark (``shard-bench``).

Four seeded, deterministic phases — the sharding plane's acceptance
gates:

1. **Identity** — the same seeded workload against the unsharded
   baseline (one ``ObliviousStateBackend`` over one path tree) and a
   **1-shard** fleet.  A single-shard ring routes every key to shard 0,
   whose client is built with the same derived key and parameters, so
   the runs must be byte-identical: same Chrome trace JSON, same
   metrics snapshot, same ORAM wire trace (leaf sequence + final tree
   ciphertext), same logical world-state digest.
2. **Scale-out** — the workload across 1/2/4/8 shards.  Page accesses
   are independent single-page ORAM queries, so shard servers work in
   parallel; aggregate throughput is total queries over the *makespan*
   (the busiest shard's CPU time).  Gate: ≥ ``min_speedup``× at the
   largest fleet vs one shard — consistent-hash balance is what makes
   or breaks this, which is exactly why it is measured, not assumed.
3. **Per-shard distinguisher** — at the largest fleet, every shard's
   physical leaf trace is attacked separately (the idiom of
   ``bench_security_distinguisher``): frequency-rank matching must
   de-anonymize nothing, and the leaf histogram must pass chi-square
   uniformity.  Sharding must not create a *smaller* anonymity set
   whose skew an adversary could read.
4. **Mixed backends** — a fleet with pyramid shards among path shards
   (per-shard selection, the ``backend_for_working_set`` trade-off)
   returns bit-exact values for every read.

Everything runs on one host process over virtual time; throughput is
the simulated fleet's, not the host's.
"""

from __future__ import annotations

import hashlib
import json
import struct
from collections import Counter
from dataclasses import dataclass, field

from repro.crypto.kdf import Drbg
from repro.hardware.timing import SimClock
from repro.oram import paging
from repro.oram.adapter import ObliviousStateBackend
from repro.oram.client import PathOramClient
from repro.oram.hierarchical import HierarchicalOramServer, PyramidOramClient
from repro.oram.server import OramServer
from repro.security.analysis import frequency_attack, path_uniformity_pvalue
from repro.security.observer import AccessPatternObserver
from repro.serving.metrics import MetricsRegistry
from repro.sharding.backend import (
    PATH_BACKEND,
    PYRAMID_BACKEND,
    ShardedObliviousStateBackend,
    ShardedOramConfig,
    ShardedOramFleet,
    shard_key,
)
from repro.sharding.ring import ConsistentHashRing
from repro.state.account import Account, Address
from repro.state.backend import CODE_PAGE_SIZE, STORAGE_GROUP_SIZE
from repro.telemetry.exporters import render_chrome_trace
from repro.telemetry.tracer import TraceSampler, install_tracer, uninstall_tracer

_KIND_REAL = 1
_READ_KINDS = ("meta", "storage", "code")


@dataclass
class ShardBenchConfig:
    """One shard-bench invocation: world size, load shape, fleet sizes."""

    seed: int = 1
    shard_counts: tuple[int, ...] = (1, 2, 4, 8)
    accounts: int = 64
    storage_groups_per_account: int = 2
    slots_per_group: int = 4
    code_pages_per_account: int = 2
    reads: int = 960
    # A hot subset keeps the workload honestly skewed (hot contracts),
    # the regime where balance and obliviousness are hardest.
    hot_accounts: int = 8
    hot_percent: int = 30
    oram_height: int = 8
    oram_bucket_size: int = 4
    stash_limit_blocks: int = 1024
    decrypt_memo_blocks: int | None = 4096
    query_cpu_us: float = 25.0
    # 256 vnodes keep the busiest of 8 shards under ~15% of the traffic
    # even with the hot-account skew — the balance the 6x gate rides on.
    vnodes: int = 256
    read_cost_us: float = 60.0  # virtual time the driver charges per read
    min_speedup: float = 6.0
    min_pvalue: float = 0.01
    mixed_shard_count: int = 4
    pyramid_cache_blocks: int = 48

    @property
    def max_shards(self) -> int:
        return max(self.shard_counts)

    @classmethod
    def smoke(cls, seed: int = 1) -> "ShardBenchConfig":
        """CI-sized: smaller world and fewer reads, same gates."""
        return cls(seed=seed, accounts=32, reads=480, oram_height=7)


def _master_key(config: ShardBenchConfig) -> bytes:
    return hashlib.sha256(b"hardtape-shard-bench|%d" % config.seed).digest()


def _build_accounts(config: ShardBenchConfig) -> dict[Address, Account]:
    """A deterministic world: every page's expected content is known."""
    accounts: dict[Address, Account] = {}
    for index in range(config.accounts):
        address = hashlib.blake2b(
            b"shardbench-acct-%d" % index, digest_size=20
        ).digest()
        storage: dict[int, int] = {}
        for group in range(config.storage_groups_per_account):
            base = group * STORAGE_GROUP_SIZE
            for slot in range(config.slots_per_group):
                storage[base + slot] = index * 100_000 + group * 1_000 + slot
        code_len = config.code_pages_per_account * CODE_PAGE_SIZE - 64
        code = bytes((index + offset) % 251 for offset in range(code_len))
        accounts[address] = Account(
            balance=10**9 + index,
            nonce=index % 7,
            code=code,
            storage=storage,
        )
    return accounts


def _workload_page_keys(
    accounts: dict[Address, Account], config: ShardBenchConfig
) -> list[bytes]:
    keys: list[bytes] = []
    for address, account in accounts.items():
        keys.append(paging.account_page_key(address))
        for group in range(config.storage_groups_per_account):
            keys.append(
                paging.storage_page_key(address, group * STORAGE_GROUP_SIZE)
            )
        for page in range(config.code_pages_per_account):
            keys.append(paging.code_page_key(address, page))
    return keys


# ----------------------------------------------------------------------
# Wire tap: the SP's view, hashed in arrival order
# ----------------------------------------------------------------------

def _tap_server(hasher, shard_id: int, server) -> None:
    """Hash every adversary-visible access event as it happens."""
    if isinstance(server, HierarchicalOramServer):

        def on_slot(event) -> None:
            hasher.update(b"S" + shard_id.to_bytes(2, "big"))
            hasher.update(event.level.to_bytes(2, "big"))
            hasher.update(event.bucket.to_bytes(4, "big"))
            hasher.update(struct.pack(">d", event.sim_time_us))

        server.add_observer(on_slot)
    else:

        def on_path(event) -> None:
            hasher.update(b"P" + shard_id.to_bytes(2, "big"))
            hasher.update(event.leaf.to_bytes(4, "big"))
            hasher.update(struct.pack(">d", event.sim_time_us))

        server.add_observer(on_path)


def _fold_ciphertext(hasher, shard_id: int, server) -> None:
    """Fold the final at-rest ciphertext into the wire hash."""
    hasher.update(b"T" + shard_id.to_bytes(2, "big"))
    if isinstance(server, HierarchicalOramServer):
        for level, buckets in sorted(server.snapshot_levels().items()):
            hasher.update(level.to_bytes(2, "big"))
            for bucket in buckets:
                for blob in bucket:
                    hasher.update(blob)
    else:
        for bucket in server.snapshot_tree():
            for blob in bucket:
                hasher.update(blob)


# ----------------------------------------------------------------------
# Logical world digest (per backend kind, merged across shards)
# ----------------------------------------------------------------------

def _path_content(client: PathOramClient, server: OramServer) -> dict[bytes, bytes]:
    content: dict[bytes, bytes] = {}
    for node, bucket in enumerate(server.snapshot_tree()):
        aad = client._bucket_aad(node, client._node_versions.get(node, 0))
        for blob in bucket:
            plain = client._cipher.decrypt(blob[:12], blob[12:], aad)
            if plain[0] != _KIND_REAL:
                continue
            key_length = int.from_bytes(plain[1:3], "big")
            content[plain[3:3 + key_length]] = plain[67:67 + client.block_size]
    for key, payload in client._stash.items():
        content[key] = payload.ljust(client.block_size, b"\x00")
    return content


def _pyramid_content(
    client: PyramidOramClient, server: HierarchicalOramServer
) -> dict[bytes, bytes]:
    content: dict[bytes, bytes] = {}
    levels = server.snapshot_levels()
    # Deep levels first so shallower (fresher) copies overwrite them.
    for level in sorted(levels, reverse=True):
        meta = client._levels[level]
        for bucket_index, blobs in enumerate(levels[level]):
            aad = client._bucket_aad(level, meta.epoch, bucket_index)
            for blob in blobs:
                kind, key, payload = client._decrypt_slot(blob, aad)
                if kind == _KIND_REAL:
                    content[key] = payload
                elif kind != 0:  # negative witness: key known absent
                    content.pop(key, None)
    for key, payload in client._cache.items():
        if payload is None:
            content.pop(key, None)
        else:
            content[key] = payload
    return content


def _world_digest(shards: dict[int, tuple]) -> str:
    """SHA-256 over the merged logical content of every shard."""
    content: dict[bytes, bytes] = {}
    for _shard_id, (client, server) in sorted(shards.items()):
        if isinstance(server, HierarchicalOramServer):
            content.update(_pyramid_content(client, server))
        else:
            content.update(_path_content(client, server))
    digest = hashlib.sha256()
    for key in sorted(content):
        digest.update(len(key).to_bytes(2, "big"))
        digest.update(key)
        digest.update(content[key])
    return digest.hexdigest()


# ----------------------------------------------------------------------
# The driven workload
# ----------------------------------------------------------------------

def _drive_reads(
    backend,
    accounts: dict[Address, Account],
    config: ShardBenchConfig,
    clock: SimClock,
    tracer,
    registry: MetricsRegistry,
) -> int:
    """Seeded read mix with inline verification; returns mismatches."""
    rng = Drbg(config.seed.to_bytes(8, "big"), personalization=b"shard-bench")
    addresses = sorted(accounts)
    hot = addresses[: config.hot_accounts]
    mismatches = 0
    for _ in range(config.reads):
        if rng.randint(100) < config.hot_percent:
            address = hot[rng.randint(len(hot))]
        else:
            address = addresses[rng.randint(len(addresses))]
        account = accounts[address]
        choice = rng.randint(3)
        kind = _READ_KINDS[choice]
        with tracer.span("shard.read", "oram_storage", kind=kind):
            if choice == 0:
                ok = backend.get_meta(address).balance == account.balance
            elif choice == 1:
                group = rng.randint(config.storage_groups_per_account)
                slot = group * STORAGE_GROUP_SIZE + rng.randint(
                    config.slots_per_group
                )
                ok = backend.get_storage(address, slot) == account.storage[slot]
            else:
                page_index = rng.randint(config.code_pages_per_account)
                expected = account.code[
                    page_index * CODE_PAGE_SIZE:(page_index + 1) * CODE_PAGE_SIZE
                ].ljust(CODE_PAGE_SIZE, b"\x00")
                ok = backend.get_code_page(address, page_index) == expected
            clock.advance_us(config.read_cost_us)
        registry.counter("shardbench.reads", kind=kind).inc()
        if not ok:
            mismatches += 1
    registry.histogram("shardbench.virtual_us").observe(clock.now_us)
    return mismatches


@dataclass
class _RunArtifacts:
    """What one run leaves behind for the gates."""

    trace_hash: str
    metrics_hash: str
    wire_hash: str
    digest: str
    mismatches: int
    total_queries: int
    makespan_us: float
    per_shard_queries: dict[int, int]
    per_shard_busy_us: dict[int, float]
    leaves_by_shard: dict[int, list[int]] = field(default_factory=dict)
    page_frequency: Counter = field(default_factory=Counter)

    @property
    def aggregate_tps(self) -> float:
        if self.makespan_us <= 0:
            return 0.0
        return self.total_queries / (self.makespan_us / 1e6)

    @property
    def max_share(self) -> float:
        if self.total_queries == 0:
            return 0.0
        return max(self.per_shard_queries.values()) / self.total_queries


def _server_queries(server) -> int:
    if isinstance(server, HierarchicalOramServer):
        return server.stats.bucket_reads
    return server.stats.reads


def _run_unsharded(config: ShardBenchConfig) -> _RunArtifacts:
    """The baseline: one path tree, shard-0 key, no ring anywhere."""
    clock = SimClock()
    registry = MetricsRegistry()
    tracer = install_tracer(clock, TraceSampler(1.0, config.seed))
    wire = hashlib.sha256()
    try:
        server = OramServer(
            height=config.oram_height,
            bucket_size=config.oram_bucket_size,
            query_cpu_us=config.query_cpu_us,
        )
        _tap_server(wire, 0, server)
        client = PathOramClient(
            server,
            shard_key(_master_key(config), 0),
            block_size=paging.PAGE_SIZE,
            stash_limit=config.stash_limit_blocks,
            decrypt_memo_blocks=config.decrypt_memo_blocks,
        )
        backend = ObliviousStateBackend(client, clock=lambda: clock.now_us)
        accounts = _build_accounts(config)
        backend.sync_world(accounts)
        mismatches = _drive_reads(backend, accounts, config, clock, tracer, registry)
        trace_json = render_chrome_trace(tracer)
    finally:
        uninstall_tracer(clock)
    _fold_ciphertext(wire, 0, server)
    return _RunArtifacts(
        trace_hash=hashlib.sha256(trace_json.encode()).hexdigest(),
        metrics_hash=hashlib.sha256(
            json.dumps(registry.snapshot(), sort_keys=True).encode()
        ).hexdigest(),
        wire_hash=wire.hexdigest(),
        digest=_world_digest({0: (client, server)}),
        mismatches=mismatches,
        total_queries=_server_queries(server),
        makespan_us=server.stats.busy_time_us,
        per_shard_queries={0: _server_queries(server)},
        per_shard_busy_us={0: server.stats.busy_time_us},
    )


def _run_fleet(
    config: ShardBenchConfig,
    shard_count: int,
    backend_overrides: dict[int, str] | None = None,
) -> _RunArtifacts:
    """One sharded run; collects per-shard traces for the gates."""
    clock = SimClock()
    registry = MetricsRegistry()
    tracer = install_tracer(clock, TraceSampler(1.0, config.seed))
    wire = hashlib.sha256()
    try:
        fleet_config = ShardedOramConfig(
            shard_count=shard_count,
            oram_height=config.oram_height,
            oram_bucket_size=config.oram_bucket_size,
            stash_limit_blocks=config.stash_limit_blocks,
            decrypt_memo_blocks=config.decrypt_memo_blocks,
            query_cpu_us=config.query_cpu_us,
            vnodes=config.vnodes,
            backend_overrides=dict(backend_overrides or {}),
            pyramid_cache_blocks=config.pyramid_cache_blocks,
        )
        fleet = ShardedOramFleet(fleet_config, _master_key(config))
        observers: dict[int, AccessPatternObserver] = {}
        for shard_id, shard in sorted(fleet.shards.items()):
            _tap_server(wire, shard_id, shard.server)
            if shard.backend == PATH_BACKEND:
                observers[shard_id] = AccessPatternObserver().attach(shard.server)
        backend = ShardedObliviousStateBackend(
            fleet, clock=lambda: clock.now_us
        )
        accounts = _build_accounts(config)
        backend.sync_world(accounts)
        for observer in observers.values():
            observer.clear()  # the distinguisher attacks the read phase
        read_log_start = len(backend.stats.log)
        mismatches = _drive_reads(backend, accounts, config, clock, tracer, registry)
        trace_json = render_chrome_trace(tracer)
    finally:
        uninstall_tracer(clock)
    for shard_id, shard in sorted(fleet.shards.items()):
        _fold_ciphertext(wire, shard_id, shard.server)
    page_frequency = Counter(
        record.page_key for record in backend.stats.log[read_log_start:]
    )
    return _RunArtifacts(
        trace_hash=hashlib.sha256(trace_json.encode()).hexdigest(),
        metrics_hash=hashlib.sha256(
            json.dumps(registry.snapshot(), sort_keys=True).encode()
        ).hexdigest(),
        wire_hash=wire.hexdigest(),
        digest=_world_digest(
            {
                shard_id: (shard.client, shard.server)
                for shard_id, shard in fleet.shards.items()
            }
        ),
        mismatches=mismatches,
        total_queries=sum(
            _server_queries(shard.server) for shard in fleet.shards.values()
        ),
        makespan_us=max(
            shard.server.stats.busy_time_us for shard in fleet.shards.values()
        ),
        per_shard_queries={
            shard_id: _server_queries(shard.server)
            for shard_id, shard in sorted(fleet.shards.items())
        },
        per_shard_busy_us={
            shard_id: shard.server.stats.busy_time_us
            for shard_id, shard in sorted(fleet.shards.items())
        },
        leaves_by_shard={
            shard_id: list(observer.leaves)
            for shard_id, observer in sorted(observers.items())
        },
        page_frequency=page_frequency,
    )


# ----------------------------------------------------------------------
# Per-shard distinguisher (the bench_security_distinguisher idiom)
# ----------------------------------------------------------------------

def _distinguisher_rows(
    run: _RunArtifacts, config: ShardBenchConfig
) -> list[dict]:
    """Attack each shard's leaf trace separately.

    Truth per shard: that shard's page keys ranked by their true
    (driver-known) access frequency — the public knowledge a chain
    adversary holds.  The frequency attack maps leaf ranks onto it and
    must de-anonymize nothing; chi-square checks leaf uniformity.
    """
    leaf_count = 2 ** config.oram_height
    # Reconstruct shard ownership with the fleet's own (default) ring.
    ring = ConsistentHashRing(
        range(len(run.per_shard_queries)), vnodes=config.vnodes
    )
    by_shard: dict[int, list[tuple[int, bytes]]] = {
        shard_id: [] for shard_id in run.per_shard_queries
    }
    for page_key, count in run.page_frequency.items():
        by_shard[ring.shard_for(page_key)].append((count, page_key))
    rows = []
    for shard_id, leaves in sorted(run.leaves_by_shard.items()):
        ranking = [
            key
            for _count, key in sorted(
                by_shard[shard_id], key=lambda item: (-item[0], item[1])
            )
        ][:16]
        handles = [leaf.to_bytes(4, "big") for leaf in leaves]
        samples = len(leaves)
        bins = 8 if samples >= 40 else 4
        pvalue = (
            path_uniformity_pvalue(leaves, leaf_count, bins=bins)
            if samples >= bins * 5
            else 0.0
        )
        rows.append(
            {
                "shard": shard_id,
                "samples": samples,
                "frequency_accuracy": frequency_attack(handles, ranking),
                "uniformity_pvalue": pvalue,
                "bins": bins,
            }
        )
    return rows


# ----------------------------------------------------------------------
# Report + gates
# ----------------------------------------------------------------------

@dataclass
class ShardBenchReport:
    seed: int
    identity: dict[str, bool]
    baseline: dict
    scaleout: list[dict]
    speedup: float
    distinguisher: list[dict]
    mixed: dict
    ring: dict
    gate_failures: list[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.gate_failures

    def to_json(self) -> str:
        return json.dumps(
            {
                "bench": "shard-scaleout",
                "seed": self.seed,
                "identity": self.identity,
                "baseline": self.baseline,
                "scaleout": self.scaleout,
                "speedup": self.speedup,
                "distinguisher": self.distinguisher,
                "mixed": self.mixed,
                "ring": self.ring,
                "gate_failures": self.gate_failures,
                "passed": self.passed,
            },
            indent=2,
            sort_keys=True,
        )

    def summary_lines(self) -> list[str]:
        lines = [
            "identity (unsharded vs 1-shard fleet, seeded): "
            + (
                "byte-identical"
                if all(self.identity.values())
                else f"DIVERGED {sorted(k for k, v in self.identity.items() if not v)}"
            ),
        ]
        lines.append("| shards | queries | makespan (ms) | agg. tx/s | max share |")
        lines.append("|-------:|--------:|--------------:|----------:|----------:|")
        for row in self.scaleout:
            lines.append(
                f"| {row['shards']} | {row['total_queries']} "
                f"| {row['makespan_us'] / 1000:.2f} "
                f"| {row['aggregate_tps']:.0f} | {row['max_share']:.1%} |"
            )
        lines.append(
            f"speedup at {self.scaleout[-1]['shards']} shards: "
            f"{self.speedup:.2f}x (gate >= {self.ring['min_speedup']}x)"
        )
        worst = min(
            (row["uniformity_pvalue"] for row in self.distinguisher), default=1.0
        )
        lines.append(
            f"per-shard distinguisher: frequency accuracy "
            f"{max(row['frequency_accuracy'] for row in self.distinguisher):.2f}, "
            f"worst uniformity p-value {worst:.3f} across "
            f"{len(self.distinguisher)} shards"
        )
        lines.append(
            f"mixed fleet ({self.mixed['backends']}): "
            + ("all reads bit-exact" if self.mixed["ok"] else "MISMATCHES")
        )
        lines.append(
            f"ring: {self.ring['pages']} pages, add-shard remap "
            f"{self.ring['remap_fraction']:.1%} "
            f"(~1/{self.ring['shards']} expected), "
            f"digest {self.ring['table_digest'][:12]}"
        )
        if self.gate_failures:
            lines.append("gate failures:")
            lines.extend(f"  - {failure}" for failure in self.gate_failures)
        else:
            lines.append("all gates passed")
        return lines


def run_shard_bench(config: ShardBenchConfig) -> ShardBenchReport:
    if 1 not in config.shard_counts:
        raise ValueError("shard_counts must include 1 (the identity anchor)")
    unsharded = _run_unsharded(config)
    runs = {
        count: _run_fleet(config, count) for count in sorted(config.shard_counts)
    }
    one = runs[1]
    identity = {
        "trace": unsharded.trace_hash == one.trace_hash,
        "metrics": unsharded.metrics_hash == one.metrics_hash,
        "wire": unsharded.wire_hash == one.wire_hash,
        "digest": unsharded.digest == one.digest,
    }

    scaleout = [
        {
            "shards": count,
            "total_queries": run.total_queries,
            "makespan_us": run.makespan_us,
            "aggregate_tps": run.aggregate_tps,
            "max_share": run.max_share,
            "per_shard_queries": {
                str(sid): queries for sid, queries in run.per_shard_queries.items()
            },
        }
        for count, run in runs.items()
    ]
    top = runs[config.max_shards]
    speedup = top.aggregate_tps / runs[1].aggregate_tps if runs[1].aggregate_tps else 0.0
    distinguisher = _distinguisher_rows(top, config)

    # Mixed fleet: pyramid on alternating shards, path on the rest —
    # the per-shard selection backend_for_working_set drives in a real
    # deployment, exercised explicitly here.
    overrides = {
        shard_id: PYRAMID_BACKEND
        for shard_id in range(1, config.mixed_shard_count, 2)
    }
    mixed_run = _run_fleet(config, config.mixed_shard_count, overrides)
    mixed = {
        "shards": config.mixed_shard_count,
        "backends": "+".join(
            sorted({PATH_BACKEND, PYRAMID_BACKEND})
        ),
        "pyramid_shards": sorted(overrides),
        "mismatches": mixed_run.mismatches,
        "ok": mixed_run.mismatches == 0,
    }

    # Ring movement: adding shard N to an (N-1)-shard ring moves ~1/N
    # of the workload's pages and nothing else (measured, not assumed).
    accounts = _build_accounts(config)
    pages = _workload_page_keys(accounts, config)
    big = ConsistentHashRing(range(config.max_shards), vnodes=config.vnodes)
    small = big.without_shard(config.max_shards - 1)
    moved = sum(1 for key in pages if big.shard_for(key) != small.shard_for(key))
    ring = {
        "shards": config.max_shards,
        "vnodes": config.vnodes,
        "pages": len(pages),
        "remap_fraction": moved / len(pages),
        "table_digest": big.table_digest(),
        "min_speedup": config.min_speedup,
    }

    failures: list[str] = []
    for name, equal in identity.items():
        if not equal:
            failures.append(
                f"identity: the 1-shard fleet changed the {name} bytes of the "
                f"seeded baseline run"
            )
    for count, run in runs.items():
        if run.mismatches:
            failures.append(
                f"{run.mismatches} read mismatch(es) at {count} shard(s)"
            )
    if unsharded.mismatches:
        failures.append(f"{unsharded.mismatches} read mismatch(es) unsharded")
    if speedup < config.min_speedup:
        failures.append(
            f"aggregate speedup {speedup:.2f}x at {config.max_shards} shards "
            f"is below the {config.min_speedup}x gate"
        )
    for row in distinguisher:
        if row["samples"] < 20:
            failures.append(
                f"shard {row['shard']}: only {row['samples']} leaf samples "
                f"(need >= 20 for the uniformity test)"
            )
            continue
        if row["frequency_accuracy"] > 0.0:
            failures.append(
                f"shard {row['shard']}: frequency attack de-anonymized "
                f"{row['frequency_accuracy']:.0%} of the ranking"
            )
        if row["uniformity_pvalue"] <= config.min_pvalue:
            failures.append(
                f"shard {row['shard']}: leaf uniformity p-value "
                f"{row['uniformity_pvalue']:.4f} <= {config.min_pvalue}"
            )
    if not mixed["ok"]:
        failures.append(
            f"mixed path+pyramid fleet returned {mixed['mismatches']} "
            f"mismatched read(s)"
        )
    if ring["remap_fraction"] > 2.5 / config.max_shards:
        failures.append(
            f"ring remapped {ring['remap_fraction']:.1%} of pages on shard "
            f"add; bound is ~{1 / config.max_shards:.1%} (2.5x tolerance)"
        )

    def _obj(run: _RunArtifacts) -> dict:
        return {
            "trace_hash": run.trace_hash,
            "metrics_hash": run.metrics_hash,
            "wire_hash": run.wire_hash,
            "digest": run.digest,
            "total_queries": run.total_queries,
            "makespan_us": run.makespan_us,
            "aggregate_tps": run.aggregate_tps,
        }

    return ShardBenchReport(
        seed=config.seed,
        identity=identity,
        baseline=_obj(unsharded),
        scaleout=scaleout,
        speedup=speedup,
        distinguisher=distinguisher,
        mixed=mixed,
        ring=ring,
        gate_failures=failures,
    )


__all__ = [
    "ShardBenchConfig",
    "ShardBenchReport",
    "run_shard_bench",
]
