"""Typed errors for the sharding plane.

The fleet's failure model is *per shard*: one crashed ORAM store must
never surface as a whole-fleet failure (the regression this module
exists to prevent was a single-shard crash escalating into a generic
``BundleFailedError`` that condemned every tenant).  Every error below
carries the shard id it concerns so the serving layer, the recovery
coordinator, and the benches can route around exactly the broken slice.
"""

from __future__ import annotations


class ShardingError(Exception):
    """Base class for every sharding-plane failure."""


class ShardUnavailableError(ShardingError):
    """A page access routed to a shard that is crashed or detached.

    Carries the shard id and the underlying cause so callers can retry
    against the *same* shard after recovery — never by silently
    re-routing the key (that would move state between ORAM trees and
    break the obliviousness argument for the ring).
    """

    def __init__(self, shard_id: int, cause: BaseException | str | None = None) -> None:
        detail = f": {cause}" if cause else ""
        super().__init__(f"shard {shard_id} unavailable{detail}")
        self.shard_id = shard_id
        self.cause = cause


class ShardPinnedError(ShardingError):
    """A sync-root mutation raced an active two-phase pin.

    Raised when something tries to move a shard's sync root while a
    cross-shard transaction holds that shard pinned.  The mutation must
    wait for the pin holder to commit and release.
    """

    def __init__(self, shard_id: int, ticket_id: int) -> None:
        super().__init__(
            f"shard {shard_id} sync root is pinned by ticket {ticket_id}"
        )
        self.shard_id = shard_id
        self.ticket_id = ticket_id


class UnpinnedShardAccessError(ShardingError):
    """A pinned transaction touched a shard outside its declared set.

    The two-phase protocol requires every touched shard to be pinned
    *before* execution starts; reaching an undeclared shard mid-flight
    means the read set was computed wrong and the transaction must be
    re-planned, not silently widened.
    """

    def __init__(self, shard_id: int, ticket_id: int) -> None:
        super().__init__(
            f"ticket {ticket_id} accessed shard {shard_id} outside its pinned set"
        )
        self.shard_id = shard_id
        self.ticket_id = ticket_id


class UnsupportedShardBackendError(ShardingError):
    """An operation requires a backend capability the shard lacks.

    Today: per-access journaling (the recovery plane) is a Path ORAM
    capability; pyramid shards checkpoint wholesale or not at all.
    """

    def __init__(self, shard_id: int, backend: str, operation: str) -> None:
        super().__init__(
            f"shard {shard_id} backend {backend!r} does not support {operation}"
        )
        self.shard_id = shard_id
        self.backend = backend
        self.operation = operation


class RingConfigurationError(ShardingError):
    """The consistent-hash ring was built with invalid parameters."""
