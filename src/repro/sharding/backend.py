"""The sharded ORAM fleet and its state-backend facade.

``ShardedOramFleet`` owns N independent ORAM stores (per-shard server +
client, per-shard key derived from one master secret), and
``ShardRoutingClient`` presents them as a *single* client behind the
``oram.adapter`` seam: every page key routes through the consistent-
hash ring to exactly one shard, so the Hypervisor-facing API is
unchanged while the physical traffic fans out.

Obliviousness composes: each shard runs an unmodified ORAM protocol
over its own key subspace, and the ring assignment is a public,
data-independent function of the (already non-sensitive) page key —
the adversary learns which *shard* serves an access, which it could
compute itself, and nothing about which page within the shard.

The 1-shard configuration is byte-identical to the unsharded baseline
by construction: a single-shard ring routes every key to shard 0,
whose client is built with exactly the parameters (and derived key) an
unsharded deployment would use, so both issue the same access sequence
to the same protocol state machine.  ``bench_shard_scaleout`` asserts
the resulting trace/metrics/wire/world-digest hashes are equal.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.crypto.kdf import hkdf_sha256
from repro.oram import paging
from repro.oram.adapter import ObliviousStateBackend
from repro.oram.client import PathOramClient
from repro.oram.hierarchical import HierarchicalOramServer, PyramidOramClient
from repro.oram.server import OramServer
from repro.sharding.coordinator import PinTicket, SyncRootCoordinator
from repro.sharding.errors import (
    ShardPinnedError,
    ShardUnavailableError,
    UnpinnedShardAccessError,
)
from repro.sharding.ring import DEFAULT_RING_SEED, ConsistentHashRing
from repro.state.account import Account, Address

PATH_BACKEND = "path"
PYRAMID_BACKEND = "pyramid"


def shard_key(master_key: bytes, shard_id: int) -> bytes:
    """Derive one shard's ORAM key from the fleet master secret.

    HKDF with a per-shard info string: shard compromise exposes one
    key subspace, and key derivation is deterministic, so a recovered
    shard (or a re-built fleet) re-derives identical keys.
    """
    return hkdf_sha256(
        master_key, salt=b"hardtape-shard-keys", info=b"shard-%04d" % shard_id
    )


@dataclass
class ShardedOramConfig:
    """Fleet geometry: one ORAM store per shard, all identically sized.

    ``default_backend`` picks the ORAM protocol for every shard;
    ``backend_overrides`` re-points individual shards (e.g. a shard
    whose working set is small enough that the hierarchical layout
    wins — see :func:`repro.oram.hierarchical.backend_for_working_set`).
    """

    shard_count: int = 4
    oram_height: int = 9
    oram_bucket_size: int = 4
    block_size: int = paging.PAGE_SIZE
    stash_limit_blocks: int | None = 1024
    response_budget_us: float | None = None
    decrypt_memo_blocks: int | None = 4096
    query_cpu_us: float = 25.0
    vnodes: int = 128
    ring_seed: bytes = DEFAULT_RING_SEED
    default_backend: str = PATH_BACKEND
    backend_overrides: dict[int, str] = field(default_factory=dict)
    pyramid_cache_blocks: int = 32

    def backend_for(self, shard_id: int) -> str:
        backend = self.backend_overrides.get(shard_id, self.default_backend)
        if backend not in (PATH_BACKEND, PYRAMID_BACKEND):
            raise ValueError(f"unknown ORAM backend {backend!r} for shard {shard_id}")
        return backend


@dataclass
class OramShard:
    """One slice of the fleet: its store, its client, its key."""

    shard_id: int
    backend: str
    server: OramServer | HierarchicalOramServer
    client: PathOramClient | PyramidOramClient
    key: bytes

    @property
    def stash_blocks(self) -> int:
        """On-chip occupancy: path stash or pyramid top cache."""
        if isinstance(self.client, PyramidOramClient):
            return self.client.cache_blocks
        return self.client.stash_bytes // self.client.block_size


class ShardedOramFleet:
    """Builds and owns the per-shard ORAM stores."""

    def __init__(
        self,
        config: ShardedOramConfig,
        master_key: bytes,
        clock=None,
    ) -> None:
        if config.shard_count < 1:
            raise ValueError("a fleet needs at least one shard")
        self.config = config
        self.ring = ConsistentHashRing(
            range(config.shard_count), vnodes=config.vnodes, seed=config.ring_seed
        )
        self._clock = clock
        self.shards: dict[int, OramShard] = {
            sid: self._build_shard(sid, master_key)
            for sid in range(config.shard_count)
        }

    def _build_shard(self, shard_id: int, master_key: bytes) -> OramShard:
        key = shard_key(master_key, shard_id)
        backend = self.config.backend_for(shard_id)
        if backend == PATH_BACKEND:
            server = OramServer(
                height=self.config.oram_height,
                bucket_size=self.config.oram_bucket_size,
                query_cpu_us=self.config.query_cpu_us,
            )
            client = PathOramClient(
                server,
                key,
                block_size=self.config.block_size,
                stash_limit=self.config.stash_limit_blocks,
                response_budget_us=self.config.response_budget_us,
                decrypt_memo_blocks=self.config.decrypt_memo_blocks,
                clock=self._clock,
            )
        else:
            server = HierarchicalOramServer(
                bucket_size=self.config.oram_bucket_size,
                query_cpu_us=self.config.query_cpu_us,
            )
            client = PyramidOramClient(
                server,
                key,
                block_size=self.config.block_size,
                cache_limit=self.config.pyramid_cache_blocks,
                clock=self._clock,
            )
        return OramShard(shard_id, backend, server, client, key)

    @property
    def shard_ids(self) -> tuple[int, ...]:
        return tuple(sorted(self.shards))

    @property
    def block_size(self) -> int:
        return self.config.block_size

    def replace_client(self, shard_id: int, client) -> None:
        """Swap in a recovered client for one shard (recovery plane)."""
        shard = self.shards[shard_id]
        if client.block_size != shard.client.block_size:
            raise ValueError("recovered client has a different block size")
        shard.client = client


class _FleetServerView:
    """Cost-model facade: the fleet seen as one server.

    The Hypervisor charges ORAM accesses from ``client.server.height``
    and ``.bucket_size``; per-access cost in a homogeneous fleet is one
    shard's cost, so the view reports the maximum across shards.
    """

    def __init__(self, fleet: ShardedOramFleet) -> None:
        self._fleet = fleet

    @property
    def height(self) -> int:
        return max(shard.server.height for shard in self._fleet.shards.values())

    @property
    def bucket_size(self) -> int:
        return max(shard.server.bucket_size for shard in self._fleet.shards.values())


class ShardRoutingClient:
    """One client-shaped front over the fleet (the adapter's seam).

    Routes each access by ring; enforces the crash and pin disciplines:
    a crashed shard's keys raise the *typed per-shard*
    :class:`ShardUnavailableError` (never a fleet-wide failure), and
    while a pin ticket is active, touching a shard outside its declared
    set raises :class:`UnpinnedShardAccessError`.
    """

    def __init__(
        self,
        fleet: ShardedOramFleet,
        coordinator: SyncRootCoordinator | None = None,
    ) -> None:
        self._fleet = fleet
        self.coordinator = coordinator or SyncRootCoordinator(fleet.shard_ids)
        self.block_size = fleet.block_size
        self.server = _FleetServerView(fleet)
        self.recovery = None  # journaling arms per-shard clients, not the router
        self.memo = None
        self._crashed: dict[int, str] = {}
        self._active_ticket: PinTicket | None = None

    # -- routing -------------------------------------------------------

    def shard_for(self, key: bytes) -> int:
        return self._fleet.ring.shard_for(key)

    def _resolve(self, key: bytes) -> OramShard:
        shard_id = self._fleet.ring.shard_for(key)
        if shard_id in self._crashed:
            raise ShardUnavailableError(shard_id, self._crashed[shard_id])
        ticket = self._active_ticket
        if ticket is not None and shard_id not in ticket.shard_ids:
            raise UnpinnedShardAccessError(shard_id, ticket.ticket_id)
        return self._fleet.shards[shard_id]

    def access(
        self, key: bytes, write_data: bytes | None = None, sim_time_us: float = 0.0
    ) -> bytes | None:
        return self._resolve(key).client.access(key, write_data, sim_time_us)

    def read(self, key: bytes, sim_time_us: float = 0.0) -> bytes | None:
        return self._resolve(key).client.read(key, sim_time_us=sim_time_us)

    def write(self, key: bytes, data: bytes, sim_time_us: float = 0.0) -> None:
        self._resolve(key).client.write(key, data, sim_time_us=sim_time_us)

    @property
    def last_access(self):
        """Telemetry peek: the most recent access on any shard.

        Shard clients stamp their own summaries; the router reports the
        one belonging to the shard that served the last routed access.
        """
        return self._last_summary_source.last_access

    # The router keeps no per-access state of its own beyond this.
    @property
    def _last_summary_source(self):
        shards = self._fleet.shards
        best = max(shards.values(), key=lambda s: s.client.stats.accesses)
        return best.client

    # -- crash discipline ----------------------------------------------

    def mark_crashed(self, shard_id: int, reason: str) -> None:
        if shard_id not in self._fleet.shards:
            raise ValueError(f"unknown shard {shard_id}")
        self._crashed[shard_id] = reason

    def mark_recovered(self, shard_id: int) -> None:
        self._crashed.pop(shard_id, None)

    def crashed_shards(self) -> tuple[int, ...]:
        return tuple(sorted(self._crashed))

    # -- pin scope -----------------------------------------------------

    def begin_pinned(self, ticket: PinTicket) -> None:
        if self._active_ticket is not None:
            raise ShardPinnedError(
                self._active_ticket.shard_ids[0], self._active_ticket.ticket_id
            )
        self._active_ticket = ticket

    def end_pinned(self) -> None:
        self._active_ticket = None

    # -- diagnostics ---------------------------------------------------

    def per_shard_accesses(self) -> dict[int, int]:
        return {
            sid: shard.client.stats.accesses
            for sid, shard in sorted(self._fleet.shards.items())
        }

    def per_shard_stash_blocks(self) -> dict[int, int]:
        return {
            sid: shard.stash_blocks
            for sid, shard in sorted(self._fleet.shards.items())
        }


class ShardedObliviousStateBackend(ObliviousStateBackend):
    """``StateBackend`` over the whole fleet, plus the pin protocol.

    Drop-in where :class:`ObliviousStateBackend` goes — same query and
    sync API — with cross-shard transaction support layered on top:

    * :meth:`pinned` runs a block under a two-phase pin ticket covering
      exactly the shards its declared page keys touch.
    * :meth:`sync_account` refuses to overwrite state on a pinned shard
      (a sync racing an executing transaction is the consistency bug
      the pin protocol exists to prevent).
    """

    def __init__(
        self,
        fleet: ShardedOramFleet,
        clock: Callable[[], float] | None = None,
        on_query: Callable[[str, bytes], None] | None = None,
        coordinator: SyncRootCoordinator | None = None,
    ) -> None:
        super().__init__(ShardRoutingClient(fleet, coordinator), clock, on_query)
        self.fleet = fleet

    @property
    def router(self) -> ShardRoutingClient:
        return self._client  # type: ignore[return-value]

    @property
    def coordinator(self) -> SyncRootCoordinator:
        return self.router.coordinator

    # -- placement helpers ---------------------------------------------

    def shard_for_page(self, page_key: bytes) -> int:
        return self.fleet.ring.shard_for(page_key)

    def shards_for_pages(self, page_keys: Iterable[bytes]) -> tuple[int, ...]:
        return self.fleet.ring.shards_for(page_keys)

    # -- two-phase pin -------------------------------------------------

    def pin_transaction(self, page_keys: Iterable[bytes]) -> PinTicket:
        """Phase 1: pin the sync roots of every shard the keys touch."""
        shard_ids = self.fleet.ring.shards_for(page_keys)
        for sid in shard_ids:
            if sid in self.router._crashed:
                raise ShardUnavailableError(sid, self.router._crashed[sid])
        return self.coordinator.pin(shard_ids)

    @contextmanager
    def pinned(self, page_keys: Iterable[bytes]):
        """Execute a cross-shard transaction under a pin ticket."""
        ticket = self.pin_transaction(page_keys)
        self.router.begin_pinned(ticket)
        try:
            yield ticket
        finally:
            self.router.end_pinned()
            self.coordinator.release(ticket)

    # -- sync plane ----------------------------------------------------

    def _account_page_keys(self, address: Address, account: Account) -> list[bytes]:
        from repro.state.backend import CODE_PAGE_SIZE, STORAGE_GROUP_SIZE

        keys = [paging.account_page_key(address)]
        for group in sorted({key // STORAGE_GROUP_SIZE for key in account.storage}):
            keys.append(paging.storage_page_key(address, group * STORAGE_GROUP_SIZE))
        code_pages = (len(account.code) + CODE_PAGE_SIZE - 1) // CODE_PAGE_SIZE
        for page_index in range(code_pages):
            keys.append(paging.code_page_key(address, page_index))
        return keys

    def sync_account(self, address: Address, account: Account) -> int:
        touched = self.fleet.ring.shards_for(
            self._account_page_keys(address, account)
        )
        for sid in touched:
            if self.coordinator.is_pinned(sid):
                holders = self.coordinator._pins[sid]
                self.coordinator.stats.sync_conflicts += 1
                raise ShardPinnedError(sid, holders[0])
        return super().sync_account(address, account)

    def sync_world(
        self, accounts: dict[Address, Account], state_root: bytes | None = None
    ) -> int:
        total = super().sync_world(accounts)
        if state_root is not None:
            for sid in self.fleet.shard_ids:
                self.coordinator.note_root(sid, state_root)
        return total
