"""Per-shard crash recovery: one journal, one NVRAM pin, one blast radius.

Each shard gets its own :class:`~repro.recovery.manager.RecoveryManager`
over its own :class:`~repro.recovery.store.DurableStore`, anchored to a
shard-scoped sealing identity and a shard-private monotonic counter.
A crash therefore recovers from that shard's checkpoint + journal alone:
the other N-1 shards keep serving, their stores untouched, their
counters unmoved — the single-shard blast radius the fleet design
promises.

While a shard is down, accesses routed to it raise the typed
:class:`~repro.sharding.errors.ShardUnavailableError` (carrying the
shard id) rather than any whole-fleet failure; the regression test for
the old behaviour — a one-shard crash surfacing as a generic
``BundleFailedError`` — lives in ``tests/integration``.

Only path-backed shards journal per access (the stash/position-map
delta is the thing being journaled); arming a pyramid shard raises the
typed :class:`~repro.sharding.errors.UnsupportedShardBackendError`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.kdf import hkdf_sha256
from repro.hardware.csu import MonotonicCounter
from repro.recovery.manager import RecoveryManager
from repro.recovery.store import DurableStore
from repro.sharding.backend import PATH_BACKEND, ShardedObliviousStateBackend
from repro.sharding.errors import UnsupportedShardBackendError


class SoftwareSealingAuthority:
    """Fleet-level sealing-key root for deployments without one CSU.

    A sharded fleet spans machines, so its recovery keys hang off the
    fleet master secret (HKDF) instead of a single device's fused CSU.
    Anything exposing ``derive_sealing_key`` works here — pass a real
    :class:`~repro.hardware.csu.ConfigurationSecurityUnit` to anchor a
    co-located fleet in hardware instead.
    """

    def __init__(self, master_key: bytes) -> None:
        self._master = master_key

    def derive_sealing_key(self, label: bytes) -> bytes:
        return hkdf_sha256(self._master, salt=b"fleet-sealing-v1", info=label)


class _ShardScopedCsu:
    """Namespaces one shard's sealing keys under the fleet authority."""

    def __init__(self, authority, shard_id: int) -> None:
        self._authority = authority
        self._prefix = b"shard-%04d/" % shard_id

    def derive_sealing_key(self, label: bytes) -> bytes:
        return self._authority.derive_sealing_key(self._prefix + label)


@dataclass
class _AnchorConfig:
    """The slice of ``DeviceConfig`` ``rebuild_client`` reads."""

    stash_limit_blocks: int | None
    oram_response_budget_us: float | None
    oram_decrypt_memo_blocks: int | None


class ShardAnchor:
    """The per-shard 'device' a :class:`RecoveryManager` anchors to.

    Sealing keys come from the shard-scoped CSU view; the monotonic
    counter is shard-private, so one shard's checkpoint cadence never
    advances (or constrains) another's rollback pin.
    """

    def __init__(self, csu, config: _AnchorConfig) -> None:
        self.csu = csu
        self.nvram = MonotonicCounter()
        self.config = config


class ShardRecoveryCoordinator:
    """Arms, crashes, and recovers shards one at a time."""

    def __init__(
        self,
        backend: ShardedObliviousStateBackend,
        sealing_authority,
        checkpoint_interval: int = 8,
        lease_chunk: int = 64,
    ) -> None:
        self._backend = backend
        self._fleet = backend.fleet
        self._authority = sealing_authority
        self._checkpoint_interval = checkpoint_interval
        self._lease_chunk = lease_chunk
        self._anchors: dict[int, ShardAnchor] = {}
        self._stores: dict[int, DurableStore] = {}
        self._managers: dict[int, RecoveryManager] = {}
        self._generations: dict[int, int] = {}

    # -- arming --------------------------------------------------------

    def _anchor_config(self) -> _AnchorConfig:
        config = self._fleet.config
        return _AnchorConfig(
            stash_limit_blocks=config.stash_limit_blocks,
            oram_response_budget_us=config.response_budget_us,
            oram_decrypt_memo_blocks=config.decrypt_memo_blocks,
        )

    def arm(self) -> None:
        """Checkpoint every shard and arm its per-access journal."""
        for shard_id, shard in sorted(self._fleet.shards.items()):
            if shard.backend != PATH_BACKEND:
                raise UnsupportedShardBackendError(
                    shard_id, shard.backend, "per-access journaling"
                )
            anchor = ShardAnchor(
                _ShardScopedCsu(self._authority, shard_id), self._anchor_config()
            )
            store = DurableStore()
            manager = RecoveryManager(
                anchor,
                store,
                checkpoint_interval=self._checkpoint_interval,
                lease_chunk=self._lease_chunk,
                oram_key=shard.key,
            )
            manager.attach_client(shard.client)
            manager.checkpoint()
            self._anchors[shard_id] = anchor
            self._stores[shard_id] = store
            self._managers[shard_id] = manager

    def manager(self, shard_id: int) -> RecoveryManager:
        return self._managers[shard_id]

    def store(self, shard_id: int) -> DurableStore:
        return self._stores[shard_id]

    def armed_shards(self) -> tuple[int, ...]:
        return tuple(sorted(self._managers))

    # -- crash / recover -----------------------------------------------

    def crash_shard(self, shard_id: int, reason: str = "shard firmware crash") -> None:
        """Kill one shard's trusted client; the fleet routes around it."""
        if shard_id not in self._managers:
            raise ValueError(f"shard {shard_id} is not armed for recovery")
        shard = self._fleet.shards[shard_id]
        # The in-memory client dies with the shard firmware; everything
        # it knew survives only as sealed records in the durable store.
        shard.client.recovery = None
        self._backend.router.mark_crashed(shard_id, reason)

    def recover_shard(self, shard_id: int) -> int:
        """Cold-recover one shard from its own store; returns replayed count."""
        anchor = self._anchors[shard_id]
        manager, state, replayed = RecoveryManager.recover(
            anchor,
            self._stores[shard_id],
            checkpoint_interval=self._checkpoint_interval,
            lease_chunk=self._lease_chunk,
        )
        generation = self._generations.get(shard_id, 0) + 1
        self._generations[shard_id] = generation
        shard = self._fleet.shards[shard_id]
        client = manager.rebuild_client(state, shard.server, generation)
        manager.attach_client(client)
        self._fleet.replace_client(shard_id, client)
        self._managers[shard_id] = manager
        self._backend.router.mark_recovered(shard_id)
        return replayed
