"""Two-phase sync-root pinning for cross-shard transactions.

A transaction whose frames touch several shards must execute against a
*consistent cut*: every touched shard's sync root frozen at the same
logical instant.  The protocol is the classic two-phase shape —

1. **Pin** every touched shard's root, always acquiring in ascending
   shard-id order (the fleet-wide lock order, so pin cycles — and with
   them deadlocks — cannot form).  The resulting :class:`PinTicket`
   records the roots the transaction executed against.
2. Execute; the access layer rejects any touch outside the pinned set
   (:class:`~repro.sharding.errors.UnpinnedShardAccessError` — a
   mis-planned read set is re-planned, never silently widened).
3. **Commit + release**: only the ticket holder may advance a pinned
   shard's root; everyone else's root mutation raises
   :class:`~repro.sharding.errors.ShardPinnedError` until release.

Pins are shared (reader-style): two transactions may pin the same
shard concurrently — both executed against the same frozen root, and
neither may be invalidated by a sync while either holds its pin.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sharding.errors import ShardPinnedError, UnpinnedShardAccessError


@dataclass(frozen=True)
class PinTicket:
    """Proof of a completed pin phase: shard set + the roots seen."""

    ticket_id: int
    shard_ids: tuple[int, ...]
    pinned_roots: tuple[tuple[int, bytes | None], ...]

    def root_of(self, shard_id: int) -> bytes | None:
        for sid, root in self.pinned_roots:
            if sid == shard_id:
                return root
        raise KeyError(f"shard {shard_id} not in ticket {self.ticket_id}")


@dataclass
class PinStats:
    pins_acquired: int = 0
    pins_released: int = 0
    sync_conflicts: int = 0  # note_root refused: shard was pinned
    max_concurrent_tickets: int = 0


class SyncRootCoordinator:
    """Tracks per-shard sync roots and the pins freezing them."""

    def __init__(self, shard_ids) -> None:
        self._roots: dict[int, bytes | None] = {sid: None for sid in shard_ids}
        # shard id -> ids of the tickets currently pinning it.
        self._pins: dict[int, list[int]] = {}
        self._active: dict[int, PinTicket] = {}
        self._next_ticket = 1
        self.stats = PinStats()

    # -- topology ------------------------------------------------------

    @property
    def shard_ids(self) -> tuple[int, ...]:
        return tuple(sorted(self._roots))

    def root_of(self, shard_id: int) -> bytes | None:
        return self._roots[shard_id]

    def is_pinned(self, shard_id: int) -> bool:
        return bool(self._pins.get(shard_id))

    def pinned_shards(self) -> tuple[int, ...]:
        return tuple(sorted(sid for sid, tickets in self._pins.items() if tickets))

    # -- phase 1: pin --------------------------------------------------

    def pin(self, shard_ids) -> PinTicket:
        """Pin every listed shard's root; all-or-nothing, sorted order."""
        order = tuple(sorted(set(shard_ids)))
        if not order:
            raise ValueError("a pin needs at least one shard")
        unknown = [sid for sid in order if sid not in self._roots]
        if unknown:
            raise ValueError(f"unknown shards in pin request: {unknown}")
        ticket_id = self._next_ticket
        self._next_ticket += 1
        for sid in order:
            self._pins.setdefault(sid, []).append(ticket_id)
        ticket = PinTicket(
            ticket_id=ticket_id,
            shard_ids=order,
            pinned_roots=tuple((sid, self._roots[sid]) for sid in order),
        )
        self._active[ticket_id] = ticket
        self.stats.pins_acquired += 1
        self.stats.max_concurrent_tickets = max(
            self.stats.max_concurrent_tickets, len(self._active)
        )
        return ticket

    # -- commit --------------------------------------------------------

    def advance_root(self, ticket: PinTicket, shard_id: int, root: bytes) -> None:
        """Commit-time root advance: only the pin holder may do this."""
        if ticket.ticket_id not in self._active:
            raise ValueError(f"ticket {ticket.ticket_id} is not active")
        if shard_id not in ticket.shard_ids:
            raise UnpinnedShardAccessError(shard_id, ticket.ticket_id)
        self._roots[shard_id] = root

    # -- phase 2: release ----------------------------------------------

    def release(self, ticket: PinTicket) -> None:
        if ticket.ticket_id not in self._active:
            raise ValueError(
                f"ticket {ticket.ticket_id} already released (or never issued)"
            )
        del self._active[ticket.ticket_id]
        for sid in ticket.shard_ids:
            self._pins[sid].remove(ticket.ticket_id)
        self.stats.pins_released += 1

    # -- the sync plane's entry point ----------------------------------

    def note_root(self, shard_id: int, root: bytes | None) -> None:
        """Record a new sync root for a shard — refused while pinned."""
        if shard_id not in self._roots:
            raise ValueError(f"unknown shard {shard_id}")
        holders = self._pins.get(shard_id)
        if holders:
            self.stats.sync_conflicts += 1
            raise ShardPinnedError(shard_id, holders[0])
        self._roots[shard_id] = root
