"""Per-shard observability: labelled metrics for the whole fleet.

One :class:`ShardMetricsExporter` snapshots the fleet into the serving
layer's :class:`~repro.serving.metrics.MetricsRegistry` with a
``shard=<id>`` label on every series, so the existing Prometheus
exporter (:func:`repro.telemetry.exporters.render_prometheus`) renders
a fleet dashboard with zero new wire formats:

* ``shard.oram.accesses`` / ``shard.oram.server_queries`` — counters,
  advanced by delta so repeated collections never double-count;
* ``shard.oram.stash_blocks`` — gauge; path stash or pyramid top cache
  (the peak is the number that matters for on-chip sizing);
* ``shard.oram.server_busy_us`` — gauge; the makespan input the
  scale-out bench aggregates;
* ``shard.gateway.queue_depth`` / ``shard.gateway.sessions`` — gauges,
  when a :class:`~repro.serving.router.ShardSessionRouter` is given.

Collection is read-only and deterministic (shards visited in id
order); it is *opt-in* precisely so a sharded run that never collects
produces the same registry bytes as an unsharded one — the seeded
identity invariant stays intact.
"""

from __future__ import annotations

from repro.serving.metrics import MetricsRegistry
from repro.sharding.backend import ShardedOramFleet


class ShardMetricsExporter:
    """Snapshots per-shard counters/gauges into a labelled registry."""

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry
        self._last_accesses: dict[int, int] = {}
        self._last_queries: dict[int, int] = {}

    @staticmethod
    def _server_queries(server) -> int:
        # Path servers count path reads; hierarchical ones bucket reads.
        stats = server.stats
        return getattr(stats, "reads", None) or getattr(stats, "bucket_reads", 0)

    def collect(self, fleet: ShardedOramFleet, router=None) -> None:
        """One observation pass over the fleet (and optionally the router)."""
        for shard_id, shard in sorted(fleet.shards.items()):
            accesses = shard.client.stats.accesses
            delta = accesses - self._last_accesses.get(shard_id, 0)
            self.registry.counter(
                "shard.oram.accesses", shard=shard_id, backend=shard.backend
            ).inc(delta)
            self._last_accesses[shard_id] = accesses

            queries = self._server_queries(shard.server)
            delta = queries - self._last_queries.get(shard_id, 0)
            self.registry.counter(
                "shard.oram.server_queries", shard=shard_id, backend=shard.backend
            ).inc(delta)
            self._last_queries[shard_id] = queries

            self.registry.gauge(
                "shard.oram.stash_blocks", shard=shard_id, backend=shard.backend
            ).set(shard.stash_blocks)
            self.registry.gauge(
                "shard.oram.server_busy_us", shard=shard_id, backend=shard.backend
            ).set(shard.server.stats.busy_time_us)
        if router is not None:
            for shard_id, depth in router.queue_depths().items():
                self.registry.gauge("shard.gateway.queue_depth", shard=shard_id).set(
                    depth
                )
            for shard_id, count in router.session_counts().items():
                self.registry.gauge("shard.gateway.sessions", shard=shard_id).set(
                    count
                )
