"""The sharding plane: world state partitioned across an ORAM fleet.

Sits beside ``repro.serving`` above the substrates: a consistent-hash
ring places page keys on shards (``ring``), a routing client presents
the fleet behind the ``oram.adapter`` seam (``backend``), cross-shard
transactions pin sync roots two-phase (``coordinator``), each shard
checkpoints into its own durable store (``recovery``), and every
series the fleet emits carries a ``shard=<id>`` label (``metrics``).
"""

from repro.sharding.backend import (
    OramShard,
    PATH_BACKEND,
    PYRAMID_BACKEND,
    ShardedObliviousStateBackend,
    ShardedOramConfig,
    ShardedOramFleet,
    ShardRoutingClient,
    shard_key,
)
from repro.sharding.coordinator import PinStats, PinTicket, SyncRootCoordinator
from repro.sharding.errors import (
    RingConfigurationError,
    ShardingError,
    ShardPinnedError,
    ShardUnavailableError,
    UnpinnedShardAccessError,
    UnsupportedShardBackendError,
)
from repro.sharding.metrics import ShardMetricsExporter
from repro.sharding.recovery import (
    ShardAnchor,
    ShardRecoveryCoordinator,
    SoftwareSealingAuthority,
)
from repro.sharding.ring import DEFAULT_RING_SEED, ConsistentHashRing

__all__ = [
    "ConsistentHashRing",
    "DEFAULT_RING_SEED",
    "OramShard",
    "PATH_BACKEND",
    "PYRAMID_BACKEND",
    "PinStats",
    "PinTicket",
    "RingConfigurationError",
    "ShardAnchor",
    "ShardMetricsExporter",
    "ShardPinnedError",
    "ShardRecoveryCoordinator",
    "ShardRoutingClient",
    "ShardUnavailableError",
    "ShardedObliviousStateBackend",
    "ShardedOramConfig",
    "ShardedOramFleet",
    "ShardingError",
    "SoftwareSealingAuthority",
    "SyncRootCoordinator",
    "UnpinnedShardAccessError",
    "UnsupportedShardBackendError",
    "shard_key",
]
