"""Merkle Patricia Trie with Merkle-proof generation and verification.

This is the structure that authenticates the Ethereum world state: the
account trie maps ``keccak256(address)`` to RLP-encoded account records,
and each contract's storage trie maps ``keccak256(key)`` to RLP-encoded
values.  HarDTAPE's Hypervisor verifies Merkle proofs against block state
roots during block synchronization (paper §IV-C) — after that, ORAM
AES-GCM protects integrity and proofs are no longer fetched.

Node model (per the yellow paper):

* **leaf** — ``[hp(path, leaf=True), value]``
* **extension** — ``[hp(path, leaf=False), ref]``
* **branch** — 17 items: 16 child refs plus a value slot

A *ref* is the node itself when its RLP is shorter than 32 bytes,
otherwise the Keccak-256 hash of its RLP.  Hashed nodes live in a
node store so proofs (the list of RLP nodes on the lookup path) can be
served for any committed root.
"""

from __future__ import annotations

from typing import Iterator

from repro import rlp
from repro.crypto.keccak import keccak256, keccak256_many
from repro.trie.nibbles import (
    bytes_to_nibbles,
    common_prefix_length,
    hp_decode,
    hp_encode,
)

# The hash of the empty trie: keccak256(rlp(b"")).
EMPTY_ROOT = keccak256(rlp.encode(b""))

_BLANK = b""
Node = bytes | list  # _BLANK, [path, value/ref], or 17-item branch


class ProofError(Exception):
    """Raised when a Merkle proof fails verification."""


class MerklePatriciaTrie:
    """An in-memory MPT over raw byte keys.

    Keys are arbitrary byte strings (callers hash them when emulating the
    secure trie).  ``root_hash`` commits the current tree into the node
    store and returns the 32-byte root.
    """

    def __init__(self) -> None:
        self._root: Node = _BLANK
        self._store: dict[bytes, bytes] = {}

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def get(self, key: bytes) -> bytes | None:
        """Return the value for ``key``, or ``None`` if absent."""
        return self._get(self._root, bytes_to_nibbles(key))

    def put(self, key: bytes, value: bytes) -> None:
        """Insert or update ``key``.  Empty values delete the key."""
        if value == b"":
            self.delete(key)
            return
        self._root = self._put(self._root, bytes_to_nibbles(key), value)

    def delete(self, key: bytes) -> None:
        """Remove ``key`` if present."""
        self._root = self._delete(self._root, bytes_to_nibbles(key))

    def root_hash(self) -> bytes:
        """Commit the tree and return its Merkle root.

        Hashing is *batched*: dirty nodes are grouped by height and each
        height's RLP encodings go through one
        :func:`~repro.crypto.keccak.keccak256_many` call, so the active
        crypto backend can run many Keccak sponges per permutation sweep
        (the trie/sync-root hot path).  Byte-identical to hashing node
        by node — same digests, same node store.
        """
        if self._root == _BLANK:
            return EMPTY_ROOT
        encoded = self._commit_batched(self._root)
        if len(encoded) < 32:
            return keccak256(encoded)
        return encoded  # already a 32-byte digest

    def _commit_batched(self, root: Node) -> bytes:
        """Encode and hash the in-memory tree level by level.

        A node's ref depends only on its children's refs, so all nodes
        at the same *height* (leaves at height 0) can be hashed in one
        batch once the previous height is done.
        """
        # Pass 1: collect in-memory list-nodes by height, children first.
        heights: dict[int, int] = {}
        by_height: dict[int, list[list]] = {}

        def _list_children(node: list) -> list[list]:
            if len(node) == 17:
                return [
                    child for child in node[:16]
                    if isinstance(child, list)
                ]
            _path, is_leaf = hp_decode(node[0])
            if not is_leaf and isinstance(node[1], list):
                return [node[1]]
            return []

        stack: list[tuple[list, bool]] = [(root, False)] if isinstance(root, list) else []
        while stack:
            node, expanded = stack.pop()
            if id(node) in heights:
                continue
            children = _list_children(node)
            if expanded or not children:
                height = 1 + max(
                    (heights[id(child)] for child in children), default=-1
                )
                heights[id(node)] = height
                by_height.setdefault(height, []).append(node)
            else:
                stack.append((node, True))
                stack.extend((child, False) for child in children)
        if not heights:
            # Root is a bytes ref (already committed): nothing to hash.
            return bytes(root)

        # Pass 2: per height, encode against the already-committed
        # children and batch-hash every encoding that needs a digest.
        refs: dict[int, rlp.codec.RlpItem] = {}  # id(node) -> item to embed

        def _child_item(child: Node) -> rlp.codec.RlpItem:
            if isinstance(child, (bytes, bytearray)):
                return bytes(child)
            return refs[id(child)]

        for height in sorted(by_height):
            encoded_nodes: list[tuple[list, bytes]] = []
            for node in by_height[height]:
                if len(node) == 17:
                    item = [_child_item(node[i]) for i in range(16)] + [node[16]]
                else:
                    _path, is_leaf = hp_decode(node[0])
                    item = (
                        [node[0], node[1]]
                        if is_leaf
                        else [node[0], _child_item(node[1])]
                    )
                encoded = rlp.encode(item)
                if len(encoded) < 32:
                    refs[id(node)] = rlp.decode(encoded)  # embed structurally
                else:
                    encoded_nodes.append((node, encoded))
            if encoded_nodes:
                digests = keccak256_many([enc for _n, enc in encoded_nodes])
                for (node, encoded), digest in zip(encoded_nodes, digests):
                    self._store[digest] = encoded
                    refs[id(node)] = digest

        root_item = refs[id(root)]
        if isinstance(root_item, (bytes, bytearray)) and len(root_item) == 32:
            return bytes(root_item)
        return rlp.encode(root_item)

    def items(self) -> Iterator[tuple[bytes, bytes]]:
        """Iterate ``(key, value)`` pairs in lexicographic key order."""
        yield from self._iter_node(self._root, ())

    def prove(self, key: bytes) -> list[bytes]:
        """Return the Merkle proof for ``key`` under the current root.

        The proof is the list of RLP-encoded nodes on the lookup path,
        root first.  Works for both membership and non-membership.
        """
        self.root_hash()  # ensure the store holds the committed nodes
        proof: list[bytes] = []
        self._prove(self._root, bytes_to_nibbles(key), proof)
        return proof

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def _get(self, node: Node, path: tuple[int, ...]) -> bytes | None:
        if node == _BLANK:
            return None
        if len(node) == 17:  # branch
            if not path:
                value = node[16]
                return bytes(value) if value != _BLANK else None
            return self._get(self._resolve(node[path[0]]), path[1:])
        node_path, is_leaf = hp_decode(node[0])
        if is_leaf:
            return bytes(node[1]) if node_path == path else None
        prefix = common_prefix_length(node_path, path)
        if prefix != len(node_path):
            return None
        return self._get(self._resolve(node[1]), path[prefix:])

    # ------------------------------------------------------------------
    # Insert
    # ------------------------------------------------------------------

    def _put(self, node: Node, path: tuple[int, ...], value: bytes) -> Node:
        if node == _BLANK:
            return [hp_encode(path, True), value]
        if len(node) == 17:  # branch
            if not path:
                return node[:16] + [value]
            child = self._resolve(node[path[0]])
            new_node = list(node)
            new_node[path[0]] = self._put(child, path[1:], value)
            return new_node
        node_path, is_leaf = hp_decode(node[0])
        prefix = common_prefix_length(node_path, path)
        if is_leaf and node_path == path:
            return [node[0], value]
        if not is_leaf and prefix == len(node_path):
            child = self._put(self._resolve(node[1]), path[prefix:], value)
            return [node[0], child]
        # Split: build a branch at the divergence point.
        branch: list = [_BLANK] * 17
        remaining_old = node_path[prefix:]
        if remaining_old:
            stub = (
                [hp_encode(remaining_old[1:], True), node[1]]
                if is_leaf
                else self._shorten_extension(remaining_old[1:], node[1])
            )
            branch[remaining_old[0]] = stub
        else:
            if is_leaf:
                branch[16] = node[1]
            else:
                # Extension fully consumed: its child takes the slot...
                # but an extension always has a non-empty path, so the
                # divergence at prefix == len(node_path) was handled above.
                raise AssertionError("unreachable: empty extension remainder")
        remaining_new = path[prefix:]
        if remaining_new:
            branch[remaining_new[0]] = [hp_encode(remaining_new[1:], True), value]
        else:
            branch[16] = value
        if prefix:
            return [hp_encode(path[:prefix], False), branch]
        return branch

    def _shorten_extension(self, path: tuple[int, ...], ref: Node) -> Node:
        """Re-root an extension whose path lost its first nibble."""
        if path:
            return [hp_encode(path, False), ref]
        return self._resolve(ref)

    # ------------------------------------------------------------------
    # Delete
    # ------------------------------------------------------------------

    def _delete(self, node: Node, path: tuple[int, ...]) -> Node:
        if node == _BLANK:
            return _BLANK
        if len(node) == 17:
            if not path:
                new_node = node[:16] + [_BLANK]
            else:
                child = self._delete(self._resolve(node[path[0]]), path[1:])
                new_node = list(node)
                new_node[path[0]] = child
            return self._normalize_branch(new_node)
        node_path, is_leaf = hp_decode(node[0])
        if is_leaf:
            return _BLANK if node_path == path else node
        prefix = common_prefix_length(node_path, path)
        if prefix != len(node_path):
            return node
        child = self._delete(self._resolve(node[1]), path[prefix:])
        if child == _BLANK:
            return _BLANK
        return self._merge_extension(node_path, child)

    def _normalize_branch(self, branch: list) -> Node:
        """Collapse branches left with zero or one occupied slot."""
        occupied = [i for i in range(16) if branch[i] != _BLANK]
        has_value = branch[16] != _BLANK
        if len(occupied) + (1 if has_value else 0) > 1:
            return branch
        if has_value and not occupied:
            return [hp_encode((), True), branch[16]]
        if not occupied:
            return _BLANK
        index = occupied[0]
        child = self._resolve(branch[index])
        return self._merge_extension((index,), child)

    def _merge_extension(self, path: tuple[int, ...], child: Node) -> Node:
        """Prepend ``path`` to ``child``, merging leaf/extension paths."""
        child = self._resolve(child)
        if child != _BLANK and len(child) == 2:
            child_path, child_is_leaf = hp_decode(child[0])
            return [hp_encode(path + child_path, child_is_leaf), child[1]]
        if not path:
            return child
        return [hp_encode(path, False), child]

    # ------------------------------------------------------------------
    # Hashing / store
    # ------------------------------------------------------------------

    def _resolve(self, ref: Node) -> Node:
        """Dereference a 32-byte hash ref through the node store."""
        if isinstance(ref, (bytes, bytearray)) and len(ref) == 32 and ref != _BLANK:
            encoded = self._store.get(bytes(ref))
            if encoded is None:
                raise KeyError(f"missing trie node {bytes(ref).hex()}")
            return self._decode_node(rlp.decode(encoded))
        return ref

    @staticmethod
    def _decode_node(item: rlp.codec.RlpItem) -> Node:
        if isinstance(item, (bytes, bytearray)):
            return bytes(item)
        return list(item)

    def _encode_node(self, node: Node) -> bytes:
        """Return the ref for ``node``: inline RLP if short, else hash."""
        encoded = rlp.encode(self._node_to_rlp(node))
        if len(encoded) < 32:
            return encoded
        digest = keccak256(encoded)
        self._store[digest] = encoded
        return digest

    def _node_to_rlp(self, node: Node) -> rlp.codec.RlpItem:
        if node == _BLANK:
            return b""
        if len(node) == 17:
            return [self._ref_to_rlp(node[i]) for i in range(16)] + [node[16]]
        path, is_leaf = hp_decode(node[0])
        if is_leaf:
            return [node[0], node[1]]
        return [node[0], self._ref_to_rlp(node[1])]

    def _ref_to_rlp(self, ref: Node) -> rlp.codec.RlpItem:
        if isinstance(ref, (bytes, bytearray)):
            return bytes(ref)
        encoded = self._encode_node(ref)
        if len(encoded) < 32:
            return rlp.decode(encoded)  # embed the node structurally
        return encoded

    def _iter_node(
        self, node: Node, prefix: tuple[int, ...]
    ) -> Iterator[tuple[bytes, bytes]]:
        if node == _BLANK:
            return
        node = self._resolve(node)
        if len(node) == 17:
            if node[16] != _BLANK:
                yield self._nibbles_to_key(prefix), bytes(node[16])
            for i in range(16):
                if node[i] != _BLANK:
                    yield from self._iter_node(node[i], prefix + (i,))
            return
        path, is_leaf = hp_decode(node[0])
        if is_leaf:
            yield self._nibbles_to_key(prefix + path), bytes(node[1])
        else:
            yield from self._iter_node(node[1], prefix + path)

    @staticmethod
    def _nibbles_to_key(nibbles: tuple[int, ...]) -> bytes:
        from repro.trie.nibbles import nibbles_to_bytes

        return nibbles_to_bytes(nibbles)

    # ------------------------------------------------------------------
    # Proofs
    # ------------------------------------------------------------------

    def _prove(self, node: Node, path: tuple[int, ...], proof: list[bytes]) -> None:
        if node == _BLANK:
            return
        node = self._resolve(node)
        proof.append(rlp.encode(self._node_to_rlp(node)))
        if len(node) == 17:
            if path:
                child = node[path[0]]
                if child != _BLANK:
                    # Only descend into hashed children; embedded short
                    # nodes are already part of this proof element.
                    if isinstance(child, (bytes, bytearray)) and len(child) == 32:
                        self._prove(child, path[1:], proof)
                    elif not isinstance(child, (bytes, bytearray)):
                        encoded = rlp.encode(self._node_to_rlp(child))
                        if len(encoded) >= 32:
                            self._prove(child, path[1:], proof)
            return
        node_path, is_leaf = hp_decode(node[0])
        if is_leaf:
            return
        prefix = common_prefix_length(node_path, path)
        if prefix == len(node_path):
            child = node[1]
            if isinstance(child, (bytes, bytearray)) and len(child) == 32:
                self._prove(child, path[prefix:], proof)
            elif not isinstance(child, (bytes, bytearray)):
                encoded = rlp.encode(self._node_to_rlp(child))
                if len(encoded) >= 32:
                    self._prove(child, path[prefix:], proof)


def verify_proof(root: bytes, key: bytes, proof: list[bytes]) -> bytes | None:
    """Verify a Merkle proof against ``root`` and return the proven value.

    Returns ``None`` for a valid *non-membership* proof.  Raises
    :class:`ProofError` if the proof does not authenticate under ``root``
    (the check the Hypervisor runs on Node responses, defeating A6).
    """
    if root == EMPTY_ROOT and not proof:
        return None
    store = {keccak256(encoded): encoded for encoded in proof}
    path = bytes_to_nibbles(key)
    expected: rlp.codec.RlpItem = root

    while True:
        if isinstance(expected, (bytes, bytearray)):
            if expected == b"":
                return None
            if len(expected) != 32:
                raise ProofError("malformed node reference")
            encoded = store.get(bytes(expected))
            if encoded is None:
                # A proof may legitimately end early for non-membership
                # only when the divergence was shown by a previous node;
                # a dangling hashed ref on the lookup path is invalid.
                raise ProofError("proof is missing a node on the path")
            node = rlp.decode(encoded)
        else:
            node = expected
        if not isinstance(node, list):
            raise ProofError("trie node must be a list")
        if len(node) == 17:
            if not path:
                value = node[16]
                if not isinstance(value, (bytes, bytearray)):
                    raise ProofError("branch value must be bytes")
                return bytes(value) if value != b"" else None
            child = node[path[0]]
            if child == b"":
                return None
            path = path[1:]
            expected = child
            continue
        if len(node) != 2:
            raise ProofError("trie node must have 2 or 17 items")
        first = node[0]
        if not isinstance(first, (bytes, bytearray)):
            raise ProofError("node path must be bytes")
        try:
            node_path, is_leaf = hp_decode(bytes(first))
        except ValueError as exc:
            raise ProofError(str(exc)) from exc
        if is_leaf:
            if node_path == path:
                value = node[1]
                if not isinstance(value, (bytes, bytearray)):
                    raise ProofError("leaf value must be bytes")
                return bytes(value)
            return None
        prefix = common_prefix_length(node_path, path)
        if prefix != len(node_path):
            return None
        path = path[prefix:]
        expected = node[1]
