"""Nibble paths and hex-prefix (HP) encoding for the Merkle Patricia Trie."""

from __future__ import annotations


def bytes_to_nibbles(data: bytes) -> tuple[int, ...]:
    """Split each byte into its high and low 4-bit nibbles."""
    out = []
    for byte in data:
        out.append(byte >> 4)
        out.append(byte & 0x0F)
    return tuple(out)


def nibbles_to_bytes(nibbles: tuple[int, ...]) -> bytes:
    """Inverse of :func:`bytes_to_nibbles`; requires even length."""
    if len(nibbles) % 2:
        raise ValueError("odd nibble count")
    return bytes(
        (nibbles[i] << 4) | nibbles[i + 1] for i in range(0, len(nibbles), 2)
    )


def hp_encode(nibbles: tuple[int, ...], is_leaf: bool) -> bytes:
    """Hex-prefix encode a nibble path with the leaf/extension flag."""
    flag = 2 if is_leaf else 0
    if len(nibbles) % 2:  # odd: flag+1 in high nibble of first byte
        prefixed = (flag + 1,) + nibbles
    else:
        prefixed = (flag, 0) + nibbles
    return nibbles_to_bytes(prefixed)


def hp_decode(data: bytes) -> tuple[tuple[int, ...], bool]:
    """Decode hex-prefix bytes to ``(nibbles, is_leaf)``."""
    if not data:
        raise ValueError("empty hex-prefix encoding")
    nibbles = bytes_to_nibbles(data)
    flag = nibbles[0]
    is_leaf = flag >= 2
    if flag % 2:  # odd length
        return nibbles[1:], is_leaf
    if nibbles[1] != 0:
        raise ValueError("invalid hex-prefix padding nibble")
    return nibbles[2:], is_leaf


def common_prefix_length(a: tuple[int, ...], b: tuple[int, ...]) -> int:
    """Length of the shared prefix of two nibble paths."""
    count = 0
    for x, y in zip(a, b):
        if x != y:
            break
        count += 1
    return count
