"""Merkle Patricia Trie — Ethereum's authenticated key-value structure."""

from repro.trie.mpt import (
    EMPTY_ROOT,
    MerklePatriciaTrie,
    ProofError,
    verify_proof,
)

__all__ = ["EMPTY_ROOT", "MerklePatriciaTrie", "ProofError", "verify_proof"]
