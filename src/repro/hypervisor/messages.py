"""The Hypervisor's message protocol and A.E.DMA model (paper §IV-C, §V-A3).

The untrusted host cannot touch on-chip memory.  To deliver data it
writes a message to a shared buffer and raises a *non-preemptive*
interrupt; the Hypervisor then only inspects a **fixed 32-byte header**
(type, length, target, sequence) and programs the authenticated-
encryption DMA to move the body directly into the target HEVM's memory.
The header-only parsing is the control-flow-integrity argument: no
attacker-controlled bytes ever reach Hypervisor stack or heap.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from enum import IntEnum

HEADER_SIZE = 32
MAX_BODY_SIZE = 4 * 1024 * 1024


class MessageType(IntEnum):
    USER_BUNDLE = 1
    ORAM_RESPONSE = 2
    NODE_BLOCK = 3
    TRACE_OUT = 4
    SWAP_IN = 5
    SWAP_OUT = 6


class MessageError(Exception):
    """Malformed header: the message is dropped before any copy."""


_HEADER_FORMAT = ">IIIIQII"  # magic, type, length, target, sequence, crc, pad
_MAGIC = 0x48445450  # "HDTP"


@dataclass(frozen=True)
class MessageHeader:
    """The only message bytes the Hypervisor software ever parses."""

    msg_type: MessageType
    body_length: int
    target_hevm: int
    sequence: int

    def pack(self) -> bytes:
        header = struct.pack(
            _HEADER_FORMAT,
            _MAGIC,
            int(self.msg_type),
            self.body_length,
            self.target_hevm,
            self.sequence,
            self._checksum(),
            0,
        )
        assert len(header) == HEADER_SIZE
        return header

    def _checksum(self) -> int:
        return (
            _MAGIC ^ int(self.msg_type) ^ self.body_length
            ^ self.target_hevm
            ^ (self.sequence & 0xFFFFFFFF) ^ (self.sequence >> 32)
        ) & 0xFFFFFFFF

    @classmethod
    def unpack(cls, data: bytes) -> "MessageHeader":
        if len(data) < HEADER_SIZE:
            raise MessageError("short header")
        magic, raw_type, length, target, sequence, checksum, _pad = struct.unpack(
            _HEADER_FORMAT, data[:HEADER_SIZE]
        )
        if magic != _MAGIC:
            raise MessageError("bad magic")
        try:
            msg_type = MessageType(raw_type)
        except ValueError as exc:
            raise MessageError(f"unknown message type {raw_type}") from exc
        if length > MAX_BODY_SIZE:
            raise MessageError(f"body length {length} exceeds limit")
        header = cls(msg_type, length, target, sequence)
        if header._checksum() != checksum:
            raise MessageError("header checksum mismatch")
        return header


class AeDma:
    """The authenticated-encryption DMA engine.

    Moves message bodies between the untrusted buffer and on-chip
    memory, decrypting/encrypting with the session (or ORAM) key in
    flight.  The Hypervisor only hands it (source, length, key slot);
    body bytes never traverse Hypervisor memory.
    """

    def __init__(self) -> None:
        self.transfers = 0
        self.bytes_moved = 0

    def ingress(self, channel, sealed, expected_length: int) -> bytes:
        """Decrypt an inbound body (host buffer → HEVM memory)."""
        if len(sealed.ciphertext) > expected_length + 16:
            raise MessageError("body larger than header declared")
        plaintext = channel.open(sealed)
        self.transfers += 1
        self.bytes_moved += len(plaintext)
        return plaintext

    def egress(self, channel, plaintext: bytes):
        """Encrypt an outbound body (HEVM memory → host buffer)."""
        self.transfers += 1
        self.bytes_moved += len(plaintext)
        return channel.seal(plaintext)


def validate_and_admit(raw: bytes) -> tuple[MessageHeader, bytes]:
    """The Hypervisor's complete message-admission procedure.

    Parses the 32-byte header, validates type/length/target coherence,
    and returns (header, opaque body).  Any failure raises
    :class:`MessageError` with no body bytes examined — the invariant
    behind the §V control-flow-integrity claim.
    """
    header = MessageHeader.unpack(raw)
    body = raw[HEADER_SIZE:]
    if len(body) != header.body_length:
        raise MessageError(
            f"declared {header.body_length} body bytes, got {len(body)}"
        )
    return header, body
