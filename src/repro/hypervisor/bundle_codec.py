"""Wire formats for bundles and trace reports.

Bundles travel user → Hypervisor and traces travel back, both inside
the secure channel.  The encoding is RLP, so sizes are deterministic
and the A.E.DMA cost model can charge real byte counts.

The trace report carries what the paper's tracer sends after a bundle
finishes (workflow step 9): per transaction — ReturnData, gas cost,
status, balance transfers, storage modifications, logs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import rlp
from repro.crypto.keccak import keccak256
from repro.evm.executor import TransactionResult
from repro.state.account import Address
from repro.state.blocks import Transaction


@dataclass(frozen=True)
class TransactionBundle:
    """An ordered list of transactions simulated as one unit."""

    transactions: tuple[Transaction, ...]
    block_number: int  # the world-state version to simulate against

    def bundle_id(self) -> bytes:
        return keccak256(encode_bundle(self))[:16]


@dataclass
class TransactionTrace:
    """The per-transaction section of a trace report."""

    status: int
    gas_used: int
    return_data: bytes
    error: str | None = None
    balance_changes: dict[Address, int] = field(default_factory=dict)
    storage_changes: dict[tuple[Address, int], int] = field(default_factory=dict)
    logs: list[tuple[Address, list[int], bytes]] = field(default_factory=list)


@dataclass
class TraceReport:
    """What the user receives for one bundle."""

    bundle_id: bytes
    traces: list[TransactionTrace]
    aborted: bool = False
    abort_reason: str | None = None


def trace_from_result(result: TransactionResult) -> TransactionTrace:
    write_set = result.write_set
    return TransactionTrace(
        status=result.status,
        gas_used=result.gas_used,
        return_data=result.return_data,
        error=result.error,
        balance_changes=dict(write_set.balances) if write_set else {},
        storage_changes=dict(write_set.storage) if write_set else {},
        logs=[(log.address, list(log.topics), log.data) for log in result.logs],
    )


# ---------------------------------------------------------------------------
# RLP encoding
# ---------------------------------------------------------------------------


def encode_bundle(bundle: TransactionBundle) -> bytes:
    items = [
        rlp.encode_uint(bundle.block_number),
        [
            [
                tx.sender,
                tx.to if tx.to is not None else b"",
                rlp.encode_uint(tx.value),
                tx.data,
                rlp.encode_uint(tx.gas_limit),
                rlp.encode_uint(tx.gas_price),
                rlp.encode_uint(tx.nonce if tx.nonce is not None else 0),
                b"\x01" if tx.nonce is not None else b"",
            ]
            for tx in bundle.transactions
        ],
    ]
    return rlp.encode(items)


def decode_bundle(data: bytes) -> TransactionBundle:
    block_number_raw, tx_items = rlp.decode(data)  # type: ignore[misc]
    transactions = []
    for item in tx_items:  # type: ignore[union-attr]
        sender, to, value, tx_data, gas_limit, gas_price, nonce, has_nonce = item
        transactions.append(
            Transaction(
                sender=bytes(sender),
                to=bytes(to) if to != b"" else None,
                value=rlp.decode_uint(bytes(value)),
                data=bytes(tx_data),
                gas_limit=rlp.decode_uint(bytes(gas_limit)),
                gas_price=rlp.decode_uint(bytes(gas_price)),
                nonce=rlp.decode_uint(bytes(nonce)) if has_nonce == b"\x01" else None,
            )
        )
    return TransactionBundle(
        transactions=tuple(transactions),
        block_number=rlp.decode_uint(bytes(block_number_raw)),
    )


def encode_trace_report(report: TraceReport) -> bytes:
    items = [
        report.bundle_id,
        b"\x01" if report.aborted else b"",
        (report.abort_reason or "").encode(),
        [
            [
                rlp.encode_uint(trace.status),
                rlp.encode_uint(trace.gas_used),
                trace.return_data,
                (trace.error or "").encode(),
                [
                    [address, rlp.encode_uint(balance)]
                    for address, balance in sorted(trace.balance_changes.items())
                ],
                [
                    [address, rlp.encode_uint(key), rlp.encode_uint(value)]
                    for (address, key), value in sorted(trace.storage_changes.items())
                ],
                [
                    [address, [rlp.encode_uint(t) for t in topics], data]
                    for address, topics, data in trace.logs
                ],
            ]
            for trace in report.traces
        ],
    ]
    return rlp.encode(items)


def decode_trace_report(data: bytes) -> TraceReport:
    bundle_id, aborted, abort_reason, trace_items = rlp.decode(data)  # type: ignore[misc]
    traces = []
    for item in trace_items:  # type: ignore[union-attr]
        status, gas_used, return_data, error, balances, storages, logs = item
        traces.append(
            TransactionTrace(
                status=rlp.decode_uint(bytes(status)),
                gas_used=rlp.decode_uint(bytes(gas_used)),
                return_data=bytes(return_data),
                error=bytes(error).decode() or None,
                balance_changes={
                    bytes(address): rlp.decode_uint(bytes(balance))
                    for address, balance in balances
                },
                storage_changes={
                    (bytes(address), rlp.decode_uint(bytes(key))): rlp.decode_uint(
                        bytes(value)
                    )
                    for address, key, value in storages
                },
                logs=[
                    (
                        bytes(address),
                        [rlp.decode_uint(bytes(t)) for t in topics],
                        bytes(log_data),
                    )
                    for address, topics, log_data in logs
                ],
            )
        )
    return TraceReport(
        bundle_id=bytes(bundle_id),
        traces=traces,
        aborted=aborted == b"\x01",
        abort_reason=bytes(abort_reason).decode() or None,
    )
