"""Remote attestation and session establishment (paper §IV-A).

Following the SHEF-style scheme the paper adopts [44]: the user sends a
nonce; the Hypervisor answers with an attestation report that chains
device endorsement → boot measurement → a fresh session ECDSA key, with
the nonce signed in to stop replay.  The user and the Hypervisor then
run DHKE over their session keys and derive the AES session key.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.crypto.ecc import InvalidSignature, PrivateKey, PublicKey, Signature
from repro.crypto.kdf import hkdf_sha256
from repro.hardware.csu import BootReceipt, SecureBootError, verify_boot_receipt


class AttestationError(Exception):
    """The attestation report failed verification (attack A1)."""


@dataclass(frozen=True)
class AttestationReport:
    """What the Hypervisor returns for a user's attestation request."""

    boot_receipt: BootReceipt
    session_public: PublicKey  # Hypervisor's fresh session ECDSA key
    dh_public: PublicKey  # Hypervisor's DH share
    user_nonce: bytes
    signature: Signature  # device key over (nonce || session pub || dh pub)

    def signed_message(self) -> bytes:
        return hashlib.sha256(
            b"hardtape-attest"
            + self.user_nonce
            + self.session_public.to_bytes()
            + self.dh_public.to_bytes()
        ).digest()


def build_report(
    boot_receipt: BootReceipt,
    device_key: PrivateKey,
    session_key: PrivateKey,
    dh_key: PrivateKey,
    user_nonce: bytes,
) -> AttestationReport:
    """Hypervisor side: assemble and sign the report."""
    report = AttestationReport(
        boot_receipt=boot_receipt,
        session_public=session_key.public_key(),
        dh_public=dh_key.public_key(),
        user_nonce=user_nonce,
        signature=Signature(1, 1),  # placeholder, replaced below
    )
    signature = device_key.sign(report.signed_message())
    return AttestationReport(
        boot_receipt=boot_receipt,
        session_public=session_key.public_key(),
        dh_public=dh_key.public_key(),
        user_nonce=user_nonce,
        signature=signature,
    )


def verify_report(
    report: AttestationReport,
    manufacturer_public: PublicKey,
    user_nonce: bytes,
    expected_measurement: bytes | None = None,
) -> None:
    """User side: check the full chain; raises on any forgery.

    * Manufacturer endorsement over the device key (A1),
    * device signature over the boot measurement (tampered image),
    * device signature binding the *fresh* session keys to this nonce
      (man-in-the-middle / replay).
    """
    if report.user_nonce != user_nonce:
        raise AttestationError("nonce mismatch (replayed report?)")
    try:
        verify_boot_receipt(
            report.boot_receipt, manufacturer_public, expected_measurement
        )
    except (InvalidSignature, SecureBootError) as exc:
        raise AttestationError(f"boot chain invalid: {exc}") from exc
    try:
        report.boot_receipt.device_public.verify(
            report.signed_message(), report.signature
        )
    except InvalidSignature as exc:
        raise AttestationError("session binding signature invalid") from exc


def derive_session_key(
    own_dh: PrivateKey, peer_dh_public: PublicKey, transcript: bytes
) -> bytes:
    """DHKE + HKDF: the AES session key for the secure channel."""
    shared = own_dh.ecdh(peer_dh_public)
    return hkdf_sha256(shared, salt=b"hardtape-session", info=transcript)
