"""Block synchronization (workflow step 11, paper §IV-C remark).

When new blocks appear on-chain, HarDTAPE fetches the touched world
state from the (SP-controlled, untrusted) Node, verifies **Merkle
proofs against the block's state root** — the only place proofs are ever
checked — and writes the verified pages into the ORAM.  From then on,
AES-GCM inside the ORAM protects integrity, so pre-execution queries
need no proofs (less overhead, no proof-shaped leakage).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.keccak import keccak256
from repro.oram.adapter import ObliviousStateBackend
from repro.state.account import Account, Address
from repro.state.world import WorldState
from repro.trie import ProofError


class SyncError(Exception):
    """The Node served data that fails Merkle verification (attack A6)."""


@dataclass
class AccountUpdate:
    """One account's post-block state plus its authenticating proofs."""

    address: Address
    account: Account
    account_proof: list[bytes]
    storage_proofs: dict[int, list[bytes]] = field(default_factory=dict)


@dataclass
class SyncStats:
    blocks_synced: int = 0
    accounts_verified: int = 0
    storage_slots_verified: int = 0
    pages_written: int = 0
    proofs_rejected: int = 0


class BlockSynchronizer:
    """Verifies Node-provided updates and writes them into the ORAM.

    When given a clock and cost model, it also charges simulated time:
    Merkle verification is ARM-side hashing (per proof node), and every
    page written is one Path ORAM access — the numbers behind the
    paper's claim that one device keeps up with block production.
    """

    def __init__(
        self,
        oram_backend: ObliviousStateBackend,
        clock=None,
        cost=None,
    ) -> None:
        self._oram = oram_backend
        self._clock = clock
        self._cost = cost
        self.stats = SyncStats()
        # Fault-injection seam (``repro.faults``): may substitute a
        # stale/forked state root for one apply, so the Merkle check
        # rejects the whole update set (attack A6 exercised on purpose).
        self.faults = None

    def _charge(self, amount_us: float) -> None:
        if self._clock is not None:
            self._clock.advance_us(amount_us)

    def apply_block(
        self, state_root: bytes, updates: list[AccountUpdate]
    ) -> int:
        """Verify and ingest one block's account updates.

        Raises :class:`SyncError` on the first proof failure, writing
        nothing from the offending update.
        """
        if self.faults is not None:
            now = self._clock.now_us if self._clock is not None else 0.0
            state_root = self.faults.on_sync_root(state_root, now)
        pages = 0
        for update in updates:
            self._verify_update(state_root, update)
            proof_nodes = len(update.account_proof) + sum(
                len(proof) for proof in update.storage_proofs.values()
            )
            if self._cost is not None:
                # ~12 µs of ARM hashing per proof node (keccak over ≤532 B).
                self._charge(12.0 * max(proof_nodes, 1))
            written = self._oram.sync_account(update.address, update.account)
            if self._cost is not None:
                server = self._oram._client.server
                access = self._cost.oram_access_us(
                    server.height, server.bucket_size,
                    self._oram._client.block_size / 1024.0,
                )
                self._charge(access * written)
            pages += written
            self.stats.accounts_verified += 1
        self.stats.blocks_synced += 1
        self.stats.pages_written += pages
        return pages

    def _verify_update(self, state_root: bytes, update: AccountUpdate) -> None:
        try:
            proven = WorldState.verify_account_proof(
                state_root, update.address, update.account_proof
            )
        except ProofError as exc:
            self.stats.proofs_rejected += 1
            raise SyncError(f"account proof invalid: {exc}") from exc
        if proven is None:
            # Valid non-membership: the account must actually be empty.
            if not update.account.is_empty:
                self.stats.proofs_rejected += 1
                raise SyncError("node claims data for a non-existent account")
            return
        if (
            proven.meta.balance != update.account.balance
            or proven.meta.nonce != update.account.nonce
            or proven.meta.code_hash != update.account.code_hash
        ):
            self.stats.proofs_rejected += 1
            raise SyncError("account fields do not match the proven record")
        if update.account.code and keccak256(update.account.code) != proven.meta.code_hash:
            self.stats.proofs_rejected += 1
            raise SyncError("bytecode does not match the proven code hash")
        storage_root = update.account.storage_root()
        if storage_root != proven.storage_root:
            self.stats.proofs_rejected += 1
            raise SyncError("storage contents do not match the proven storage root")
        for key, proof in update.storage_proofs.items():
            try:
                proven_value = WorldState.verify_storage_proof(
                    storage_root, key, proof
                )
            except ProofError as exc:
                self.stats.proofs_rejected += 1
                raise SyncError(f"storage proof invalid for key {key}: {exc}") from exc
            if proven_value != update.account.storage.get(key, 0):
                self.stats.proofs_rejected += 1
                raise SyncError(f"storage value mismatch for key {key}")
            self.stats.storage_slots_verified += 1
