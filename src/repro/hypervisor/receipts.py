"""Signed pre-execution receipts and the user-side spot-check auditor.

HarDTAPE as specified asks users to trust attestation once and believe
every pre-execution result thereafter.  This module closes that gap
with the zkEVM-lite design the ROADMAP sketches: after a bundle
completes, the Hypervisor signs the Merkle :func:`~repro.telemetry.unified.
UnifiedStepTrace.commitment` of every transaction's step trace under the
attested session signing key (the same key that authenticates the
secure channel), and returns the :class:`SignedReceipt` alongside the
trace report.  The user — who can re-execute any transaction against
``repro.node`` ground truth — then *spot-checks*: verify one signature,
compare the signed roots against locally recomputed ones, and open a
seeded-DRBG sample of individual steps with O(log n) Merkle membership
proofs.  A device that tampers with results, forges a signature, or
withholds the receipt is caught with a typed error
(:class:`ReceiptMismatchError` / :class:`ReceiptMissingError`) that the
quarantine policy in :mod:`repro.faults.policy` turns into recovery.

Determinism contract: signing is RFC 6979 (no randomness drawn), the
auditor owns its own seeded DRBG (never the simulation's), and neither
signing nor auditing touches the virtual clock, spans, or metrics — a
clean run with receipts enabled is byte-identical to one without.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.crypto.ecc import (
    InvalidSignature,
    PrivateKey,
    PublicKey,
    Signature,
)
from repro.crypto.kdf import Drbg
from repro.telemetry.unified import (
    MerkleProof,
    StepTraceRecord,
    UnifiedStepTrace,
    verify_merkle_proof,
)

RECEIPT_DOMAIN = b"hardtape.receipt.v1"


class ReceiptError(Exception):
    """Base class for receipt-audit failures.

    These are deliberately *not* in the fault plane's
    ``RECOVERABLE_ERRORS``: a wrong receipt is evidence of a lying
    device, not a transient fault, so the response is quarantine —
    never a blind retry on the same device.
    """


class ReceiptMissingError(ReceiptError):
    """The device completed a bundle but produced no receipt."""

    def __init__(self, bundle_id: bytes) -> None:
        super().__init__(
            f"no receipt for bundle {bundle_id.hex()[:16]}"
        )
        self.bundle_id = bundle_id


class ReceiptMismatchError(ReceiptError):
    """A receipt failed verification against ground truth.

    ``field`` names the first check that failed: ``bundle_id``,
    ``signature``, ``count``, ``commitment``, ``step``, or ``proof``.
    ``tx_index`` is set for per-transaction failures.
    """

    def __init__(
        self,
        bundle_id: bytes,
        field: str,
        detail: str = "",
        tx_index: int | None = None,
    ) -> None:
        at = f" (tx {tx_index})" if tx_index is not None else ""
        super().__init__(
            f"receipt for bundle {bundle_id.hex()[:16]} failed the "
            f"{field} check{at}: {detail}" if detail else
            f"receipt for bundle {bundle_id.hex()[:16]} failed the "
            f"{field} check{at}"
        )
        self.bundle_id = bundle_id
        self.field = field
        self.detail = detail
        self.tx_index = tx_index


def receipt_signing_hash(
    bundle_id: bytes, commitments: Sequence[str]
) -> bytes:
    """The 32-byte message an RFC 6979 receipt signature covers.

    Domain-separated and length-prefixed so a receipt for one bundle can
    never be replayed as a receipt for another bundle or a different
    transaction count.
    """
    hasher = hashlib.sha256()
    hasher.update(RECEIPT_DOMAIN)
    hasher.update(len(commitments).to_bytes(4, "big"))
    hasher.update(bundle_id)
    for commitment in commitments:
        hasher.update(bytes.fromhex(commitment))
    return hasher.digest()


@dataclass(frozen=True)
class SignedReceipt:
    """One per-bundle receipt: the signed trace commitments.

    ``commitments[i]`` is the Merkle root of transaction *i*'s
    :class:`UnifiedStepTrace`; the signature is RFC 6979 ECDSA by the
    attested session signing key, so it is deterministic and
    wire-identical across every crypto backend tier.
    """

    bundle_id: bytes
    commitments: tuple[str, ...]
    signature: Signature

    def signing_hash(self) -> bytes:
        return receipt_signing_hash(self.bundle_id, self.commitments)

    def verify(self, verify_key: PublicKey) -> None:
        """Raises :class:`~repro.crypto.ecc.InvalidSignature` on forgery."""
        verify_key.verify(self.signing_hash(), self.signature)


def make_receipt(
    bundle_id: bytes,
    traces: Sequence[UnifiedStepTrace],
    signing_key: PrivateKey,
) -> SignedReceipt:
    """Commit and sign the step traces of one completed bundle."""
    commitments = tuple(trace.commitment() for trace in traces)
    signature = signing_key.sign(receipt_signing_hash(bundle_id, commitments))
    return SignedReceipt(
        bundle_id=bundle_id, commitments=commitments, signature=signature
    )


@dataclass(frozen=True)
class AuditReport:
    """What one successful audit cost: the sublinearity evidence."""

    bundle_id: bytes
    transactions: int
    steps_total: int      # ground-truth trace length across the bundle
    steps_sampled: int    # membership proofs actually opened
    hash_ops: int         # sha256 calls spent verifying those proofs
    signature_checks: int


# An opening oracle: (tx_index, step_index) -> (record, membership proof).
# In the live system this is served by the device that signed the
# receipt (repro.hypervisor.Hypervisor.receipt_opening).
OpeningFn = Callable[[int, int], tuple[StepTraceRecord, MerkleProof]]


class ReceiptAuditor:
    """SP/user-side trust-but-verify: spot-check receipts vs ground truth.

    The auditor holds the *expected* traces (recomputed from
    ``repro.node`` — the user's own full node) and checks a device's
    signed receipt against them: one signature verification, a root
    comparison per transaction, and ``samples_per_tx`` seeded-DRBG
    sampled step openings per transaction.  Sampling uses the auditor's
    own HMAC-DRBG so audit choices are reproducible from the audit seed
    alone and never perturb simulation randomness.

    Root comparison alone already catches *any* trace tampering (the
    commitment is over every step), so detection is 100%, not
    probabilistic; the sampled membership proofs are what keep the
    per-step audit cost O(log n) and are the path a bandwidth-starved
    auditor without full ground-truth traces would rely on.
    """

    def __init__(self, *, samples_per_tx: int = 2, seed: int = 0) -> None:
        if samples_per_tx < 0:
            raise ValueError("samples_per_tx must be non-negative")
        self.samples_per_tx = samples_per_tx
        self._drbg = Drbg(
            seed.to_bytes(8, "big"), personalization=b"receipt-audit"
        )
        self.audits_passed = 0
        self.audits_failed = 0

    def _sample_index(self, length: int) -> int:
        raw = int.from_bytes(self._drbg.random_bytes(8), "big")
        return raw % length

    def audit(
        self,
        bundle_id: bytes,
        receipt: SignedReceipt | None,
        expected_traces: Sequence[UnifiedStepTrace],
        *,
        verify_key: PublicKey,
        opening: OpeningFn | None = None,
    ) -> AuditReport:
        """Check one bundle's receipt; raises typed errors on any lie."""
        try:
            report = self._audit(
                bundle_id, receipt, expected_traces,
                verify_key=verify_key, opening=opening,
            )
        except ReceiptError:
            self.audits_failed += 1
            raise
        self.audits_passed += 1
        return report

    def _audit(
        self,
        bundle_id: bytes,
        receipt: SignedReceipt | None,
        expected_traces: Sequence[UnifiedStepTrace],
        *,
        verify_key: PublicKey,
        opening: OpeningFn | None,
    ) -> AuditReport:
        if receipt is None:
            raise ReceiptMissingError(bundle_id)
        if receipt.bundle_id != bundle_id:
            raise ReceiptMismatchError(
                bundle_id,
                "bundle_id",
                f"receipt names bundle {receipt.bundle_id.hex()[:16]}",
            )
        try:
            receipt.verify(verify_key)
        except InvalidSignature as exc:
            raise ReceiptMismatchError(
                bundle_id, "signature", str(exc)
            ) from exc
        if len(receipt.commitments) != len(expected_traces):
            raise ReceiptMismatchError(
                bundle_id,
                "count",
                f"receipt commits {len(receipt.commitments)} traces, "
                f"ground truth has {len(expected_traces)}",
            )
        hash_ops = 0
        steps_sampled = 0
        steps_total = 0
        for tx_index, expected in enumerate(expected_traces):
            steps_total += expected.instructions
            signed_root = receipt.commitments[tx_index]
            expected_root = expected.commitment()
            if signed_root != expected_root:
                raise ReceiptMismatchError(
                    bundle_id,
                    "commitment",
                    f"signed root {signed_root[:16]} != ground-truth "
                    f"root {expected_root[:16]}",
                    tx_index=tx_index,
                )
            if opening is None or expected.instructions == 0:
                continue
            for _ in range(min(self.samples_per_tx, expected.instructions)):
                step = self._sample_index(expected.instructions)
                record, proof = opening(tx_index, step)
                if record != expected.records[step]:
                    raise ReceiptMismatchError(
                        bundle_id,
                        "step",
                        f"opened step {step} disagrees with ground truth",
                        tx_index=tx_index,
                    )
                if proof.index != step or proof.leaf != record.leaf_bytes():
                    raise ReceiptMismatchError(
                        bundle_id,
                        "proof",
                        f"opening for step {step} proves a different leaf",
                        tx_index=tx_index,
                    )
                if not verify_merkle_proof(proof, signed_root):
                    raise ReceiptMismatchError(
                        bundle_id,
                        "proof",
                        f"membership proof for step {step} does not reach "
                        f"the signed root",
                        tx_index=tx_index,
                    )
                steps_sampled += 1
                hash_ops += proof.hash_ops
        return AuditReport(
            bundle_id=bundle_id,
            transactions=len(expected_traces),
            steps_total=steps_total,
            steps_sampled=steps_sampled,
            hash_ops=hash_ops,
            signature_checks=1,
        )

    def spot_check(
        self, trace: UnifiedStepTrace, root: str, samples: int
    ) -> tuple[int, int]:
        """Verifier-side cost probe over one committed trace.

        Opens ``samples`` DRBG-chosen steps (prover-side work, uncosted)
        and verifies each membership proof against ``root``; returns
        ``(steps_checked, hash_ops)`` — the measured audit cost the
        sublinearity bench plots against trace length.
        """
        if trace.instructions == 0:
            return 0, 0
        hash_ops = 0
        checked = 0
        for _ in range(min(samples, trace.instructions)):
            step = self._sample_index(trace.instructions)
            proof = trace.open_step(step)
            if not verify_merkle_proof(proof, root):
                raise ReceiptMismatchError(
                    b"", "proof", f"spot check failed at step {step}"
                )
            checked += 1
            hash_ops += proof.hash_ops
        return checked, hash_ops


__all__ = [
    "AuditReport",
    "RECEIPT_DOMAIN",
    "ReceiptAuditor",
    "ReceiptError",
    "ReceiptMismatchError",
    "ReceiptMissingError",
    "SignedReceipt",
    "make_receipt",
    "receipt_signing_hash",
]
