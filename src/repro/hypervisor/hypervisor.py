"""The Hypervisor: the only software on the chip (paper §IV).

Responsibilities, in workflow order: boot under the CSU (1), answer
remote attestation and set up per-user secure channels (2), queue and
exclusively assign bundles to idle HEVMs (3), handle HEVM exceptions —
layer-3 swaps and world-state queries (5–8) — return sealed traces (9),
reset cores (10), and synchronize new blocks into the ORAM (11).  It
also owns the ORAM key, shared across HarDTAPE devices of one
deployment through device-to-device DHKE.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.crypto.ecc import PrivateKey, PublicKey
from repro.crypto.kdf import Drbg, hkdf_sha256
from repro.evm.interpreter import ChainContext
from repro.hardware.csu import BootImage, BootReceipt, ConfigurationSecurityUnit
from repro.hardware.hevm import HevmCore
from repro.hardware.timing import CostModel, SimClock, TimeBreakdown
from repro.hypervisor.attestation import (
    AttestationReport,
    build_report,
    derive_session_key,
)
from repro.hypervisor.bundle_codec import (
    TraceReport,
    decode_bundle,
    encode_trace_report,
    trace_from_result,
)
from repro.crypto.backend import get_backend
from repro.hypervisor.channel import SealedMessage, SecureChannel
from repro.hypervisor.resumption import TicketSealer, TicketState, ticket_header
from repro.hypervisor.scheduler import HevmScheduler
from repro.hypervisor.sync import BlockSynchronizer
from repro.hypervisor.receipts import (
    ReceiptMissingError,
    SignedReceipt,
    make_receipt,
)
from repro.oram.adapter import ObliviousStateBackend
from repro.state.backend import StateBackend
from repro.telemetry.tracer import tracer_for
from repro.telemetry.unified import (
    MerkleProof,
    StepTraceRecord,
    UnifiedStepTrace,
    from_struct_logs,
)


@dataclass
class SecurityFeatures:
    """Which of the paper's protections are active (-raw … -full)."""

    encryption: bool = True       # E: AES-GCM on user I/O and layer 3
    signatures: bool = True       # S: ECDSA on user I/O
    oram_storage: bool = True     # O: Path ORAM for K-V world state
    oram_code: bool = True        # full: Path ORAM for bytecode too
    swap_noise: bool = True
    prefetch: bool = True
    # Extension (not in the paper): pad each bundle's total ORAM query
    # count to the next power of two, hiding the count itself (which
    # otherwise correlates with contract code size — see the
    # fingerprinting benchmark).
    query_padding: bool = False
    # Extension (ROADMAP receipts item): sign the Merkle commitment of
    # every transaction's step trace per completed bundle, so users can
    # spot-check results against their own node (repro.hypervisor.receipts).
    receipts: bool = False

    @classmethod
    def from_level(cls, level: str) -> "SecurityFeatures":
        """Levels as in Figure 4: raw, E, ES, ESO, full."""
        levels = {
            "raw": cls(False, False, False, False, False, False),
            "E": cls(True, False, False, False, True, False),
            "ES": cls(True, True, False, False, True, False),
            "ESO": cls(True, True, True, False, True, False),
            "full": cls(True, True, True, True, True, True),
        }
        try:
            return levels[level]
        except KeyError:
            raise ValueError(f"unknown security level {level!r}") from None


class BundleRejected(Exception):
    """Bundle refused at admission (gas policy, §IV-B DoS protection)."""


class HypervisorCrashError(Exception):
    """The Hypervisor died (power loss, firmware panic, watchdog reset).

    All volatile trusted state — live sessions, the in-memory ORAM
    client, scheduler queues — is gone.  Defined here (not in
    ``repro.faults``) because the crash is a property of the substrate;
    the injector merely decides *when* it happens.  Recovery is a cold
    restart through ``repro.recovery``: unseal checkpoint, replay
    journal, re-attest every session.
    """

    def __init__(self, serial: bytes, phase: str) -> None:
        super().__init__(
            f"hypervisor on device {serial.hex()[:8]} crashed during {phase}"
        )
        self.serial = serial
        self.phase = phase


class UnknownSessionError(KeyError):
    """A bundle arrived for a session id this Hypervisor never established.

    Subclasses :class:`KeyError` for backward compatibility; carries the
    offending session id so the service layer can log/account it.
    """

    def __init__(self, session_id: bytes) -> None:
        super().__init__(f"unknown session {session_id.hex()}")
        self.session_id = session_id


@dataclass
class Session:
    """One attested user session."""

    session_id: bytes
    channel: SecureChannel
    user_public: PublicKey
    established_at_us: float
    bundles_run: int = 0
    # The hypervisor-side session signing key, retained so the session
    # can be sealed into a resumption ticket (the resumed channel signs
    # under the same attested identity).  ``None`` only for sessions
    # restored from pre-resumption checkpoints.
    signing_key: PrivateKey | None = None
    # Set on sessions created via ticket redemption: the session id this
    # one resumed from (telemetry and directory re-join use it).
    resumed_from: bytes | None = None


@dataclass
class HypervisorStats:
    sessions_established: int = 0
    bundles_executed: int = 0
    transactions_executed: int = 0
    crypto_time_us: float = 0.0
    tickets_minted: int = 0
    sessions_suspended: int = 0
    sessions_resumed: int = 0


class Hypervisor:
    """The trusted firmware orchestrating the whole chip."""

    def __init__(
        self,
        csu: ConfigurationSecurityUnit,
        boot_image: BootImage,
        cores: list[HevmCore],
        clock: SimClock,
        cost: CostModel,
        direct_backend: StateBackend,
        oram_backend: ObliviousStateBackend | None,
        features: SecurityFeatures,
        oram_key: bytes | None = None,
        max_bundle_gas: int | None = 2_000_000_000,
        generation: int = 0,
        crypto_backend: str = "numpy",
    ) -> None:
        self._csu = csu
        # Which CryptoBackend tier seals/verifies session channels
        # (repro.crypto.backend).  Every tier is wire-identical, so the
        # choice is invisible to users and to the byte-identity gates.
        self.crypto_backend = get_backend(crypto_backend)
        self.boot_receipt: BootReceipt = csu.secure_boot(boot_image)
        self._device_key = PrivateKey.from_bytes(
            csu._puf.derive_key(b"device-key")  # re-derived on chip, as at boot
        )
        self.clock = clock
        self.cost = cost
        self.scheduler = HevmScheduler(cores, clock=clock)
        self._direct_backend = direct_backend
        self._oram_backend = oram_backend
        self.features = features
        self.synchronizer = (
            BlockSynchronizer(oram_backend, clock=clock, cost=cost)
            if oram_backend is not None
            else None
        )
        # ``generation`` counts cold restarts of this device's firmware.
        # Each generation salts its DRBG personalization so a restarted
        # Hypervisor never replays the random stream the pre-crash one
        # already consumed (session keys, DH keys).  Generation 0 keeps
        # the historical label, so crash-free runs are byte-identical.
        self.generation = generation
        rng_label = (
            b"hypervisor"
            if generation == 0
            else b"hypervisor-gen%d" % generation
        )
        self._rng: Drbg = csu.secure_rng(rng_label)
        self._sessions: dict[bytes, Session] = {}
        # Resumption-ticket sealer (repro.async_serving): built lazily so
        # deployments that never suspend a session derive no extra key.
        # The key is PUF-bound — a restarted hypervisor re-derives the
        # *same* key, and the epoch (= generation) binding is what
        # refuses pre-crash tickets.
        self._ticket_sealer: TicketSealer | None = None
        self.stats = HypervisorStats()
        # Crash modelling (``repro.faults`` HYPERVISOR_CRASH): a crashed
        # instance refuses all work; the device builds a *new* instance
        # at the next generation to recover.
        self.crashed = False
        # Recovery seam (``repro.recovery``): a RecoveryManager arms
        # itself here to journal session establishment and sync roots.
        self.recovery = None
        # The most recent Merkle root the synchronizer verified; part of
        # the trusted state a checkpoint must pin.
        self.last_verified_root: bytes | None = None
        # Fault-injection plane (``repro.faults``): ``None`` in production;
        # a :class:`~repro.faults.injector.FaultInjector` arms itself here
        # to exercise the exception paths this firmware is charged with.
        self.faults = None
        # The shared ORAM key (chosen by the first device of a
        # deployment, or received via device-to-device DHKE).
        self.oram_key = oram_key or self._rng.random_bytes(32)
        # §IV-B DoS protection: "The SP can prevent DoS attacks
        # (occupying an HEVM too long) by charging gas fees or setting
        # low gas limits because the gas cost approximately represents
        # the computing resource consumption."
        self.max_bundle_gas = max_bundle_gas
        # Receipts plane (features.receipts): per-bundle signed trace
        # commitments plus the retained step traces that serve Merkle
        # openings to auditors.  Bounded: oldest bundle evicted first.
        self._receipts: dict[bytes, SignedReceipt] = {}
        self._receipt_traces: dict[bytes, tuple[UnifiedStepTrace, ...]] = {}
        self._receipt_cap = 512

    # ------------------------------------------------------------------
    # Crash modelling
    # ------------------------------------------------------------------

    def crash(self, phase: str) -> HypervisorCrashError:
        """Kill this instance: volatile trusted state is lost, now.

        Returns (does not raise) the typed error so the injector can
        decide how it propagates.  The instance stays permanently dead —
        recovery builds a successor at ``generation + 1``.
        """
        self.crashed = True
        self._sessions.clear()
        return HypervisorCrashError(self.boot_receipt.serial, phase)

    def _require_alive(self) -> None:
        if self.crashed:
            raise HypervisorCrashError(self.boot_receipt.serial, "dead-instance")

    # ------------------------------------------------------------------
    # Step 2: attestation and session establishment
    # ------------------------------------------------------------------

    def begin_attestation(
        self, user_nonce: bytes
    ) -> tuple[AttestationReport, PrivateKey, PrivateKey]:
        """Produce the signed report plus the fresh session/DH keys."""
        self._require_alive()
        session_key = PrivateKey.from_bytes(self._rng.random_bytes(32))
        dh_key = PrivateKey.from_bytes(self._rng.random_bytes(32))
        tracer_for(self.clock).record(
            "attestation.report", "session", self.cost.attestation_us
        )
        self.clock.advance_us(self.cost.attestation_us)
        report = build_report(
            self.boot_receipt, self._device_key, session_key, dh_key, user_nonce
        )
        if self.faults is not None:
            report = self.faults.on_attestation(report, self.clock.now_us)
        return report, session_key, dh_key

    def establish_session(
        self,
        report: AttestationReport,
        session_key: PrivateKey,
        dh_key: PrivateKey,
        user_session_public: PublicKey,
        user_dh_public: PublicKey,
    ) -> bytes:
        """Finish DHKE and create the session's secure channel."""
        self._require_alive()
        transcript = (
            report.user_nonce
            + report.session_public.to_bytes()
            + user_session_public.to_bytes()
        )
        aes_key = derive_session_key(dh_key, user_dh_public, transcript)
        tracer_for(self.clock).record("session.dhke", "session", self.cost.dhke_us)
        self.clock.advance_us(self.cost.dhke_us)
        session_id = hashlib.sha256(b"session" + transcript).digest()[:16]
        self._sessions[session_id] = Session(
            session_id=session_id,
            channel=SecureChannel(
                aes_key,
                own_signing_key=session_key,
                peer_verify_key=user_session_public,
                sign_messages=self.features.signatures,
                backend=self.crypto_backend,
            ),
            user_public=user_session_public,
            established_at_us=self.clock.now_us,
            signing_key=session_key,
        )
        self.stats.sessions_established += 1
        if self.recovery is not None:
            self.recovery.on_session(self._sessions[session_id])
        return session_id

    # ------------------------------------------------------------------
    # Session resumption (repro.async_serving): suspend to a sealed
    # ticket, resume in one round-trip without re-attesting.
    # ------------------------------------------------------------------

    @property
    def session_count(self) -> int:
        """Live (non-suspended) sessions held in hypervisor memory."""
        return len(self._sessions)

    @property
    def ticket_sealer(self) -> TicketSealer:
        if self._ticket_sealer is None:
            self._ticket_sealer = TicketSealer(
                self._csu.derive_sealing_key(b"resumption-ticket")
            )
        return self._ticket_sealer

    def mint_resumption_ticket(
        self,
        session_id: bytes,
        *,
        shard_affinity: int = -1,
        ring_digest: str = "",
        evict: bool = True,
    ) -> tuple[bytes, SealedMessage | bytes]:
        """Seal a session into a ticket; returns ``(ticket, sealed_secret)``.

        The resumption secret travels to the user over the *existing*
        secure channel (the last message it will ever carry); the ticket
        itself is opaque to the user and bound to this generation as an
        anti-rollback epoch.  With ``evict`` (the default) the session
        leaves hypervisor memory — the C10K property: suspended users
        cost the hypervisor zero bytes of volatile state.
        """
        self._require_alive()
        session = self._sessions.get(session_id)
        if session is None:
            raise UnknownSessionError(session_id)
        if session.signing_key is None:
            raise ValueError(
                f"session {session_id.hex()[:16]} predates resumption "
                f"support; cannot mint a ticket"
            )
        secret = self._rng.random_bytes(32)
        # Session/tenant/shard metadata on the span makes suspended
        # sessions distinguishable in the Chrome-trace timeline; the
        # authenticated epoch/seq land after the mint below.
        mint_span = tracer_for(self.clock).record(
            "session.ticket_mint", "session", self.cost.ticket_mint_us,
            session=session_id.hex()[:16],
            tenant=session.user_public.to_bytes().hex()[:16],
            shard=shard_affinity,
        )
        self.clock.advance_us(self.cost.ticket_mint_us)
        if self.features.encryption:
            sealed_secret: SealedMessage | bytes = session.channel.seal(secret)
        else:
            sealed_secret = secret
        # Watermark captured *after* the secret hand-off so the resumed
        # channel's counters sit above every message either side sent.
        sent, received = session.channel.nonce_watermark
        state = TicketState(
            session_id=session_id,
            user_public=session.user_public.to_bytes(),
            hv_signing_secret=session.signing_key.secret.to_bytes(32, "big"),
            resumption_secret=secret,
            send_watermark=sent,
            recv_watermark=received,
            shard_affinity=shard_affinity,
            ring_digest=ring_digest,
            minted_at_us=self.clock.now_us,
        )
        ticket = self.ticket_sealer.mint(state, epoch=self.generation)
        epoch, seq = ticket_header(ticket)
        mint_span.set(epoch=epoch, seq=seq)
        self.stats.tickets_minted += 1
        if evict:
            del self._sessions[session_id]
            self.stats.sessions_suspended += 1
        return ticket, sealed_secret

    def resume_session(self, ticket: bytes, user_nonce: bytes) -> bytes:
        """Redeem a ticket: re-key and re-register in one round-trip.

        Raises :class:`~repro.hypervisor.resumption.StaleTicketError`
        when the ticket names a pre-restart epoch — the caller must
        fall back to a full handshake — and
        :class:`~repro.hypervisor.resumption.TicketIntegrityError` /
        :class:`~repro.hypervisor.resumption.TicketReplayError` on
        tampering or reuse.  Both channel endpoints derive the fresh
        AES key as ``HKDF(resumption_secret, salt="hardtape-resume",
        info=user_nonce ‖ old_session_id)``, so a stolen ticket without
        the channel-sealed secret opens nothing.
        """
        self._require_alive()
        state = self.ticket_sealer.redeem(ticket, current_epoch=self.generation)
        epoch, seq = ticket_header(ticket)
        tracer_for(self.clock).record(
            "session.resume", "session", self.cost.ticket_resume_us,
            resumed_from=state.session_id.hex()[:16],
            tenant=state.user_public.hex()[:16],
            shard=state.shard_affinity,
            epoch=epoch,
            seq=seq,
        )
        self.clock.advance_us(self.cost.ticket_resume_us)
        session_id = hashlib.sha256(
            b"hardtape-resume" + state.session_id + user_nonce
        ).digest()[:16]
        aes_key = hkdf_sha256(
            state.resumption_secret,
            salt=b"hardtape-resume",
            info=user_nonce + state.session_id,
        )
        # Not PrivateKey.from_bytes: that maps arbitrary bytes into the
        # scalar range, but this is an exact stored scalar round-trip.
        signing_key = PrivateKey(int.from_bytes(state.hv_signing_secret, "big"))
        user_public = PublicKey.from_bytes(state.user_public)
        channel = SecureChannel(
            aes_key,
            own_signing_key=signing_key,
            peer_verify_key=user_public,
            sign_messages=self.features.signatures,
            backend=self.crypto_backend,
        )
        channel.restore_nonce_watermark(state.send_watermark,
                                        state.recv_watermark)
        self._sessions[session_id] = Session(
            session_id=session_id,
            channel=channel,
            user_public=user_public,
            established_at_us=self.clock.now_us,
            signing_key=signing_key,
            resumed_from=state.session_id,
        )
        self.stats.sessions_resumed += 1
        if self.recovery is not None:
            self.recovery.on_session(self._sessions[session_id])
        return session_id

    # ------------------------------------------------------------------
    # Steps 3–10: bundle execution
    # ------------------------------------------------------------------

    def submit_bundle(
        self,
        session_id: bytes,
        sealed_bundle: SealedMessage | bytes,
        chain: ChainContext,
        charge_fees: bool = True,
    ) -> tuple[SealedMessage | bytes, list[TimeBreakdown], "object"]:
        """Run one bundle end to end; returns the sealed trace report.

        Also returns the per-transaction time breakdowns and the raw run
        stats so benchmarks can decompose Figure 4 without re-running.
        """
        self._require_alive()
        session = self._sessions.get(session_id)
        if session is None:
            raise UnknownSessionError(session_id)
        tracer = tracer_for(self.clock)

        # Fixed per-bundle path: interrupt, header check, DMA programming,
        # core activation on entry; trace packing and core scrub on exit.
        tracer.record("bundle.admission", "hypervisor", self.cost.bundle_admission_us)
        self.clock.advance_us(self.cost.bundle_admission_us)
        if self.faults is not None:
            # Crash point A: power loss right after the bundle was
            # admitted but before any core was assigned.
            self.faults.on_bundle_admission(self, self.clock.now_us)

        # Admit the message: decrypt/verify (or accept plaintext in -raw).
        if self.features.encryption:
            assert isinstance(sealed_bundle, SealedMessage)
            if self.faults is not None:
                # The wire between A.E.DMA endpoints: drops surface here,
                # corruption downstream at the tag/signature check.
                sealed_bundle = self.faults.on_channel_receive(
                    sealed_bundle, self.clock.now_us
                )
            payload = session.channel.open(sealed_bundle)
            if self.faults is not None:
                self.faults.after_channel_open(
                    session.channel, sealed_bundle, self.clock.now_us
                )
            self._charge_channel_crypto(
                len(payload),
                signed=self.features.signatures,
                direction="open",
                channel=session.channel,
            )
        else:
            assert isinstance(sealed_bundle, (bytes, bytearray))
            payload = bytes(sealed_bundle)
        bundle = decode_bundle(payload)
        active = tracer.active
        if active is not None:
            active.set(
                bundle=bundle.bundle_id().hex()[:16],
                transactions=len(bundle.transactions),
            )

        if self.max_bundle_gas is not None:
            requested = sum(tx.gas_limit for tx in bundle.transactions)
            if requested > self.max_bundle_gas:
                raise BundleRejected(
                    f"bundle requests {requested} gas, "
                    f"SP cap is {self.max_bundle_gas}"
                )

        # Step 3: exclusive assignment of an idle core.
        self.scheduler.submit(session_id, self.clock.now_us)
        assigned = self.scheduler.try_assign(self.clock.now_us)
        assert assigned is not None, "pool exhausted (callers submit serially)"
        assignment, _ = assigned
        core = assignment.core

        # Steps 4–8: run on the dedicated hardware set.  Exception
        # handling is this firmware's job: a fault mid-bundle (HEVM
        # crash, ORAM timeout, AEAD failure on a bucket) must never leak
        # the core — scrub it and return it to the pool, then let the
        # typed error propagate to the recovery layer.
        try:
            results, breakdowns, run_stats, struct_logs = core.run_bundle(
                list(bundle.transactions),
                chain,
                self._direct_backend,
                self._oram_backend,
                storage_via_oram=self.features.oram_storage,
                code_via_oram=self.features.oram_code,
                prefetch_enabled=self.features.prefetch,
                charge_fees=charge_fees,
                query_padding=self.features.query_padding,
                # Step traces feed the signed receipt; collecting them is
                # clock- and span-invisible, so receipts-off runs stay
                # byte-identical.
                struct_trace=self.features.receipts,
            )
            if self.faults is not None:
                # Byzantine seam: a lying device falsifies results (and
                # keeps its own trace self-consistent with the lie).
                results, struct_logs = self.faults.on_hevm_result(
                    results, struct_logs, self.clock.now_us
                )
                # Crash point B: power loss after execution finished but
                # before the trace was sealed — the client never sees a
                # result, yet the ORAM already absorbed the accesses.
                # Inside the ``try`` so the scrub below runs.
                self.faults.on_bundle_sealing(self, self.clock.now_us)
        except Exception:
            self.scheduler.release(core)  # resets (scrubs) the core too
            raise

        report = TraceReport(
            bundle_id=bundle.bundle_id(),
            traces=[trace_from_result(result) for result in results],
            aborted=run_stats.aborted,
            abort_reason=run_stats.abort_reason,
        )
        encoded = encode_trace_report(report)

        # Receipts plane: commit and sign every transaction's step trace.
        # RFC 6979 signing draws no randomness and the receipt travels
        # out of band (not channel-sealed), so nonce counters, clock,
        # spans, and metrics are untouched — byte-identity preserved.
        if self.features.receipts and session.signing_key is not None:
            unified = tuple(from_struct_logs(logs) for logs in struct_logs)
            receipt = make_receipt(
                bundle.bundle_id(), unified, session.signing_key
            )
            if self.faults is not None:
                receipt = self.faults.on_receipt(receipt, self.clock.now_us)
            if receipt is not None:
                self._store_receipt(bundle.bundle_id(), receipt, unified)

        # Step 9: seal and send the trace.
        if self.features.encryption:
            sealed_out: SealedMessage | bytes = session.channel.seal(encoded)
            self._charge_channel_crypto(
                len(encoded),
                signed=self.features.signatures,
                direction="seal",
                channel=session.channel,
            )
        else:
            sealed_out = encoded

        # Step 10: release and scrub the core.
        self.scheduler.release(core)
        session.bundles_run += 1
        self.stats.bundles_executed += 1
        self.stats.transactions_executed += len(results)
        return sealed_out, breakdowns, run_stats

    # ------------------------------------------------------------------
    # Receipts plane (repro.hypervisor.receipts)
    # ------------------------------------------------------------------

    def _store_receipt(
        self,
        bundle_id: bytes,
        receipt: SignedReceipt,
        traces: tuple[UnifiedStepTrace, ...],
    ) -> None:
        self._receipts[bundle_id] = receipt
        self._receipt_traces[bundle_id] = traces
        while len(self._receipts) > self._receipt_cap:
            oldest = next(iter(self._receipts))
            del self._receipts[oldest]
            del self._receipt_traces[oldest]

    def receipt_for(self, bundle_id: bytes) -> SignedReceipt | None:
        """The signed receipt for a completed bundle (None if withheld,
        evicted, or receipts are disabled)."""
        return self._receipts.get(bundle_id)

    def receipt_opening(
        self, bundle_id: bytes, tx_index: int, step_index: int
    ) -> tuple[StepTraceRecord, MerkleProof]:
        """Open one committed step for an auditor.

        Served from the *device's* retained trace — a tampering device
        answers consistently with the root it signed, so openings alone
        never expose it; the auditor's comparison against node ground
        truth is what does.
        """
        traces = self._receipt_traces.get(bundle_id)
        if traces is None:
            raise ReceiptMissingError(bundle_id)
        trace = traces[tx_index]
        return trace.records[step_index], trace.open_step(step_index)

    def _charge_channel_crypto(
        self, size_bytes: int, signed: bool, direction: str = "seal", channel=None
    ) -> None:
        # AEAD and signature are charged as separate advances so each
        # gets its own span on its own attribution layer; the split is
        # unconditional, keeping traced and untraced runs identical.
        tracer = tracer_for(self.clock)
        seal_us = self.cost.channel_seal_us(size_bytes)
        span = tracer.record(
            f"channel.{direction}", "encryption", seal_us, bytes=size_bytes
        )
        if channel is not None and tracer.enabled:
            opened = direction == "open"
            span.set(
                session_messages=(
                    channel.stats.messages_opened
                    if opened
                    else channel.stats.messages_sealed
                ),
                session_wire_bytes=(
                    channel.stats.bytes_opened if opened else channel.stats.bytes_sealed
                ),
            )
        self.clock.advance_us(seal_us)
        dt = seal_us
        if signed:
            # One sign or one verify per direction per bundle.
            name = "channel.verify" if direction == "open" else "channel.sign"
            tracer.record(name, "signature", self.cost.ecdsa_sign_us)
            self.clock.advance_us(self.cost.ecdsa_sign_us)
            dt += self.cost.ecdsa_sign_us
        self.stats.crypto_time_us += dt

    # ------------------------------------------------------------------
    # Step 11: block synchronization
    # ------------------------------------------------------------------

    def sync_block(self, state_root: bytes, updates) -> int:
        self._require_alive()
        if self.synchronizer is None:
            return 0
        with tracer_for(self.clock).span("sync.block", "sync") as span:
            applied = self.synchronizer.apply_block(state_root, updates)
            span.set(updates=applied)
        self.last_verified_root = state_root
        if self.recovery is not None:
            self.recovery.on_sync_root(state_root)
        return applied

    # ------------------------------------------------------------------
    # ORAM key hand-off between devices
    # ------------------------------------------------------------------

    def share_oram_key_with(self, other: "Hypervisor") -> None:
        """Device-to-device DHKE transfer of the shared ORAM key."""
        own_dh = PrivateKey.from_bytes(self._rng.random_bytes(32))
        peer_dh = PrivateKey.from_bytes(other._rng.random_bytes(32))
        shared = own_dh.ecdh(peer_dh.public_key())
        shared_check = peer_dh.ecdh(own_dh.public_key())
        assert shared == shared_check
        wrap_key = hkdf_sha256(shared, info=b"oram-key-wrap")
        from repro.crypto.suite import AesGcmAead

        sealed = AesGcmAead(wrap_key).encrypt(b"\x00" * 12, self.oram_key)
        other.oram_key = AesGcmAead(wrap_key).decrypt(b"\x00" * 12, sealed)
        self.clock.advance_us(self.cost.dhke_us)
