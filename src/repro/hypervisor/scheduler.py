"""HEVM scheduling (workflow step 3).

Bundles queue until an HEVM is idle; the Hypervisor then *exclusively*
assigns the idle core to the session and activates it.  No context
switches happen during a bundle's lifecycle — a core runs one bundle to
completion, then is reset (all on-chip memories cleared) and returned to
the pool.  That no-sharing discipline is the root-cause fix for attack
A2 and is enforced here as an invariant.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any

from repro.hardware.hevm import HevmCore
from repro.telemetry.tracer import tracer_for


class SchedulingError(Exception):
    """An isolation invariant was about to be violated."""


@dataclass
class Assignment:
    """One exclusive core↔session binding."""

    core: HevmCore
    session_id: bytes
    queued_at_us: float
    started_at_us: float


@dataclass
class SchedulerStats:
    bundles_queued: int = 0
    bundles_started: int = 0
    bundles_completed: int = 0
    total_queue_wait_us: float = 0.0
    max_queue_wait_us: float = 0.0
    peak_queue_depth: int = 0

    @property
    def mean_queue_wait_us(self) -> float:
        if self.bundles_started == 0:
            return 0.0
        return self.total_queue_wait_us / self.bundles_started


class HevmScheduler:
    """FIFO queue over a fixed pool of dedicated cores."""

    def __init__(self, cores: list[HevmCore], clock=None) -> None:
        self._cores = cores
        self._idle: deque[HevmCore] = deque(cores)
        self._queue: deque[tuple[bytes, float, Any]] = deque()
        self._assignments: dict[int, Assignment] = {}
        self.stats = SchedulerStats()
        # Dispatch decisions cost no virtual time; the clock is only for
        # tracer lookup so assignments appear as (zero-width) spans.
        self._clock = clock

    @property
    def idle_count(self) -> int:
        return len(self._idle)

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    def submit(self, session_id: bytes, now_us: float, payload: Any = None) -> None:
        """Queue a bundle for the session."""
        self._queue.append((session_id, now_us, payload))
        self.stats.bundles_queued += 1
        self.stats.peak_queue_depth = max(
            self.stats.peak_queue_depth, len(self._queue)
        )

    def queued_waits_us(self, now_us: float) -> list[float]:
        """How long each still-queued bundle has waited, in FIFO order.

        The serving gateway polls this to expose head-of-line wait as a
        backpressure signal without popping anything.
        """
        return [now_us - queued_at for _, queued_at, _ in self._queue]

    def try_assign(self, now_us: float) -> tuple[Assignment, Any] | None:
        """Pop the next queued bundle onto an idle core, if any."""
        if not self._queue or not self._idle:
            return None
        session_id, queued_at, payload = self._queue.popleft()
        core = self._idle.popleft()
        if core.busy:
            raise SchedulingError(
                f"core {core.core_id} was in the idle pool but marked busy"
            )
        core.busy = True
        assignment = Assignment(core, session_id, queued_at, now_us)
        self._assignments[core.core_id] = assignment
        self.stats.bundles_started += 1
        wait = now_us - queued_at
        self.stats.total_queue_wait_us += wait
        self.stats.max_queue_wait_us = max(self.stats.max_queue_wait_us, wait)
        tracer_for(self._clock).record(
            "scheduler.assign",
            "hypervisor",
            0.0,
            start_us=now_us,
            core=core.core_id,
            queue_wait_us=wait,
            queue_depth=len(self._queue),
        )
        return assignment, payload

    def release(self, core: HevmCore) -> None:
        """Workflow step 10: reset the core and return it to the pool."""
        assignment = self._assignments.pop(core.core_id, None)
        if assignment is None:
            raise SchedulingError(
                f"core {core.core_id} released without an assignment"
            )
        core.reset()  # clears L1/L2 caches — nothing leaks across users
        self._idle.append(core)
        self.stats.bundles_completed += 1

    def owner_of(self, core: HevmCore) -> bytes | None:
        assignment = self._assignments.get(core.core_id)
        return assignment.session_id if assignment else None
