"""The user↔Hypervisor secure channel.

After attestation, both sides hold a shared AES session key and each
other's session ECDSA public keys.  Channel messages are AES-GCM
encrypted and, when the signature feature is enabled (configurations
-ES and above), ECDSA-signed: one signature per bundle/trace, which is
why the paper's +80 ms signature overhead amortizes over bundle size.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.ecc import InvalidSignature, PrivateKey, PublicKey, Signature
from repro.crypto.gcm import AuthenticationError
from repro.crypto.keccak import keccak256
from repro.crypto.suite import AeadCipher, AesGcmAead


class ChannelError(Exception):
    """Decryption or signature verification failed on a channel message."""


@dataclass(frozen=True)
class SealedMessage:
    """An encrypted (and optionally signed) channel payload."""

    nonce: bytes
    ciphertext: bytes  # includes the GCM tag
    signature: Signature | None = None

    @property
    def wire_size(self) -> int:
        size = len(self.nonce) + len(self.ciphertext)
        if self.signature is not None:
            size += 64
        return size


@dataclass
class ChannelStats:
    """Per-endpoint wire accounting (telemetry span attributes read it)."""

    messages_sealed: int = 0
    messages_opened: int = 0
    bytes_sealed: int = 0
    bytes_opened: int = 0


class SecureChannel:
    """One endpoint of the bidirectional channel."""

    def __init__(
        self,
        session_key: bytes,
        own_signing_key: PrivateKey | None = None,
        peer_verify_key: PublicKey | None = None,
        sign_messages: bool = True,
        cipher_factory=AesGcmAead,
    ) -> None:
        self._cipher: AeadCipher = cipher_factory(session_key)
        self._own_signing_key = own_signing_key
        self._peer_verify_key = peer_verify_key
        self.sign_messages = sign_messages and own_signing_key is not None
        self._send_counter = 0
        # Replay protection: counter-based nonces must arrive strictly
        # increasing.  AES-GCM authenticates contents but not freshness;
        # without this check the SP could re-submit an old bundle.
        self._highest_received = 0
        self.stats = ChannelStats()

    @property
    def nonce_watermark(self) -> tuple[int, int]:
        """``(sent, highest received)`` counters — sealed into resumption
        tickets so a resumed channel cannot be replayed into the window
        the suspended one already consumed."""
        return self._send_counter, self._highest_received

    def restore_nonce_watermark(self, sent: int, received: int) -> None:
        """Continue a suspended channel's counter space after resumption.

        The resumed channel uses a *fresh* AEAD key (derived from the
        ticket's resumption secret and a fresh client nonce), so nonce
        reuse against the old key is impossible either way; restoring
        the watermark additionally preserves the strictly-increasing
        replay contract across the suspend/resume boundary.
        """
        if sent < 0 or received < 0:
            raise ValueError("nonce watermarks cannot be negative")
        self._send_counter = sent
        self._highest_received = received

    def seal(self, plaintext: bytes, aad: bytes = b"") -> SealedMessage:
        """Encrypt (and sign) an outgoing message."""
        self._send_counter += 1
        nonce = self._send_counter.to_bytes(12, "big")
        ciphertext = self._cipher.encrypt(nonce, plaintext, aad)
        signature = None
        if self.sign_messages:
            assert self._own_signing_key is not None
            signature = self._own_signing_key.sign(keccak256(nonce + ciphertext))
        sealed = SealedMessage(nonce, ciphertext, signature)
        self.stats.messages_sealed += 1
        self.stats.bytes_sealed += sealed.wire_size
        return sealed

    def open(self, message: SealedMessage, aad: bytes = b"") -> bytes:
        """Verify and decrypt an incoming message."""
        if self.sign_messages:
            if message.signature is None:
                raise ChannelError("missing required signature")
            if self._peer_verify_key is None:
                raise ChannelError("no peer verification key pinned")
            try:
                self._peer_verify_key.verify(
                    keccak256(message.nonce + message.ciphertext), message.signature
                )
            except InvalidSignature as exc:
                raise ChannelError("bad message signature") from exc
        counter = int.from_bytes(message.nonce, "big")
        if counter <= self._highest_received:
            raise ChannelError(
                f"replayed or reordered message (nonce {counter}, "
                f"highest seen {self._highest_received})"
            )
        try:
            plaintext = self._cipher.decrypt(message.nonce, message.ciphertext, aad)
        except AuthenticationError as exc:
            raise ChannelError("message tampered or wrong key") from exc
        self._highest_received = counter
        self.stats.messages_opened += 1
        self.stats.bytes_opened += message.wire_size
        return plaintext
