"""The user↔Hypervisor secure channel.

After attestation, both sides hold a shared AES session key and each
other's session ECDSA public keys.  Channel messages are AES-GCM
encrypted and, when the signature feature is enabled (configurations
-ES and above), ECDSA-signed: one signature per bundle/trace, which is
why the paper's +80 ms signature overhead amortizes over bundle size.

Which *implementations* run the AEAD and the signature check is a
:class:`~repro.crypto.backend.CryptoBackend` choice (threaded from
``DeviceConfig.crypto_backend``): every tier is wire-identical, so the
two endpoints of one channel may even run different tiers.  The peer
verification key is wrapped in the backend's verifier once at channel
construction — for the precomputation tiers that builds the per-key
window tables a message stream amortizes — and :meth:`open_batch`
verifies a burst of queued messages through the backend's batched
ECDSA path before any plaintext is released.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.backend import CryptoBackend, get_backend
from repro.crypto.ecc import InvalidSignature, PrivateKey, PublicKey, Signature
from repro.crypto.gcm import AuthenticationError
from repro.crypto.keccak import keccak256


class ChannelError(Exception):
    """Decryption or signature verification failed on a channel message."""


@dataclass(frozen=True)
class SealedMessage:
    """An encrypted (and optionally signed) channel payload."""

    nonce: bytes
    ciphertext: bytes  # includes the GCM tag
    signature: Signature | None = None

    @property
    def wire_size(self) -> int:
        size = len(self.nonce) + len(self.ciphertext)
        if self.signature is not None:
            size += 64
        return size


@dataclass
class ChannelStats:
    """Per-endpoint wire accounting (telemetry span attributes read it)."""

    messages_sealed: int = 0
    messages_opened: int = 0
    bytes_sealed: int = 0
    bytes_opened: int = 0


class SecureChannel:
    """One endpoint of the bidirectional channel."""

    def __init__(
        self,
        session_key: bytes,
        own_signing_key: PrivateKey | None = None,
        peer_verify_key: PublicKey | None = None,
        sign_messages: bool = True,
        cipher_factory=None,
        backend: CryptoBackend | str | None = None,
    ) -> None:
        if isinstance(backend, str):
            backend = get_backend(backend)
        self._backend = backend or get_backend("numpy")
        if cipher_factory is None:
            cipher_factory = self._backend.aead_factory
        self._cipher = cipher_factory(session_key)
        self._own_signing_key = own_signing_key
        self._peer_verify_key = peer_verify_key
        self._peer_verifier = (
            self._backend.verifier(peer_verify_key)
            if peer_verify_key is not None
            else None
        )
        self.sign_messages = sign_messages and own_signing_key is not None
        self._send_counter = 0
        # Replay protection: counter-based nonces must arrive strictly
        # increasing.  AES-GCM authenticates contents but not freshness;
        # without this check the SP could re-submit an old bundle.
        self._highest_received = 0
        self.stats = ChannelStats()

    @property
    def nonce_watermark(self) -> tuple[int, int]:
        """``(sent, highest received)`` counters — sealed into resumption
        tickets so a resumed channel cannot be replayed into the window
        the suspended one already consumed."""
        return self._send_counter, self._highest_received

    def restore_nonce_watermark(self, sent: int, received: int) -> None:
        """Continue a suspended channel's counter space after resumption.

        The resumed channel uses a *fresh* AEAD key (derived from the
        ticket's resumption secret and a fresh client nonce), so nonce
        reuse against the old key is impossible either way; restoring
        the watermark additionally preserves the strictly-increasing
        replay contract across the suspend/resume boundary.
        """
        if sent < 0 or received < 0:
            raise ValueError("nonce watermarks cannot be negative")
        self._send_counter = sent
        self._highest_received = received

    def seal(self, plaintext: bytes, aad: bytes = b"") -> SealedMessage:
        """Encrypt (and sign) an outgoing message."""
        self._send_counter += 1
        nonce = self._send_counter.to_bytes(12, "big")
        ciphertext = self._cipher.encrypt(nonce, plaintext, aad)
        signature = None
        if self.sign_messages:
            assert self._own_signing_key is not None
            signature = self._own_signing_key.sign(keccak256(nonce + ciphertext))
        sealed = SealedMessage(nonce, ciphertext, signature)
        self.stats.messages_sealed += 1
        self.stats.bytes_sealed += sealed.wire_size
        return sealed

    def _check_signature(self, message: SealedMessage) -> None:
        if message.signature is None:
            raise ChannelError("missing required signature")
        if self._peer_verifier is None:
            raise ChannelError("no peer verification key pinned")
        try:
            self._peer_verifier.verify(
                keccak256(message.nonce + message.ciphertext), message.signature
            )
        except InvalidSignature as exc:
            raise ChannelError("bad message signature") from exc

    def _decrypt_in_order(self, message: SealedMessage, aad: bytes) -> bytes:
        counter = int.from_bytes(message.nonce, "big")
        if counter <= self._highest_received:
            raise ChannelError(
                f"replayed or reordered message (nonce {counter}, "
                f"highest seen {self._highest_received})"
            )
        try:
            plaintext = self._cipher.decrypt(message.nonce, message.ciphertext, aad)
        except AuthenticationError as exc:
            raise ChannelError("message tampered or wrong key") from exc
        self._highest_received = counter
        self.stats.messages_opened += 1
        self.stats.bytes_opened += message.wire_size
        return plaintext

    def open(self, message: SealedMessage, aad: bytes = b"") -> bytes:
        """Verify and decrypt an incoming message."""
        if self.sign_messages:
            self._check_signature(message)
        return self._decrypt_in_order(message, aad)

    def open_batch(
        self, messages: list[SealedMessage], aad: bytes = b""
    ) -> list[bytes]:
        """Verify-and-open a burst of queued messages.

        All signatures are checked first — through the backend's batched
        ECDSA path, which shares the per-key precomputation across the
        whole burst — and only then are payloads decrypted, in nonce
        order, under the usual strictly-increasing replay contract.  A
        bad signature anywhere raises before *any* plaintext is
        released or the replay watermark moves; decryption failures
        behave exactly as a sequential :meth:`open` loop would.
        Byte-identical to calling :meth:`open` in a loop on an
        all-valid burst (property-tested).
        """
        if self.sign_messages:
            if self._peer_verify_key is None:
                raise ChannelError("no peer verification key pinned")
            triples = []
            for message in messages:
                if message.signature is None:
                    raise ChannelError("missing required signature")
                triples.append(
                    (
                        self._peer_verify_key,
                        keccak256(message.nonce + message.ciphertext),
                        message.signature,
                    )
                )
            try:
                self._backend.ecdsa_verify_many(triples)
            except InvalidSignature as exc:
                raise ChannelError("bad message signature") from exc
        return [self._decrypt_in_order(message, aad) for message in messages]
