"""The Hypervisor firmware: attestation, channels, scheduling, sync."""

from repro.hypervisor.attestation import (
    AttestationError,
    AttestationReport,
    build_report,
    derive_session_key,
    verify_report,
)
from repro.hypervisor.bundle_codec import (
    TraceReport,
    TransactionBundle,
    TransactionTrace,
    decode_bundle,
    decode_trace_report,
    encode_bundle,
    encode_trace_report,
    trace_from_result,
)
from repro.hypervisor.channel import ChannelError, SealedMessage, SecureChannel
from repro.hypervisor.hypervisor import (
    BundleRejected,
    Hypervisor,
    HypervisorStats,
    SecurityFeatures,
    Session,
)
from repro.hypervisor.messages import (
    AeDma,
    HEADER_SIZE,
    MessageError,
    MessageHeader,
    MessageType,
    validate_and_admit,
)
from repro.hypervisor.scheduler import (
    Assignment,
    HevmScheduler,
    SchedulerStats,
    SchedulingError,
)
from repro.hypervisor.sync import AccountUpdate, BlockSynchronizer, SyncError, SyncStats

__all__ = [
    "AccountUpdate",
    "BundleRejected",
    "AeDma",
    "Assignment",
    "AttestationError",
    "AttestationReport",
    "BlockSynchronizer",
    "ChannelError",
    "HEADER_SIZE",
    "HevmScheduler",
    "Hypervisor",
    "HypervisorStats",
    "MessageError",
    "MessageHeader",
    "MessageType",
    "SchedulerStats",
    "SchedulingError",
    "SealedMessage",
    "SecureChannel",
    "SecurityFeatures",
    "Session",
    "SyncError",
    "SyncStats",
    "TraceReport",
    "TransactionBundle",
    "TransactionTrace",
    "build_report",
    "decode_bundle",
    "decode_trace_report",
    "derive_session_key",
    "encode_bundle",
    "encode_trace_report",
    "trace_from_result",
    "validate_and_admit",
    "verify_report",
]
