"""Resumption tickets: amortizing attestation across reconnects.

The full handshake — attestation report (45 ms) plus DHKE (55 ms) — is
paid once per session.  For the paper's target deployment (an SP
fronting tens of thousands of *intermittent* users) that cost dominates:
a user who reconnects every few seconds spends more hypervisor time
re-proving the platform than pre-executing.  HECTOR-V's answer, and the
layered pVM attestation flow it inspired, is to attest the platform
once and derive cheap per-session credentials from that root of trust.

Here the hypervisor seals the whole session state — channel key
material (via a fresh resumption secret), both signing identities, the
channel nonce watermark, and the session's shard affinity — into an
opaque **ticket** under a CSU-derived key (PUF-bound, re-derivable on
every boot of the same chip, never available off-package).  The user
holds the ticket; the hypervisor holds *nothing* — the session is
evicted, which is what lets one process keep 10k+ logical sessions
alive without 10k channel objects.

Anti-rollback binding: the ticket's AAD binds the hypervisor
``generation`` (the cold-restart counter the recovery plane already
maintains) as an epoch.  A ticket minted before a crash names a dead
epoch and is refused with a typed :class:`StaleTicketError` — never a
retryable fault, because retrying cannot make a scrubbed secret
reappear; the caller must fall back to a full handshake.  The epoch is
carried in the clear *and* in the AAD, so a header forged to the
current epoch fails authentication instead of slipping through.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.crypto.suite import CounterNonceSealer

TICKET_MAGIC = b"HTK1"
_HEADER = struct.Struct(">4sQQ")  # magic, epoch, seq

# The recovery plane's composite-counter split: epoch in the high bits,
# per-epoch mint sequence in the low 40.  Reusing the construction keeps
# the AEAD nonce structurally unique across restarts under one PUF key.
_SEQ_BITS = 40
_SEQ_MASK = (1 << _SEQ_BITS) - 1


class TicketError(Exception):
    """Base class for every resumption-ticket refusal."""


class StaleTicketError(TicketError):
    """The ticket names a dead epoch: the hypervisor restarted since mint.

    Deliberately NOT a subclass of ``KeyError``/``UnknownSessionError``
    and never listed in ``repro.faults.policy.RECOVERABLE_ERRORS``: the
    pre-crash session secrets were scrubbed, so no retry or supervisor
    intervention can honor this ticket.  The only correct reaction is a
    fresh attestation+DHKE handshake.
    """

    def __init__(self, minted_epoch: int, current_epoch: int) -> None:
        super().__init__(
            f"resumption ticket minted at epoch {minted_epoch} refused "
            f"at epoch {current_epoch} (hypervisor restarted since mint)"
        )
        self.minted_epoch = minted_epoch
        self.current_epoch = current_epoch


class TicketIntegrityError(TicketError):
    """The ticket failed structural or cryptographic validation.

    Covers truncation, a bad magic, a forged epoch header (the AAD
    binding catches it), a future epoch, and AEAD failure.  Distinct
    from :class:`StaleTicketError` so callers can tell "re-handshake"
    from "someone tampered with the ticket".
    """


class TicketReplayError(TicketIntegrityError):
    """A ticket was presented twice: single-use is part of the contract.

    Replaying a redeemed ticket would rewind the resumed channel's nonce
    watermark — exactly the replay window counter nonces exist to close.
    """

    def __init__(self, epoch: int, seq: int) -> None:
        super().__init__(
            f"resumption ticket (epoch {epoch}, seq {seq}) already redeemed"
        )
        self.epoch = epoch
        self.seq = seq


@dataclass(frozen=True)
class TicketState:
    """The sealed session state a ticket carries (never on the wire bare)."""

    session_id: bytes
    user_public: bytes          # user's session ECDSA verify key (SEC1)
    hv_signing_secret: bytes    # hypervisor's session ECDSA signing key
    resumption_secret: bytes    # 32-byte PSK the resumed channel re-keys from
    send_watermark: int         # hypervisor-side channel counters at suspend
    recv_watermark: int
    shard_affinity: int = -1    # serving-tier shard pin (-1: unsharded)
    ring_digest: str = ""       # session-ring identity the affinity was derived on
    minted_at_us: float = 0.0

    def encode(self) -> bytes:
        ring = self.ring_digest.encode()
        parts = [
            struct.pack(">qqqd", self.send_watermark, self.recv_watermark,
                        self.shard_affinity, self.minted_at_us),
        ]
        for blob in (self.session_id, self.user_public,
                     self.hv_signing_secret, self.resumption_secret, ring):
            parts.append(struct.pack(">H", len(blob)))
            parts.append(blob)
        return b"".join(parts)

    @classmethod
    def decode(cls, data: bytes) -> "TicketState":
        send, recv, affinity, minted = struct.unpack_from(">qqqd", data, 0)
        offset = struct.calcsize(">qqqd")
        blobs = []
        for _ in range(5):
            (length,) = struct.unpack_from(">H", data, offset)
            offset += 2
            blobs.append(data[offset:offset + length])
            offset += length
        if offset != len(data):
            raise TicketIntegrityError("ticket state has trailing bytes")
        return cls(
            session_id=blobs[0],
            user_public=blobs[1],
            hv_signing_secret=blobs[2],
            resumption_secret=blobs[3],
            send_watermark=send,
            recv_watermark=recv,
            shard_affinity=affinity,
            ring_digest=blobs[4].decode(),
            minted_at_us=minted,
        )


@dataclass
class TicketSealer:
    """Mints and redeems tickets under one CSU-derived key.

    One instance lives per hypervisor generation; the key is re-derived
    from the PUF on every boot (same key each time), so uniqueness of
    the AEAD nonce comes from the ``(epoch << 40) | seq`` composite —
    a fresh generation starts a fresh seq space under a fresh epoch.
    """

    key: bytes
    minted: int = 0
    redeemed: int = 0
    _sealer: CounterNonceSealer = field(init=False, repr=False)
    _spent: set[tuple[int, int]] = field(init=False, repr=False,
                                         default_factory=set)

    def __post_init__(self) -> None:
        self._sealer = CounterNonceSealer(self.key)

    @staticmethod
    def _aad(epoch: int, seq: int) -> bytes:
        return b"resumption-ticket|" + struct.pack(">QQ", epoch, seq)

    def mint(self, state: TicketState, epoch: int) -> bytes:
        seq = self.minted
        self.minted += 1
        if seq > _SEQ_MASK:
            raise TicketError("per-epoch ticket sequence space exhausted")
        composite = (epoch << _SEQ_BITS) | seq
        blob = self._sealer.seal(composite, state.encode(),
                                 aad=self._aad(epoch, seq))
        return _HEADER.pack(TICKET_MAGIC, epoch, seq) + blob

    def redeem(self, ticket: bytes, current_epoch: int) -> TicketState:
        """Validate and open a ticket; single-use, epoch-exact.

        The epoch check runs *before* the AEAD so a stale ticket is
        classified as stale (a recovery-plane fact) rather than as a
        generic authentication failure — which the fault policies would
        happily retry.
        """
        if len(ticket) < _HEADER.size:
            raise TicketIntegrityError("ticket too short")
        magic, epoch, seq = _HEADER.unpack_from(ticket)
        if magic != TICKET_MAGIC:
            raise TicketIntegrityError("bad ticket magic")
        if epoch > current_epoch:
            raise TicketIntegrityError(
                f"ticket claims future epoch {epoch} (current {current_epoch})"
            )
        if epoch < current_epoch:
            raise StaleTicketError(epoch, current_epoch)
        if (epoch, seq) in self._spent:
            raise TicketReplayError(epoch, seq)
        composite = (epoch << _SEQ_BITS) | seq
        try:
            plain = self._sealer.open(composite, ticket[_HEADER.size:],
                                      aad=self._aad(epoch, seq))
        except TicketIntegrityError:
            raise
        except Exception as exc:
            # Re-typed on purpose: a raw AuthenticationError is in the
            # fault plane's RECOVERABLE_ERRORS (wire corruption is
            # transient); a forged ticket is not transient.
            raise TicketIntegrityError("ticket failed authentication") from exc
        self._spent.add((epoch, seq))
        self.redeemed += 1
        return TicketState.decode(plain)


__all__ = [
    "StaleTicketError",
    "TicketError",
    "TicketIntegrityError",
    "TicketReplayError",
    "TicketSealer",
    "TicketState",
    "TICKET_MAGIC",
    "ticket_header",
]


def ticket_header(ticket: bytes) -> tuple[int, int]:
    """Parse ``(epoch, seq)`` from a ticket's clear header.

    The header is authenticated (it doubles as the AEAD AAD), so these
    values are safe to surface in telemetry: a forged header fails
    redemption.  Raises :class:`TicketIntegrityError` on truncation or
    a bad magic — same refusals :meth:`TicketSealer.redeem` applies.
    """
    if len(ticket) < _HEADER.size:
        raise TicketIntegrityError(
            f"ticket too short for header ({len(ticket)} bytes)"
        )
    magic, epoch, seq = _HEADER.unpack_from(ticket)
    if magic != TICKET_MAGIC:
        raise TicketIntegrityError(f"bad ticket magic {magic!r}")
    return epoch, seq
