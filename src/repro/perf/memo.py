"""Decrypt memoization: a plaintext cache keyed by ciphertext identity.

AEAD decryption is a pure function of ``(key, nonce, ciphertext, aad)``,
and the Path ORAM access pattern makes it a pathologically repetitive
one: every path read decrypts Z x (height+1) blocks, almost all of which
are blocks *this same client* sealed on a previous write-back.
:class:`MemoizedAead` wraps any :class:`~repro.crypto.suite.AeadCipher`
and remembers, in a bounded LRU, the plaintext behind each ciphertext it
has sealed or opened — so the steady-state path read costs hash lookups
instead of bulk decryption.

Soundness: the cache key is a 128-bit BLAKE2b digest over the full
``(nonce, aad, ciphertext)`` triple, and entries are inserted only from
a successful seal or open under this cipher's key.  Any byte an SP
tampers with — ciphertext, tag, or a replayed bucket whose AAD-bound
version no longer matches — changes the lookup key, misses the cache,
and falls through to real decryption, which rejects it exactly as the
unwrapped cipher would.  The wrapper never changes what is encrypted or
what appears on the wire; it is invisible to the adversary's view (see
the observer-equivalence property test and ARCHITECTURE.md).
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass

from repro.crypto.suite import AeadCipher, AeadItem


@dataclass
class MemoStats:
    """Hit/miss accounting, surfaced through telemetry and perf-bench."""

    hits: int = 0
    misses: int = 0
    inserts: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0


class MemoizedAead:
    """An :class:`AeadCipher` wrapper with a bounded decrypt memo.

    ``capacity_blocks`` bounds the number of cached plaintexts (LRU
    eviction); for the 1 KB ORAM block size the default ~4096 entries
    cost a few MB — host-process memory, not simulated on-chip memory.
    """

    def __init__(self, inner: AeadCipher, capacity_blocks: int = 4096) -> None:
        if capacity_blocks <= 0:
            raise ValueError("memo capacity must be positive")
        self.inner = inner
        self.nonce_size = inner.nonce_size
        self.tag_size = inner.tag_size
        self.capacity_blocks = capacity_blocks
        self._cache: OrderedDict[bytes, bytes] = OrderedDict()
        self.stats = MemoStats()

    @staticmethod
    def _key(nonce: bytes, data: bytes, aad: bytes) -> bytes:
        digest = hashlib.blake2b(digest_size=16)
        digest.update(len(aad).to_bytes(4, "big"))
        digest.update(aad)
        digest.update(nonce)
        digest.update(data)
        return digest.digest()

    def _put(self, key: bytes, plaintext: bytes) -> None:
        cache = self._cache
        if key in cache:
            cache.move_to_end(key)
            cache[key] = plaintext
            return
        cache[key] = plaintext
        self.stats.inserts += 1
        if len(cache) > self.capacity_blocks:
            cache.popitem(last=False)
            self.stats.evictions += 1

    # -- AeadCipher ------------------------------------------------------

    def encrypt(self, nonce: bytes, plaintext: bytes, aad: bytes = b"") -> bytes:
        sealed = self.inner.encrypt(nonce, plaintext, aad)
        self._put(self._key(nonce, sealed, aad), plaintext)
        return sealed

    def decrypt(self, nonce: bytes, data: bytes, aad: bytes = b"") -> bytes:
        key = self._key(nonce, data, aad)
        cached = self._cache.get(key)
        if cached is not None:
            self._cache.move_to_end(key)
            self.stats.hits += 1
            return cached
        self.stats.misses += 1
        plaintext = self.inner.decrypt(nonce, data, aad)
        self._put(key, plaintext)
        return plaintext

    # -- batch paths -----------------------------------------------------

    def seal_blocks(self, items: list[AeadItem]) -> list[bytes]:
        from repro.crypto.suite import seal_blocks

        sealed = seal_blocks(self.inner, items)
        for (nonce, plaintext, aad), blob in zip(items, sealed):
            self._put(self._key(nonce, blob, aad), plaintext)
        return sealed

    def open_blocks(self, items: list[AeadItem]) -> list[bytes]:
        """Serve hits from the cache, batch-open only the misses.

        Preserves the all-or-nothing contract: a bad block among the
        misses raises from the inner batch open before any plaintext is
        returned, and cached entries are by construction authentic.
        """
        from repro.crypto.suite import open_blocks

        keys = [self._key(n, d, a) for n, d, a in items]
        cache = self._cache
        out: list[bytes | None] = []
        misses: list[AeadItem] = []
        miss_slots: list[int] = []
        for index, key in enumerate(keys):
            cached = cache.get(key)
            if cached is not None:
                cache.move_to_end(key)
                self.stats.hits += 1
                out.append(cached)
            else:
                self.stats.misses += 1
                out.append(None)
                misses.append(items[index])
                miss_slots.append(index)
        if misses:
            opened = open_blocks(self.inner, misses)
            for slot, plaintext in zip(miss_slots, opened):
                self._put(keys[slot], plaintext)
                out[slot] = plaintext
        return out  # type: ignore[return-value]

    # -- introspection ---------------------------------------------------

    def __len__(self) -> int:
        return len(self._cache)

    def clear(self) -> None:
        self._cache.clear()
