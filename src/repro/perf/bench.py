"""perf-bench: before/after wall-clock comparison of the crypto/ORAM substrate.

The benchmark runs one deterministic ORAM workload twice over the
paper's cipher (AES-GCM):

* **baseline** — the frozen pre-optimization crypto
  (:class:`~repro.perf.reference.ReferenceAesGcm`, block-at-a-time CTR,
  per-byte XOR) with decrypt memoization disabled: the substrate exactly
  as the repo shipped it before the ``repro.perf`` pass;
* **optimized** — the current :class:`~repro.crypto.suite.AesGcmAead`
  (vectorized batch keystreams, table-local GHASH) with the decrypt
  memo enabled.

Because the optimizations are exact rewrites, both sides must produce
**byte-identical simulated outputs** — the read plaintexts, the
ciphertext tree the SP stores, and the adversary-visible
:class:`~repro.oram.server.PathAccessEvent` stream are digested and
compared, and any mismatch fails the bench regardless of speedup.

Each side runs under :mod:`cProfile`; per-function time is attributed to
the telemetry critical-path layers (``encryption``, ``oram_storage``,
``execution``, ``other``) by source path, so the report shows *where*
the time went, not just how much.
"""

from __future__ import annotations

import cProfile
import hashlib
import json
import pstats
import time
from dataclasses import dataclass, field

from repro.crypto.kdf import Drbg
from repro.crypto.suite import AesGcmAead
from repro.oram.client import PathOramClient
from repro.oram.server import OramServer, PathAccessEvent
from repro.perf.reference import ReferenceAesGcm

# Source-path → telemetry critical-path layer.  Order matters: first
# match wins (the keccak/ecc/trie buckets before the generic crypto
# rule, crypto before oram since the ORAM client calls into it).
_LAYER_RULES = (
    ("/crypto/keccak", "keccak"),  # sponge + lane-wise engines
    ("/crypto/ecc", "ecdsa"),
    ("/trie/", "trie"),
    ("/crypto/", "encryption"),
    ("/perf/", "encryption"),  # memo + batch dispatch sit on the crypto path
    ("/oram/", "oram_storage"),
    ("/evm/", "execution"),
    ("/hardware/", "execution"),
)


def _layer_for(filename: str) -> str:
    normalized = filename.replace("\\", "/")
    for needle, layer in _LAYER_RULES:
        if needle in normalized:
            return layer
    return "other"


@dataclass
class PerfBenchConfig:
    """Workload shape for perf-bench (defaults run in a few seconds)."""

    seed: int = 7
    oram_height: int = 5
    block_size: int = 1024
    accesses: int = 48
    working_set: int = 24
    memo_blocks: int = 4096
    min_speedup: float = 3.0
    # Shape of the trie/keccak/ECDSA workload each registered crypto
    # backend replays for the pairwise byte-identity gate.
    trie_keys: int = 96
    trie_commit_rounds: int = 4
    hash_batch: int = 600
    channel_messages: int = 12

    @classmethod
    def smoke(cls, **overrides) -> "PerfBenchConfig":
        """A CI-sized run: same checks, fraction of the wall clock."""
        defaults = dict(
            oram_height=4,
            accesses=16,
            working_set=8,
            trie_keys=32,
            trie_commit_rounds=2,
            hash_batch=160,
            channel_messages=6,
        )
        defaults.update(overrides)
        return cls(**defaults)


@dataclass
class SideResult:
    """One side (baseline or optimized) of the comparison."""

    name: str
    wall_s: float
    layer_seconds: dict[str, float]
    digests: dict[str, str]
    memo_hits: int = 0
    memo_misses: int = 0


@dataclass
class BackendSideResult:
    """One registered :class:`~repro.crypto.backend.CryptoBackend` tier's
    run of the trie/keccak/ECDSA workload."""

    backend: str
    wall_s: float
    layer_seconds: dict[str, float]
    digests: dict[str, str]
    keccak_hits: int = 0
    keccak_misses: int = 0


@dataclass
class PerfBenchReport:
    config: PerfBenchConfig
    baseline: SideResult
    optimized: SideResult
    identical: bool = False
    speedup: float = 0.0
    mismatches: list[str] = field(default_factory=list)
    # The per-CryptoBackend tier comparison: every registered backend
    # replays one seeded trie/keccak/ECDSA workload; all pairs must be
    # byte-identical and the best tier must clear the speedup gate
    # against the pure-Python reference.
    backends: list[BackendSideResult] = field(default_factory=list)
    backend_mismatches: list[str] = field(default_factory=list)
    backend_speedups: dict[str, float] = field(default_factory=dict)

    @property
    def backends_identical(self) -> bool:
        return not self.backend_mismatches

    @property
    def best_backend_speedup(self) -> float:
        return max(self.backend_speedups.values(), default=0.0)

    @property
    def passed(self) -> bool:
        gate = self.identical and self.speedup >= self.config.min_speedup
        if self.backends:
            gate = (
                gate
                and self.backends_identical
                and self.best_backend_speedup >= self.config.min_speedup
            )
        return gate

    def summary_lines(self) -> list[str]:
        lines = [
            f"perf-bench: {self.config.accesses} ORAM accesses, "
            f"height {self.config.oram_height}, "
            f"{self.config.block_size} B blocks, AES-GCM",
            f"  baseline  (reference crypto, no memo): "
            f"{self.baseline.wall_s:8.3f} s",
            f"  optimized (batch crypto + memo):       "
            f"{self.optimized.wall_s:8.3f} s",
            f"  speedup: {self.speedup:.1f}x "
            f"(gate: >= {self.config.min_speedup:g}x)",
            f"  outputs byte-identical: {'yes' if self.identical else 'NO'}"
            + (f" (mismatched: {', '.join(self.mismatches)})"
               if self.mismatches else ""),
            f"  decrypt memo: {self.optimized.memo_hits} hits / "
            f"{self.optimized.memo_misses} misses",
            "  profile attribution (seconds by critical-path layer):",
        ]
        layers = sorted(
            set(self.baseline.layer_seconds) | set(self.optimized.layer_seconds)
        )
        for layer in layers:
            before = self.baseline.layer_seconds.get(layer, 0.0)
            after = self.optimized.layer_seconds.get(layer, 0.0)
            lines.append(f"    {layer:<14} {before:8.3f} -> {after:8.3f}")
        if self.backends:
            lines.append(
                f"  crypto backends ({self.config.trie_keys} trie keys x "
                f"{self.config.trie_commit_rounds} commits, "
                f"{self.config.hash_batch} batch hashes, "
                f"{self.config.channel_messages} signed messages):"
            )
            for side in self.backends:
                speedup = self.backend_speedups.get(side.backend, 1.0)
                lines.append(
                    f"    {side.backend:<10} {side.wall_s:8.3f} s "
                    f"({speedup:5.1f}x vs reference)"
                )
            lines.append(
                "  backend outputs pairwise byte-identical: "
                + ("yes" if self.backends_identical else "NO")
                + (
                    f" (mismatched: {', '.join(self.backend_mismatches)})"
                    if self.backend_mismatches
                    else ""
                )
            )
        return lines

    def to_json(self) -> str:
        def side(result: SideResult) -> dict:
            return {
                "wall_s": round(result.wall_s, 4),
                "layer_seconds": {
                    layer: round(seconds, 4)
                    for layer, seconds in sorted(result.layer_seconds.items())
                },
                "digests": result.digests,
                "memo_hits": result.memo_hits,
                "memo_misses": result.memo_misses,
            }

        def backend_side(result: BackendSideResult) -> dict:
            return {
                "backend": result.backend,
                "wall_s": round(result.wall_s, 4),
                "layer_seconds": {
                    layer: round(seconds, 4)
                    for layer, seconds in sorted(result.layer_seconds.items())
                },
                "digests": result.digests,
                "keccak_hits": result.keccak_hits,
                "keccak_misses": result.keccak_misses,
            }

        return json.dumps(
            {
                "bench": "perf",
                "workload": {
                    "seed": self.config.seed,
                    "oram_height": self.config.oram_height,
                    "block_size": self.config.block_size,
                    "accesses": self.config.accesses,
                    "working_set": self.config.working_set,
                    "memo_blocks": self.config.memo_blocks,
                    "cipher": "aes-gcm",
                    "trie_keys": self.config.trie_keys,
                    "trie_commit_rounds": self.config.trie_commit_rounds,
                    "hash_batch": self.config.hash_batch,
                    "channel_messages": self.config.channel_messages,
                },
                "baseline": side(self.baseline),
                "optimized": side(self.optimized),
                "speedup": round(self.speedup, 2),
                "min_speedup": self.config.min_speedup,
                "identical_outputs": self.identical,
                "backends": [backend_side(b) for b in self.backends],
                "backend_speedups": {
                    name: round(value, 2)
                    for name, value in sorted(self.backend_speedups.items())
                },
                "backends_identical": self.backends_identical,
                "passed": self.passed,
            },
            indent=2,
            sort_keys=True,
        ) + "\n"


def _workload(config: PerfBenchConfig) -> list[tuple[bytes, bytes | None]]:
    """The deterministic access sequence both sides replay."""
    rng = Drbg(config.seed.to_bytes(8, "big"), personalization=b"perf-bench")
    ops: list[tuple[bytes, bytes | None]] = []
    for index in range(config.accesses):
        key = b"blk-%04d" % rng.randint(config.working_set)
        if index % 3 != 2:
            payload = bytes([rng.randint(256)]) * min(config.block_size, 128)
            ops.append((key, payload))
        else:
            ops.append((key, None))
    return ops


def _digest_events(events: list[PathAccessEvent]) -> str:
    digest = hashlib.blake2b(digest_size=16)
    for event in events:
        digest.update(event.op_index.to_bytes(8, "big"))
        digest.update(event.leaf.to_bytes(8, "big"))
        for node in event.node_indices:
            digest.update(node.to_bytes(8, "big"))
        digest.update(repr(event.sim_time_us).encode())
    return digest.hexdigest()


def _digest_server(server: OramServer) -> str:
    digest = hashlib.blake2b(digest_size=16)
    for node, bucket in enumerate(server._buckets):
        digest.update(node.to_bytes(8, "big"))
        for blob in bucket:
            digest.update(blob)
    return digest.hexdigest()


def _run_side(config: PerfBenchConfig, optimized: bool) -> SideResult:
    key = hashlib.blake2b(
        config.seed.to_bytes(8, "big"), digest_size=32, person=b"perf-key"
    ).digest()
    server = OramServer(height=config.oram_height)
    events: list[PathAccessEvent] = []
    server.add_observer(events.append)
    client = PathOramClient(
        server,
        key,
        block_size=config.block_size,
        cipher_factory=AesGcmAead if optimized else ReferenceAesGcm,
        decrypt_memo_blocks=config.memo_blocks if optimized else None,
    )
    ops = _workload(config)

    reads = hashlib.blake2b(digest_size=16)
    profile = cProfile.Profile()
    started = time.perf_counter()
    profile.enable()
    for access_key, payload in ops:
        result = client.access(access_key, payload)
        reads.update(result if result is not None else b"\x00")
    profile.disable()
    wall_s = time.perf_counter() - started

    layer_seconds: dict[str, float] = {}
    stats = pstats.Stats(profile)
    for (filename, _line, _name), row in stats.stats.items():  # type: ignore[attr-defined]
        tottime = row[2]
        if tottime <= 0.0:
            continue
        layer = _layer_for(filename)
        layer_seconds[layer] = layer_seconds.get(layer, 0.0) + tottime

    return SideResult(
        name="optimized" if optimized else "baseline",
        wall_s=wall_s,
        layer_seconds=layer_seconds,
        digests={
            "reads": reads.hexdigest(),
            "server_buckets": _digest_server(server),
            "access_events": _digest_events(events),
        },
        memo_hits=client.memo.stats.hits if client.memo else 0,
        memo_misses=client.memo.stats.misses if client.memo else 0,
    )


def _run_backend_side(config: PerfBenchConfig, name: str) -> BackendSideResult:
    """Replay the seeded trie/keccak/ECDSA workload under one backend.

    Signing and sealing run *untimed*: RFC 6979 signing is the same
    deterministic pure-Python code under every tier, so timing it would
    only dilute the measured difference.  The timed region is what the
    tiers actually accelerate — trie commits, batch hashing, and
    signature-checked channel opens.
    """
    from repro.crypto.backend import activate, active_backend
    from repro.crypto.ecc import PrivateKey
    from repro.crypto.keccak import (
        keccak256_many,
        keccak_memo_stats,
        reset_keccak_memo,
    )
    from repro.hypervisor.channel import SecureChannel
    from repro.trie.mpt import MerklePatriciaTrie

    previous = active_backend().name
    activate(name)
    # Each tier starts memo-cold so cached digests from an earlier tier
    # can't subsidize (or mask a divergence in) this one.
    reset_keccak_memo()
    try:
        rng = Drbg(config.seed.to_bytes(8, "big"), personalization=b"perf-backend")
        pairs = [
            (
                b"acct-%06d" % rng.randint(1 << 20),
                bytes([rng.randint(256)]) * (1 + rng.randint(96)),
            )
            for _ in range(config.trie_keys)
        ]
        hash_items = [
            bytes([rng.randint(256)]) * (1 + rng.randint(200))
            for _ in range(config.hash_batch)
        ]
        payloads = [
            bytes([rng.randint(256)]) * (32 + rng.randint(160))
            for _ in range(config.channel_messages)
        ]

        # Untimed setup: channel construction (per-key verifier tables
        # are amortized precomputation) and seal/sign on the sender.
        session_key = hashlib.blake2b(
            config.seed.to_bytes(8, "big"), digest_size=32, person=b"bknd-key"
        ).digest()
        sealer_key = PrivateKey.from_bytes(b"\x11" * 31 + b"\x01")
        opener_key = PrivateKey.from_bytes(b"\x22" * 31 + b"\x02")
        sealer = SecureChannel(
            session_key, own_signing_key=sealer_key,
            peer_verify_key=opener_key.public_key(), backend=name,
        )
        opener = SecureChannel(
            session_key, own_signing_key=opener_key,
            peer_verify_key=sealer_key.public_key(), backend=name,
        )
        sealed = [sealer.seal(payload) for payload in payloads]

        trie = MerklePatriciaTrie()
        rounds = max(1, config.trie_commit_rounds)
        per_round = max(1, len(pairs) // rounds)
        roots: list[bytes] = []
        opened: list[bytes] = []

        profile = cProfile.Profile()
        started = time.perf_counter()
        profile.enable()
        for round_index in range(rounds):
            for key, value in pairs[round_index * per_round:(round_index + 1) * per_round]:
                trie.put(key, value)
            roots.append(trie.root_hash())
        batch_digests = keccak256_many(hash_items)
        half = len(sealed) // 2
        opened.extend(opener.open_batch(sealed[:half]))
        for message in sealed[half:]:
            opened.append(opener.open(message))
        profile.disable()
        wall_s = time.perf_counter() - started

        layer_seconds: dict[str, float] = {}
        stats = pstats.Stats(profile)
        for (filename, _line, _name), row in stats.stats.items():  # type: ignore[attr-defined]
            tottime = row[2]
            if tottime <= 0.0:
                continue
            layer = _layer_for(filename)
            layer_seconds[layer] = layer_seconds.get(layer, 0.0) + tottime

        def digest(chunks: list[bytes]) -> str:
            acc = hashlib.blake2b(digest_size=16)
            for chunk in chunks:
                acc.update(len(chunk).to_bytes(4, "big"))
                acc.update(chunk)
            return acc.hexdigest()

        wire = [
            message.nonce + message.ciphertext + (
                message.signature.to_bytes() if message.signature else b""
            )
            for message in sealed
        ]
        memo = keccak_memo_stats()
        return BackendSideResult(
            backend=name,
            wall_s=wall_s,
            layer_seconds=layer_seconds,
            digests={
                "trie_roots": digest(roots),
                "batch_hashes": digest(batch_digests),
                "channel_wire": digest(wire),
                "channel_plaintexts": digest(opened),
            },
            keccak_hits=memo.hits,
            keccak_misses=memo.misses,
        )
    finally:
        activate(previous)


def _compare_backends(
    sides: list[BackendSideResult],
) -> tuple[list[str], dict[str, float]]:
    """Pairwise byte-identity mismatches and wall-clock speedups vs the
    pure-Python reference tier."""
    mismatches: list[str] = []
    for i, left in enumerate(sides):
        for right in sides[i + 1:]:
            for key in left.digests:
                if left.digests[key] != right.digests.get(key):
                    mismatches.append(
                        f"{left.backend} vs {right.backend}: {key}"
                    )
    reference = next(
        (side for side in sides if side.backend == "reference"), sides[0]
    )
    speedups = {
        side.backend: (
            reference.wall_s / side.wall_s if side.wall_s > 0 else float("inf")
        )
        for side in sides
    }
    return mismatches, speedups


def run_perf_bench(config: PerfBenchConfig | None = None) -> PerfBenchReport:
    from repro.crypto.backend import available_backends

    config = config or PerfBenchConfig()
    baseline = _run_side(config, optimized=False)
    optimized = _run_side(config, optimized=True)
    mismatches = [
        name
        for name in baseline.digests
        if baseline.digests[name] != optimized.digests[name]
    ]
    speedup = (
        baseline.wall_s / optimized.wall_s if optimized.wall_s > 0 else float("inf")
    )
    backend_sides = [
        _run_backend_side(config, name) for name in available_backends()
    ]
    backend_mismatches, backend_speedups = _compare_backends(backend_sides)
    return PerfBenchReport(
        config=config,
        baseline=baseline,
        optimized=optimized,
        identical=not mismatches,
        speedup=speedup,
        mismatches=mismatches,
        backends=backend_sides,
        backend_mismatches=backend_mismatches,
        backend_speedups=backend_speedups,
    )
