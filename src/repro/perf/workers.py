"""Module-level workers for :func:`repro.perf.parallel.run_parallel`.

Process pools pickle the callable and its item, so sweep rows live here
as plain top-level functions over plain-data items (tuples of ints,
floats, strings).  Each worker builds its full service stack from its
item's seeds — nothing is shared between rows, which is what makes the
parallel sweep's output byte-identical to the serial one.
"""

from __future__ import annotations


def serve_bench_row(item: tuple[int, str, int, float, int]) -> tuple:
    """One closed-loop serve-bench row: ``(cores, tps, per_hevm, util, p99_ms)``."""
    cores, workload, seed, rtt_us, requests = item
    from repro.hardware.timing import CostModel
    from repro.serving import (
        FleetModelExecutor,
        Gateway,
        GatewayConfig,
        model_sessions,
        run_closed_loop,
        synthetic_profiles,
    )

    cost = CostModel(ethernet_rtt_us=rtt_us)
    profiles = synthetic_profiles(cost, kind=workload, seed=seed)
    executor = FleetModelExecutor(core_count=cores, cost=cost)
    gateway = Gateway(executor, GatewayConfig(
        max_queue_depth=4 * cores, max_in_flight_per_session=4,
    ))
    report = run_closed_loop(
        gateway, model_sessions(cores, profiles),
        requests_per_session=requests,
    )
    return (
        cores,
        report.throughput_tps,
        report.throughput_tps / cores,
        executor.server.utilization(gateway.now_us),
        report.latency_percentile_us(99) / 1000,
    )


def chaos_rate_row(
    item: tuple[float, int, int, int, int, int, int],
) -> list[str]:
    """One chaos-bench fault rate: the report's summary lines."""
    rate, seed, devices, tenants, requests, blocks, txs_per_block = item
    from repro.faults import ChaosConfig, run_chaos
    from repro.workloads import EvaluationSetConfig, build_evaluation_set

    evalset = build_evaluation_set(EvaluationSetConfig(
        blocks=blocks, txs_per_block=txs_per_block,
    ))
    report = run_chaos(
        ChaosConfig(
            seed=seed,
            fault_rate=rate,
            device_count=devices,
            tenants=tenants,
            requests_per_tenant=requests,
        ),
        evalset,
    )
    return report.summary_lines()


def paper_scale_level(
    item: tuple[str, int, int, int],
) -> tuple[str, list[float], float]:
    """One Figure 4 security level: ``(level, per-tx times µs, wall s)``.

    Rebuilds the evaluation set inside the worker — deterministic, so
    every worker sees the identical workload without sharing state.
    """
    level, blocks, txs_per_block, seed = item
    import time

    from repro.core import HarDTAPEService, PreExecutionClient, SecurityFeatures
    from repro.workloads import EvaluationSetConfig, build_evaluation_set

    evalset = build_evaluation_set(EvaluationSetConfig(
        blocks=blocks, txs_per_block=txs_per_block, seed=seed,
    ))
    wall_started = time.time()
    service = HarDTAPEService(
        evalset.node, SecurityFeatures.from_level(level), charge_fees=False
    )
    client = PreExecutionClient(service.manufacturer.root_public_key)
    session = client.connect(service)
    times = []
    for tx in evalset.transactions:
        _, elapsed, _ = client.pre_execute(service, session, [tx])
        times.append(elapsed)
    return level, times, time.time() - wall_started
