"""Deterministic multiprocessing fan-out for benchmark sweeps.

The repo's sweeps — serve-bench fleet sizes, chaos-bench fault rates,
paper-scale security levels — are embarrassingly parallel: every
configuration builds its own service stack from its own seeds, so rows
never share mutable state.  :func:`run_parallel` fans such work items
across worker processes and reduces results **in input order**, so the
output of a parallel run is byte-identical to the serial one no matter
which worker finishes first (seed-ordered reduction).

Workers must be module-level callables and items picklable.  With
``workers <= 1`` (the default everywhere) the items run serially in
process — no pool, no pickling — which is also the fallback when the
platform cannot fork/spawn workers at all.
"""

from __future__ import annotations

import os
from typing import Callable, Sequence, TypeVar

Item = TypeVar("Item")
Result = TypeVar("Result")


def default_worker_count() -> int:
    """A conservative worker default: physical parallelism minus one."""
    return max(1, (os.cpu_count() or 2) - 1)


def run_parallel(
    worker: Callable[[Item], Result],
    items: Sequence[Item],
    workers: int | None = None,
) -> list[Result]:
    """Map ``worker`` over ``items``, results in input order.

    ``workers`` is the process count; ``None``, ``0`` or ``1`` runs
    serially in this process.  Any worker exception propagates (after
    the pool shuts down), so a failing configuration fails the sweep
    exactly as it would serially.
    """
    items = list(items)
    if workers is None or workers <= 1 or len(items) <= 1:
        return [worker(item) for item in items]
    try:
        import concurrent.futures
        import multiprocessing

        # fork shares the already-imported interpreter state on POSIX;
        # spawn is the portable fallback.
        methods = multiprocessing.get_all_start_methods()
        context = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn"
        )
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=min(workers, len(items)), mp_context=context
        ) as pool:
            futures = [pool.submit(worker, item) for item in items]
            # Input order, not completion order: the reduction is
            # deterministic regardless of scheduling.
            return [future.result() for future in futures]
    except (ImportError, OSError):  # pragma: no cover - constrained hosts
        return [worker(item) for item in items]
