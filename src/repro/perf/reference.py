"""Frozen pre-optimization crypto: the perf-bench baseline.

These classes preserve, verbatim, the block-at-a-time algorithms the
repo shipped before the ``repro.perf`` pass — per-block ``bytes``
concatenation in the CTR loop, a padded copy per GHASH chunk, per-byte
generator XOR — on top of the same (correct) AES block transform.  They
exist for two jobs:

* ``perf-bench`` runs its workload against this baseline to report an
  honest before/after wall-clock comparison against the pre-PR code;
* the equivalence tests assert the optimized paths are byte-for-byte
  identical to these references on every input shape.

They are **not** wired into any production path.
"""

from __future__ import annotations

from repro.crypto.aes import AES
from repro.crypto.gcm import AuthenticationError, _ghash_table


class ReferenceGhash:
    """Pre-optimization GHASH: padded copy per chunk, indexed loop."""

    def __init__(self, tables: list[list[int]]) -> None:
        self._tables = tables
        self._acc = 0

    def update(self, data: bytes) -> None:
        tables = self._tables
        acc = self._acc
        for offset in range(0, len(data), 16):
            chunk = data[offset:offset + 16]
            if len(chunk) < 16:
                chunk = chunk + b"\x00" * (16 - len(chunk))
            acc ^= int.from_bytes(chunk, "big")
            result = 0
            for i in range(16):
                result ^= tables[i][(acc >> (8 * (15 - i))) & 0xFF]
            acc = result
        self._acc = acc

    def digest(self) -> int:
        return self._acc


def reference_ctr_keystream(aes: AES, counter_block: bytes, length: int) -> bytes:
    """Pre-optimization CTR loop: one encrypt_block + concat per block."""
    prefix = counter_block[:12]
    counter = int.from_bytes(counter_block[12:], "big")
    out = bytearray()
    blocks = (length + 15) // 16
    for _ in range(blocks):
        out.extend(aes.encrypt_block(prefix + counter.to_bytes(4, "big")))
        counter = (counter + 1) & 0xFFFFFFFF
    return bytes(out[:length])


class ReferenceAesGcm:
    """Pre-optimization AES-GCM: per-block CTR, per-byte XOR."""

    nonce_size = 12
    tag_size = 16

    def __init__(self, key: bytes) -> None:
        self._aes = AES(key)
        h = int.from_bytes(self._aes.encrypt_block(b"\x00" * 16), "big")
        self._tables = _ghash_table(h)

    def _tag(self, j0: bytes, aad: bytes, ciphertext: bytes) -> bytes:
        ghash = ReferenceGhash(self._tables)
        ghash.update(aad)
        ghash.update(ciphertext)
        lengths = (len(aad) * 8).to_bytes(8, "big") + (
            len(ciphertext) * 8
        ).to_bytes(8, "big")
        ghash.update(lengths)
        s = ghash.digest().to_bytes(16, "big")
        ek = self._aes.encrypt_block(j0)
        return bytes(a ^ b for a, b in zip(s, ek))

    def encrypt(self, nonce: bytes, plaintext: bytes, aad: bytes = b"") -> bytes:
        if len(nonce) != self.nonce_size:
            raise ValueError("GCM nonce must be 12 bytes")
        j0 = nonce + b"\x00\x00\x00\x01"
        counter_block = nonce + b"\x00\x00\x00\x02"
        keystream = reference_ctr_keystream(self._aes, counter_block, len(plaintext))
        ciphertext = bytes(a ^ b for a, b in zip(plaintext, keystream))
        return ciphertext + self._tag(j0, aad, ciphertext)

    def decrypt(self, nonce: bytes, data: bytes, aad: bytes = b"") -> bytes:
        if len(nonce) != self.nonce_size:
            raise ValueError("GCM nonce must be 12 bytes")
        if len(data) < self.tag_size:
            raise AuthenticationError("message shorter than a GCM tag")
        ciphertext, tag = data[:-self.tag_size], data[-self.tag_size:]
        j0 = nonce + b"\x00\x00\x00\x01"
        expected = self._tag(j0, aad, ciphertext)
        if expected != tag:
            raise AuthenticationError("GCM tag mismatch")
        counter_block = nonce + b"\x00\x00\x00\x02"
        keystream = reference_ctr_keystream(self._aes, counter_block, len(ciphertext))
        return bytes(a ^ b for a, b in zip(ciphertext, keystream))
