"""Profile-guided performance substrate (ISSUE 4).

Three independent levers over the repo's dominant wall-clock sink — the
pure-Python AES-GCM/ORAM substrate — none of which changes a single
simulated byte:

* :mod:`repro.perf.memo` — decrypt memoization: a bounded LRU of
  plaintexts keyed by ciphertext identity, exploiting that AEAD
  decryption is pure and ORAM path reads mostly re-open blocks the
  client itself sealed;
* :mod:`repro.perf.parallel` — deterministic multiprocessing fan-out
  for benchmark sweeps, with seed-ordered reduction;
* :mod:`repro.perf.bench` — the ``perf-bench`` CLI's engine: a
  cProfile-attributed before/after comparison against the frozen
  pre-optimization crypto in :mod:`repro.perf.reference`, gated on
  byte-identical outputs.
"""

from repro.perf.memo import MemoizedAead, MemoStats
from repro.perf.parallel import default_worker_count, run_parallel
from repro.perf.reference import ReferenceAesGcm

# bench imports the ORAM client, which imports repro.perf.memo; loading
# it lazily (PEP 562) keeps ``import repro.oram.client`` acyclic.
_BENCH_EXPORTS = ("PerfBenchConfig", "PerfBenchReport", "run_perf_bench")


def __getattr__(name: str):
    if name in _BENCH_EXPORTS:
        from repro.perf import bench

        return getattr(bench, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "MemoStats",
    "MemoizedAead",
    "PerfBenchConfig",
    "PerfBenchReport",
    "ReferenceAesGcm",
    "default_worker_count",
    "run_parallel",
    "run_perf_bench",
]
