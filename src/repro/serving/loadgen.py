"""Closed- and open-loop load drivers for the gateway.

The §VI-D question — where does throughput stop scaling? — needs a
workload *driver*, not just a workload: arrivals must keep coming while
earlier requests are still queued.  Two canonical drivers:

* **closed loop** — N sessions each keep a fixed number of requests in
  flight, issuing the next one when the previous completes (think-time
  optional).  Offered load adapts to capacity, so this traces the
  saturation *throughput* curve.
* **open loop** — arrivals fire at their scheduled times regardless of
  completions (Poisson, uniform, or bursty inter-arrivals), so offered
  load can exceed capacity.  This is the regime where queues grow, tails
  stretch, and admission control earns its keep.

All randomness flows from a seeded :class:`~repro.crypto.kdf.Drbg`, and
all time is the gateway's virtual clock — identically seeded runs
produce identical per-request latencies and metrics snapshots.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from repro.crypto.kdf import Drbg
from repro.hardware.fleet import TxProfile, full_load_profile
from repro.hardware.timing import CostModel
from repro.serving.gateway import Gateway, GatewayRequest, RequestStatus


@dataclass
class LoadSession:
    """One tenant's identity and payload source."""

    session_id: bytes
    make_payload: Callable[[int], Any]   # request ordinal -> payload
    device_index: int | None = None
    priority: int = 0


@dataclass
class LoadReport:
    """Everything a bench needs from one driven run."""

    submitted: int
    completed: int
    expired: int
    rejected_by_reason: dict[str, int]
    duration_us: float
    outcomes: list[GatewayRequest]
    metrics: dict[str, float]
    failed: int = 0
    # Keyed by the innermost typed fault that sank each request (the
    # ``cause_type`` of its :class:`~repro.serving.gateway.ExecutionFailure`).
    failed_by_reason: dict[str, int] = field(default_factory=dict)

    @property
    def rejected(self) -> int:
        return sum(self.rejected_by_reason.values())

    @property
    def completion_rate(self) -> float:
        """Fraction of *dispatched* requests that completed (goodput share)."""
        dispatched = self.completed + self.failed
        if dispatched == 0:
            return 0.0
        return self.completed / dispatched

    @property
    def shed_rate(self) -> float:
        """Fraction of submissions that never ran (rejected or expired)."""
        if self.submitted == 0:
            return 0.0
        return (self.rejected + self.expired) / self.submitted

    @property
    def throughput_tps(self) -> float:
        if self.duration_us <= 0:
            return 0.0
        return self.completed / (self.duration_us / 1e6)

    def queue_wait_percentile_us(self, p: float) -> float:
        return self.metrics.get(f"gateway.queue_wait_us.p{int(p)}", 0.0)

    def latency_percentile_us(self, p: float) -> float:
        return self.metrics.get(f"gateway.latency_us.p{int(p)}", 0.0)

    def summary_lines(self) -> list[str]:
        waits = [self.queue_wait_percentile_us(p) for p in (50, 95, 99)]
        lats = [self.latency_percentile_us(p) for p in (50, 95, 99)]
        lines = [
            f"submitted {self.submitted}, completed {self.completed}, "
            f"failed {self.failed}, rejected {self.rejected}, "
            f"expired {self.expired} (shed rate {self.shed_rate:.1%})",
            f"throughput {self.throughput_tps:.1f} tx/s over "
            f"{self.duration_us / 1e6:.2f} s (virtual)",
            "queue wait p50/p95/p99: "
            f"{waits[0] / 1000:.2f} / {waits[1] / 1000:.2f} / "
            f"{waits[2] / 1000:.2f} ms",
            "latency    p50/p95/p99: "
            f"{lats[0] / 1000:.2f} / {lats[1] / 1000:.2f} / "
            f"{lats[2] / 1000:.2f} ms",
        ]
        for reason in sorted(self.rejected_by_reason):
            lines.append(
                f"  rejected[{reason}]: {self.rejected_by_reason[reason]}"
            )
        for reason in sorted(self.failed_by_reason):
            lines.append(
                f"  failed[{reason}]: {self.failed_by_reason[reason]}"
            )
        return lines


# ----------------------------------------------------------------------
# Arrival processes
# ----------------------------------------------------------------------

def arrival_times(
    rate_rps: float,
    count: int,
    rng: Drbg,
    pattern: str = "poisson",
    burst_len: int = 16,
) -> Iterator[float]:
    """Yield ``count`` absolute arrival times (µs) for the pattern.

    ``poisson`` draws exponential gaps; ``uniform`` spaces arrivals
    evenly; ``bursty`` alternates phases of ``burst_len`` arrivals at 2×
    and ⅔× the nominal rate (mean gap preserved, variance up).
    """
    if rate_rps <= 0:
        raise ValueError("need a positive arrival rate")
    if pattern not in ("poisson", "uniform", "bursty"):
        raise ValueError(f"unknown arrival pattern {pattern!r}")
    mean_gap = 1e6 / rate_rps
    now = 0.0
    for index in range(count):
        if pattern == "uniform":
            gap = mean_gap
        else:
            u = int.from_bytes(rng.random_bytes(7), "big") / float(1 << 56)
            gap = -mean_gap * math.log(1.0 - u)
            if pattern == "bursty":
                in_burst = (index // burst_len) % 2 == 0
                gap *= 0.5 if in_burst else 1.5
        now += gap
        yield now


# ----------------------------------------------------------------------
# Drivers
# ----------------------------------------------------------------------

def run_open_loop(
    gateway: Gateway,
    sessions: list[LoadSession],
    *,
    rate_rps: float,
    total_requests: int,
    seed: int = 1,
    pattern: str = "poisson",
    deadline_us: float | None = None,
) -> LoadReport:
    """Fire arrivals at their scheduled times, round-robin over sessions."""
    rng = Drbg(seed.to_bytes(8, "big"), personalization=b"loadgen-open")
    start_us = gateway.now_us
    outcomes: list[GatewayRequest] = []
    ordinals = [0] * len(sessions)
    for index, at_us in enumerate(
        arrival_times(rate_rps, total_requests, rng, pattern)
    ):
        session = sessions[index % len(sessions)]
        request = gateway.submit(
            session.session_id,
            session.make_payload(ordinals[index % len(sessions)]),
            at_us=start_us + at_us,
            priority=session.priority,
            deadline_us=deadline_us,
            device_index=session.device_index,
        )
        ordinals[index % len(sessions)] += 1
        if request.status == RequestStatus.REJECTED:
            outcomes.append(request)
    outcomes.extend(gateway.drain())
    return _report(gateway, outcomes, start_us)


def run_closed_loop(
    gateway: Gateway,
    sessions: list[LoadSession],
    *,
    requests_per_session: int,
    concurrency_per_session: int = 1,
    think_time_us: float = 0.0,
    deadline_us: float | None = None,
) -> LoadReport:
    """Each session keeps ``concurrency_per_session`` requests in flight.

    A rejection consumes the session's quota like a completion would, so
    the run always terminates even under an always-shedding policy.
    """
    start_us = gateway.now_us
    by_session = {session.session_id: session for session in sessions}
    issued = {session.session_id: 0 for session in sessions}
    outcomes: list[GatewayRequest] = []

    def issue(session: LoadSession, at_us: float) -> None:
        ordinal = issued[session.session_id]
        issued[session.session_id] = ordinal + 1
        request = gateway.submit(
            session.session_id,
            session.make_payload(ordinal),
            at_us=max(at_us, gateway.now_us),
            priority=session.priority,
            deadline_us=deadline_us,
            device_index=session.device_index,
        )
        if request.status == RequestStatus.REJECTED:
            outcomes.append(request)
            reissue(session, gateway.now_us)

    def reissue(session: LoadSession, finished_at_us: float) -> None:
        if issued[session.session_id] < requests_per_session:
            issue(session, finished_at_us + think_time_us)

    for session in sessions:
        for _ in range(min(concurrency_per_session, requests_per_session)):
            issue(session, start_us)

    while True:
        next_at = gateway.next_completion_us()
        terminal = (
            gateway.advance_until(next_at)
            if next_at is not None
            else gateway.drain()  # flush buffered terminals; runs nothing new
        )
        for request in terminal:
            outcomes.append(request)
            reissue(by_session[request.session_id], request.finished_at_us)
        if next_at is None and not terminal and not gateway.in_flight:
            break  # idle, or queued-but-undispatchable: nothing will finish
    return _report(gateway, outcomes, start_us)


def _report(
    gateway: Gateway, outcomes: list[GatewayRequest], start_us: float
) -> LoadReport:
    snapshot = gateway.metrics.snapshot()
    rejected: dict[str, int] = {}
    failed_by_reason: dict[str, int] = {}
    completed = expired = failed = 0
    for request in outcomes:
        if request.status == RequestStatus.COMPLETED:
            completed += 1
        elif request.status == RequestStatus.EXPIRED:
            expired += 1
        elif request.status == RequestStatus.FAILED:
            failed += 1
            reason = request.failure.cause_type
            failed_by_reason[reason] = failed_by_reason.get(reason, 0) + 1
        elif request.status == RequestStatus.REJECTED:
            rejected[request.reject_reason] = (
                rejected.get(request.reject_reason, 0) + 1
            )
    return LoadReport(
        submitted=len(outcomes),
        completed=completed,
        expired=expired,
        rejected_by_reason=rejected,
        duration_us=gateway.now_us - start_us,
        outcomes=outcomes,
        metrics=snapshot,
        failed=failed,
        failed_by_reason=failed_by_reason,
    )


# ----------------------------------------------------------------------
# Synthetic model-mode workloads (TxProfile shapes, no bytecode)
# ----------------------------------------------------------------------

def synthetic_profiles(
    cost: CostModel,
    kind: str = "full-load",
    count: int = 8,
    seed: int = 1,
) -> list[TxProfile]:
    """Deterministic ``TxProfile`` sets for model-mode load.

    ``full-load`` repeats the paper's §VI-D saturation shape;
    ``mixed`` spreads query counts and compute around it, shaped like a
    real evaluation-set stream (light transfers to heavy call chains).
    """
    if kind == "full-load":
        return [full_load_profile(cost)] * count
    if kind != "mixed":
        raise ValueError(f"unknown synthetic workload {kind!r}")
    rng = Drbg(seed.to_bytes(8, "big"), personalization=b"loadgen-profiles")
    base = full_load_profile(cost)
    profiles = []
    for _ in range(count):
        queries = 2 + rng.randint(30)
        gap = base.exec_us / (base.oram_queries + 1)
        exec_us = gap * (queries + 1) * (0.5 + rng.randint(100) / 100.0)
        profiles.append(
            TxProfile(
                exec_us=exec_us,
                oram_queries=queries,
                fixed_us=float(rng.randint(2000)),
            )
        )
    return profiles


def model_sessions(
    session_count: int, profiles: list[TxProfile]
) -> list[LoadSession]:
    """Synthetic tenants for :class:`FleetModelExecutor` gateways.

    Session *i* cycles through the profile list starting at offset *i*,
    so load mixes across tenants without shared mutable state.
    """
    sessions = []
    for index in range(session_count):
        def make_payload(ordinal: int, offset: int = index) -> TxProfile:
            return profiles[(offset + ordinal) % len(profiles)]

        sessions.append(
            LoadSession(
                session_id=b"tenant-%04d" % index,
                make_payload=make_payload,
            )
        )
    return sessions
