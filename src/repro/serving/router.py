"""Shard-aware session routing: spread tenants across the gateway fleet.

One :class:`~repro.serving.gateway.Gateway` fronts each shard's
serving stack; the router pins every session to a shard with the same
consistent-hash construction the state plane uses (its own hash
domain, so tenant placement and page placement stay independent).
Stickiness matters twice over: a tenant's session keys live on one
device fleet, and its working set warms one shard's ORAM stash — so
the router never migrates a session except on explicit topology change
(a new ring), exactly like page keys.

The router is deliberately thin: it owns no queue of its own — each
gateway keeps its bounded queue, admission policy, and virtual clock —
so per-shard behaviour under load is *identical* to a single-gateway
deployment, and fleet-level views (queue depths, completions) are just
deterministic merges in shard order.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.serving.gateway import Gateway, GatewayRequest
from repro.serving.metrics import MetricsRegistry
from repro.sharding.ring import ConsistentHashRing

SESSION_RING_SEED = b"hardtape-session-ring"


class ShardSessionRouter:
    """Maps session ids to shards and fans gateway ops across the fleet."""

    def __init__(
        self,
        gateways: dict[int, Gateway],
        *,
        vnodes: int = 64,
        ring_seed: bytes = SESSION_RING_SEED,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if not gateways:
            raise ValueError("a router needs at least one gateway")
        self._gateways = dict(sorted(gateways.items()))
        self.ring = ConsistentHashRing(
            self._gateways.keys(), vnodes=vnodes, seed=ring_seed
        )
        self.metrics = metrics
        self._sessions_by_shard: dict[int, set[bytes]] = {
            sid: set() for sid in self._gateways
        }

    # -- placement -----------------------------------------------------

    @property
    def shard_ids(self) -> tuple[int, ...]:
        return tuple(self._gateways)

    def shard_for_session(self, session_id: bytes) -> int:
        return self.ring.shard_for(session_id)

    def gateway_for(self, session_id: bytes) -> Gateway:
        return self._gateways[self.shard_for_session(session_id)]

    def gateway_of_shard(self, shard_id: int) -> Gateway:
        return self._gateways[shard_id]

    def partition_sessions(self, sessions: Iterable) -> dict[int, list]:
        """Split ``LoadSession``s by owning shard (loadgen per-shard runs)."""
        by_shard: dict[int, list] = {sid: [] for sid in self._gateways}
        for session in sessions:
            by_shard[self.shard_for_session(session.session_id)].append(session)
        return by_shard

    # -- the gateway surface, fleet-wide -------------------------------

    def submit(
        self,
        session_id: bytes,
        payload: Any,
        at_us: float = 0.0,
        priority: int = 0,
        deadline_us: float | None = None,
        device_index: int | None = None,
    ) -> GatewayRequest:
        shard_id = self.shard_for_session(session_id)
        self._sessions_by_shard[shard_id].add(session_id)
        request = self._gateways[shard_id].submit(
            session_id,
            payload,
            at_us=at_us,
            priority=priority,
            deadline_us=deadline_us,
            device_index=device_index,
        )
        if self.metrics is not None:
            self.metrics.counter("router.submitted", shard=shard_id).inc()
        return request

    def advance_until(self, deadline_us: float) -> list[GatewayRequest]:
        """Advance every shard's gateway; merge terminals in shard order."""
        terminal: list[GatewayRequest] = []
        for shard_id in sorted(self._gateways):
            terminal.extend(self._gateways[shard_id].advance_until(deadline_us))
        return terminal

    def drain(self) -> list[GatewayRequest]:
        terminal: list[GatewayRequest] = []
        for shard_id in sorted(self._gateways):
            terminal.extend(self._gateways[shard_id].drain())
        return terminal

    def next_completion_us(self) -> float | None:
        """Earliest in-flight completion across the fleet (event merging)."""
        times = [
            t for t in (
                gateway.next_completion_us()
                for gateway in self._gateways.values()
            )
            if t is not None
        ]
        return min(times) if times else None

    # -- fleet views ---------------------------------------------------

    @property
    def now_us(self) -> float:
        return max(gateway.now_us for gateway in self._gateways.values())

    @property
    def in_flight(self) -> int:
        return sum(gateway.in_flight for gateway in self._gateways.values())

    def queue_depths(self) -> dict[int, int]:
        return {
            shard_id: gateway.queue_depth
            for shard_id, gateway in sorted(self._gateways.items())
        }

    def session_counts(self) -> dict[int, int]:
        return {
            shard_id: len(sessions)
            for shard_id, sessions in sorted(self._sessions_by_shard.items())
        }

    def observe_queue_depths(self) -> None:
        """Publish per-shard queue depths as labelled gauges."""
        if self.metrics is None:
            return
        for shard_id, depth in self.queue_depths().items():
            self.metrics.gauge("router.queue_depth", shard=shard_id).set(depth)
