"""A lightweight, deterministic metrics registry for the serving layer.

The gateway, the load generators, and the fleet model all report into
one :class:`MetricsRegistry`: counters for admission outcomes,
histograms for queue wait / service time / end-to-end latency, gauges
for instantaneous depths.  Everything is exact and in-memory — samples
are kept, percentiles are computed by nearest-rank on the sorted data —
so two identically seeded runs produce byte-identical snapshots (the
reproducibility bar every experiment in this repository meets).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Counter:
    """A monotonically increasing event count."""

    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


@dataclass
class Gauge:
    """An instantaneous level, with its high-water mark retained."""

    value: float = 0.0
    peak: float = 0.0

    def set(self, value: float) -> None:
        self.value = value
        self.peak = max(self.peak, value)


@dataclass
class Histogram:
    """Exact distribution of observed values (µs, counts, ...)."""

    samples: list[float] = field(default_factory=list)
    _sorted: bool = True

    def observe(self, value: float) -> None:
        if self.samples and value < self.samples[-1]:
            self._sorted = False
        self.samples.append(value)

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def total(self) -> float:
        return sum(self.samples)

    @property
    def mean(self) -> float:
        return self.total / len(self.samples) if self.samples else 0.0

    @property
    def max(self) -> float:
        return max(self.samples) if self.samples else 0.0

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile, ``p`` in [0, 100]."""
        if not 0 <= p <= 100:
            raise ValueError("percentile must be in [0, 100]")
        if not self.samples:
            return 0.0
        if not self._sorted:
            self.samples.sort()
            self._sorted = True
        rank = max(1, -(-len(self.samples) * p // 100))  # ceil without floats
        return self.samples[int(rank) - 1]


class MetricsRegistry:
    """Named counters/gauges/histograms with a flat snapshot view."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        return self._counters.setdefault(name, Counter())

    def gauge(self, name: str) -> Gauge:
        return self._gauges.setdefault(name, Gauge())

    def histogram(self, name: str) -> Histogram:
        return self._histograms.setdefault(name, Histogram())

    def snapshot(self) -> dict[str, float]:
        """A flat, deterministically ordered name→value map.

        Histograms expand to count/mean/p50/p95/p99/max.  Two runs of the
        same seeded workload must produce equal snapshots — the gateway
        benchmarks assert exactly that.
        """
        out: dict[str, float] = {}
        for name in sorted(self._counters):
            out[name] = self._counters[name].value
        for name in sorted(self._gauges):
            gauge = self._gauges[name]
            out[f"{name}"] = gauge.value
            out[f"{name}.peak"] = gauge.peak
        for name in sorted(self._histograms):
            hist = self._histograms[name]
            out[f"{name}.count"] = float(hist.count)
            out[f"{name}.mean"] = hist.mean
            out[f"{name}.p50"] = hist.percentile(50)
            out[f"{name}.p95"] = hist.percentile(95)
            out[f"{name}.p99"] = hist.percentile(99)
            out[f"{name}.max"] = hist.max
        return out

    def render(self) -> str:
        """A human-readable table of the snapshot (for CLI output)."""
        lines = []
        for name, value in self.snapshot().items():
            if value == int(value):
                lines.append(f"{name:<44} {int(value):>12}")
            else:
                lines.append(f"{name:<44} {value:>12.1f}")
        return "\n".join(lines)
