"""A lightweight, deterministic metrics registry for the serving layer.

The gateway, the load generators, and the fleet model all report into
one :class:`MetricsRegistry`: counters for admission outcomes,
histograms for queue wait / service time / end-to-end latency, gauges
for instantaneous depths.  Everything is exact and in-memory — samples
are kept, percentiles are computed by nearest-rank on the sorted data —
so two identically seeded runs produce byte-identical snapshots (the
reproducibility bar every experiment in this repository meets).

Metrics take structured labels (``registry.counter("faults.injected",
kind="dma-drop")``); the snapshot flattens them into the key as
``name{k=v,...}`` with keys sorted, while the Prometheus exporter in
:mod:`repro.telemetry.exporters` renders them as proper label sets.
"""

from __future__ import annotations

from dataclasses import dataclass, field

# A label set as stored: ``(("kind", "dma-drop"), ...)`` sorted by key.
LabelItems = tuple[tuple[str, str], ...]


@dataclass
class Counter:
    """A monotonically increasing event count."""

    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


@dataclass
class Gauge:
    """An instantaneous level, with its high-water mark retained.

    The peak tracks the values actually set: a gauge that only ever
    holds negative levels reports a negative peak, not the 0.0 it was
    never set to.
    """

    value: float = 0.0
    _peak: float | None = field(default=None, repr=False)

    def set(self, value: float) -> None:
        self.value = value
        self._peak = value if self._peak is None else max(self._peak, value)

    @property
    def peak(self) -> float:
        return self.value if self._peak is None else self._peak


@dataclass
class Histogram:
    """Exact distribution of observed values (µs, counts, ...).

    ``total`` and ``max`` are running values maintained on ``observe`` —
    snapshots are taken per bench iteration, so recomputing them over
    the sample list would be O(n) per read.
    """

    samples: list[float] = field(default_factory=list)
    _sorted: bool = True
    _total: float = 0.0
    _max: float = 0.0

    def observe(self, value: float) -> None:
        if self.samples:
            if value < self.samples[-1]:
                self._sorted = False
            if value > self._max:
                self._max = value
        else:
            self._max = value
        self._total += value
        self.samples.append(value)

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def total(self) -> float:
        return self._total

    @property
    def mean(self) -> float:
        return self._total / len(self.samples) if self.samples else 0.0

    @property
    def max(self) -> float:
        return self._max if self.samples else 0.0

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile, ``p`` in [0, 100]."""
        if not 0 <= p <= 100:
            raise ValueError("percentile must be in [0, 100]")
        if not self.samples:
            return 0.0
        if not self._sorted:
            self.samples.sort()
            self._sorted = True
        rank = max(1, -(-len(self.samples) * p // 100))  # ceil without floats
        return self.samples[int(rank) - 1]


def flatten_name(name: str, labels: LabelItems) -> str:
    """The snapshot key for a labelled metric: ``name{k=v,...}``."""
    if not labels:
        return name
    inner = ",".join(f"{key}={value}" for key, value in labels)
    return f"{name}{{{inner}}}"


class MetricsRegistry:
    """Named counters/gauges/histograms with a flat snapshot view."""

    def __init__(self) -> None:
        self._counters: dict[tuple[str, LabelItems], Counter] = {}
        self._gauges: dict[tuple[str, LabelItems], Gauge] = {}
        self._histograms: dict[tuple[str, LabelItems], Histogram] = {}

    @staticmethod
    def _key(name: str, labels: dict[str, object]) -> tuple[str, LabelItems]:
        return name, tuple(sorted((key, str(value)) for key, value in labels.items()))

    def counter(self, name: str, **labels: object) -> Counter:
        return self._counters.setdefault(self._key(name, labels), Counter())

    def gauge(self, name: str, **labels: object) -> Gauge:
        return self._gauges.setdefault(self._key(name, labels), Gauge())

    def histogram(self, name: str, **labels: object) -> Histogram:
        return self._histograms.setdefault(self._key(name, labels), Histogram())

    def reset(self) -> None:
        """Drop every metric: a fresh registry without re-threading it."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    # -- structured iteration (the Prometheus exporter's interface) ----

    def iter_counters(self):
        for (name, labels), counter in sorted(self._counters.items()):
            yield name, labels, counter

    def iter_gauges(self):
        for (name, labels), gauge in sorted(self._gauges.items()):
            yield name, labels, gauge

    def iter_histograms(self):
        for (name, labels), histogram in sorted(self._histograms.items()):
            yield name, labels, histogram

    def snapshot(self) -> dict[str, float]:
        """A flat, deterministically ordered name→value map.

        Labels flatten into the key (``faults.injected{kind=dma-drop}``)
        and histograms expand to count/mean/p50/p95/p99/max.  Two runs
        of the same seeded workload must produce equal snapshots — the
        gateway benchmarks assert exactly that.
        """
        out: dict[str, float] = {}
        for name, labels, counter in self.iter_counters():
            out[flatten_name(name, labels)] = counter.value
        for name, labels, gauge in self.iter_gauges():
            flat = flatten_name(name, labels)
            out[flat] = gauge.value
            out[f"{flat}.peak"] = gauge.peak
        for name, labels, hist in self.iter_histograms():
            flat = flatten_name(name, labels)
            out[f"{flat}.count"] = float(hist.count)
            out[f"{flat}.mean"] = hist.mean
            out[f"{flat}.p50"] = hist.percentile(50)
            out[f"{flat}.p95"] = hist.percentile(95)
            out[f"{flat}.p99"] = hist.percentile(99)
            out[f"{flat}.max"] = hist.max
        return out

    def render(self) -> str:
        """A human-readable table of the snapshot (for CLI output)."""
        lines = []
        for name, value in self.snapshot().items():
            if value == int(value):
                lines.append(f"{name:<44} {int(value):>12}")
            else:
                lines.append(f"{name:<44} {value:>12.1f}")
        return "\n".join(lines)
