"""Pluggable admission control for the gateway front door.

Overload must degrade gracefully: instead of the pre-serving behaviour
(`pick_device` raising on a full fleet), every submission passes an
admission pipeline that either admits it into the bounded queue or
rejects it with a *typed reason* the client can act on — back off
(rate limited), retry elsewhere (queue full), or reduce concurrency
(in-flight cap).  Policies are small, composable, and driven entirely
by virtual time, so admission decisions are deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.serving.gateway import Gateway, GatewayRequest


class RejectReason:
    """Typed reasons a submission bounces at the front door."""

    QUEUE_FULL = "queue-full"                   # the gateway's bounded queue
    SESSION_LIMIT = "session-in-flight-limit"   # per-session outstanding cap
    RATE_LIMITED = "rate-limited"               # token bucket empty
    CONCURRENCY_LIMIT = "concurrency-limit"     # global outstanding cap
    SHED_QUEUE_DEPTH = "shed-queue-depth"       # load shedding threshold
    DEADLINE_EXPIRED = "deadline-expired"       # timed out while queued
    QUARANTINED_CAPACITY = "quarantined-capacity"  # shed: devices quarantined

    ALL = (
        QUEUE_FULL,
        SESSION_LIMIT,
        RATE_LIMITED,
        CONCURRENCY_LIMIT,
        SHED_QUEUE_DEPTH,
        DEADLINE_EXPIRED,
        QUARANTINED_CAPACITY,
    )


class AdmissionPolicy(Protocol):
    """One stage of the admission pipeline.

    Returns ``None`` to admit or a :class:`RejectReason` constant to
    reject.  Policies may keep per-session state keyed by the request's
    ``session_id`` and may consult the gateway's load view
    (``queue_depth``, ``in_flight``, ``session_load``, ``now_us``).
    """

    def admit(self, request: "GatewayRequest", gateway: "Gateway") -> str | None:
        ...  # pragma: no cover - protocol


@dataclass
class _Bucket:
    tokens: float
    last_refill_us: float


class TokenBucketPolicy:
    """Per-session token bucket: ``rate_per_s`` sustained, ``burst`` peak."""

    def __init__(self, rate_per_s: float, burst: float) -> None:
        if rate_per_s <= 0 or burst < 1:
            raise ValueError("need a positive rate and burst >= 1")
        self.rate_per_s = rate_per_s
        self.burst = float(burst)
        self._buckets: dict[bytes, _Bucket] = {}

    def admit(self, request: "GatewayRequest", gateway: "Gateway") -> str | None:
        now = request.submitted_at_us
        bucket = self._buckets.get(request.session_id)
        if bucket is None:
            bucket = _Bucket(tokens=self.burst, last_refill_us=now)
            self._buckets[request.session_id] = bucket
        refill = (now - bucket.last_refill_us) * self.rate_per_s / 1e6
        bucket.tokens = min(self.burst, bucket.tokens + refill)
        bucket.last_refill_us = now
        if bucket.tokens < 1.0:
            return RejectReason.RATE_LIMITED
        bucket.tokens -= 1.0
        return None


class GlobalConcurrencyPolicy:
    """Cap total outstanding work (queued + running) across all sessions."""

    def __init__(self, max_outstanding: int) -> None:
        if max_outstanding < 1:
            raise ValueError("need max_outstanding >= 1")
        self.max_outstanding = max_outstanding

    def admit(self, request: "GatewayRequest", gateway: "Gateway") -> str | None:
        if gateway.queue_depth + gateway.in_flight >= self.max_outstanding:
            return RejectReason.CONCURRENCY_LIMIT
        return None


class QueueDepthShedPolicy:
    """Shed early, before the hard queue bound, so overload degrades.

    A gateway whose queue only rejects when *full* serves every admitted
    request with the worst possible wait; shedding at a lower watermark
    trades a higher reject rate for bounded queueing delay.
    """

    def __init__(self, shed_depth: int) -> None:
        if shed_depth < 1:
            raise ValueError("need shed_depth >= 1")
        self.shed_depth = shed_depth

    def admit(self, request: "GatewayRequest", gateway: "Gateway") -> str | None:
        if gateway.queue_depth >= self.shed_depth:
            return RejectReason.SHED_QUEUE_DEPTH
        return None


@dataclass
class CompositeAdmission:
    """Run policies in order; the first rejection wins."""

    policies: list[AdmissionPolicy] = field(default_factory=list)

    def admit(self, request: "GatewayRequest", gateway: "Gateway") -> str | None:
        for policy in self.policies:
            reason = policy.admit(request, gateway)
            if reason is not None:
                return reason
        return None
