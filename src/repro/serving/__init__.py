"""The serving layer: HarDTAPE's untrusted multi-tenant front door.

Sits above ``repro.core``; observes ``hardware``/``hypervisor`` stats;
is never imported by the substrates.  See ``gateway`` for the request
lifecycle, ``admission`` for overload policy, ``loadgen`` for the
closed/open-loop harness, and ``metrics`` for the registry everything
reports into.
"""

from repro.serving.admission import (
    AdmissionPolicy,
    CompositeAdmission,
    GlobalConcurrencyPolicy,
    QueueDepthShedPolicy,
    RejectReason,
    TokenBucketPolicy,
)
from repro.serving.gateway import (
    BundleExecutor,
    ExecutionFailure,
    FleetModelExecutor,
    Gateway,
    GatewayConfig,
    GatewayRequest,
    RequestStatus,
    ServiceExecutor,
)
from repro.serving.loadgen import (
    LoadReport,
    LoadSession,
    arrival_times,
    model_sessions,
    run_closed_loop,
    run_open_loop,
    synthetic_profiles,
)
from repro.serving.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.serving.router import SESSION_RING_SEED, ShardSessionRouter

__all__ = [
    "AdmissionPolicy",
    "BundleExecutor",
    "CompositeAdmission",
    "Counter",
    "ExecutionFailure",
    "FleetModelExecutor",
    "Gauge",
    "Gateway",
    "GatewayConfig",
    "GatewayRequest",
    "GlobalConcurrencyPolicy",
    "Histogram",
    "LoadReport",
    "LoadSession",
    "MetricsRegistry",
    "QueueDepthShedPolicy",
    "RejectReason",
    "RequestStatus",
    "SESSION_RING_SEED",
    "ServiceExecutor",
    "ShardSessionRouter",
    "TokenBucketPolicy",
    "arrival_times",
    "model_sessions",
    "run_closed_loop",
    "run_open_loop",
    "synthetic_profiles",
]
