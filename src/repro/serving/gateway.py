"""The multi-tenant request gateway — HarDTAPE's untrusted front door.

The paper's SP runs HarDTAPE as a shared service: bundles "queue until
an HEVM is idle" and throughput scales with HEVM count until the ORAM
server bottlenecks (§VI-D).  This module turns the one-shot
:class:`~repro.core.service.HarDTAPEService` into that shared service:
many sessions submit concurrently, a bounded priority/FIFO queue
absorbs bursts, admission control sheds overload with typed reasons,
and per-request deadlines give timeout + cancellation semantics.

Concurrency is modeled in *virtual time*: the gateway owns a virtual
clock (microseconds, same unit as :class:`~repro.hardware.timing.SimClock`),
an event heap of in-flight completions, and one capacity slot per HEVM.
Execution itself is pluggable:

* :class:`ServiceExecutor` drives the real functional pipeline through
  ``HarDTAPEService.submit_bundle`` — results are bit-identical to the
  direct path, and the measured SimClock delta is the service time;
* :class:`FleetModelExecutor` prices synthetic
  :class:`~repro.hardware.fleet.TxProfile` load against the shared
  :class:`~repro.hardware.fleet.OramServerTimeline`, reproducing the
  §VI-D saturation knee at fleet scale without running bytecode.

Layering: serving sits *above* ``core`` and observes ``hardware`` /
``hypervisor`` statistics; nothing below ever imports it.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Any, Protocol

from repro.hardware.fleet import OramServerLedger, profile_finish_us
from repro.hardware.timing import CostModel
from repro.serving.admission import AdmissionPolicy, RejectReason
from repro.serving.metrics import MetricsRegistry
from repro.telemetry.tracer import NULL_TRACER, TraceContext, Tracer, tracer_for


class RequestStatus:
    """Lifecycle states of a gateway request."""

    QUEUED = "queued"
    RUNNING = "running"
    COMPLETED = "completed"
    REJECTED = "rejected"
    EXPIRED = "expired"
    CANCELLED = "cancelled"
    FAILED = "failed"      # dispatched, but execution (incl. recovery) failed


@dataclass(frozen=True)
class ExecutionFailure:
    """Typed record of why a dispatched request failed.

    ``error_type`` is the exception the executor surfaced (usually
    :class:`~repro.faults.errors.BundleFailedError` after recovery ran
    dry); ``cause_type`` is the innermost typed fault, which is what the
    per-reason failure metrics key on — every failed request is
    accounted under the fault that actually sank it, never silently.
    """

    error_type: str
    cause_type: str
    message: str
    # How many device attempts the executor burned before giving up
    # (1 for plain executors that never retry).
    attempts: int = 1


@dataclass
class GatewayRequest:
    """One submission's full lifecycle record.

    ``payload`` is executor-specific: a sealed bundle (or a zero-arg
    callable producing one, invoked at dispatch so secure-channel nonces
    stay ordered) for :class:`ServiceExecutor`, a
    :class:`~repro.hardware.fleet.TxProfile` for
    :class:`FleetModelExecutor`.
    """

    request_id: int
    session_id: bytes
    submitted_at_us: float
    priority: int = 0              # lower dispatches first; FIFO within a level
    deadline_us: float | None = None
    device_index: int | None = None
    payload: Any = None
    status: str = RequestStatus.QUEUED
    reject_reason: str | None = None
    started_at_us: float | None = None
    finished_at_us: float | None = None
    service_us: float | None = None
    result: Any = None
    failure: ExecutionFailure | None = None
    # Set by recovering executors (``repro.faults.policy``): what retry/
    # failover did for this request, ``None`` when nothing was needed.
    recovery: Any = None
    # Per-request span handles; ``None`` when tracing is off or the
    # request was not sampled.
    trace: TraceContext | None = None

    @property
    def queue_wait_us(self) -> float | None:
        if self.started_at_us is None:
            return None
        return self.started_at_us - self.submitted_at_us

    @property
    def latency_us(self) -> float | None:
        if self.finished_at_us is None or self.status != RequestStatus.COMPLETED:
            return None
        return self.finished_at_us - self.submitted_at_us


class BundleExecutor(Protocol):
    """Where dispatched requests actually run.

    ``slots`` lists one entry per capacity slot (HEVM); each entry is the
    device index the slot belongs to, or ``None`` for device-agnostic
    model slots.  ``execute`` runs a request starting at ``start_us`` of
    virtual time and returns ``(service_us, result)``.
    """

    slots: list[int | None]

    def execute(
        self, request: GatewayRequest, start_us: float
    ) -> tuple[float, Any]:
        ...  # pragma: no cover - protocol


class ServiceExecutor:
    """Run bundles through the real functional pipeline.

    Service time is the SimClock delta measured by
    ``HarDTAPEService.submit_bundle``, so the gateway's virtual timeline
    stays calibrated to the same cost model as every other experiment.
    Note the channel-ordering contract: trace reports are sealed at
    dispatch, so a session opening its reports must do so in completion
    order — sessions wanting strict ordering should keep one request in
    flight (``GatewayConfig.max_in_flight_per_session = 1``).
    """

    def __init__(self, service) -> None:
        self.service = service
        self.slots: list[int | None] = []
        for index, device in enumerate(service.devices):
            self.slots.extend([index] * device.config.hevm_count)

    def execute(
        self, request: GatewayRequest, start_us: float
    ) -> tuple[float, Any]:
        if request.device_index is None:
            raise ValueError("service-path requests are session/device bound")
        # Re-sealable payloads (FailoverBundle) seal late for whichever
        # device the request ended up on — the quarantine re-route in
        # ``Gateway.submit`` relies on this.
        if hasattr(request.payload, "seal_for"):
            session_id = request.payload.session_for(request.device_index)
            payload = request.payload.seal_for(request.device_index)
        else:
            session_id = request.session_id
            payload = (
                request.payload() if callable(request.payload)
                else request.payload
            )
        device = self.service.devices[request.device_index]
        # Bridge clock domains: spans recorded on the device SimClock are
        # shifted so they render inside this request's gateway interval.
        tracer = tracer_for(self.service.clock)
        with tracer.shifted(start_us - self.service.clock.now_us):
            sealed_out, elapsed, _breakdowns, _run_stats = self.service.submit_bundle(
                device, session_id, payload
            )
        return elapsed, sealed_out


class FleetModelExecutor:
    """Price synthetic ``TxProfile`` load against the shared ORAM server.

    Every request's queries are reserved on one
    :class:`~repro.hardware.fleet.OramServerLedger` at dispatch, so as
    concurrency grows past the server's capacity, service times inflate
    and gateway throughput knees — the §VI-D bottleneck, now visible
    through the front door.
    """

    def __init__(
        self,
        core_count: int,
        cost: CostModel | None = None,
        server: OramServerLedger | None = None,
    ) -> None:
        if core_count < 1:
            raise ValueError("need at least one core")
        self.cost = cost or CostModel()
        self.server = server or OramServerLedger(self.cost.oram_server_cpu_us)
        self.slots: list[int | None] = [None] * core_count

    def execute(
        self, request: GatewayRequest, start_us: float
    ) -> tuple[float, Any]:
        finish = profile_finish_us(request.payload, start_us, self.server, self.cost)
        return finish - start_us, None


@dataclass
class GatewayConfig:
    """Front-door knobs."""

    max_queue_depth: int = 64
    max_in_flight_per_session: int = 4   # queued + running, per session
    default_deadline_us: float | None = None
    default_priority: int = 0


class Gateway:
    """Bounded queue + admission control + deadline-aware dispatch."""

    def __init__(
        self,
        executor: BundleExecutor,
        config: GatewayConfig | None = None,
        admission: AdmissionPolicy | None = None,
        metrics: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        flight: Any = None,
        quarantine: Any = None,
    ) -> None:
        self.executor = executor
        self.config = config or GatewayConfig()
        self.admission = admission
        self.metrics = metrics or MetricsRegistry()
        self.tracer = NULL_TRACER if tracer is None else tracer
        # Optional repro.telemetry.flight.FlightRecorder: typed failures
        # seal the failing session's ring into a deterministic dump.
        # Pure bookkeeping — no clock or metric effects when armed.
        self.flight = flight
        # Optional repro.faults.policy.QuarantinePolicy: quarantined
        # devices' slots are skipped (degraded serving with shrunken
        # capacity) and overflow sheds with a typed reason.  ``None``
        # preserves the historical behaviour bit-for-bit.
        self.quarantine = quarantine
        self._now_us = 0.0
        self._sequence = 0
        # (priority, sequence, request): FIFO within a priority level.
        self._queue: list[tuple[int, int, GatewayRequest]] = []
        self._queued_count = 0
        # (finish_us, sequence, slot, request)
        self._events: list[tuple[float, int, int, GatewayRequest]] = []
        self._free_slots: list[int] = list(range(len(executor.slots)))
        self._in_flight = 0
        self._session_outstanding: dict[bytes, int] = {}
        self._slot_busy_us: list[float] = [0.0] * len(executor.slots)
        self._terminal: list[GatewayRequest] = []

    # ------------------------------------------------------------------
    # Load view (admission policies and the loadgen read these)
    # ------------------------------------------------------------------

    @property
    def now_us(self) -> float:
        return self._now_us

    @property
    def capacity(self) -> int:
        return len(self.executor.slots)

    @property
    def queue_depth(self) -> int:
        return self._queued_count

    @property
    def in_flight(self) -> int:
        return self._in_flight

    def session_load(self, session_id: bytes) -> int:
        return self._session_outstanding.get(session_id, 0)

    def next_completion_us(self) -> float | None:
        return self._events[0][0] if self._events else None

    def utilization(self) -> float:
        """Mean fraction of virtual time the HEVM slots spent busy."""
        if self._now_us <= 0:
            return 0.0
        return sum(self._slot_busy_us) / (self._now_us * len(self._slot_busy_us))

    # ------------------------------------------------------------------
    # Front door
    # ------------------------------------------------------------------

    def submit(
        self,
        session_id: bytes,
        payload: Any,
        *,
        at_us: float | None = None,
        priority: int | None = None,
        deadline_us: float | None = None,
        device_index: int | None = None,
    ) -> GatewayRequest:
        """Submit one bundle; returns its (live) lifecycle record.

        A rejected request comes back with ``status == "rejected"`` and a
        typed ``reject_reason``; an admitted one completes (or expires)
        during a later :meth:`advance_until` / :meth:`drain`.
        """
        now = self._now_us if at_us is None else at_us
        if now < self._now_us:
            raise ValueError("submissions must move forward in virtual time")
        self._run_events(now)
        self._now_us = now

        self._sequence += 1
        if deadline_us is None and self.config.default_deadline_us is not None:
            deadline_us = now + self.config.default_deadline_us
        request = GatewayRequest(
            request_id=self._sequence,
            session_id=session_id,
            submitted_at_us=now,
            priority=self.config.default_priority if priority is None else priority,
            deadline_us=deadline_us,
            device_index=device_index,
            payload=payload,
        )
        self.metrics.counter("gateway.submitted").inc()
        # One sampling draw per submission, in submission order, so the
        # sampled set depends only on (seed, rate) — never on outcomes.
        if self.tracer.enabled and self.tracer.sample():
            root = self.tracer.start_span(
                "gateway.request",
                "request",
                start_us=now,
                attributes={
                    "request_id": request.request_id,
                    "session": session_id.hex(),
                    "priority": request.priority,
                },
            )
            request.trace = TraceContext(root=root)

        # Degraded serving: a request bound to a quarantined device is
        # re-routed onto a healthy device the payload holds a session on
        # (FailoverBundle payloads re-seal per device); single-session
        # payloads have nowhere else to go and shed typed below.
        if (
            self.quarantine is not None
            and request.device_index is not None
            and self.quarantine.is_quarantined(request.device_index)
            and hasattr(request.payload, "seal_for")
        ):
            for index in request.payload.device_indices:
                if not self.quarantine.is_quarantined(index):
                    request.device_index = index
                    break

        reason = self._admission_reason(request)
        if reason is not None:
            request.status = RequestStatus.REJECTED
            request.reject_reason = reason
            request.finished_at_us = now
            self.metrics.counter("gateway.rejected").inc()
            self.metrics.counter("gateway.rejected", reason=reason).inc()
            if request.trace is not None:
                request.trace.root.set(status=request.status, reject_reason=reason)
                self.tracer.end_span(request.trace.root, now)
            return request

        self.metrics.counter("gateway.admitted").inc()
        if request.trace is not None:
            request.trace.queue = self.tracer.start_span(
                "gateway.queue",
                "queueing",
                start_us=now,
                parent=request.trace.root,
            )
        heapq.heappush(self._queue, (request.priority, self._sequence, request))
        self._queued_count += 1
        self._session_outstanding[session_id] = self.session_load(session_id) + 1
        self.metrics.gauge("gateway.queue_depth").set(self._queued_count)
        self._dispatch()
        return request

    def cancel(self, request: GatewayRequest) -> bool:
        """Cancel a still-queued request; running work is never preempted
        (a dedicated core runs its bundle to completion — §IV isolation)."""
        if request.status != RequestStatus.QUEUED:
            return False
        request.status = RequestStatus.CANCELLED
        request.finished_at_us = self._now_us
        self._queued_count -= 1
        self._release_session(request.session_id)
        self.metrics.counter("gateway.cancelled").inc()
        self._close_trace(request)
        return True

    def _admission_reason(self, request: GatewayRequest) -> str | None:
        degraded = self.quarantine is not None and self.quarantine.any_quarantined
        if self._queued_count >= self.config.max_queue_depth:
            # Under quarantine the queue backs up *because* capacity
            # shrank — name the real cause so clients distinguish
            # degraded mode from ordinary overload.
            if degraded:
                return RejectReason.QUARANTINED_CAPACITY
            return RejectReason.QUEUE_FULL
        if (
            degraded
            and request.device_index is not None
            and self.quarantine.is_quarantined(request.device_index)
        ):
            # Still pointed at a quarantined device after re-routing:
            # no healthy device holds a session for this payload.
            return RejectReason.QUARANTINED_CAPACITY
        cap = self.config.max_in_flight_per_session
        if cap is not None and self.session_load(request.session_id) >= cap:
            return RejectReason.SESSION_LIMIT
        if self.admission is not None:
            return self.admission.admit(request, self)
        return None

    # ------------------------------------------------------------------
    # Virtual-time engine
    # ------------------------------------------------------------------

    def advance_until(self, until_us: float) -> list[GatewayRequest]:
        """Process completions/expiries up to ``until_us`` of virtual time.

        Returns every request that reached a terminal state since the
        last call, in the order it got there.
        """
        self._run_events(until_us)
        self._now_us = max(self._now_us, until_us)
        self._expire_queued()
        terminal, self._terminal = self._terminal, []
        return terminal

    def drain(self) -> list[GatewayRequest]:
        """Run until nothing is queued or in flight."""
        while self._events:
            self._run_events(self._events[0][0])
        terminal, self._terminal = self._terminal, []
        return terminal

    def _run_events(self, until_us: float) -> None:
        while self._events and self._events[0][0] <= until_us:
            finish_us, _, slot, request = heapq.heappop(self._events)
            self._now_us = max(self._now_us, finish_us)
            request.finished_at_us = finish_us
            self._free_slots.append(slot)
            self._in_flight -= 1
            self._release_session(request.session_id)
            if request.failure is not None:
                request.status = RequestStatus.FAILED
                self.metrics.counter("gateway.failed").inc()
                self.metrics.counter(
                    "gateway.failed", cause=request.failure.cause_type
                ).inc()
                if self.flight is not None:
                    self.flight.note(
                        request.session_id, "event", "gateway.failed",
                        finish_us,
                        request_id=request.request_id,
                        cause=request.failure.cause_type,
                        attempts=request.failure.attempts,
                    )
                    self.flight.seal_if_triggered(
                        request.session_id,
                        request.failure.cause_type,
                        request.failure.message,
                        finish_us,
                    )
            else:
                request.status = RequestStatus.COMPLETED
                self.metrics.counter("gateway.completed").inc()
                self.metrics.histogram("gateway.service_us").observe(
                    request.service_us
                )
                self.metrics.histogram("gateway.latency_us").observe(
                    request.latency_us
                )
            self._close_trace(request)
            self._terminal.append(request)
            self._dispatch()

    def _dispatch(self) -> None:
        """Move queued requests onto free slots, oldest eligible first."""
        deferred: list[tuple[int, int, GatewayRequest]] = []
        while self._queue and self._free_slots:
            priority, sequence, request = heapq.heappop(self._queue)
            if request.status != RequestStatus.QUEUED:
                continue  # cancelled while queued; already accounted
            if (
                request.deadline_us is not None
                and self._now_us > request.deadline_us
            ):
                self._expire(request)
                continue
            slot = self._take_slot(request.device_index)
            if slot is None:
                deferred.append((priority, sequence, request))
                continue
            self._queued_count -= 1
            request.status = RequestStatus.RUNNING
            request.started_at_us = self._now_us
            trace = request.trace
            if trace is not None:
                self.tracer.end_span(trace.queue, self._now_us)
                trace.queue.set(wait_us=request.queue_wait_us)
                trace.execute = self.tracer.start_span(
                    "gateway.execute",
                    "service",
                    start_us=self._now_us,
                    parent=trace.root,
                    attributes={"slot": slot},
                )
                context = self.tracer.attach(trace.execute)
            else:
                # Unsampled: swallow device-side spans so they never
                # become orphan roots in the export.
                context = self.tracer.suppressed()
            try:
                with context:
                    service_us, result = self.executor.execute(request, self._now_us)
            except Exception as exc:
                # Typed failure: the slot was genuinely occupied for as
                # long as the attempts took (recovering executors carry
                # that on the error), and the request terminates FAILED
                # at its event time — accounted, never silently dropped.
                service_us = float(getattr(exc, "service_us", 0.0))
                cause = getattr(exc, "last_error", exc)
                request.failure = ExecutionFailure(
                    error_type=type(exc).__name__,
                    cause_type=type(cause).__name__,
                    message=str(exc),
                    attempts=int(getattr(exc, "attempts", 1)),
                )
                result = None
            request.service_us = service_us
            request.result = result
            if trace is not None:
                self.tracer.end_span(trace.execute, self._now_us + service_us)
                if request.failure is not None:
                    trace.execute.set(
                        error=request.failure.error_type,
                        cause=request.failure.cause_type,
                    )
            self._slot_busy_us[slot] += service_us
            self._in_flight += 1
            self.metrics.histogram("gateway.queue_wait_us").observe(
                request.queue_wait_us
            )
            heapq.heappush(
                self._events,
                (self._now_us + service_us, sequence, slot, request),
            )
        for entry in deferred:
            heapq.heappush(self._queue, entry)
        self.metrics.gauge("gateway.queue_depth").set(self._queued_count)

    def _take_slot(self, device_index: int | None) -> int | None:
        for position, slot in enumerate(self._free_slots):
            slot_device = self.executor.slots[slot]
            if (
                self.quarantine is not None
                and slot_device is not None
                and self.quarantine.is_quarantined(slot_device)
            ):
                continue  # degraded serving: quarantined slots sit idle
            if (
                device_index is None
                or slot_device is None
                or slot_device == device_index
            ):
                return self._free_slots.pop(position)
        return None

    def _expire_queued(self) -> None:
        for _, _, request in list(self._queue):
            if (
                request.status == RequestStatus.QUEUED
                and request.deadline_us is not None
                and self._now_us > request.deadline_us
            ):
                self._expire(request)

    def _expire(self, request: GatewayRequest) -> None:
        request.status = RequestStatus.EXPIRED
        request.reject_reason = RejectReason.DEADLINE_EXPIRED
        request.finished_at_us = self._now_us
        self._queued_count -= 1
        self._release_session(request.session_id)
        self.metrics.counter("gateway.expired").inc()
        self._close_trace(request)
        self._terminal.append(request)

    def _close_trace(self, request: GatewayRequest) -> None:
        """Terminate a sampled request's open spans at its finish time."""
        trace = request.trace
        if trace is None:
            return
        end = (
            request.finished_at_us
            if request.finished_at_us is not None
            else self._now_us
        )
        if trace.queue is not None and trace.queue.end_us is None:
            self.tracer.end_span(trace.queue, end)
        trace.root.set(status=request.status)
        if request.reject_reason is not None:
            trace.root.set(reject_reason=request.reject_reason)
        if request.failure is not None:
            trace.root.set(
                error=request.failure.error_type,
                cause=request.failure.cause_type,
            )
        self.tracer.end_span(trace.root, end)

    def _release_session(self, session_id: bytes) -> None:
        remaining = self._session_outstanding.get(session_id, 0) - 1
        if remaining <= 0:
            self._session_outstanding.pop(session_id, None)
        else:
            self._session_outstanding[session_id] = remaining
