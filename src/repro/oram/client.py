"""The Path ORAM client (Stefanov & Shi, 2012).

The client lives inside the trusted Hypervisor (paper §IV-D): it keeps
the stash and the position map on-chip and turns each logical page
access into one uniformly random root-to-leaf path read plus an
identically shaped path write.  Block ciphertexts are re-encrypted with
fresh nonces on every write-back, so the SP cannot correlate contents
across accesses.

Block wire format (all slots the same size)::

    nonce (12) || AEAD( kind (1) || key_len (2) || key || payload , pad to slot )

Dummies carry kind=0 and random padding; real blocks carry kind=1.

**Rollback protection** (hardening beyond the paper's §V-A6 claim):
every bucket is authenticated against AAD ``node_index || version``,
where the version is a per-node write counter kept in trusted client
memory (8 bytes x node count — ~64 KB at height 12, on-chip scale).
An SP replaying an older (individually valid) bucket fails AEAD
verification, so stale world state can never be served silently.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.gcm import AuthenticationError
from repro.crypto.kdf import Drbg
from repro.crypto.keccak import keccak_memo_stats
from repro.crypto.suite import AeadCipher, Blake2Aead, open_blocks, seal_blocks
from repro.oram.server import OramServer, OramServerStall
from repro.perf.memo import MemoizedAead
from repro.telemetry.tracer import tracer_for

BlockKey = bytes

_KIND_DUMMY = 0
_KIND_REAL = 1

# Hard bound on consecutive absorbed stalls per access: even with no
# response budget configured the client never loops forever against a
# permanently stalled server.
_MAX_STALLS_PER_ACCESS = 16

# Bound on the total AEAD probe decryptions one rollback classification
# may spend: stale-tree attacks roll back to *recent* snapshots, so the
# classifier walks versions downward only this far before giving up and
# reporting plain corruption.
_ROLLBACK_PROBE_LIMIT = 512


@dataclass
class ClientStats:
    """Client-side accounting for the ablation benches."""

    accesses: int = 0
    max_stash_blocks: int = 0
    stash_history: list[int] = field(default_factory=list)
    blocks_encrypted: int = 0
    blocks_decrypted: int = 0
    stalls_absorbed: int = 0
    stall_us_absorbed: float = 0.0
    timeouts: int = 0
    rollbacks_detected: int = 0


@dataclass(slots=True)
class AccessSummary:
    """What the most recent :meth:`PathOramClient.access` cost.

    A cheap rolling record for the telemetry plane: span attributes read
    it right after an access without diffing cumulative stats.
    ``memo_hits``/``memo_misses`` describe the decrypt-memo behaviour of
    this access (both zero when memoization is disabled) — diagnostics
    about the host-process cache, not part of the simulated protocol.
    """

    stalls_absorbed: int = 0
    stall_us: float = 0.0
    stash_blocks: int = 0
    memo_hits: int = 0
    memo_misses: int = 0
    # Process-global keccak256 memo activity during this access (same
    # diagnostics-only caveat as the AEAD memo counters above).
    keccak_hits: int = 0
    keccak_misses: int = 0


class StashOverflow(Exception):
    """The stash exceeded its configured on-chip bound."""


class OramTimeoutError(Exception):
    """The server did not answer within the client's virtual-time budget.

    A typed signal (instead of a hang or a generic failure) the
    Hypervisor's recovery policies can act on: the access that timed out
    changed no client state — stash, position map, and node versions are
    exactly as before the access — so a retry is always safe.
    """

    def __init__(self, budget_us: float | None, waited_us: float) -> None:
        budget = f"{budget_us:.0f} µs budget" if budget_us is not None else "no budget"
        super().__init__(
            f"ORAM server unresponsive: waited {waited_us:.0f} µs ({budget})"
        )
        self.budget_us = budget_us
        self.waited_us = waited_us


class RollbackDetectedError(Exception):
    """The SP served an authentic-but-stale bucket: a tree rollback.

    Distinct from :class:`~repro.crypto.gcm.AuthenticationError` (plain
    tag corruption, a transient fault worth retrying): the failed bucket
    verified correctly under an *older* per-node version, which only a
    server replaying a pre-checkpoint snapshot of the tree can produce.
    Deliberately **not** a subclass of ``AuthenticationError`` so the
    retry policies never absorb it — a rollback is an attack that must
    surface to the re-sync recovery policy, not be retried away.
    """

    def __init__(self, node: int, expected_version: int, served_version: int) -> None:
        super().__init__(
            f"ORAM rollback: node {node} served version {served_version}, "
            f"client pinned version {expected_version}"
        )
        self.node = node
        self.expected_version = expected_version
        self.served_version = served_version


class PathOramClient:
    """A Path ORAM client over an :class:`OramServer`.

    ``block_size`` is the payload size (the paper's 1 KB *blocks*);
    ``stash_limit`` models the on-chip stash memory (the paper sizes it
    at O(log n) ≈ 30 pages ≈ 1 MB; exceeding it raises
    :class:`StashOverflow`, which in hardware would be a fatal error).
    """

    def __init__(
        self,
        server: OramServer,
        key: bytes,
        block_size: int = 1024,
        stash_limit: int | None = None,
        rng: Drbg | None = None,
        cipher_factory=Blake2Aead,
        position_map: "PositionMapLike | None" = None,
        response_budget_us: float | None = None,
        decrypt_memo_blocks: int | None = 4096,
        clock=None,
        stall_retry_backoff_us: float = 0.0,
    ) -> None:
        self.server = server
        self.block_size = block_size
        self.stash_limit = stash_limit
        # Virtual-time budget for one path read: stalls within it are
        # absorbed (counted in stats), stalls past it raise
        # :class:`OramTimeoutError`.  ``None`` absorbs any finite stall.
        self.response_budget_us = response_budget_us
        # When a SimClock is supplied, absorbed stalls (and the retry
        # backoff between re-issued reads) charge it, so the wait the
        # caller observes in virtual time equals ``waited_us`` exactly.
        # ``None`` keeps the historical behaviour: stall time is counted
        # in stats but charged to no clock.
        self._clock = clock
        self.stall_retry_backoff_us = stall_retry_backoff_us
        # Recovery seam (``repro.recovery``): ``None`` in production.  A
        # journal sink arms itself here to write-ahead nonce leases and
        # capture per-access state deltas; the hooks draw no randomness,
        # advance no clocks, and touch nothing simulated, so an armed
        # zero-crash run is byte-identical to an unarmed one.
        self.recovery = None
        self._rng = rng or Drbg(key, personalization=b"oram-client")
        self._cipher: AeadCipher = cipher_factory(key)
        # Decrypt memoization (repro.perf): path reads mostly decrypt
        # blocks this client itself sealed, so a bounded plaintext cache
        # keyed by ciphertext identity removes the bulk-decrypt cost
        # without changing any simulated result.  ``None``/``0``
        # disables it (the pre-memo behaviour, bit for bit).
        self.memo: MemoizedAead | None = None
        if decrypt_memo_blocks:
            self.memo = MemoizedAead(self._cipher, decrypt_memo_blocks)
            self._cipher = self.memo
        self._stash: dict[BlockKey, bytes] = {}
        self._nonce_counter = 0
        # Anti-rollback write counters, one per tree node (on-chip).
        self._node_versions: dict[int, int] = {}
        self._positions: PositionMapLike = (
            position_map if position_map is not None else DictPositionMap()
        )
        self.stats = ClientStats()
        self.last_access = AccessSummary()
        # Pre-fill the tree with dummies so the shape is uniform from
        # the first access.
        self._initialize_tree()

    # ------------------------------------------------------------------
    # Wire format
    # ------------------------------------------------------------------

    @staticmethod
    def _bucket_aad(node: int, version: int) -> bytes:
        return node.to_bytes(8, "big") + version.to_bytes(8, "big")

    def _slot_body(self, kind: int, key: BlockKey, payload: bytes) -> bytes:
        if len(key) > 64:
            raise ValueError("block key too long")
        body = bytearray()
        body.append(kind)
        body.extend(len(key).to_bytes(2, "big"))
        body.extend(key.ljust(64, b"\x00"))
        body.extend(payload.ljust(self.block_size, b"\x00"))
        return bytes(body)

    def _next_nonce(self) -> bytes:
        # A monotonic counter guarantees nonce freshness; the ciphertext
        # is still re-randomized on every write-back.
        self._nonce_counter += 1
        return self._nonce_counter.to_bytes(12, "big")

    def _encrypt_slot(
        self, kind: int, key: BlockKey, payload: bytes, aad: bytes = b""
    ) -> bytes:
        body = self._slot_body(kind, key, payload)
        nonce = self._next_nonce()
        self.stats.blocks_encrypted += 1
        return nonce + self._cipher.encrypt(nonce, body, aad)

    def _decrypt_slot(
        self, blob: bytes, aad: bytes = b""
    ) -> tuple[int, BlockKey, bytes]:
        nonce, data = blob[:12], blob[12:]
        plain = self._cipher.decrypt(nonce, data, aad)
        self.stats.blocks_decrypted += 1
        kind = plain[0]
        key_length = int.from_bytes(plain[1:3], "big")
        key = plain[3:3 + key_length]
        payload = plain[67:67 + self.block_size]
        return kind, key, payload

    def _dummy_slot(self, aad: bytes = b"") -> bytes:
        return self._encrypt_slot(_KIND_DUMMY, b"", b"", aad)

    def _initialize_tree(self) -> None:
        """Buckets fill lazily: an unwritten bucket reads as empty, and
        every write-back emits exactly ``bucket_size`` slots, so after
        the first access each touched bucket is shape-uniform."""

    # ------------------------------------------------------------------
    # The access protocol
    # ------------------------------------------------------------------

    def access(
        self,
        key: BlockKey,
        write_data: bytes | None = None,
        sim_time_us: float = 0.0,
    ) -> bytes | None:
        """One oblivious access: read (and optionally update) a block.

        Returns the block payload, or ``None`` when the key has never
        been written.  Every call costs exactly one path read and one
        path write regardless of the outcome.
        """
        self.stats.accesses += 1
        stalls_before = self.stats.stalls_absorbed
        stall_us_before = self.stats.stall_us_absorbed
        memo_hits_before = self.memo.stats.hits if self.memo else 0
        memo_misses_before = self.memo.stats.misses if self.memo else 0
        keccak_before = keccak_memo_stats()
        keccak_hits_before = keccak_before.hits
        keccak_misses_before = keccak_before.misses
        leaf_count = self.server.leaf_count

        sink = self.recovery
        keys_before: set[BlockKey] | None = None
        if sink is not None:
            # Write-ahead nonce lease: reserve (durably) every nonce this
            # access could possibly consume *before* any ciphertext hits
            # the wire, so a crash at any later point can never lead the
            # recovered client to re-issue a used nonce.
            sink.reserve_nonces(
                self._nonce_counter,
                (self.server.height + 1) * self.server.bucket_size,
            )
            keys_before = set(self._stash)

        old_leaf = self._positions.get(key)
        scanned_leaf = old_leaf if old_leaf is not None else self._rng.randint(leaf_count)
        new_leaf = self._rng.randint(leaf_count)

        # Read the path and absorb all real blocks into the stash.  The
        # per-node version AAD makes replayed (stale) buckets fail here.
        # Absorption is all-or-nothing: blocks only enter the stash after
        # the *entire* path decrypts, so a tampered bucket anywhere on
        # the path (AuthenticationError) aborts the access with client
        # state — stash, position map, node versions — untouched, and a
        # retry starts from exactly the pre-access state.
        buckets = self._read_path_within_budget(scanned_leaf, sim_time_us)
        items = []
        for node, node_blobs in buckets.items():
            aad = self._bucket_aad(node, self._node_versions.get(node, 0))
            for blob in node_blobs:
                items.append((blob[:12], blob[12:], aad))
        # One batch open for the whole path: every tag is verified
        # before any plaintext is used, so the all-or-nothing guarantee
        # above holds exactly as in the slot-at-a-time path.  A tag
        # failure is classified before it propagates: a blob that
        # authenticates under an *older* pinned version is a rollback
        # (stale-tree attack), everything else is plain corruption.
        try:
            plains = open_blocks(self._cipher, items)
        except AuthenticationError:
            rollback = self._probe_rollback(buckets)
            if rollback is not None:
                self.stats.rollbacks_detected += 1
                raise rollback from None
            raise
        self.stats.blocks_decrypted += len(items)
        block_size = self.block_size
        stash = self._stash
        for plain in plains:
            if plain[0] != _KIND_REAL:
                continue
            key_length = int.from_bytes(plain[1:3], "big")
            block_key = plain[3:3 + key_length]
            if block_key not in stash:
                stash[block_key] = plain[67:67 + block_size]

        result = self._stash.get(key)
        if write_data is not None:
            payload = write_data.ljust(self.block_size, b"\x00")
            if len(payload) > self.block_size:
                raise ValueError("write larger than block size")
            self._stash[key] = payload
            result = payload
        if key in self._stash:
            self._positions.set(key, new_leaf)

        self._evict(scanned_leaf, sim_time_us)
        if sink is not None:
            # Journal the access as *absolute* assignments (last-writer-
            # wins), so replaying any journal prefix twice recovers the
            # same state as replaying it once.  Only entries this access
            # touched can have changed: absorbed/placed stash keys (the
            # symmetric difference) plus the accessed key itself, and the
            # versions of the path just rewritten.
            assert keys_before is not None
            changed = set(self._stash) ^ keys_before
            changed.add(key)
            sink.record_access(
                stash={k: self._stash.get(k) for k in changed},
                positions={k: self._positions.get(k) for k in changed},
                versions={
                    node: self._node_versions[node]
                    for node in self.server.path_nodes(scanned_leaf)
                },
                nonce_counter=self._nonce_counter,
            )
        self._record_stash()
        self.last_access = AccessSummary(
            stalls_absorbed=self.stats.stalls_absorbed - stalls_before,
            stall_us=self.stats.stall_us_absorbed - stall_us_before,
            stash_blocks=len(self._stash),
            memo_hits=(self.memo.stats.hits - memo_hits_before) if self.memo else 0,
            memo_misses=(
                self.memo.stats.misses - memo_misses_before
            ) if self.memo else 0,
            keccak_hits=keccak_memo_stats().hits - keccak_hits_before,
            keccak_misses=keccak_memo_stats().misses - keccak_misses_before,
        )
        return result

    def _read_path_within_budget(
        self, leaf: int, sim_time_us: float
    ) -> dict[int, list[bytes]]:
        """One path read with stall absorption and a timeout bound.

        A stalled server answers nothing; the client re-issues the read
        after the declared delay until the accumulated wait exceeds the
        response budget, at which point the access fails with a typed
        :class:`OramTimeoutError` and no client state has changed.
        """
        waited_us = 0.0
        for _ in range(_MAX_STALLS_PER_ACCESS):
            try:
                return self.server.read_path(leaf, sim_time_us + waited_us)
            except OramServerStall as stall:
                waited_us += stall.delay_us
                if (
                    self.response_budget_us is not None
                    and waited_us > self.response_budget_us
                ):
                    self.stats.timeouts += 1
                    self._charge_wait(stall.delay_us)
                    raise OramTimeoutError(
                        self.response_budget_us, waited_us
                    ) from stall
                self.stats.stalls_absorbed += 1
                self.stats.stall_us_absorbed += stall.delay_us
                # The backoff before the re-issued read is real waiting
                # the caller observes, so it counts toward both the
                # budget and the reported ``waited_us``.
                waited_us += self.stall_retry_backoff_us
                self._charge_wait(stall.delay_us + self.stall_retry_backoff_us)
        self.stats.timeouts += 1
        raise OramTimeoutError(self.response_budget_us, waited_us)

    def _charge_wait(self, amount_us: float) -> None:
        """Advance the owning clock for time spent waiting on the server."""
        if self._clock is None or amount_us <= 0.0:
            return
        tracer_for(self._clock).record("oram.stall", "oram_storage", amount_us)
        self._clock.advance_us(amount_us)

    def _probe_rollback(self, buckets: dict[int, list[bytes]]) -> (
        "RollbackDetectedError | None"
    ):
        """Classify a path-read AEAD failure: rollback or corruption?

        For every blob that fails under the pinned (current) version,
        walk older versions downward; a blob that authenticates under
        one is stale-but-genuine — only a server replaying an old tree
        snapshot can serve it.  Probes are bounded; an exhausted probe
        budget conservatively reports corruption.  Runs only on the
        failure path, so honest runs never pay for it.
        """
        probes = 0
        for node, node_blobs in buckets.items():
            expected = self._node_versions.get(node, 0)
            aad_now = self._bucket_aad(node, expected)
            for blob in node_blobs:
                nonce, data = blob[:12], blob[12:]
                try:
                    self._cipher.decrypt(nonce, data, aad_now)
                    continue  # this blob is fine; the failure is elsewhere
                except AuthenticationError:
                    pass
                for version in range(expected - 1, -1, -1):
                    probes += 1
                    if probes > _ROLLBACK_PROBE_LIMIT:
                        return None
                    try:
                        self._cipher.decrypt(
                            nonce, data, self._bucket_aad(node, version)
                        )
                    except AuthenticationError:
                        continue
                    return RollbackDetectedError(node, expected, version)
        return None

    def _evict(self, leaf: int, sim_time_us: float) -> None:
        """Greedy write-back: place stash blocks as deep as possible."""
        path = self.server.path_nodes(leaf)
        z = self.server.bucket_size
        placed: set[BlockKey] = set()
        # Slot bodies are collected in the exact order the slot-at-a-time
        # code sealed them — deepest bucket first, stash-order reals,
        # then dummies — and nonces are drawn from the counter in that
        # same order, so the batched write-back puts byte-identical
        # ciphertexts on the wire.
        slot_nodes: list[int] = []
        items: list[tuple[bytes, bytes, bytes]] = []
        for depth in range(len(path) - 1, -1, -1):
            node = path[depth]
            version = self._node_versions.get(node, 0) + 1
            self._node_versions[node] = version
            aad = self._bucket_aad(node, version)
            filled = 0
            for block_key, payload in self._stash.items():
                if filled >= z:
                    break
                if block_key in placed:
                    continue
                block_leaf = self._positions.get(block_key)
                if block_leaf is None:
                    continue
                if self._node_on_path(node, depth, block_leaf):
                    items.append((
                        self._next_nonce(),
                        self._slot_body(_KIND_REAL, block_key, payload),
                        aad,
                    ))
                    slot_nodes.append(node)
                    placed.add(block_key)
                    filled += 1
            while filled < z:
                items.append((
                    self._next_nonce(),
                    self._slot_body(_KIND_DUMMY, b"", b""),
                    aad,
                ))
                slot_nodes.append(node)
                filled += 1
        sealed = seal_blocks(self._cipher, items)
        self.stats.blocks_encrypted += len(items)
        new_buckets: dict[int, list[bytes]] = {}
        for node, (nonce, _body, _aad), blob in zip(slot_nodes, items, sealed):
            new_buckets.setdefault(node, []).append(nonce + blob)
        for block_key in placed:
            del self._stash[block_key]
        self.server.write_path(leaf, new_buckets, sim_time_us)

    def _node_on_path(self, node: int, depth: int, leaf: int) -> bool:
        """Is ``node`` (at ``depth``) an ancestor of ``leaf``'s leaf node?"""
        leaf_node = self.server.leaf_count + leaf
        return (leaf_node >> (self.server.height - depth)) == node

    def _record_stash(self) -> None:
        size = len(self._stash)
        self.stats.stash_history.append(size)
        if size > self.stats.max_stash_blocks:
            self.stats.max_stash_blocks = size
        if self.stash_limit is not None and size > self.stash_limit:
            raise StashOverflow(
                f"stash holds {size} blocks, limit is {self.stash_limit}"
            )

    # ------------------------------------------------------------------
    # Trusted-state capture (repro.recovery)
    # ------------------------------------------------------------------

    def snapshot_trusted_state(self) -> dict:
        """Copy out everything a checkpoint must carry to rebuild this
        client: stash contents, position map, per-node version pins, and
        the AEAD nonce counter.  Keys (not AES material) only — the
        sealing layer encrypts the whole snapshot."""
        if isinstance(self._positions, DictPositionMap):
            positions = dict(self._positions._map)
        else:  # recursive maps expose at least the stash-resident keys
            positions = {
                key: leaf
                for key in self._stash
                if (leaf := self._positions.get(key)) is not None
            }
        return {
            "stash": dict(self._stash),
            "positions": positions,
            "node_versions": dict(self._node_versions),
            "nonce_counter": self._nonce_counter,
        }

    def restore_trusted_state(self, state: dict) -> None:
        """Install a recovered snapshot (checkpoint + journal replay)."""
        self._stash = dict(state["stash"])
        restored = DictPositionMap()
        restored._map = dict(state["positions"])
        self._positions = restored
        self._node_versions = dict(state["node_versions"])
        self._nonce_counter = int(state["nonce_counter"])

    def forget_tree_state(self) -> None:
        """Drop stash/positions/version pins but KEEP the nonce counter.

        This is the re-sync recovery policy after a detected rollback:
        the tree is rebuilt from verified chain state, yet nonces must
        stay monotone across the old sealed blobs the SP has seen.
        """
        self._stash = {}
        self._positions = DictPositionMap()
        self._node_versions = {}

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------

    def read(self, key: BlockKey, sim_time_us: float = 0.0) -> bytes | None:
        return self.access(key, None, sim_time_us)

    def write(self, key: BlockKey, data: bytes, sim_time_us: float = 0.0) -> None:
        self.access(key, data, sim_time_us)

    @property
    def stash_bytes(self) -> int:
        return len(self._stash) * self.block_size


class DictPositionMap:
    """Plain on-chip position map (fine for simulation-scale states)."""

    def __init__(self) -> None:
        self._map: dict[BlockKey, int] = {}

    def get(self, key: BlockKey) -> int | None:
        return self._map.get(key)

    def set(self, key: BlockKey, leaf: int) -> None:
        self._map[key] = leaf

    def __len__(self) -> int:
        return len(self._map)


class PositionMapLike:
    """Structural interface for position maps (dict-backed or recursive)."""

    def get(self, key: BlockKey) -> int | None:  # pragma: no cover - protocol
        raise NotImplementedError

    def set(self, key: BlockKey, leaf: int) -> None:  # pragma: no cover
        raise NotImplementedError
