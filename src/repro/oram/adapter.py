"""The oblivious world-state backend: ORAM-backed ``StateBackend``.

This is HarDTAPE's data path for world-state queries (workflow step 8):
every account header, storage record, or code page read becomes exactly
one Path ORAM access of one fixed-size page.  The adapter also handles
block synchronization (step 11): bulk-loading committed world state into
the ORAM after Merkle verification.

A ``clock`` callable supplies simulated timestamps so the ORAM server's
adversary-visible trace carries the timing the hardware model computes;
``on_query`` lets the Hypervisor (prefetcher, cost model) hook each
logical query.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.oram import paging
from repro.oram.client import PathOramClient
from repro.state.account import Account, AccountMeta, Address
from repro.state.backend import CODE_PAGE_SIZE, STORAGE_GROUP_SIZE


@dataclass
class QueryRecord:
    """Ground-truth log entry (NOT visible to the adversary)."""

    kind: str  # "account" | "storage" | "code" | "prefetch"
    page_key: bytes
    sim_time_us: float


@dataclass
class QueryStats:
    account_queries: int = 0
    storage_queries: int = 0
    code_queries: int = 0
    prefetch_queries: int = 0
    log: list[QueryRecord] = field(default_factory=list)

    @property
    def total(self) -> int:
        return (
            self.account_queries
            + self.storage_queries
            + self.code_queries
            + self.prefetch_queries
        )


class ObliviousStateBackend:
    """``StateBackend`` over a Path ORAM client."""

    def __init__(
        self,
        client: PathOramClient,
        clock: Callable[[], float] | None = None,
        on_query: Callable[[str, bytes], None] | None = None,
    ) -> None:
        if client.block_size != paging.PAGE_SIZE:
            raise ValueError(
                f"ORAM block size {client.block_size} != page size {paging.PAGE_SIZE}"
            )
        self._client = client
        self._clock = clock or (lambda: 0.0)
        self._on_query = on_query
        self.stats = QueryStats()
        # Code sizes learned from account pages (needed to bound paging).
        self._code_sizes: dict[Address, int] = {}

    @property
    def client(self) -> PathOramClient:
        """The underlying ORAM client (read-only observability access)."""
        return self._client

    def replace_client(self, client: PathOramClient) -> None:
        """Repoint this backend at a recovered ORAM client.

        Used by the recovery plane after a Hypervisor restart: the old
        in-memory client died with the firmware; the successor (rebuilt
        from checkpoint + journal) takes its place.  Learned code sizes
        are kept — they are re-derivable public metadata, not trust.
        """
        if client.block_size != paging.PAGE_SIZE:
            raise ValueError(
                f"ORAM block size {client.block_size} != page size {paging.PAGE_SIZE}"
            )
        self._client = client

    # ------------------------------------------------------------------
    # Query path
    # ------------------------------------------------------------------

    def _query(self, kind: str, page_key: bytes) -> bytes | None:
        now = self._clock()
        if self._on_query is not None:
            self._on_query(kind, page_key)
        page = self._client.read(page_key, sim_time_us=now)
        self.stats.log.append(QueryRecord(kind, page_key, now))
        if kind == "account":
            self.stats.account_queries += 1
        elif kind == "storage":
            self.stats.storage_queries += 1
        elif kind == "code":
            self.stats.code_queries += 1
        else:
            self.stats.prefetch_queries += 1
        return page

    def get_meta(self, address: Address) -> AccountMeta:
        page = self._query("account", paging.account_page_key(address))
        meta = paging.decode_account_page(page)
        self._code_sizes[address] = meta.code_size
        return meta

    def get_storage(self, address: Address, key: int) -> int:
        page = self._query("storage", paging.storage_page_key(address, key))
        return paging.decode_storage_record(page, key)

    def get_code_page(self, address: Address, page_index: int) -> bytes:
        page = self._query("code", paging.code_page_key(address, page_index))
        return page if page is not None else b"\x00" * CODE_PAGE_SIZE

    def get_code(self, address: Address) -> bytes:
        size = self._code_sizes.get(address)
        if size is None:
            size = self.get_meta(address).code_size
        if size == 0:
            return b""
        pages = [
            self.get_code_page(address, index)
            for index in range((size + CODE_PAGE_SIZE - 1) // CODE_PAGE_SIZE)
        ]
        return b"".join(pages)[:size]

    def prefetch_code_page(self, address: Address, page_index: int) -> None:
        """Issue a code-page query flagged as prefetch (same wire shape)."""
        self._query("prefetch", paging.code_page_key(address, page_index))

    def dummy_query(self) -> None:
        """One padding access to a reserved page (extension feature).

        Used by the query-count padding countermeasure: physically
        indistinguishable from any other page access.
        """
        self._query("prefetch", b"\xffpadding-page")

    # ------------------------------------------------------------------
    # Block synchronization (write path)
    # ------------------------------------------------------------------

    def sync_account(self, address: Address, account: Account) -> int:
        """Write one account's pages into the ORAM; returns page count."""
        now = self._clock()
        pages_written = 0
        meta = AccountMeta(
            account.balance, account.nonce, account.code_hash, len(account.code)
        )
        self._client.write(
            paging.account_page_key(address),
            paging.encode_account_page(meta),
            sim_time_us=now,
        )
        pages_written += 1
        groups = {key // STORAGE_GROUP_SIZE for key in account.storage}
        for group in sorted(groups):
            self._client.write(
                paging.storage_page_key(address, group * STORAGE_GROUP_SIZE),
                paging.encode_storage_page(account.storage, group),
                sim_time_us=now,
            )
            pages_written += 1
        code = account.code
        for page_index in range((len(code) + CODE_PAGE_SIZE - 1) // CODE_PAGE_SIZE):
            chunk = code[page_index * CODE_PAGE_SIZE:(page_index + 1) * CODE_PAGE_SIZE]
            self._client.write(
                paging.code_page_key(address, page_index),
                chunk.ljust(CODE_PAGE_SIZE, b"\x00"),
                sim_time_us=now,
            )
            pages_written += 1
        self._code_sizes[address] = len(code)
        return pages_written

    def sync_world(self, accounts: dict[Address, Account]) -> int:
        """Bulk-load a whole committed world state; returns page count."""
        total = 0
        for address, account in accounts.items():
            total += self.sync_account(address, account)
        return total
