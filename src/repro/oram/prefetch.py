"""Pagewise code prefetching (paper §IV-D, problem 3).

Fetching a contract's code pages back-to-back would show the SP a burst
of queries that singles out Code accesses; spreading them out with a
randomized interval timer makes the observed inter-query gaps
approximately uniform, so the adversary cannot tell code pages from
storage records.

After each (real) ORAM access, the timer is armed to a random value of
about half the global average inter-query gap; when it expires, the next
pending code page is prefetched.  The scheduler here produces both the
prefetch decisions and the timestamps the ORAM server trace carries.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.crypto.kdf import Drbg
from repro.state.account import Address


@dataclass
class PrefetchPlanEntry:
    """One scheduled prefetch: which page, at what simulated time.

    ``reason`` records how the entry fired — ``"timer"`` for the normal
    interval-timer path, ``"drain"`` for a stall-stream flush — so the
    telemetry plane can label prefetch noise without re-deriving it.
    """

    address: Address
    page_index: int
    fire_time_us: float
    reason: str = "timer"


class CodePrefetcher:
    """Randomized-interval code-page prefetch scheduler."""

    def __init__(
        self,
        rng: Drbg,
        initial_gap_us: float = 630.0,
        ema_alpha: float = 0.1,
        enabled: bool = True,
    ) -> None:
        self._rng = rng
        self._pending: deque[tuple[Address, int]] = deque()
        self._mean_gap_us = initial_gap_us
        self._ema_alpha = ema_alpha
        self._last_query_us = 0.0
        self._timer_deadline_us: float | None = None
        self.enabled = enabled
        self.issued: list[PrefetchPlanEntry] = []

    def queue_code_pages(self, address: Address, first: int, last: int) -> None:
        """Queue code pages ``first..last`` (inclusive) for prefetch."""
        for page_index in range(first, last + 1):
            self._pending.append((address, page_index))
        if self._timer_deadline_us is None:
            self._arm(self._last_query_us)

    def clear(self) -> None:
        """Drop pending pages (frame returned before they were needed)."""
        self._pending.clear()
        self._timer_deadline_us = None

    def _arm(self, now_us: float) -> None:
        """Arm the interval timer to ~half the average gap, randomized."""
        if not self._pending or not self.enabled:
            self._timer_deadline_us = None
            return
        half = self._mean_gap_us / 2.0
        # Uniform in [0.5, 1.5) * half the mean gap.
        jitter = 0.5 + self._rng.randint(1000) / 1000.0
        self._timer_deadline_us = now_us + half * jitter

    def on_query(self, now_us: float) -> None:
        """Notify a real (non-prefetch) ORAM query at ``now_us``.

        Gaps more than 10x the running mean are idle periods between
        bundles (attestation, signing, queueing) rather than execution
        cadence; the adversary sees them as idle too, so they are
        excluded from the gap estimate.
        """
        gap = now_us - self._last_query_us
        if 0 < gap <= 10 * self._mean_gap_us:
            self._mean_gap_us += self._ema_alpha * (gap - self._mean_gap_us)
        self._last_query_us = now_us
        if self._timer_deadline_us is None:
            self._arm(now_us)

    def due(self, now_us: float) -> list[PrefetchPlanEntry]:
        """Pop every prefetch whose timer expired by ``now_us``."""
        fired: list[PrefetchPlanEntry] = []
        while (
            self.enabled
            and self._pending
            and self._timer_deadline_us is not None
            and self._timer_deadline_us <= now_us
        ):
            address, page_index = self._pending.popleft()
            entry = PrefetchPlanEntry(address, page_index, self._timer_deadline_us)
            fired.append(entry)
            self.issued.append(entry)
            self._arm(self._timer_deadline_us)
        if not self._pending:
            self._timer_deadline_us = None
        return fired

    def drain(self, now_us: float, gap_us: float | None = None) -> list[PrefetchPlanEntry]:
        """Flush all pending pages, spaced by the (randomized) interval.

        Called when execution actually needs pages that have not fired
        yet — the HEVM stalls and the pages stream in at the same
        consistent cadence, so the trace still shows no burst.
        """
        spacing = gap_us if gap_us is not None else self._mean_gap_us / 2.0
        fired: list[PrefetchPlanEntry] = []
        time_cursor = now_us
        while self._pending:
            address, page_index = self._pending.popleft()
            entry = PrefetchPlanEntry(address, page_index, time_cursor, reason="drain")
            fired.append(entry)
            self.issued.append(entry)
            time_cursor += spacing
        self._timer_deadline_us = None
        return fired

    @property
    def pending_count(self) -> int:
        return len(self._pending)
