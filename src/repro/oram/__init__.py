"""Path ORAM and the oblivious paged world-state store."""

from repro.oram.adapter import ObliviousStateBackend, QueryRecord, QueryStats
from repro.oram.client import (
    ClientStats,
    DictPositionMap,
    PathOramClient,
    StashOverflow,
)
from repro.oram.encrypted_store import EncryptedKvStore
from repro.oram.hierarchical import (
    HierarchicalOramServer,
    PyramidOramClient,
    SlotAccessEvent,
    backend_for_working_set,
)
from repro.oram.pancake import (
    FrequencySmoothedStore,
    rate_deviation_attack,
)
from repro.oram.paging import (
    PAGE_SIZE,
    PageDirectory,
    account_page_key,
    code_page_key,
    decode_account_page,
    decode_storage_record,
    encode_account_page,
    encode_storage_page,
    storage_page_key,
)
from repro.oram.prefetch import CodePrefetcher, PrefetchPlanEntry
from repro.oram.recursive import RecursivePositionMap
from repro.oram.server import OramServer, PathAccessEvent, ServerStats

__all__ = [
    "ClientStats",
    "CodePrefetcher",
    "DictPositionMap",
    "EncryptedKvStore",
    "FrequencySmoothedStore",
    "HierarchicalOramServer",
    "ObliviousStateBackend",
    "OramServer",
    "PAGE_SIZE",
    "PageDirectory",
    "PathAccessEvent",
    "PathOramClient",
    "PrefetchPlanEntry",
    "PyramidOramClient",
    "QueryRecord",
    "QueryStats",
    "RecursivePositionMap",
    "ServerStats",
    "SlotAccessEvent",
    "StashOverflow",
    "backend_for_working_set",
    "rate_deviation_attack",
    "account_page_key",
    "code_page_key",
    "decode_account_page",
    "decode_storage_record",
    "encode_account_page",
    "encode_storage_page",
    "storage_page_key",
]
