"""Non-oblivious encrypted K-V store: the strawman the paper rules out.

Section I argues that "simply encrypting the queries is not enough,
because when new blocks are broadcasted to the entire network in
plaintext, the adversary can map the ciphertext keys to their plaintext
using their accumulated frequency of co-occurrence."  This store is that
strawman: deterministic per-key handles (so lookups work) over encrypted
values.  The security benchmarks run a frequency-analysis attack against
it and show it succeeds, while the same attack against the Path ORAM
store is at chance.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.crypto.suite import Blake2Aead


@dataclass(slots=True)
class StoreAccessEvent:
    """What the SP sees: an opaque but *stable* handle per key."""

    op_index: int
    handle: bytes
    sim_time_us: float


@dataclass
class EncryptedStoreTrace:
    events: list[StoreAccessEvent] = field(default_factory=list)


class EncryptedKvStore:
    """Encrypted values, deterministic handles, no access-pattern hiding."""

    def __init__(self, key: bytes, decrypt_memo_blocks: int | None = None) -> None:
        self._handle_key = hashlib.blake2b(key, digest_size=32, person=b"handlederiv").digest()
        self._cipher = Blake2Aead(key)
        # Optional decrypt memoization (repro.perf), off by default for
        # the strawman.  A tampered blob (fault_hook) changes the cache
        # key, misses, and fails real authentication as before.
        self.memo = None
        if decrypt_memo_blocks:
            from repro.perf.memo import MemoizedAead

            self.memo = MemoizedAead(self._cipher, decrypt_memo_blocks)
            self._cipher = self.memo
        self._data: dict[bytes, bytes] = {}
        self._nonce = 0
        self.trace = EncryptedStoreTrace()
        self._op_index = 0
        # Fault-injection seam (``repro.faults``): transforms the stored
        # blob on the read path (e.g. AES-GCM tag corruption), so reads
        # fail authentication exactly as a tampering SP would cause.
        self.fault_hook = None

    def _handle(self, plain_key: bytes) -> bytes:
        return hashlib.blake2b(plain_key, key=self._handle_key, digest_size=16).digest()

    def _record(self, handle: bytes, sim_time_us: float) -> None:
        self.trace.events.append(StoreAccessEvent(self._op_index, handle, sim_time_us))
        self._op_index += 1

    def put(self, plain_key: bytes, value: bytes, sim_time_us: float = 0.0) -> None:
        handle = self._handle(plain_key)
        self._record(handle, sim_time_us)
        self._nonce += 1
        nonce = self._nonce.to_bytes(12, "big")
        self._data[handle] = nonce + self._cipher.encrypt(nonce, value)

    def get(self, plain_key: bytes, sim_time_us: float = 0.0) -> bytes | None:
        handle = self._handle(plain_key)
        self._record(handle, sim_time_us)
        blob = self._data.get(handle)
        if blob is None:
            return None
        if self.fault_hook is not None:
            blob = self.fault_hook(blob, sim_time_us)
        return self._cipher.decrypt(blob[:12], blob[12:])
