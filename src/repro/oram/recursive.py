"""Recursive position maps.

Path ORAM's position map is O(n); the paper notes it "can be stored in
higher-level ORAMs recursively if it is too big" (§II-C).  For the
world-state scale HarDTAPE targets (~10^9 blocks) the top-level map
would not fit on-chip, so this module implements the standard recursion:
positions are packed into fixed-size blocks stored in a smaller Path
ORAM, whose own (much smaller) position map is held on-chip.

Keys must be dense integers for the recursion to pack; the
:class:`~repro.oram.paging.PageDirectory` provides that densification
for world-state page keys.
"""

from __future__ import annotations

from repro.crypto.kdf import Drbg
from repro.oram.client import PathOramClient
from repro.oram.server import OramServer

_ENTRY_SIZE = 4  # 4-byte leaf indices
_UNSET = 0xFFFFFFFF


class RecursivePositionMap:
    """Position map for dense integer block ids, backed by its own ORAM.

    Implements the :class:`~repro.oram.client.PositionMapLike` interface
    for integer keys encoded as 8-byte big-endian block keys (so it can
    plug directly into a parent :class:`PathOramClient`).
    """

    def __init__(
        self,
        capacity: int,
        key: bytes,
        entries_per_block: int = 256,
        rng: Drbg | None = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.entries_per_block = entries_per_block
        block_count = (capacity + entries_per_block - 1) // entries_per_block
        height = max(1, (block_count - 1).bit_length())
        self._server = OramServer(height=height, query_cpu_us=25.0)
        self._client = PathOramClient(
            self._server,
            key=key,
            block_size=entries_per_block * _ENTRY_SIZE,
            rng=rng,
        )
        # Write-through cache avoids re-reading a block for get-then-set
        # patterns; correctness is unaffected (single-client).
        self._cache: dict[int, bytearray] = {}

    @property
    def inner_accesses(self) -> int:
        """Number of recursion-level ORAM accesses performed so far."""
        return self._client.stats.accesses

    def _block_key(self, block_index: int) -> bytes:
        return block_index.to_bytes(8, "big")

    def _load_block(self, block_index: int) -> bytearray:
        cached = self._cache.get(block_index)
        if cached is not None:
            return cached
        raw = self._client.read(self._block_key(block_index))
        if raw is None:
            raw = _UNSET.to_bytes(_ENTRY_SIZE, "big") * self.entries_per_block
        block = bytearray(raw)
        self._cache[block_index] = block
        return block

    def _store_block(self, block_index: int, block: bytearray) -> None:
        self._cache[block_index] = block
        self._client.write(self._block_key(block_index), bytes(block))

    def get(self, key: bytes) -> int | None:
        index = int.from_bytes(key, "big")
        if not 0 <= index < self.capacity:
            raise KeyError(f"position-map index {index} out of range")
        block = self._load_block(index // self.entries_per_block)
        offset = (index % self.entries_per_block) * _ENTRY_SIZE
        value = int.from_bytes(block[offset:offset + _ENTRY_SIZE], "big")
        return None if value == _UNSET else value

    def set(self, key: bytes, leaf: int) -> None:
        index = int.from_bytes(key, "big")
        if not 0 <= index < self.capacity:
            raise KeyError(f"position-map index {index} out of range")
        block_index = index // self.entries_per_block
        block = self._load_block(block_index)
        offset = (index % self.entries_per_block) * _ENTRY_SIZE
        block[offset:offset + _ENTRY_SIZE] = leaf.to_bytes(_ENTRY_SIZE, "big")
        self._store_block(block_index, block)


class DirectoryPositionMap:
    """Position map over arbitrary page keys via dense-id recursion.

    Composes a :class:`~repro.oram.paging.PageDirectory` (page key →
    dense int, on-chip) with a :class:`RecursivePositionMap` (dense int
    → leaf, stored in a smaller ORAM), giving a Path ORAM client for
    world-state pages a recursion-backed position map as §II-C sketches.
    """

    def __init__(
        self, capacity: int, key: bytes, entries_per_block: int = 256
    ) -> None:
        from repro.oram.paging import PageDirectory

        self._directory = PageDirectory()
        self._recursive = RecursivePositionMap(
            capacity, key, entries_per_block=entries_per_block
        )
        self.capacity = capacity

    def get(self, key: bytes) -> int | None:
        dense = self._directory.id_for(key)
        if dense >= self.capacity:
            raise KeyError("position map capacity exhausted")
        return self._recursive.get(dense.to_bytes(8, "big"))

    def set(self, key: bytes, leaf: int) -> None:
        dense = self._directory.id_for(key)
        if dense >= self.capacity:
            raise KeyError("position map capacity exhausted")
        self._recursive.set(dense.to_bytes(8, "big"), leaf)

    @property
    def inner_accesses(self) -> int:
        return self._recursive.inner_accesses

    def __len__(self) -> int:
        return len(self._directory)
