"""A PANCAKE-style frequency-smoothed store (Grubbs et al., sub-oblivious).

The paper (§IV-D) considers PANCAKE [24] and Waffle [31] as cheaper
alternatives to ORAM: they *smooth* the observed access distribution
instead of hiding it, assuming a known, static query distribution.  The
paper rejects them because "they are not designed against an *active*
adversary who can send requests to interfere with the distribution,
which is in our threat model."

This module implements the PANCAKE core so that claim can be tested
empirically (see ``benchmarks/bench_baseline_pancake.py``):

* each key ``k`` with assumed probability ``π(k)`` gets
  ``R(k) = ceil(π(k) / α)`` replicas (α = the smoothing quantum), so
  a *correctly calibrated* store serves every replica at the same rate;
* every real query is padded into a batch of ``B`` physical accesses —
  one to a uniformly chosen replica of ``k``, the rest fake accesses
  drawn replica-uniformly.

When the true distribution matches the calibration, the observed trace
is uniform over replicas and frequency analysis fails.  When an
adversary (or simply a shifting workload) moves the distribution, the
over-queried key's replicas run hot and identification succeeds — the
weakness Path ORAM does not have.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.crypto.kdf import Drbg
from repro.crypto.suite import Blake2Aead

BATCH_SIZE = 3  # PANCAKE's query batching factor


@dataclass
class SmoothedAccessEvent:
    """What the SP sees: a stable per-replica handle."""

    op_index: int
    handle: bytes
    sim_time_us: float


class FrequencySmoothedStore:
    """Encrypted store with replica-based frequency smoothing."""

    def __init__(
        self,
        key: bytes,
        assumed_distribution: dict[bytes, float],
        rng: Drbg | None = None,
        batch_size: int = BATCH_SIZE,
    ) -> None:
        if not assumed_distribution:
            raise ValueError("need a non-empty assumed distribution")
        total = sum(assumed_distribution.values())
        if total <= 0:
            raise ValueError("distribution must have positive mass")
        self._rng = rng or Drbg(key, personalization=b"pancake")
        self._cipher = Blake2Aead(key)
        self.batch_size = batch_size
        # Smoothing quantum: the smallest assumed probability.
        normalized = {
            k: p / total for k, p in assumed_distribution.items() if p > 0
        }
        alpha = min(normalized.values())
        self._replicas: dict[bytes, list[bytes]] = {}
        self._all_replicas: list[bytes] = []
        for plain_key, probability in normalized.items():
            count = max(1, math.ceil(probability / alpha))
            handles = [
                self._handle(plain_key, replica) for replica in range(count)
            ]
            self._replicas[plain_key] = handles
            self._all_replicas.extend(handles)
        self._data: dict[bytes, bytes] = {}
        self._nonce = 0
        self.trace: list[SmoothedAccessEvent] = []
        self._op_index = 0

    def _handle(self, plain_key: bytes, replica: int) -> bytes:
        import hashlib

        return hashlib.blake2b(
            plain_key + replica.to_bytes(4, "big"), digest_size=16
        ).digest()

    def replica_count(self, plain_key: bytes) -> int:
        return len(self._replicas[plain_key])

    def replicas_of(self, plain_key: bytes) -> list[bytes]:
        return list(self._replicas[plain_key])

    # ------------------------------------------------------------------
    # Access protocol
    # ------------------------------------------------------------------

    def _record(self, handle: bytes, sim_time_us: float) -> None:
        self.trace.append(SmoothedAccessEvent(self._op_index, handle, sim_time_us))
        self._op_index += 1

    def _touch_fake(self, sim_time_us: float) -> None:
        index = self._rng.randint(len(self._all_replicas))
        self._record(self._all_replicas[index], sim_time_us)

    def put(self, plain_key: bytes, value: bytes, sim_time_us: float = 0.0) -> None:
        """Write ``value`` to every replica of ``plain_key``."""
        if plain_key not in self._replicas:
            raise KeyError("key not in the calibrated key space")
        self._nonce += 1
        nonce = self._nonce.to_bytes(12, "big")
        sealed = nonce + self._cipher.encrypt(nonce, value)
        for handle in self._replicas[plain_key]:
            self._data[handle] = sealed
        # Writes are batched/padded like reads.
        self._record(self._replicas[plain_key][0], sim_time_us)
        for _ in range(self.batch_size - 1):
            self._touch_fake(sim_time_us)

    def get(self, plain_key: bytes, sim_time_us: float = 0.0) -> bytes | None:
        """One smoothed read: a batch of ``batch_size`` physical accesses."""
        if plain_key not in self._replicas:
            raise KeyError("key not in the calibrated key space")
        handles = self._replicas[plain_key]
        chosen = handles[self._rng.randint(len(handles))]
        self._record(chosen, sim_time_us)
        for _ in range(self.batch_size - 1):
            self._touch_fake(sim_time_us)
        sealed = self._data.get(chosen)
        if sealed is None:
            return None
        return self._cipher.decrypt(sealed[:12], sealed[12:])

    # ------------------------------------------------------------------
    # Introspection for the attack experiments
    # ------------------------------------------------------------------

    @property
    def total_replicas(self) -> int:
        return len(self._all_replicas)

    def observed_counts(self) -> dict[bytes, int]:
        counts: dict[bytes, int] = {}
        for event in self.trace:
            counts[event.handle] = counts.get(event.handle, 0) + 1
        return counts


def rate_deviation_attack(
    observed_counts: dict[bytes, int],
    total_replicas: int,
    threshold: float = 1.5,
) -> set[bytes]:
    """The distribution-shift attack on frequency smoothing.

    A correctly calibrated smoothed store serves every replica at rate
    ``total_accesses / total_replicas``.  Replicas observed at more than
    ``threshold`` times that rate betray keys whose *true* query rate
    exceeds the calibration — exactly what an active adversary induces
    (or detects) by shifting the workload.  Returns the hot handles.
    """
    total = sum(observed_counts.values())
    if total == 0 or total_replicas == 0:
        return set()
    expected = total / total_replicas
    return {
        handle
        for handle, count in observed_counts.items()
        if count > threshold * expected
    }
