"""The Path ORAM server: untrusted bucket-tree storage run by the SP.

The server stores opaque encrypted *blocks* in a complete binary tree of
buckets and answers path reads/writes.  Everything it observes — which
physical paths are touched, when, and the (identical-looking)
ciphertexts — is recorded through an observer hook so the security
benchmarks can play the adversary (attack A7) with exactly the server's
view and nothing more.

Per the paper's scalability analysis (§VI-D), the server charges a fixed
CPU cost per query so the 25 µs/query capacity bound can be measured.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Protocol


class OramServerStall(Exception):
    """The untrusted server did not answer a path read in time.

    Raised by faulty/slow server frontends (see
    :class:`repro.faults.injector.FaultyOramServer`) instead of blocking:
    the simulation has no wall clock to hang on, so a stall is a typed
    signal carrying the virtual-time delay the server would have taken.
    The client compares the delay against its response budget and either
    absorbs it or raises :class:`~repro.oram.client.OramTimeoutError`.
    """

    def __init__(self, delay_us: float) -> None:
        super().__init__(f"ORAM server stalled for {delay_us:.0f} µs")
        self.delay_us = delay_us


@dataclass(slots=True)
class PathAccessEvent:
    """What the SP sees for one ORAM access: a physical path, a time."""

    op_index: int
    leaf: int
    node_indices: tuple[int, ...]
    sim_time_us: float


class ServerObserver(Protocol):
    """The adversary's tap on the ORAM server."""

    def on_access(self, event: PathAccessEvent) -> None:
        ...


@dataclass
class ServerStats:
    """Load accounting for the scalability bench."""

    reads: int = 0
    writes: int = 0
    bytes_moved: int = 0
    busy_time_us: float = 0.0


class OramServer:
    """Heap-indexed complete binary tree of buckets holding ciphertexts.

    Nodes are numbered 1..2^(height+1)-1; leaves are
    ``2^height + leaf``.  Each bucket holds exactly ``bucket_size``
    ciphertext slots (dummies included), so bucket contents are always
    the same shape on the wire.
    """

    def __init__(
        self,
        height: int,
        bucket_size: int = 4,
        query_cpu_us: float = 25.0,
    ) -> None:
        if height < 0:
            raise ValueError("height must be non-negative")
        self.height = height
        self.bucket_size = bucket_size
        self.query_cpu_us = query_cpu_us
        self.leaf_count = 1 << height
        node_count = (1 << (height + 1))  # index 0 unused
        self._buckets: list[list[bytes]] = [[] for _ in range(node_count)]
        self.stats = ServerStats()
        self._observers: list[Callable[[PathAccessEvent], None]] = []
        self._op_index = 0

    # -- adversary hooks -------------------------------------------------

    def add_observer(self, observer: Callable[[PathAccessEvent], None]) -> None:
        self._observers.append(observer)

    def _notify(self, leaf: int, nodes: tuple[int, ...], sim_time_us: float) -> None:
        event = PathAccessEvent(self._op_index, leaf, nodes, sim_time_us)
        self._op_index += 1
        for observer in self._observers:
            observer(event)

    # -- tree geometry ---------------------------------------------------

    def path_nodes(self, leaf: int) -> tuple[int, ...]:
        """Node indices from the root down to ``leaf``."""
        if not 0 <= leaf < self.leaf_count:
            raise ValueError(f"leaf {leaf} out of range")
        node = self.leaf_count + leaf
        nodes = []
        while node >= 1:
            nodes.append(node)
            node //= 2
        return tuple(reversed(nodes))

    # -- storage protocol --------------------------------------------------

    def read_path(self, leaf: int, sim_time_us: float = 0.0) -> dict[int, list[bytes]]:
        """Return the bucket contents of every node on the path to ``leaf``."""
        nodes = self.path_nodes(leaf)
        self._notify(leaf, nodes, sim_time_us)
        self.stats.reads += 1
        self.stats.busy_time_us += self.query_cpu_us
        out = {}
        for node in nodes:
            bucket = self._buckets[node]
            self.stats.bytes_moved += sum(len(blob) for blob in bucket)
            out[node] = list(bucket)
        return out

    def write_path(
        self, leaf: int, buckets: dict[int, list[bytes]], sim_time_us: float = 0.0
    ) -> None:
        """Replace the buckets along the path to ``leaf``.

        Every written bucket must hold exactly ``bucket_size`` slots —
        the shape invariant that makes all writes look identical.
        """
        nodes = set(self.path_nodes(leaf))
        self.stats.writes += 1
        for node, bucket in buckets.items():
            if node not in nodes:
                raise ValueError(f"node {node} is not on the path to leaf {leaf}")
            if len(bucket) != self.bucket_size:
                raise ValueError(
                    f"bucket must have exactly {self.bucket_size} slots, "
                    f"got {len(bucket)}"
                )
            self.stats.bytes_moved += sum(len(blob) for blob in bucket)
            self._buckets[node] = list(bucket)

    @property
    def total_queries(self) -> int:
        return self.stats.reads

    def capacity_blocks(self) -> int:
        """Total real-block capacity of the tree."""
        return (2 * self.leaf_count - 1) * self.bucket_size

    # ------------------------------------------------------------------
    # Adversary/recovery tree manipulation
    # ------------------------------------------------------------------

    def snapshot_tree(self) -> list[list[bytes]]:
        """Copy out every bucket — what a malicious SP squirrels away."""
        return [list(bucket) for bucket in self._buckets]

    def restore_tree(self, snapshot: list[list[bytes]]) -> None:
        """Overwrite the tree with an earlier snapshot (rollback attack)."""
        if len(snapshot) != len(self._buckets):
            raise ValueError("snapshot geometry mismatch")
        self._buckets = [list(bucket) for bucket in snapshot]

    def reset_tree(self) -> None:
        """Drop every stored bucket (the client's re-sync policy rebuilds
        the tree from verified chain state)."""
        self._buckets = [[] for _ in self._buckets]
