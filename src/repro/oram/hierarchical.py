"""A Pyramid-style hierarchical ORAM: the fleet's second backend.

Where Path ORAM pays ~``Z * log2(N)`` blocks of bandwidth on *every*
access and holds a stash that can spike, the classic hierarchical
layout (Goldreich–Ostrovsky, as revisited by the Pyramid Scheme paper)
reads **one bucket per level** per access and keeps only a small top
cache on chip — at the price of periodic *rebuilds* that re-shuffle a
whole level.  For small working sets the levels stay shallow and the
amortized bandwidth undercuts a tall path tree, which is why shards
may select this backend per working-set size (`backend_for_working_set`).

Layout and protocol, concretely:

* Level *j* holds ``base << (j-1)`` buckets of ``bucket_size +
  log2(buckets)`` slots (logarithmic slack keeps keyed-hash placement
  from overflowing).  Real blocks sit at ``PRF(epoch_seed, key)``;
  every other slot is an encrypted dummy, so a bucket's contents are
  indistinguishable from its padding.
* An access probes **exactly one bucket in every active level**, top
  down.  Until the block is found the probe is its PRF position; after
  a hit (or a top-cache hit) the remaining probes are fresh random
  dummies.  Misses are cached as *negative* entries, so re-asking for
  an absent key never repeats a PRF position either.
* When the top cache fills, cache + every level that fits is merged
  into the shallowest level with capacity, under a **fresh epoch
  seed** — so a key's position is re-randomized before it can ever be
  probed twice at the same level.  Each (level, epoch) therefore sees
  at most one real probe per key: the adversary's view is a sequence
  of per-level positions that are each used at most once, plus
  uniformly random dummies.

Anti-rollback mirrors the path client: every slot's AEAD is bound to
``level || epoch || bucket``, so a server replaying an old level fails
authentication instead of leaking stale state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import hashlib

from repro.crypto.kdf import Drbg
from repro.crypto.suite import AeadCipher, Blake2Aead
from repro.oram.client import AccessSummary, BlockKey, ClientStats
from repro.oram.server import OramServer

_KIND_DUMMY = 0
_KIND_REAL = 1
_KIND_NEGATIVE = 2  # a cached "this key is absent" witness

_MISSING = object()


class LevelBuildError(Exception):
    """Keyed-hash placement overflowed a bucket 16 epochs in a row.

    With logarithmic bucket slack this is astronomically unlikely; it
    firing usually means the level geometry was configured by hand and
    too tight.
    """


@dataclass(slots=True)
class SlotAccessEvent:
    """What the SP observes per probe: a (level, bucket) touch."""

    op_index: int
    level: int
    bucket: int
    sim_time_us: float


@dataclass
class HierarchicalServerStats:
    bucket_reads: int = 0
    rebuild_installs: int = 0
    blocks_streamed: int = 0
    busy_time_us: float = 0.0


class HierarchicalOramServer:
    """Untrusted bucket store for the hierarchical layout.

    Holds opaque ciphertext buckets per level; knows nothing of epochs
    or placement.  ``height``/``bucket_size`` mirror the path server's
    cost-model interface: one access costs one bucket fetch per active
    level, so ``height`` is the number of active levels.
    """

    def __init__(self, bucket_size: int = 4, query_cpu_us: float = 25.0) -> None:
        self.bucket_size = bucket_size
        self.query_cpu_us = query_cpu_us
        self.stats = HierarchicalServerStats()
        self._levels: dict[int, list[list[bytes]]] = {}
        self._observers: list[Callable[[SlotAccessEvent], None]] = []
        self._op_index = 0

    # -- adversary taps ------------------------------------------------

    def add_observer(self, callback: Callable[[SlotAccessEvent], None]) -> None:
        self._observers.append(callback)

    # -- cost-model interface (shared with OramServer) -----------------

    @property
    def height(self) -> int:
        return max(1, len(self._levels))

    def capacity_blocks(self) -> int:
        return sum(
            len(buckets) * len(buckets[0]) if buckets else 0
            for buckets in self._levels.values()
        )

    # -- the probe path ------------------------------------------------

    def read_bucket(
        self, level: int, bucket: int, sim_time_us: float = 0.0
    ) -> list[bytes]:
        self._op_index += 1
        event = SlotAccessEvent(self._op_index, level, bucket, sim_time_us)
        for observer in self._observers:
            observer(event)
        self.stats.bucket_reads += 1
        self.stats.busy_time_us += self.query_cpu_us
        return list(self._levels[level][bucket])

    # -- rebuild streaming ---------------------------------------------

    def export_level(self, level: int) -> list[list[bytes]]:
        """Stream a whole level out for a rebuild (data-independent)."""
        buckets = self._levels[level]
        self.stats.blocks_streamed += sum(len(bucket) for bucket in buckets)
        self.stats.busy_time_us += self.query_cpu_us * len(buckets)
        return [list(bucket) for bucket in buckets]

    def install_level(self, level: int, buckets: list[list[bytes]]) -> None:
        self.stats.rebuild_installs += 1
        self.stats.blocks_streamed += sum(len(bucket) for bucket in buckets)
        self.stats.busy_time_us += self.query_cpu_us * len(buckets)
        self._levels[level] = [list(bucket) for bucket in buckets]

    def clear_level(self, level: int) -> None:
        self._levels.pop(level, None)

    def active_levels(self) -> list[int]:
        return sorted(self._levels)

    # -- adversarial snapshot/rollback (test harness parity) -----------

    def snapshot_levels(self) -> dict[int, list[list[bytes]]]:
        return {
            level: [list(bucket) for bucket in buckets]
            for level, buckets in self._levels.items()
        }

    def restore_levels(self, snapshot: dict[int, list[list[bytes]]]) -> None:
        self._levels = {
            level: [list(bucket) for bucket in buckets]
            for level, buckets in snapshot.items()
        }


@dataclass(slots=True)
class _LevelMeta:
    """The client's trusted per-level state: geometry + epoch secret."""

    seed: bytes
    epoch: int
    buckets: int
    slots: int


class PyramidOramClient:
    """Trusted client for :class:`HierarchicalOramServer`.

    Interface-compatible with :class:`~repro.oram.client.PathOramClient`
    where the adapter seam needs it: ``block_size``, ``server``,
    ``stats``, ``last_access``, ``read``/``write``/``access``.  The
    recovery journal seam (``.recovery``) exists but is never fed —
    pyramid shards have no per-access stash delta to journal; they are
    checkpointed wholesale or not at all (see ``repro.sharding``).
    """

    def __init__(
        self,
        server: HierarchicalOramServer,
        key: bytes,
        block_size: int = 1024,
        cache_limit: int = 32,
        rng: Drbg | None = None,
        cipher_factory=Blake2Aead,
        clock=None,
    ) -> None:
        if cache_limit < 2:
            raise ValueError("cache_limit must be >= 2")
        self.server = server
        self.block_size = block_size
        self.cache_limit = cache_limit
        self._clock = clock
        self.recovery = None
        self.memo = None  # decrypt memoization is a path-client feature
        self._rng = rng or Drbg(key, personalization=b"pyramid-client")
        self._cipher: AeadCipher = cipher_factory(key)
        self._cache: dict[BlockKey, bytes | None] = {}
        self._levels: dict[int, _LevelMeta] = {}
        self._nonce_counter = 0
        self._epoch_counter = 0
        self.rebuilds = 0
        self.stats = ClientStats()
        self.last_access = AccessSummary()

    # -- geometry ------------------------------------------------------

    def _base_buckets(self) -> int:
        # Mean load of 2 real blocks per bucket at capacity.
        return max(2, -(-self.cache_limit // 2))

    def _buckets_at(self, level: int) -> int:
        return self._base_buckets() << (level - 1)

    def _slots_at(self, level: int) -> int:
        # Logarithmic slack over the nominal bucket size keeps the
        # max-loaded bucket (~ln B / ln ln B balls) from overflowing.
        return self.server.bucket_size + self._buckets_at(level).bit_length()

    def _capacity(self, level: int) -> int:
        return 2 * self._buckets_at(level)

    # -- wire format (path-client slot shape, hierarchical AAD) --------

    @staticmethod
    def _bucket_aad(level: int, epoch: int, bucket: int) -> bytes:
        return (
            level.to_bytes(2, "big")
            + epoch.to_bytes(8, "big")
            + bucket.to_bytes(4, "big")
        )

    def _next_nonce(self) -> bytes:
        self._nonce_counter += 1
        return self._nonce_counter.to_bytes(12, "big")

    def _encrypt_slot(
        self, kind: int, key: BlockKey, payload: bytes, aad: bytes
    ) -> bytes:
        if len(key) > 64:
            raise ValueError("block key too long")
        body = bytearray()
        body.append(kind)
        body.extend(len(key).to_bytes(2, "big"))
        body.extend(key.ljust(64, b"\x00"))
        body.extend(payload.ljust(self.block_size, b"\x00"))
        nonce = self._next_nonce()
        self.stats.blocks_encrypted += 1
        return nonce + self._cipher.encrypt(nonce, bytes(body), aad)

    def _decrypt_slot(self, blob: bytes, aad: bytes) -> tuple[int, BlockKey, bytes]:
        nonce, data = blob[:12], blob[12:]
        plain = self._cipher.decrypt(nonce, data, aad)
        self.stats.blocks_decrypted += 1
        kind = plain[0]
        key_length = int.from_bytes(plain[1:3], "big")
        return kind, plain[3:3 + key_length], plain[67:67 + self.block_size]

    def _dummy_slot(self, aad: bytes) -> bytes:
        return self._encrypt_slot(_KIND_DUMMY, b"", b"", aad)

    def _prf_bucket(self, meta: _LevelMeta, key: BlockKey) -> int:
        digest = hashlib.blake2b(key, digest_size=8, key=meta.seed).digest()
        return int.from_bytes(digest, "big") % meta.buckets

    # -- the access protocol -------------------------------------------

    def access(
        self,
        key: BlockKey,
        write_data: bytes | None = None,
        sim_time_us: float = 0.0,
    ) -> bytes | None:
        """One oblivious access: probe every level, then update the cache."""
        if write_data is not None and len(write_data) > self.block_size:
            raise ValueError("write larger than the ORAM block size")
        self.stats.accesses += 1
        found: object = _MISSING
        if key in self._cache:
            found = self._cache[key]
        for level in sorted(self._levels):
            meta = self._levels[level]
            if found is _MISSING:
                bucket = self._prf_bucket(meta, key)
            else:
                bucket = self._rng.randint(meta.buckets)  # dummy probe
            aad = self._bucket_aad(level, meta.epoch, bucket)
            for blob in self.server.read_bucket(level, bucket, sim_time_us):
                kind, blob_key, payload = self._decrypt_slot(blob, aad)
                if found is _MISSING and kind != _KIND_DUMMY and blob_key == key:
                    found = payload if kind == _KIND_REAL else None
        result: bytes | None = None if found is _MISSING else found  # type: ignore[assignment]
        if write_data is not None:
            result = write_data.ljust(self.block_size, b"\x00")
            self._cache[key] = result
        else:
            # Cache hits *and* misses: a re-asked key must never repeat
            # its PRF positions, so absence is cached as a negative.
            self._cache[key] = result
        self.stats.stash_history.append(len(self._cache))
        self.stats.max_stash_blocks = max(self.stats.max_stash_blocks, len(self._cache))
        self.last_access = AccessSummary(stash_blocks=len(self._cache))
        if len(self._cache) >= self.cache_limit:
            self._rebuild()
        return result

    def read(self, key: BlockKey, sim_time_us: float = 0.0) -> bytes | None:
        return self.access(key, None, sim_time_us)

    def write(self, key: BlockKey, data: bytes, sim_time_us: float = 0.0) -> None:
        self.access(key, data, sim_time_us)

    # -- rebuilds ------------------------------------------------------

    def _fold_level(
        self, level: int, merged: dict[BlockKey, tuple[int, bytes]]
    ) -> None:
        meta = self._levels[level]
        for bucket, blobs in enumerate(self.server.export_level(level)):
            aad = self._bucket_aad(level, meta.epoch, bucket)
            for blob in blobs:
                kind, key, payload = self._decrypt_slot(blob, aad)
                if kind != _KIND_DUMMY and key not in merged:
                    merged[key] = (kind, payload)

    def _rebuild(self) -> None:
        """Merge cache + overflowing levels into a fresh-epoch level.

        Shallower state is always fresher, and the merge keeps the
        *first* copy seen (cache, then levels top-down), so the newest
        version of every block survives.
        """
        merged: dict[BlockKey, tuple[int, bytes]] = {}
        for key, payload in self._cache.items():
            if payload is None:
                merged[key] = (_KIND_NEGATIVE, b"")
            else:
                merged[key] = (_KIND_REAL, payload)
        active = sorted(self._levels)
        target = 1
        folded: set[int] = set()
        while True:
            for level in active:
                if level <= target and level not in folded:
                    self._fold_level(level, merged)
                    folded.add(level)
            if len(merged) <= self._capacity(target):
                break
            target += 1
        if all(level <= target for level in active):
            # Folding everything: absence is re-derivable by a full
            # scan, so negative witnesses need not be carried forward.
            merged = {
                key: entry
                for key, entry in merged.items()
                if entry[0] != _KIND_NEGATIVE
            }
        buckets = self._buckets_at(target)
        slots = self._slots_at(target)
        layout: list[list[tuple[BlockKey, tuple[int, bytes]]]] = []
        seed = b""
        for _attempt in range(16):
            seed = self._rng.random_bytes(16)
            layout = [[] for _ in range(buckets)]
            probe = _LevelMeta(seed=seed, epoch=0, buckets=buckets, slots=slots)
            for key, entry in merged.items():
                index = self._prf_bucket(probe, key)
                if len(layout[index]) == slots:
                    break
                layout[index].append((key, entry))
            else:
                break
        else:
            raise LevelBuildError(
                f"level {target}: {len(merged)} blocks would not hash into "
                f"{buckets} buckets of {slots} slots"
            )
        self._epoch_counter += 1
        epoch = self._epoch_counter
        encrypted: list[list[bytes]] = []
        for index, items in enumerate(layout):
            aad = self._bucket_aad(target, epoch, index)
            blobs = [
                self._encrypt_slot(kind, key, payload, aad)
                for key, (kind, payload) in items
            ]
            while len(blobs) < slots:
                blobs.append(self._dummy_slot(aad))
            encrypted.append(blobs)
        self.server.install_level(target, encrypted)
        for level in active:
            if level <= target and level != target:
                self.server.clear_level(level)
                self._levels.pop(level, None)
        self._levels[target] = _LevelMeta(
            seed=seed, epoch=epoch, buckets=buckets, slots=slots
        )
        self._cache.clear()
        self.rebuilds += 1

    # -- diagnostics ---------------------------------------------------

    @property
    def cache_blocks(self) -> int:
        return len(self._cache)

    def level_geometry(self) -> dict[int, tuple[int, int]]:
        """level -> (buckets, slots), for benches and docs."""
        return {
            level: (meta.buckets, meta.slots)
            for level, meta in sorted(self._levels.items())
        }


def build_oram_server(
    backend: str,
    *,
    height: int,
    bucket_size: int = 4,
    query_cpu_us: float = 25.0,
) -> "OramServer | HierarchicalOramServer":
    """Construct the untrusted store for the selected ORAM backend.

    ``height`` sizes the path tree; the hierarchical store grows its
    levels on demand, so the parameter only applies to ``"path"``.
    """
    if backend == "path":
        return OramServer(
            height=height, bucket_size=bucket_size, query_cpu_us=query_cpu_us
        )
    if backend == "pyramid":
        return HierarchicalOramServer(
            bucket_size=bucket_size, query_cpu_us=query_cpu_us
        )
    raise ValueError(f"unknown ORAM backend {backend!r}")


def backend_for_working_set(pages: int, threshold: int = 4096) -> str:
    """Pick an ORAM backend for a shard's expected working set.

    Small working sets favour the hierarchical layout: few levels, one
    bucket per level per access, tiny on-chip cache.  Past the
    threshold the rebuild bandwidth (each level re-shuffled at every
    epoch) overtakes Path ORAM's steady ``Z·log N`` per access, and the
    path tree wins.  The crossover default is deliberately coarse — the
    bench, not this constant, is the authority for a given deployment.
    """
    if pages < 0:
        raise ValueError("working-set size must be non-negative")
    return "pyramid" if pages <= threshold else "path"
