"""The paged world-state schema (paper §IV-D, "Mixing query types").

Three page kinds, all exactly one 1 KB ORAM *block*, so responses are
indistinguishable by size:

* **account pages** — one per account: balance, nonce, code hash, code
  size (the K-V header every BALANCE/EXTCODESIZE query needs),
* **storage pages** — 32 consecutive storage records grouped per page
  (``group = key // 32``), exploiting Solidity's consecutive slot
  layout,
* **code pages** — contract bytecode split into 1 KB chunks.

Page keys are namespaced byte strings; :class:`PageDirectory` densifies
them to sequential integers when a recursive position map is in use.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.state.account import AccountMeta, Address, EMPTY_CODE_HASH
from repro.state.backend import CODE_PAGE_SIZE, STORAGE_GROUP_SIZE

PAGE_SIZE = CODE_PAGE_SIZE  # 1 KB everywhere, per the paper

_ACCOUNT_TAG = b"A"
_STORAGE_TAG = b"S"
_CODE_TAG = b"C"


def account_page_key(address: Address) -> bytes:
    return _ACCOUNT_TAG + address


def storage_page_key(address: Address, key: int) -> bytes:
    group = key // STORAGE_GROUP_SIZE
    return _STORAGE_TAG + address + group.to_bytes(32, "big")


def code_page_key(address: Address, page_index: int) -> bytes:
    return _CODE_TAG + address + page_index.to_bytes(4, "big")


def encode_account_page(meta: AccountMeta) -> bytes:
    """Serialize an account header into a fixed 1 KB page."""
    body = (
        meta.balance.to_bytes(32, "big")
        + meta.nonce.to_bytes(32, "big")
        + meta.code_hash
        + meta.code_size.to_bytes(32, "big")
    )
    return body.ljust(PAGE_SIZE, b"\x00")


def decode_account_page(page: bytes | None) -> AccountMeta:
    if page is None:
        return AccountMeta(0, 0, EMPTY_CODE_HASH, 0)
    return AccountMeta(
        balance=int.from_bytes(page[0:32], "big"),
        nonce=int.from_bytes(page[32:64], "big"),
        code_hash=page[64:96],
        code_size=int.from_bytes(page[96:128], "big"),
    )


def encode_storage_page(values: dict[int, int], group: int) -> bytes:
    """Pack the 32 records of ``group`` into a 1 KB page."""
    out = bytearray(PAGE_SIZE)
    base = group * STORAGE_GROUP_SIZE
    for slot in range(STORAGE_GROUP_SIZE):
        value = values.get(base + slot, 0)
        out[slot * 32:(slot + 1) * 32] = value.to_bytes(32, "big")
    return bytes(out)


def decode_storage_record(page: bytes | None, key: int) -> int:
    if page is None:
        return 0
    slot = key % STORAGE_GROUP_SIZE
    return int.from_bytes(page[slot * 32:(slot + 1) * 32], "big")


@dataclass
class PageDirectory:
    """Densifies page keys to sequential ints for recursive posmaps.

    The directory itself is small (one int per *touched* page) and, in
    hardware, would live in the Hypervisor's on-chip memory alongside
    the top recursion level.
    """

    next_id: int = 0

    def __post_init__(self) -> None:
        self._ids: dict[bytes, int] = {}

    def id_for(self, page_key: bytes) -> int:
        existing = self._ids.get(page_key)
        if existing is not None:
            return existing
        assigned = self.next_id
        self._ids[page_key] = assigned
        self.next_id += 1
        return assigned

    def __len__(self) -> int:
        return len(self._ids)
