"""HarDTAPE reproduction: a hardware-dedicated trusted transaction
pre-executor, functionally simulated in Python.

Subpackages
-----------
``repro.crypto``      Keccak-256, AES-GCM, secp256k1, PUF root of trust
``repro.rlp``         RLP serialization
``repro.trie``        Merkle Patricia Trie + proofs
``repro.state``       accounts, journaled state, blocks
``repro.evm``         the EVM interpreter, gas model, tracers
``repro.oram``        Path ORAM + paged oblivious world state
``repro.hardware``    HEVM cores, 3-layer memory, timing and area models
``repro.hypervisor``  attestation, secure channel, scheduling, block sync
``repro.node``        simulated Ethereum full node (traces + proofs)
``repro.baselines``   Geth and TSC-VEE comparison models
``repro.workloads``   EVM assembler, contracts, evaluation-set generator
``repro.security``    adversary observers and statistical attacks
``repro.core``        the product API: HarDTAPEService / PreExecutionClient

Quickstart: see ``examples/quickstart.py``.
"""

__version__ = "1.0.0"
