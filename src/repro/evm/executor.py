"""Transaction-level execution: validation, intrinsic gas, fees, traces.

:func:`execute_transaction` is the single entry point used by the node
(block execution and ground-truth traces), the Geth baseline, and the
HarDTAPE HEVM.  It returns a :class:`TransactionResult` carrying exactly
the per-transaction trace content the paper's tracer sends to the user:
ReturnData, gas cost, balance transfers, and storage modifications.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.evm import gas as gas_rules
from repro.evm.exceptions import InvalidTransaction
from repro.evm.frame import Log, Message
from repro.evm.interpreter import ChainContext, Interpreter
from repro.evm.tracer import Tracer
from repro.state.account import Address, to_address
from repro.state.blocks import Transaction
from repro.state.journal import JournaledState, WriteSet
from repro import rlp
from repro.crypto.keccak import keccak256


@dataclass
class TransactionResult:
    """The trace of one pre-executed (or executed) transaction."""

    success: bool
    gas_used: int
    return_data: bytes
    error: str | None = None
    logs: list[Log] = field(default_factory=list)
    write_set: WriteSet | None = None
    created_address: Address | None = None

    @property
    def status(self) -> int:
        return 1 if self.success else 0


def execute_transaction(
    state: JournaledState,
    chain: ChainContext,
    tx: Transaction,
    tracer: Tracer | None = None,
    charge_fees: bool = True,
    check_nonce: bool = True,
) -> TransactionResult:
    """Validate and execute ``tx`` against ``state``.

    Mutations are applied to the journal (committed within the bundle);
    the caller decides whether to persist them (block execution) or
    discard them (pre-execution, paper workflow step 10).
    """
    state.begin_transaction()
    is_create = tx.to is None
    intrinsic = gas_rules.intrinsic_gas(tx.data, is_create)
    if intrinsic > tx.gas_limit:
        raise InvalidTransaction(
            f"intrinsic gas {intrinsic} exceeds limit {tx.gas_limit}"
        )

    sender_nonce = state.get_nonce(tx.sender)
    if check_nonce and tx.nonce is not None and tx.nonce != sender_nonce:
        raise InvalidTransaction(
            f"nonce mismatch: tx {tx.nonce}, account {sender_nonce}"
        )

    upfront = tx.value + (tx.gas_limit * tx.gas_price if charge_fees else 0)
    if state.get_balance(tx.sender) < upfront:
        raise InvalidTransaction("insufficient balance for value + gas")

    if charge_fees:
        state.sub_balance(tx.sender, tx.gas_limit * tx.gas_price)

    vm = Interpreter(state, chain, tracer, origin=tx.sender, gas_price=tx.gas_price)
    gas_available = tx.gas_limit - intrinsic

    # Warm the sender, the target, and the coinbase (EIP-2929/3651).
    state.warm_address(tx.sender)
    state.warm_address(chain.header.coinbase)

    created: Address | None = None
    if is_create:
        nonce = state.get_nonce(tx.sender)
        created = to_address(
            keccak256(rlp.encode([tx.sender, rlp.encode_uint(nonce)]))
        )
        message = Message(
            caller=tx.sender, to=created, code_address=created,
            value=tx.value, data=b"", gas=gas_available, is_create=True,
        )
        result = vm.execute_create(message, tx.data)
    else:
        state.warm_address(tx.to)
        state.increment_nonce(tx.sender)
        message = Message(
            caller=tx.sender, to=tx.to, code_address=tx.to,
            value=tx.value, data=tx.data, gas=gas_available,
        )
        result = vm.execute_message(message)

    gas_used = tx.gas_limit - result.gas_left
    if result.success:
        refund = min(state.refund, gas_used // gas_rules.REFUND_QUOTIENT)
        gas_used -= refund
    if charge_fees:
        state.add_balance(tx.sender, (tx.gas_limit - gas_used) * tx.gas_price)
        state.add_balance(chain.header.coinbase, gas_used * tx.gas_price)

    return TransactionResult(
        success=result.success,
        gas_used=gas_used,
        return_data=result.output,
        error=result.error,
        logs=[Log(addr, topics, data) for addr, topics, data in vm.logs],
        write_set=state.write_set(),
        created_address=created if (is_create and result.success) else None,
    )
