"""The 1024-slot EVM runtime stack of 256-bit words.

The paper keeps the entire runtime stack (up to 32 KB) in the HEVM's
layer-1 cache; this class is that structure's functional model.
"""

from __future__ import annotations

from repro.evm.exceptions import StackOverflow, StackUnderflow

STACK_LIMIT = 1024
_MASK = (1 << 256) - 1


class Stack:
    """LIFO stack of 256-bit unsigned integers."""

    __slots__ = ("_items",)

    def __init__(self) -> None:
        self._items: list[int] = []

    def __len__(self) -> int:
        return len(self._items)

    def push(self, value: int) -> None:
        if len(self._items) >= STACK_LIMIT:
            raise StackOverflow("stack limit of 1024 exceeded")
        self._items.append(value & _MASK)

    def pop(self) -> int:
        if not self._items:
            raise StackUnderflow("pop from empty stack")
        return self._items.pop()

    def pop_many(self, count: int) -> list[int]:
        """Pop ``count`` items; first element is the former top of stack."""
        if len(self._items) < count:
            raise StackUnderflow(f"need {count} items, have {len(self._items)}")
        out = self._items[-count:][::-1]
        del self._items[-count:]
        return out

    def peek(self, depth: int = 0) -> int:
        """Read the item ``depth`` slots below the top without popping."""
        if len(self._items) <= depth:
            raise StackUnderflow(f"peek depth {depth} beyond stack")
        return self._items[-1 - depth]

    def dup(self, n: int) -> None:
        """DUPn: push a copy of the n-th item (1-based from the top)."""
        if len(self._items) < n:
            raise StackUnderflow(f"DUP{n} on stack of {len(self._items)}")
        self.push(self._items[-n])

    def swap(self, n: int) -> None:
        """SWAPn: exchange the top with the (n+1)-th item."""
        if len(self._items) < n + 1:
            raise StackUnderflow(f"SWAP{n} on stack of {len(self._items)}")
        self._items[-1], self._items[-1 - n] = self._items[-1 - n], self._items[-1]

    def snapshot(self) -> list[int]:
        """Copy of the stack contents, bottom first (for tracing)."""
        return list(self._items)
