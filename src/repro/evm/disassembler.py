"""EVM bytecode disassembler.

The inverse of :mod:`repro.workloads.asm`: turns bytecode back into an
instruction listing with resolved PUSH immediates, jump-destination
annotations, and basic-block boundaries.  Used by the CLI's ``disasm``
command and by tests as an assembler round-trip oracle.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.evm import opcodes


@dataclass(frozen=True)
class Instruction:
    """One decoded instruction."""

    offset: int
    opcode: int
    mnemonic: str
    immediate: int | None = None  # PUSH payload
    is_data: bool = False         # trailing non-code bytes

    def render(self) -> str:
        if self.is_data:
            return f"{self.offset:#06x}: DATA 0x{self.immediate:02x}"
        if self.immediate is not None:
            return f"{self.offset:#06x}: {self.mnemonic} 0x{self.immediate:x}"
        return f"{self.offset:#06x}: {self.mnemonic}"


def disassemble(code: bytes) -> list[Instruction]:
    """Decode ``code`` into instructions.

    Truncated PUSH immediates at the end of code are zero-extended, as
    the EVM does at runtime.  Unknown opcodes decode as ``INVALID(..)``
    placeholders rather than failing, since deployed bytecode routinely
    carries metadata sections.
    """
    out: list[Instruction] = []
    pc = 0
    length = len(code)
    while pc < length:
        opcode = code[pc]
        entry = opcodes.info(opcode)
        size = opcodes.push_size(opcode)
        if size:
            raw = code[pc + 1:pc + 1 + size]
            immediate = int.from_bytes(raw.ljust(size, b"\x00"), "big")
            out.append(Instruction(pc, opcode, entry.name, immediate))
            pc += 1 + size
            continue
        mnemonic = entry.name if entry else f"INVALID(0x{opcode:02x})"
        out.append(Instruction(pc, opcode, mnemonic))
        pc += 1
    return out


def basic_blocks(code: bytes) -> list[tuple[int, int]]:
    """(start, end) offsets of basic blocks.

    A block starts at offset 0 and at every JUMPDEST; it ends after any
    control-transfer or halting instruction (JUMP/JUMPI/STOP/RETURN/
    REVERT/INVALID/SELFDESTRUCT) or at the next block's start.
    """
    instructions = disassemble(code)
    if not instructions:
        return []
    enders = {
        opcodes.JUMP, opcodes.JUMPI, opcodes.STOP, opcodes.RETURN,
        opcodes.REVERT, opcodes.INVALID, opcodes.SELFDESTRUCT,
    }
    blocks: list[tuple[int, int]] = []
    start = 0
    previous_end = 0
    for instruction in instructions:
        if instruction.opcode == opcodes.JUMPDEST and instruction.offset != start:
            blocks.append((start, instruction.offset))
            start = instruction.offset
        previous_end = instruction.offset + 1 + (
            opcodes.push_size(instruction.opcode)
        )
        if instruction.opcode in enders:
            blocks.append((start, previous_end))
            start = previous_end
    if start < previous_end:
        blocks.append((start, previous_end))
    return [block for block in blocks if block[0] < block[1]]


def format_listing(code: bytes, annotate_jumpdests: bool = True) -> str:
    """Human-readable disassembly listing."""
    from repro.evm.frame import analyze_jumpdests

    valid = analyze_jumpdests(code) if annotate_jumpdests else frozenset()
    lines = []
    for instruction in disassemble(code):
        line = instruction.render()
        if instruction.offset in valid:
            line += "    ; <- jump target"
        lines.append(line)
    return "\n".join(lines)


def selector_candidates(code: bytes) -> list[int]:
    """4-byte ABI selectors compared against in the dispatch prologue.

    Heuristic used by contract-analysis tooling: every ``PUSH4 x`` whose
    next instruction is ``EQ`` is almost certainly a function selector.
    """
    instructions = disassemble(code)
    selectors = []
    for current, following in zip(instructions, instructions[1:]):
        if (
            current.mnemonic == "PUSH4"
            and following.mnemonic == "EQ"
            and current.immediate is not None
        ):
            selectors.append(current.immediate)
    return selectors
