"""The EVM interpreter: the functional core shared by every executor.

This is the module the paper's HEVM, the Geth baseline, and the node's
ground-truth tracer all share — they differ only in which
:class:`~repro.state.backend.StateBackend` feeds it and which timing
model consumes its event stream.  The four-stage pipelined hardware EVM
of the paper is *functionally equivalent to the interpreter module of
Geth* (§IV-B), which is exactly the property this class provides.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass

from repro.evm import opcodes
from repro.evm.exceptions import FrameError, OutOfGas
from repro.evm.frame import CALL_DEPTH_LIMIT, ExecutionFrame, Message
from repro.evm.instructions import DISPATCH
from repro.evm.precompiles import PRECOMPILES
from repro.evm.tracer import Tracer
from repro.state.account import Address
from repro.state.blocks import BlockHeader
from repro.state.journal import JournaledState


@dataclass
class ChainContext:
    """Block-level environment the EVM can query."""

    header: BlockHeader
    block_hashes: dict[int, bytes] | None = None

    def block_hash(self, number: int) -> bytes:
        if self.block_hashes and number in self.block_hashes:
            return self.block_hashes[number]
        if 0 <= self.header.number - number <= 256:
            # Deterministic stand-in for unknown ancestors.
            from repro.crypto.keccak import keccak256

            return keccak256(b"blockhash" + number.to_bytes(32, "big"))
        return b"\x00" * 32


@dataclass
class FrameResult:
    """Outcome of one execution frame."""

    success: bool
    output: bytes
    gas_left: int
    error: str | None = None


# The interpreter recurses one Python call chain per EVM frame; the EVM
# allows 1024 frames, each costing a handful of Python frames, so the
# default 1000-frame Python limit is far too low for deep call trees.
_REQUIRED_RECURSION_LIMIT = 30_000


def _ensure_recursion_headroom() -> None:
    if sys.getrecursionlimit() < _REQUIRED_RECURSION_LIMIT:
        sys.setrecursionlimit(_REQUIRED_RECURSION_LIMIT)


_ensure_recursion_headroom()  # once, at import time


class Interpreter:
    """Executes messages against a journaled state."""

    def __init__(
        self,
        state: JournaledState,
        chain: ChainContext,
        tracer: Tracer | None = None,
        origin: Address = b"\x00" * 20,
        gas_price: int = 1,
    ) -> None:
        self.state = state
        self.chain = chain
        self.tracer = tracer or Tracer()
        self.origin = origin
        self.gas_price = gas_price
        self.logs: list[tuple[Address, list[int], bytes]] = []

    # ------------------------------------------------------------------
    # Message execution (CALL family)
    # ------------------------------------------------------------------

    def execute_message(
        self, message: Message, kind: str = "CALL", transfer_value: bool = True
    ) -> FrameResult:
        """Run a call message in a child frame with snapshot semantics."""
        if message.depth > CALL_DEPTH_LIMIT:
            return FrameResult(False, b"", 0, "call depth exceeded")

        snapshot = self.state.snapshot()
        if transfer_value and message.value:
            if self.state.get_balance(message.caller) < message.value:
                return FrameResult(False, b"", message.gas, "insufficient balance")
            self.state.sub_balance(message.caller, message.value)
            self.state.add_balance(message.to, message.value)

        precompile = PRECOMPILES.get(message.code_address)
        if precompile is not None:
            try:
                cost, output = precompile(message.data)
            except Exception:
                self.state.revert(snapshot)
                return FrameResult(False, b"", 0, "precompile failure")
            if cost > message.gas:
                self.state.revert(snapshot)
                return FrameResult(False, b"", 0, "out of gas")
            return FrameResult(True, output, message.gas - cost)

        code = self.state.get_code(message.code_address)
        self.tracer.on_code_fetch(message.code_address, len(code))
        frame = ExecutionFrame(message, code)
        self.tracer.on_frame_enter(frame, kind)
        error = self._run(frame)
        if error is not None or frame.reverted:
            self.state.revert(snapshot)
        self.tracer.on_frame_exit(
            frame, kind, error or ("execution reverted" if frame.reverted else None)
        )
        if error is not None:
            return FrameResult(False, frame.output, 0, error)
        if frame.reverted:
            return FrameResult(False, frame.output, frame.gas, "execution reverted")
        return FrameResult(True, frame.output, frame.gas)

    def execute_create(self, message: Message, init_code: bytes) -> FrameResult:
        """Run init code and deploy the resulting runtime code."""
        from repro.evm import gas as gas_rules

        if message.depth > CALL_DEPTH_LIMIT:
            return FrameResult(False, b"", 0, "call depth exceeded")

        sender = message.caller
        # Collision check (EIP-684).
        if (
            self.state.get_code(message.to)
            or self.state.get_nonce(message.to) != 0
        ):
            return FrameResult(False, b"", 0, "contract address collision")

        snapshot = self.state.snapshot()
        self.state.increment_nonce(sender)
        self.state.warm_address(message.to)
        if message.value:
            if self.state.get_balance(sender) < message.value:
                self.state.revert(snapshot)
                return FrameResult(False, b"", message.gas, "insufficient balance")
            self.state.sub_balance(sender, message.value)
            self.state.add_balance(message.to, message.value)
        self.state.set_nonce(message.to, 1)
        self.state.set_code(message.to, b"")

        frame = ExecutionFrame(message, init_code)
        self.tracer.on_frame_enter(frame, "CREATE")
        error = self._run(frame)
        deployed: bytes = frame.output
        if error is None and not frame.reverted:
            deposit = gas_rules.CREATE_DEPOSIT_PER_BYTE * len(deployed)
            if len(deployed) > gas_rules.MAX_CODE_SIZE:
                error = "max code size exceeded"
            elif deployed[:1] == b"\xef":
                error = "invalid code: EF prefix (EIP-3541)"
            elif deposit > frame.gas:
                error = "out of gas: code deposit"
            else:
                frame.gas -= deposit
                self.state.set_code(message.to, deployed)
        if error is not None or frame.reverted:
            self.state.revert(snapshot)
        self.tracer.on_frame_exit(
            frame, "CREATE", error or ("execution reverted" if frame.reverted else None)
        )
        if error is not None:
            return FrameResult(False, b"", 0, error)
        if frame.reverted:
            return FrameResult(False, frame.output, frame.gas, "execution reverted")
        return FrameResult(True, deployed, frame.gas)

    # ------------------------------------------------------------------
    # The dispatch loop
    # ------------------------------------------------------------------

    def _run(self, frame: ExecutionFrame) -> str | None:
        """Execute the frame to completion; returns an error string or None."""
        frame.halted = False
        code = frame.code
        code_length = len(code)
        tracer = self.tracer
        try:
            while not frame.halted:
                if frame.pc >= code_length:
                    # Implicit STOP past the end of code.
                    frame.output = b""
                    break
                opcode = code[frame.pc]
                entry = opcodes.info(opcode)
                if entry is None:
                    from repro.evm.exceptions import InvalidOpcode

                    raise InvalidOpcode(opcode)
                tracer.on_step(frame, opcode)
                frame.use_gas(entry.base_gas)
                handler = DISPATCH[opcode]
                jumped = handler(self, frame)
                if not jumped:
                    frame.pc += 1 + opcodes.push_size(opcode)
        except FrameError as exc:
            if isinstance(exc, OutOfGas):
                frame.gas = 0
            else:
                frame.gas = 0
            return type(exc).__name__ + ": " + str(exc)
        return None
