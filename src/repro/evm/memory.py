"""EVM memory-likes: byte-addressed, unaligned, lazily expanding arrays.

The paper groups Code, Input, Memory, and ReturnData as *memory-likes*
(§II-A).  Only ``Memory`` is writable and charges quadratic expansion
gas; the others are read-only views.  The HEVM's layer-1 cache holds a
partition per memory-like, and the layer-2 frame grows in 1 KB pages as
``Memory`` expands — :attr:`Memory.size` drives that model.
"""

from __future__ import annotations


class Memory:
    """The writable, word-expanded runtime memory of one frame."""

    __slots__ = ("_data",)

    def __init__(self) -> None:
        self._data = bytearray()

    @property
    def size(self) -> int:
        """Current size in bytes (always a multiple of 32)."""
        return len(self._data)

    def expand_to(self, offset: int, length: int) -> int:
        """Grow to cover ``[offset, offset+length)``; returns new word count.

        Expansion is in 32-byte words, per the EVM spec.  Gas for the
        growth is charged by the interpreter *before* calling this.
        """
        if length == 0:
            return len(self._data) // 32
        needed = offset + length
        if needed > len(self._data):
            new_words = (needed + 31) // 32
            self._data.extend(b"\x00" * (new_words * 32 - len(self._data)))
        return len(self._data) // 32

    def read(self, offset: int, length: int) -> bytes:
        """Read ``length`` bytes (memory must already cover the range)."""
        if length == 0:
            return b""
        return bytes(self._data[offset:offset + length])

    def write(self, offset: int, data: bytes) -> None:
        """Write ``data`` (memory must already cover the range)."""
        if data:
            self._data[offset:offset + len(data)] = data

    def write_byte(self, offset: int, value: int) -> None:
        self._data[offset] = value & 0xFF

    def snapshot(self) -> bytes:
        return bytes(self._data)


def read_padded(source: bytes, offset: int, length: int) -> bytes:
    """Read from a read-only memory-like with zero padding past the end.

    Used for Code, Input (calldata), and EXTCODECOPY semantics.
    """
    if length == 0:
        return b""
    if offset >= len(source):
        return b"\x00" * length
    chunk = source[offset:offset + length]
    return chunk + b"\x00" * (length - len(chunk))
