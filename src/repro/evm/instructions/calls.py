"""CALL-RETURN instructions: the call stack operations of §II-A.

CALL/CALLCODE/DELEGATECALL/STATICCALL spawn child frames;
CREATE/CREATE2 deploy contracts; RETURN/REVERT/STOP/SELFDESTRUCT halt
the current frame.  World-state commit/discard on frame exit is
implemented with journal snapshots, matching the paper's description of
merging the callee's world-state version into the caller's on RETURN and
discarding it on REVERT.
"""

from __future__ import annotations

from repro import rlp
from repro.crypto.keccak import keccak256
from repro.evm import gas, opcodes
from repro.evm.exceptions import WriteProtection
from repro.evm.frame import Message
from repro.evm.instructions import register
from repro.state.account import to_address


def _consume_memory(frame, offset: int, length: int) -> None:
    frame.use_gas(gas.memory_expansion_cost(frame.memory.size, offset, length))
    frame.memory.expand_to(offset, length)


def _do_call(vm, frame, kind: str):
    gas_requested = frame.stack.pop()
    target = to_address(frame.stack.pop())
    if kind in ("CALL", "CALLCODE"):
        value = frame.stack.pop()
    else:
        value = 0
    in_offset, in_length = frame.stack.pop(), frame.stack.pop()
    out_offset, out_length = frame.stack.pop(), frame.stack.pop()

    if kind == "CALL" and value and frame.message.is_static:
        raise WriteProtection("value transfer inside STATICCALL")

    _consume_memory(frame, in_offset, in_length)
    _consume_memory(frame, out_offset, out_length)

    # EIP-2929 target access.
    warm = vm.state.warm_address(target)
    vm.tracer.on_account_access(target, not warm)
    frame.use_gas(gas.WARM_ACCESS if warm else gas.COLD_ACCOUNT_ACCESS)

    extra = 0
    if value:
        extra += gas.CALL_VALUE
        if kind == "CALL" and not vm.state.account_exists(target):
            extra += gas.NEW_ACCOUNT
    frame.use_gas(extra)

    gas_limit = min(gas_requested, gas.max_call_gas(frame.gas))
    frame.use_gas(gas_limit)
    if value:
        gas_limit += gas.CALL_STIPEND

    call_data = frame.memory.read(in_offset, in_length)

    if kind == "CALL":
        message = Message(
            caller=frame.address, to=target, code_address=target,
            value=value, data=call_data, gas=gas_limit,
            is_static=frame.message.is_static, depth=frame.depth + 1,
        )
    elif kind == "CALLCODE":
        message = Message(
            caller=frame.address, to=frame.address, code_address=target,
            value=value, data=call_data, gas=gas_limit,
            is_static=frame.message.is_static, depth=frame.depth + 1,
        )
    elif kind == "DELEGATECALL":
        message = Message(
            caller=frame.message.caller, to=frame.address, code_address=target,
            value=frame.message.value, data=call_data, gas=gas_limit,
            is_static=frame.message.is_static, depth=frame.depth + 1,
        )
    else:  # STATICCALL
        message = Message(
            caller=frame.address, to=target, code_address=target,
            value=0, data=call_data, gas=gas_limit,
            is_static=True, depth=frame.depth + 1,
        )

    result = vm.execute_message(message, kind=kind, transfer_value=(kind == "CALL"))

    frame.return_data = result.output
    frame.refund_gas(result.gas_left)
    if result.success:
        frame.stack.push(1)
    else:
        frame.stack.push(0)
    copy_length = min(out_length, len(result.output))
    if copy_length:
        frame.memory.write(out_offset, result.output[:copy_length])


@register(opcodes.CALL)
def call(vm, frame):
    _do_call(vm, frame, "CALL")


@register(opcodes.CALLCODE)
def callcode(vm, frame):
    _do_call(vm, frame, "CALLCODE")


@register(opcodes.DELEGATECALL)
def delegatecall(vm, frame):
    _do_call(vm, frame, "DELEGATECALL")


@register(opcodes.STATICCALL)
def staticcall(vm, frame):
    _do_call(vm, frame, "STATICCALL")


def _do_create(vm, frame, is_create2: bool):
    if frame.message.is_static:
        raise WriteProtection("CREATE inside STATICCALL")
    value = frame.stack.pop()
    offset, length = frame.stack.pop(), frame.stack.pop()
    salt = frame.stack.pop() if is_create2 else None

    if length > gas.MAX_INITCODE_SIZE:
        raise WriteProtection("init code exceeds EIP-3860 limit")
    frame.use_gas(gas.initcode_cost(length))
    if is_create2:
        frame.use_gas(gas.sha3_cost(length))
    _consume_memory(frame, offset, length)
    init_code = frame.memory.read(offset, length)

    sender = frame.address
    nonce = vm.state.get_nonce(sender)
    if salt is not None:
        new_address = to_address(
            keccak256(
                b"\xff" + sender + salt.to_bytes(32, "big") + keccak256(init_code)
            )
        )
    else:
        new_address = to_address(
            keccak256(rlp.encode([sender, rlp.encode_uint(nonce)]))
        )

    gas_limit = gas.max_call_gas(frame.gas)
    frame.use_gas(gas_limit)

    message = Message(
        caller=sender, to=new_address, code_address=new_address,
        value=value, data=b"", gas=gas_limit,
        is_create=True, depth=frame.depth + 1,
    )
    result = vm.execute_create(message, init_code)

    frame.refund_gas(result.gas_left)
    # Per EIP-211, CREATE only sets returndata on failure (revert data).
    frame.return_data = result.output if not result.success else b""
    if result.success:
        frame.stack.push(int.from_bytes(new_address, "big"))
    else:
        frame.stack.push(0)


@register(opcodes.CREATE)
def create(vm, frame):
    _do_create(vm, frame, is_create2=False)


@register(opcodes.CREATE2)
def create2(vm, frame):
    _do_create(vm, frame, is_create2=True)


@register(opcodes.STOP)
def stop(vm, frame):
    frame.output = b""
    frame.halted = True
    return True


@register(opcodes.RETURN)
def return_(vm, frame):
    offset, length = frame.stack.pop(), frame.stack.pop()
    _consume_memory(frame, offset, length)
    frame.output = frame.memory.read(offset, length)
    frame.halted = True
    return True


@register(opcodes.REVERT)
def revert(vm, frame):
    offset, length = frame.stack.pop(), frame.stack.pop()
    _consume_memory(frame, offset, length)
    frame.output = frame.memory.read(offset, length)
    frame.halted = True
    frame.reverted = True
    return True


@register(opcodes.INVALID)
def invalid(vm, frame):
    from repro.evm.exceptions import InvalidOpcode

    raise InvalidOpcode(0xFE)


@register(opcodes.SELFDESTRUCT)
def selfdestruct(vm, frame):
    if frame.message.is_static:
        raise WriteProtection("SELFDESTRUCT inside STATICCALL")
    beneficiary = to_address(frame.stack.pop())
    warm = vm.state.warm_address(beneficiary)
    if not warm:
        frame.use_gas(gas.COLD_ACCOUNT_ACCESS)
    balance = vm.state.get_balance(frame.address)
    if balance and not vm.state.account_exists(beneficiary):
        frame.use_gas(gas.SELFDESTRUCT_NEW_ACCOUNT)
    vm.state.add_balance(beneficiary, balance)
    vm.state.set_balance(frame.address, 0)
    vm.state.delete_account(frame.address)
    frame.output = b""
    frame.halted = True
    return True
