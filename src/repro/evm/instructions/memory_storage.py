"""STACK, MEMORY, STORAGE, JUMP, and LOG instruction handlers."""

from __future__ import annotations

from repro.evm import gas, opcodes
from repro.evm.exceptions import InvalidJump, OutOfGas, WriteProtection
from repro.evm.instructions import register


@register(opcodes.POP)
def pop(vm, frame):
    frame.stack.pop()


@register(opcodes.MLOAD)
def mload(vm, frame):
    offset = frame.stack.pop()
    frame.use_gas(gas.memory_expansion_cost(frame.memory.size, offset, 32))
    frame.memory.expand_to(offset, 32)
    frame.stack.push(int.from_bytes(frame.memory.read(offset, 32), "big"))


@register(opcodes.MSTORE)
def mstore(vm, frame):
    offset, value = frame.stack.pop(), frame.stack.pop()
    frame.use_gas(gas.memory_expansion_cost(frame.memory.size, offset, 32))
    frame.memory.expand_to(offset, 32)
    frame.memory.write(offset, value.to_bytes(32, "big"))


@register(opcodes.MSTORE8)
def mstore8(vm, frame):
    offset, value = frame.stack.pop(), frame.stack.pop()
    frame.use_gas(gas.memory_expansion_cost(frame.memory.size, offset, 1))
    frame.memory.expand_to(offset, 1)
    frame.memory.write_byte(offset, value)


@register(opcodes.SLOAD)
def sload(vm, frame):
    key = frame.stack.pop()
    warm = vm.state.warm_slot(frame.address, key)
    frame.use_gas(gas.WARM_ACCESS if warm else gas.COLD_SLOAD)
    value = vm.state.get_storage(frame.address, key)
    frame.storage_keys_touched.add(key)
    vm.tracer.on_storage_read(frame.address, key, value, not warm)
    frame.stack.push(value)


@register(opcodes.SSTORE)
def sstore(vm, frame):
    if frame.message.is_static:
        raise WriteProtection("SSTORE inside STATICCALL")
    key, value = frame.stack.pop(), frame.stack.pop()
    if frame.gas <= gas.SSTORE_SENTRY:
        raise OutOfGas("SSTORE sentry: not enough gas remaining")
    warm = vm.state.warm_slot(frame.address, key)
    if not warm:
        frame.use_gas(gas.COLD_SLOAD)
    original = vm.state.get_original_storage(frame.address, key)
    current = vm.state.get_storage(frame.address, key)
    outcome = gas.sstore_outcome(original, current, value)
    frame.use_gas(outcome.gas)
    if outcome.refund_delta > 0:
        vm.state.add_refund(outcome.refund_delta)
    elif outcome.refund_delta < 0:
        vm.state.sub_refund(-outcome.refund_delta)
    vm.state.set_storage(frame.address, key, value)
    frame.storage_keys_touched.add(key)
    vm.tracer.on_storage_write(frame.address, key, value, not warm)


@register(opcodes.JUMP)
def jump(vm, frame):
    dest = frame.stack.pop()
    if dest not in frame.valid_jumpdests:
        raise InvalidJump(f"jump to {dest}")
    frame.pc = dest
    return True


@register(opcodes.JUMPI)
def jumpi(vm, frame):
    dest, condition = frame.stack.pop(), frame.stack.pop()
    if condition:
        if dest not in frame.valid_jumpdests:
            raise InvalidJump(f"jumpi to {dest}")
        frame.pc = dest
        return True
    return None


@register(opcodes.PC)
def pc_(vm, frame):
    frame.stack.push(frame.pc)


@register(opcodes.MSIZE)
def msize(vm, frame):
    frame.stack.push(frame.memory.size)


@register(opcodes.GAS)
def gas_(vm, frame):
    frame.stack.push(frame.gas)


@register(opcodes.JUMPDEST)
def jumpdest(vm, frame):
    pass


@register(opcodes.PUSH0)
def push0(vm, frame):
    frame.stack.push(0)


def _make_push(size: int):
    def push_n(vm, frame):
        start = frame.pc + 1
        immediate = frame.code[start:start + size]
        frame.stack.push(int.from_bytes(immediate.ljust(size, b"\x00"), "big"))

    return push_n


for _size in range(1, 33):
    register(0x5F + _size)(_make_push(_size))


def _make_dup(n: int):
    def dup_n(vm, frame):
        frame.stack.dup(n)

    return dup_n


def _make_swap(n: int):
    def swap_n(vm, frame):
        frame.stack.swap(n)

    return swap_n


for _n in range(1, 17):
    register(0x7F + _n)(_make_dup(_n))
    register(0x8F + _n)(_make_swap(_n))


def _make_log(topic_count: int):
    def log_n(vm, frame):
        if frame.message.is_static:
            raise WriteProtection("LOG inside STATICCALL")
        offset, length = frame.stack.pop(), frame.stack.pop()
        topics = [frame.stack.pop() for _ in range(topic_count)]
        frame.use_gas(
            gas.LOG_TOPIC * topic_count
            + gas.LOG_DATA_BYTE * length
            + gas.memory_expansion_cost(frame.memory.size, offset, length)
        )
        frame.memory.expand_to(offset, length)
        data = frame.memory.read(offset, length)
        frame.logs.append((frame.address, topics, data))
        vm.logs.append((frame.address, topics, data))
        vm.tracer.on_log(frame.address, topics, data)

    return log_n


for _topics in range(5):
    register(0xA0 + _topics)(_make_log(_topics))
