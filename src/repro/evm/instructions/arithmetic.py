"""ARITHMETIC, COMPARISON, bitwise, and SHA3 instruction handlers.

All arithmetic is modulo 2**256; signed operations interpret words as
two's complement, per the yellow paper.
"""

from __future__ import annotations

from repro.crypto.keccak import keccak256
from repro.evm import gas, opcodes
from repro.evm.instructions import register

WORD = 1 << 256
SIGN_BIT = 1 << 255
MASK = WORD - 1


def to_signed(value: int) -> int:
    """Interpret a 256-bit word as two's-complement."""
    return value - WORD if value & SIGN_BIT else value


def to_unsigned(value: int) -> int:
    return value & MASK


@register(opcodes.ADD)
def add(vm, frame):
    b, a = frame.stack.pop(), frame.stack.pop()
    frame.stack.push(b + a)


@register(opcodes.MUL)
def mul(vm, frame):
    b, a = frame.stack.pop(), frame.stack.pop()
    frame.stack.push(b * a)


@register(opcodes.SUB)
def sub(vm, frame):
    a, b = frame.stack.pop(), frame.stack.pop()
    frame.stack.push(a - b)


@register(opcodes.DIV)
def div(vm, frame):
    a, b = frame.stack.pop(), frame.stack.pop()
    frame.stack.push(a // b if b else 0)


@register(opcodes.SDIV)
def sdiv(vm, frame):
    a, b = to_signed(frame.stack.pop()), to_signed(frame.stack.pop())
    if b == 0:
        frame.stack.push(0)
    else:
        quotient = abs(a) // abs(b)
        if (a < 0) != (b < 0):
            quotient = -quotient
        frame.stack.push(to_unsigned(quotient))


@register(opcodes.MOD)
def mod(vm, frame):
    a, b = frame.stack.pop(), frame.stack.pop()
    frame.stack.push(a % b if b else 0)


@register(opcodes.SMOD)
def smod(vm, frame):
    a, b = to_signed(frame.stack.pop()), to_signed(frame.stack.pop())
    if b == 0:
        frame.stack.push(0)
    else:
        result = abs(a) % abs(b)
        if a < 0:
            result = -result
        frame.stack.push(to_unsigned(result))


@register(opcodes.ADDMOD)
def addmod(vm, frame):
    a, b, n = frame.stack.pop(), frame.stack.pop(), frame.stack.pop()
    frame.stack.push((a + b) % n if n else 0)


@register(opcodes.MULMOD)
def mulmod(vm, frame):
    a, b, n = frame.stack.pop(), frame.stack.pop(), frame.stack.pop()
    frame.stack.push((a * b) % n if n else 0)


@register(opcodes.EXP)
def exp(vm, frame):
    base, exponent = frame.stack.pop(), frame.stack.pop()
    frame.use_gas(gas.exp_cost(exponent))
    frame.stack.push(pow(base, exponent, WORD))


@register(opcodes.SIGNEXTEND)
def signextend(vm, frame):
    byte_index, value = frame.stack.pop(), frame.stack.pop()
    if byte_index >= 31:
        frame.stack.push(value)
        return
    sign_position = 8 * byte_index + 7
    if value & (1 << sign_position):
        frame.stack.push(value | (MASK << sign_position) & MASK)
    else:
        frame.stack.push(value & ((1 << (sign_position + 1)) - 1))


@register(opcodes.LT)
def lt(vm, frame):
    a, b = frame.stack.pop(), frame.stack.pop()
    frame.stack.push(1 if a < b else 0)


@register(opcodes.GT)
def gt(vm, frame):
    a, b = frame.stack.pop(), frame.stack.pop()
    frame.stack.push(1 if a > b else 0)


@register(opcodes.SLT)
def slt(vm, frame):
    a, b = to_signed(frame.stack.pop()), to_signed(frame.stack.pop())
    frame.stack.push(1 if a < b else 0)


@register(opcodes.SGT)
def sgt(vm, frame):
    a, b = to_signed(frame.stack.pop()), to_signed(frame.stack.pop())
    frame.stack.push(1 if a > b else 0)


@register(opcodes.EQ)
def eq(vm, frame):
    a, b = frame.stack.pop(), frame.stack.pop()
    frame.stack.push(1 if a == b else 0)


@register(opcodes.ISZERO)
def iszero(vm, frame):
    frame.stack.push(1 if frame.stack.pop() == 0 else 0)


@register(opcodes.AND)
def and_(vm, frame):
    frame.stack.push(frame.stack.pop() & frame.stack.pop())


@register(opcodes.OR)
def or_(vm, frame):
    frame.stack.push(frame.stack.pop() | frame.stack.pop())


@register(opcodes.XOR)
def xor(vm, frame):
    frame.stack.push(frame.stack.pop() ^ frame.stack.pop())


@register(opcodes.NOT)
def not_(vm, frame):
    frame.stack.push(~frame.stack.pop())


@register(opcodes.BYTE)
def byte_(vm, frame):
    index, value = frame.stack.pop(), frame.stack.pop()
    if index >= 32:
        frame.stack.push(0)
    else:
        frame.stack.push((value >> (8 * (31 - index))) & 0xFF)


@register(opcodes.SHL)
def shl(vm, frame):
    shift, value = frame.stack.pop(), frame.stack.pop()
    frame.stack.push(0 if shift >= 256 else value << shift)


@register(opcodes.SHR)
def shr(vm, frame):
    shift, value = frame.stack.pop(), frame.stack.pop()
    frame.stack.push(0 if shift >= 256 else value >> shift)


@register(opcodes.SAR)
def sar(vm, frame):
    shift, value = frame.stack.pop(), to_signed(frame.stack.pop())
    if shift >= 256:
        frame.stack.push(MASK if value < 0 else 0)
    else:
        frame.stack.push(to_unsigned(value >> shift))


@register(opcodes.SHA3)
def sha3(vm, frame):
    offset, length = frame.stack.pop(), frame.stack.pop()
    frame.use_gas(
        gas.sha3_cost(length)
        + gas.memory_expansion_cost(frame.memory.size, offset, length)
    )
    frame.memory.expand_to(offset, length)
    digest = keccak256(frame.memory.read(offset, length))
    frame.stack.push(int.from_bytes(digest, "big"))
