"""Frame-state, block, calldata/code/returndata, and account queries.

The 0x30–0x4A range is what the paper maps to the HEVM's 32-slot frame
state partition; account queries (BALANCE, EXTCODE*) are world-state
K-V reads that become ORAM queries in the HarDTAPE configuration.
"""

from __future__ import annotations

from repro.evm import gas, opcodes
from repro.evm.exceptions import ReturnDataOutOfBounds
from repro.evm.instructions import register
from repro.evm.memory import read_padded
from repro.state.account import to_address


def _address_access_gas(vm, frame, address) -> None:
    """Charge EIP-2929 warm/cold gas for touching ``address``."""
    warm = vm.state.warm_address(address)
    vm.tracer.on_account_access(address, not warm)
    frame.use_gas(gas.WARM_ACCESS if warm else gas.COLD_ACCOUNT_ACCESS)


@register(opcodes.ADDRESS)
def address_(vm, frame):
    frame.stack.push(int.from_bytes(frame.address, "big"))


@register(opcodes.BALANCE)
def balance(vm, frame):
    target = to_address(frame.stack.pop())
    _address_access_gas(vm, frame, target)
    frame.stack.push(vm.state.get_balance(target))


@register(opcodes.ORIGIN)
def origin(vm, frame):
    frame.stack.push(int.from_bytes(vm.origin, "big"))


@register(opcodes.CALLER)
def caller(vm, frame):
    frame.stack.push(int.from_bytes(frame.message.caller, "big"))


@register(opcodes.CALLVALUE)
def callvalue(vm, frame):
    frame.stack.push(frame.message.value)


@register(opcodes.CALLDATALOAD)
def calldataload(vm, frame):
    offset = frame.stack.pop()
    if offset > len(frame.message.data) + 32:
        frame.stack.push(0)
        return
    word = read_padded(frame.message.data, offset, 32)
    frame.stack.push(int.from_bytes(word, "big"))


@register(opcodes.CALLDATASIZE)
def calldatasize(vm, frame):
    frame.stack.push(len(frame.message.data))


@register(opcodes.CALLDATACOPY)
def calldatacopy(vm, frame):
    dest, offset, length = frame.stack.pop(), frame.stack.pop(), frame.stack.pop()
    frame.use_gas(
        gas.copy_cost(length)
        + gas.memory_expansion_cost(frame.memory.size, dest, length)
    )
    frame.memory.expand_to(dest, length)
    frame.memory.write(dest, read_padded(frame.message.data, offset, length))


@register(opcodes.CODESIZE)
def codesize(vm, frame):
    frame.stack.push(len(frame.code))


@register(opcodes.CODECOPY)
def codecopy(vm, frame):
    dest, offset, length = frame.stack.pop(), frame.stack.pop(), frame.stack.pop()
    frame.use_gas(
        gas.copy_cost(length)
        + gas.memory_expansion_cost(frame.memory.size, dest, length)
    )
    frame.memory.expand_to(dest, length)
    frame.memory.write(dest, read_padded(frame.code, offset, length))


@register(opcodes.GASPRICE)
def gasprice(vm, frame):
    frame.stack.push(vm.gas_price)


@register(opcodes.EXTCODESIZE)
def extcodesize(vm, frame):
    target = to_address(frame.stack.pop())
    _address_access_gas(vm, frame, target)
    frame.stack.push(vm.state.get_code_size(target))


@register(opcodes.EXTCODECOPY)
def extcodecopy(vm, frame):
    target = to_address(frame.stack.pop())
    dest, offset, length = frame.stack.pop(), frame.stack.pop(), frame.stack.pop()
    _address_access_gas(vm, frame, target)
    frame.use_gas(
        gas.copy_cost(length)
        + gas.memory_expansion_cost(frame.memory.size, dest, length)
    )
    frame.memory.expand_to(dest, length)
    code = vm.state.get_code(target)
    vm.tracer.on_code_fetch(target, len(code))
    frame.memory.write(dest, read_padded(code, offset, length))


@register(opcodes.RETURNDATASIZE)
def returndatasize(vm, frame):
    frame.stack.push(len(frame.return_data))


@register(opcodes.RETURNDATACOPY)
def returndatacopy(vm, frame):
    dest, offset, length = frame.stack.pop(), frame.stack.pop(), frame.stack.pop()
    if offset + length > len(frame.return_data):
        raise ReturnDataOutOfBounds(
            f"returndata is {len(frame.return_data)} bytes, "
            f"copy wants [{offset}, {offset + length})"
        )
    frame.use_gas(
        gas.copy_cost(length)
        + gas.memory_expansion_cost(frame.memory.size, dest, length)
    )
    frame.memory.expand_to(dest, length)
    frame.memory.write(dest, frame.return_data[offset:offset + length])


@register(opcodes.EXTCODEHASH)
def extcodehash(vm, frame):
    target = to_address(frame.stack.pop())
    _address_access_gas(vm, frame, target)
    frame.stack.push(int.from_bytes(vm.state.get_code_hash(target), "big"))


@register(opcodes.BLOCKHASH)
def blockhash(vm, frame):
    number = frame.stack.pop()
    frame.stack.push(int.from_bytes(vm.chain.block_hash(number), "big"))


@register(opcodes.COINBASE)
def coinbase(vm, frame):
    frame.stack.push(int.from_bytes(vm.chain.header.coinbase, "big"))


@register(opcodes.TIMESTAMP)
def timestamp(vm, frame):
    frame.stack.push(vm.chain.header.timestamp)


@register(opcodes.NUMBER)
def number(vm, frame):
    frame.stack.push(vm.chain.header.number)


@register(opcodes.PREVRANDAO)
def prevrandao(vm, frame):
    frame.stack.push(vm.chain.header.prev_randao)


@register(opcodes.GASLIMIT)
def gaslimit(vm, frame):
    frame.stack.push(vm.chain.header.gas_limit)


@register(opcodes.CHAINID)
def chainid(vm, frame):
    frame.stack.push(vm.chain.header.chain_id)


@register(opcodes.SELFBALANCE)
def selfbalance(vm, frame):
    frame.stack.push(vm.state.get_balance(frame.address))


@register(opcodes.BASEFEE)
def basefee(vm, frame):
    frame.stack.push(vm.chain.header.base_fee)
