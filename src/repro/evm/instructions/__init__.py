"""Instruction handlers, registered into a single dispatch table.

Each handler has signature ``handler(vm, frame)`` where ``vm`` is the
:class:`~repro.evm.interpreter.Interpreter`.  The dispatch loop charges
the opcode's static base gas before invoking the handler; handlers
charge any dynamic gas themselves.  Handlers that change the program
counter (jumps, halts) set ``frame.pc`` / ``frame.halted`` directly and
return ``True`` so the loop skips its normal PC advance.
"""

from __future__ import annotations

from typing import Callable

Handler = Callable[..., bool | None]

DISPATCH: dict[int, Handler] = {}


def register(opcode: int) -> Callable[[Handler], Handler]:
    """Decorator registering ``handler`` for ``opcode``."""

    def wrap(handler: Handler) -> Handler:
        if opcode in DISPATCH:
            raise ValueError(f"duplicate handler for opcode 0x{opcode:02x}")
        DISPATCH[opcode] = handler
        return handler

    return wrap


def _load_all() -> None:
    # Import for side effects: each module registers its handlers.
    from repro.evm.instructions import arithmetic  # noqa: F401
    from repro.evm.instructions import environment  # noqa: F401
    from repro.evm.instructions import memory_storage  # noqa: F401
    from repro.evm.instructions import calls  # noqa: F401


_load_all()
