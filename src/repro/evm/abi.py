"""Minimal Solidity ABI encoding/decoding.

Covers the types the workload contracts and examples need: ``uintN``,
``intN``, ``address``, ``bool``, ``bytesN``, dynamic ``bytes`` /
``string``, and one-dimensional dynamic arrays ``T[]`` of static
element types.  Function calls are encoded as
``selector(signature) || encode(args)`` exactly as Solidity does, so
calldata built here is byte-compatible with mainnet tooling.
"""

from __future__ import annotations

from repro.crypto.keccak import keccak256

WORD = 32


class AbiError(Exception):
    """Malformed type string or value."""


def function_selector(signature: str) -> bytes:
    """First 4 bytes of keccak256 of the canonical signature."""
    return keccak256(signature.encode())[:4]


# ---------------------------------------------------------------------------
# Type helpers
# ---------------------------------------------------------------------------


def _is_dynamic(type_name: str) -> bool:
    if type_name.endswith("[]"):
        return True
    return type_name in ("bytes", "string")


def _check_uint(value: int, bits: int) -> int:
    if not 0 <= value < 2**bits:
        raise AbiError(f"value {value} out of range for uint{bits}")
    return value


def _check_int(value: int, bits: int) -> int:
    bound = 2 ** (bits - 1)
    if not -bound <= value < bound:
        raise AbiError(f"value {value} out of range for int{bits}")
    return value % 2**256


def _encode_static(type_name: str, value) -> bytes:
    if type_name.startswith("uint"):
        bits = int(type_name[4:] or 256)
        return _check_uint(int(value), bits).to_bytes(WORD, "big")
    if type_name.startswith("int"):
        bits = int(type_name[3:] or 256)
        return _check_int(int(value), bits).to_bytes(WORD, "big")
    if type_name == "address":
        if isinstance(value, int):
            value = value.to_bytes(20, "big")
        if len(value) != 20:
            raise AbiError("address must be 20 bytes")
        return bytes(value).rjust(WORD, b"\x00")
    if type_name == "bool":
        return int(bool(value)).to_bytes(WORD, "big")
    if type_name.startswith("bytes") and type_name != "bytes":
        size = int(type_name[5:])
        if not 1 <= size <= 32:
            raise AbiError(f"invalid fixed bytes size {size}")
        if len(value) != size:
            raise AbiError(f"expected {size} bytes, got {len(value)}")
        return bytes(value).ljust(WORD, b"\x00")
    raise AbiError(f"unsupported static type {type_name!r}")


def _encode_dynamic(type_name: str, value) -> bytes:
    if type_name in ("bytes", "string"):
        raw = value.encode() if isinstance(value, str) else bytes(value)
        padded_length = (len(raw) + WORD - 1) // WORD * WORD
        return len(raw).to_bytes(WORD, "big") + raw.ljust(padded_length, b"\x00")
    if type_name.endswith("[]"):
        element_type = type_name[:-2]
        if _is_dynamic(element_type):
            raise AbiError("nested dynamic arrays are not supported")
        body = b"".join(_encode_static(element_type, item) for item in value)
        return len(value).to_bytes(WORD, "big") + body
    raise AbiError(f"unsupported dynamic type {type_name!r}")


def encode(types: list[str], values: list) -> bytes:
    """ABI-encode ``values`` per ``types`` (head/tail layout)."""
    if len(types) != len(values):
        raise AbiError("types/values length mismatch")
    heads: list[bytes | None] = []
    tails: list[bytes] = []
    for type_name, value in zip(types, values):
        if _is_dynamic(type_name):
            heads.append(None)  # offset patched below
            tails.append(_encode_dynamic(type_name, value))
        else:
            heads.append(_encode_static(type_name, value))
            tails.append(b"")
    head_size = WORD * len(types)
    out_head = b""
    out_tail = b""
    for head, tail in zip(heads, tails):
        if head is None:
            out_head += (head_size + len(out_tail)).to_bytes(WORD, "big")
            out_tail += tail
        else:
            out_head += head
    return out_head + out_tail


def encode_call(signature: str, values: list) -> bytes:
    """``selector || encode(args)`` for ``signature`` like ``"f(uint256)"``."""
    open_paren = signature.index("(")
    types_blob = signature[open_paren + 1:-1]
    types = [t for t in types_blob.split(",") if t]
    return function_selector(signature) + encode(types, values)


# ---------------------------------------------------------------------------
# Decoding
# ---------------------------------------------------------------------------


def _decode_static(type_name: str, word: bytes):
    if type_name.startswith("uint"):
        return int.from_bytes(word, "big")
    if type_name.startswith("int"):
        value = int.from_bytes(word, "big")
        return value - 2**256 if value >> 255 else value
    if type_name == "address":
        return word[12:]
    if type_name == "bool":
        return bool(int.from_bytes(word, "big"))
    if type_name.startswith("bytes") and type_name != "bytes":
        size = int(type_name[5:])
        return word[:size]
    raise AbiError(f"unsupported static type {type_name!r}")


def decode(types: list[str], data: bytes) -> list:
    """Inverse of :func:`encode`."""
    out = []
    head_size = WORD * len(types)
    if len(data) < head_size:
        raise AbiError("data shorter than head")
    for index, type_name in enumerate(types):
        word = data[index * WORD:(index + 1) * WORD]
        if not _is_dynamic(type_name):
            out.append(_decode_static(type_name, word))
            continue
        offset = int.from_bytes(word, "big")
        if offset + WORD > len(data):
            raise AbiError("dynamic offset out of bounds")
        length = int.from_bytes(data[offset:offset + WORD], "big")
        body = data[offset + WORD:]
        if type_name == "bytes":
            if length > len(body):
                raise AbiError("bytes length out of bounds")
            out.append(body[:length])
        elif type_name == "string":
            if length > len(body):
                raise AbiError("string length out of bounds")
            out.append(body[:length].decode())
        else:
            element_type = type_name[:-2]
            if length * WORD > len(body):
                raise AbiError("array length out of bounds")
            out.append([
                _decode_static(element_type, body[i * WORD:(i + 1) * WORD])
                for i in range(length)
            ])
    return out
