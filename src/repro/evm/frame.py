"""Execution frames and the logical call stack.

An *execution frame* (paper §II-A) is the context between a CALL and its
RETURN: runtime stack, the four memory-likes, frame state (address,
caller, value, remaining gas, …), and the frame's view of the world
state (handled by journal snapshots).  The frame's byte footprint is
what HarDTAPE's layer-2 call stack manages in 1 KB pages, so
:meth:`ExecutionFrame.footprint` reports sizes per memory-like exactly
as Table I measures them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.evm.memory import Memory
from repro.evm.stack import Stack
from repro.state.account import Address

CALL_DEPTH_LIMIT = 1024


@dataclass(frozen=True)
class Message:
    """The parameters that create an execution frame."""

    caller: Address
    to: Address  # the frame's storage/context address
    code_address: Address  # whose code runs (differs under DELEGATECALL)
    value: int
    data: bytes
    gas: int
    is_static: bool = False
    is_create: bool = False
    depth: int = 0


@dataclass
class FrameFootprint:
    """Byte sizes of one frame's memory-likes (Table I columns)."""

    code: int
    input: int
    memory: int
    return_data: int
    storage_keys: int

    @property
    def total(self) -> int:
        """Total swappable frame bytes (stack + memory-likes + state)."""
        # 32 KB runtime stack partition + 32 frame-state slots (1 KB).
        return 32 * 1024 + 1024 + self.code + self.input + self.memory + self.return_data


class ExecutionFrame:
    """One live frame on the call stack."""

    def __init__(self, message: Message, code: bytes) -> None:
        self.message = message
        self.code = code
        self.pc = 0
        self.stack = Stack()
        self.memory = Memory()
        self.return_data = b""  # ReturnData of the *last completed* subcall
        self.gas = message.gas
        self.valid_jumpdests = analyze_jumpdests(code)
        self.output = b""  # bytes produced by RETURN/REVERT
        self.reverted = False
        self.halted = False
        self.storage_keys_touched: set[int] = set()
        self.logs: list[tuple[Address, list[int], bytes]] = []

    @property
    def address(self) -> Address:
        return self.message.to

    @property
    def depth(self) -> int:
        return self.message.depth

    def use_gas(self, amount: int) -> None:
        """Charge gas; raises OutOfGas when exhausted."""
        from repro.evm.exceptions import OutOfGas

        if amount > self.gas:
            available = self.gas
            self.gas = 0
            raise OutOfGas(f"needs {amount}, has {available}")
        self.gas -= amount

    def refund_gas(self, amount: int) -> None:
        self.gas += amount

    def footprint(self) -> FrameFootprint:
        """Current memory-like sizes, as Table I reports them."""
        return FrameFootprint(
            code=len(self.code),
            input=len(self.message.data),
            memory=self.memory.size,
            return_data=len(self.return_data),
            storage_keys=len(self.storage_keys_touched),
        )


def analyze_jumpdests(code: bytes) -> frozenset[int]:
    """Positions of JUMPDEST bytes that are not inside PUSH immediates."""
    from repro.evm.opcodes import JUMPDEST, push_size

    valid = set()
    pc = 0
    length = len(code)
    while pc < length:
        opcode = code[pc]
        if opcode == JUMPDEST:
            valid.add(pc)
        pc += 1 + push_size(opcode)
    return frozenset(valid)


@dataclass
class Log:
    """One LOG entry in a transaction trace."""

    address: Address
    topics: list[int]
    data: bytes


@dataclass
class CallRecord:
    """One node of the call tree recorded by the tracer."""

    kind: str  # CALL / DELEGATECALL / STATICCALL / CALLCODE / CREATE / CREATE2
    sender: Address
    to: Address
    value: int
    input: bytes
    gas: int
    depth: int
    output: bytes = b""
    success: bool = True
    error: str | None = None
    calls: list["CallRecord"] = field(default_factory=list)
