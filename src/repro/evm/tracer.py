"""Execution tracers.

The paper's on-chip *tracer* records the behaviour of pre-executed
transactions — ReturnData, gas cost, balance transfers, storage
modifications — and stores them until the bundle finishes (workflow step
9).  Three concrete tracers cover the repository's needs:

* :class:`StructTracer` — step-by-step PC / opcode / gas / stack logs,
  shaped like ``debug_traceTransaction`` output, used for the paper's
  correctness check (§VI-B) against the node's ground truth.
* :class:`CallTracer` — the call tree with per-frame footprints, feeding
  the Table I statistics.
* :class:`CountingTracer` — cheap per-group instruction counts and event
  tallies that drive the hardware timing model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.evm import opcodes
from repro.evm.frame import CallRecord, ExecutionFrame, FrameFootprint
from repro.state.account import Address


class Tracer:
    """No-op base tracer; subclasses override the hooks they need."""

    def on_step(self, frame: ExecutionFrame, opcode: int) -> None:
        """Called before each instruction executes."""

    def on_frame_enter(self, frame: ExecutionFrame, kind: str) -> None:
        """Called when a new execution frame is pushed."""

    def on_frame_exit(self, frame: ExecutionFrame, kind: str, error: str | None) -> None:
        """Called when a frame completes (success, revert, or error)."""

    def on_storage_read(self, address: Address, key: int, value: int, cold: bool) -> None:
        """Called on SLOAD."""

    def on_storage_write(self, address: Address, key: int, value: int, cold: bool) -> None:
        """Called on SSTORE."""

    def on_account_access(self, address: Address, cold: bool) -> None:
        """Called on BALANCE/EXTCODE*/CALL-family account touches."""

    def on_code_fetch(self, address: Address, size: int) -> None:
        """Called when a frame's bytecode is loaded."""

    def on_log(self, address: Address, topics: list[int], data: bytes) -> None:
        """Called on LOG0..LOG4."""


@dataclass
class StructLog:
    """One step of a struct trace (debug_traceTransaction format)."""

    pc: int
    op: str
    gas: int
    depth: int
    stack: list[int]

    def to_dict(self) -> dict:
        return {
            "pc": self.pc,
            "op": self.op,
            "gas": self.gas,
            "depth": self.depth,
            "stack": [f"0x{v:x}" for v in self.stack],
        }


class StructTracer(Tracer):
    """Records every step; optionally with full stack snapshots."""

    def __init__(self, capture_stack: bool = True) -> None:
        self.logs: list[StructLog] = []
        self._capture_stack = capture_stack

    def on_step(self, frame: ExecutionFrame, opcode: int) -> None:
        self.logs.append(
            StructLog(
                pc=frame.pc,
                op=opcodes.name(opcode),
                gas=frame.gas,
                depth=frame.depth + 1,  # Geth numbers depth from 1
                stack=frame.stack.snapshot() if self._capture_stack else [],
            )
        )


class CallTracer(Tracer):
    """Builds the call tree and collects per-frame footprints."""

    def __init__(self) -> None:
        self.root: CallRecord | None = None
        self._stack: list[CallRecord] = []
        self.footprints: list[FrameFootprint] = []

    def on_frame_enter(self, frame: ExecutionFrame, kind: str) -> None:
        record = CallRecord(
            kind=kind,
            sender=frame.message.caller,
            to=frame.message.to,
            value=frame.message.value,
            input=frame.message.data,
            gas=frame.message.gas,
            depth=frame.depth,
        )
        if self._stack:
            self._stack[-1].calls.append(record)
        else:
            self.root = record
        self._stack.append(record)

    def on_frame_exit(self, frame: ExecutionFrame, kind: str, error: str | None) -> None:
        record = self._stack.pop()
        record.output = frame.output
        record.success = error is None
        record.error = error
        self.footprints.append(frame.footprint())

    @property
    def max_depth(self) -> int:
        """Deepest call depth reached (1 = no subcalls), as in Table I."""

        def depth_of(record: CallRecord) -> int:
            if not record.calls:
                return 1
            return 1 + max(depth_of(child) for child in record.calls)

        return depth_of(self.root) if self.root else 0


@dataclass
class EventCounts:
    """Aggregated event tallies driving the hardware timing model."""

    instructions: int = 0
    by_group: dict[str, int] = field(default_factory=dict)
    storage_reads: int = 0
    storage_writes: int = 0
    cold_slots: int = 0
    cold_accounts: int = 0
    account_accesses: int = 0
    frames: int = 0
    code_bytes_fetched: int = 0
    code_fetches: int = 0
    logs: int = 0
    max_memory_bytes: int = 0

    def to_dict(self) -> dict:
        """Canonical (sorted-group) form for reconciliation and export."""
        return {
            "instructions": self.instructions,
            "by_group": dict(sorted(self.by_group.items())),
            "storage_reads": self.storage_reads,
            "storage_writes": self.storage_writes,
            "cold_slots": self.cold_slots,
            "cold_accounts": self.cold_accounts,
            "account_accesses": self.account_accesses,
            "frames": self.frames,
            "code_bytes_fetched": self.code_bytes_fetched,
            "code_fetches": self.code_fetches,
            "logs": self.logs,
            "max_memory_bytes": self.max_memory_bytes,
        }


class CountingTracer(Tracer):
    """O(1)-per-step tallies; no stack snapshots, no log storage."""

    def __init__(self) -> None:
        self.counts = EventCounts()

    def on_step(self, frame: ExecutionFrame, opcode: int) -> None:
        counts = self.counts
        counts.instructions += 1
        entry = opcodes.info(opcode)
        group = entry.group.value if entry else "invalid"
        counts.by_group[group] = counts.by_group.get(group, 0) + 1
        if frame.memory.size > counts.max_memory_bytes:
            counts.max_memory_bytes = frame.memory.size

    def on_frame_enter(self, frame: ExecutionFrame, kind: str) -> None:
        self.counts.frames += 1

    def on_storage_read(self, address: Address, key: int, value: int, cold: bool) -> None:
        self.counts.storage_reads += 1
        if cold:
            self.counts.cold_slots += 1

    def on_storage_write(self, address: Address, key: int, value: int, cold: bool) -> None:
        self.counts.storage_writes += 1
        if cold:
            self.counts.cold_slots += 1

    def on_account_access(self, address: Address, cold: bool) -> None:
        self.counts.account_accesses += 1
        if cold:
            self.counts.cold_accounts += 1

    def on_code_fetch(self, address: Address, size: int) -> None:
        self.counts.code_fetches += 1
        self.counts.code_bytes_fetched += size

    def on_log(self, address: Address, topics: list[int], data: bytes) -> None:
        self.counts.logs += 1


class MultiTracer(Tracer):
    """Fan out hooks to several tracers."""

    def __init__(self, *tracers: Tracer) -> None:
        self.tracers = list(tracers)

    def on_step(self, frame, opcode):
        for tracer in self.tracers:
            tracer.on_step(frame, opcode)

    def on_frame_enter(self, frame, kind):
        for tracer in self.tracers:
            tracer.on_frame_enter(frame, kind)

    def on_frame_exit(self, frame, kind, error):
        for tracer in self.tracers:
            tracer.on_frame_exit(frame, kind, error)

    def on_storage_read(self, address, key, value, cold):
        for tracer in self.tracers:
            tracer.on_storage_read(address, key, value, cold)

    def on_storage_write(self, address, key, value, cold):
        for tracer in self.tracers:
            tracer.on_storage_write(address, key, value, cold)

    def on_account_access(self, address, cold):
        for tracer in self.tracers:
            tracer.on_account_access(address, cold)

    def on_code_fetch(self, address, size):
        for tracer in self.tracers:
            tracer.on_code_fetch(address, size)

    def on_log(self, address, topics, data):
        for tracer in self.tracers:
            tracer.on_log(address, topics, data)
