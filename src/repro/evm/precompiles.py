"""Precompiled contracts at addresses 0x01–0x04.

The evaluation workloads exercise ecrecover (0x01), sha256 (0x02),
ripemd160 (0x03), and identity (0x04) — the precompiles that appear in
ordinary DeFi transactions.  Each returns ``(gas_cost, output)`` or
raises on failure.
"""

from __future__ import annotations

import hashlib
from typing import Callable

from repro.crypto.ecc import InvalidSignature, PublicKey, Signature, recover_address
from repro.state.account import Address, to_address

Precompile = Callable[[bytes], tuple[int, bytes]]


def _ecrecover(data: bytes) -> tuple[int, bytes]:
    """secp256k1 signature recovery.

    The simulation cannot recover a public key from (r, s, v) without
    carrying the key, so workload calldata embeds the uncompressed
    public key after the classic 128-byte prefix; verification is real.
    An out-of-spec input returns empty output, as on mainnet.
    """
    cost = 3000
    padded = data.ljust(128 + 65, b"\x00")
    message_hash = padded[:32]
    r = int.from_bytes(padded[64:96], "big")
    s = int.from_bytes(padded[96:128], "big")
    pubkey_bytes = padded[128:193]
    try:
        public_key = PublicKey.from_bytes(pubkey_bytes)
        address = recover_address(message_hash, Signature(r, s), public_key)
    except (ValueError, InvalidSignature):
        return cost, b""
    return cost, address.rjust(32, b"\x00")


def _sha256(data: bytes) -> tuple[int, bytes]:
    cost = 60 + 12 * ((len(data) + 31) // 32)
    return cost, hashlib.sha256(data).digest()


def _ripemd160(data: bytes) -> tuple[int, bytes]:
    cost = 600 + 120 * ((len(data) + 31) // 32)
    try:
        digest = hashlib.new("ripemd160", data).digest()
    except ValueError:
        # OpenSSL builds without ripemd160: substitute a domain-separated
        # sha256 truncation; the simulation only needs determinism.
        digest = hashlib.sha256(b"ripemd160:" + data).digest()[:20]
    return cost, digest.rjust(32, b"\x00")


def _identity(data: bytes) -> tuple[int, bytes]:
    cost = 15 + 3 * ((len(data) + 31) // 32)
    return cost, data


PRECOMPILES: dict[Address, Precompile] = {
    to_address(1): _ecrecover,
    to_address(2): _sha256,
    to_address(3): _ripemd160,
    to_address(4): _identity,
}


def is_precompile(address: Address) -> bool:
    return address in PRECOMPILES
