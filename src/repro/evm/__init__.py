"""A from-scratch Ethereum Virtual Machine.

256-bit stack architecture with the full Shanghai-era instruction set,
Berlin/London gas rules (EIP-2929 warm/cold access, EIP-2200/3529 SSTORE
metering, EIP-150 call-gas forwarding), precompiles, and pluggable
tracers.  This is the functional core behind the paper's HEVM, the Geth
baseline, and the simulated full node.
"""

from repro.evm import abi, disassembler, opcodes
from repro.evm.exceptions import (
    CallDepthExceeded,
    EvmError,
    FrameError,
    InvalidJump,
    InvalidOpcode,
    InvalidTransaction,
    OutOfGas,
    Revert,
    StackOverflow,
    StackUnderflow,
    WriteProtection,
)
from repro.evm.executor import TransactionResult, execute_transaction
from repro.evm.frame import CallRecord, ExecutionFrame, FrameFootprint, Log, Message
from repro.evm.interpreter import ChainContext, FrameResult, Interpreter
from repro.evm.tracer import (
    CallTracer,
    CountingTracer,
    EventCounts,
    MultiTracer,
    StructLog,
    StructTracer,
    Tracer,
)

__all__ = [
    "CallDepthExceeded",
    "CallRecord",
    "CallTracer",
    "ChainContext",
    "CountingTracer",
    "EventCounts",
    "EvmError",
    "ExecutionFrame",
    "FrameError",
    "FrameFootprint",
    "FrameResult",
    "Interpreter",
    "InvalidJump",
    "InvalidOpcode",
    "InvalidTransaction",
    "Log",
    "Message",
    "MultiTracer",
    "OutOfGas",
    "Revert",
    "StackOverflow",
    "StackUnderflow",
    "StructLog",
    "StructTracer",
    "Tracer",
    "TransactionResult",
    "WriteProtection",
    "abi",
    "disassembler",
    "execute_transaction",
    "opcodes",
]
