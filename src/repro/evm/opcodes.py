"""The EVM instruction set: opcode values, names, and static metadata.

Instruction groups follow the paper's Figure 2 taxonomy (ARITHMETIC,
JUMP, frame-state query, STACK, MEMORY, STORAGE, CALL-RETURN) so the
hardware timing model and Figure 5 benchmarks can classify retired
instructions the same way the paper does.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class Group(Enum):
    """Instruction groups, per the paper's programming-model figure."""

    ARITHMETIC = "arithmetic"
    COMPARISON = "comparison"
    SHA3 = "sha3"
    FRAME_STATE = "frame_state"
    BLOCK = "block"
    STACK = "stack"
    MEMORY = "memory"
    STORAGE = "storage"
    JUMP = "jump"
    LOG = "log"
    CALL_RETURN = "call_return"
    HALT = "halt"


@dataclass(frozen=True)
class OpcodeInfo:
    """Static metadata for one opcode."""

    value: int
    name: str
    pops: int
    pushes: int
    base_gas: int
    group: Group


_TABLE: dict[int, OpcodeInfo] = {}


def _op(value: int, name: str, pops: int, pushes: int, gas: int, group: Group) -> int:
    _TABLE[value] = OpcodeInfo(value, name, pops, pushes, gas, group)
    return value


# --- 0x00s: stop and arithmetic -------------------------------------------
STOP = _op(0x00, "STOP", 0, 0, 0, Group.HALT)
ADD = _op(0x01, "ADD", 2, 1, 3, Group.ARITHMETIC)
MUL = _op(0x02, "MUL", 2, 1, 5, Group.ARITHMETIC)
SUB = _op(0x03, "SUB", 2, 1, 3, Group.ARITHMETIC)
DIV = _op(0x04, "DIV", 2, 1, 5, Group.ARITHMETIC)
SDIV = _op(0x05, "SDIV", 2, 1, 5, Group.ARITHMETIC)
MOD = _op(0x06, "MOD", 2, 1, 5, Group.ARITHMETIC)
SMOD = _op(0x07, "SMOD", 2, 1, 5, Group.ARITHMETIC)
ADDMOD = _op(0x08, "ADDMOD", 3, 1, 8, Group.ARITHMETIC)
MULMOD = _op(0x09, "MULMOD", 3, 1, 8, Group.ARITHMETIC)
EXP = _op(0x0A, "EXP", 2, 1, 10, Group.ARITHMETIC)
SIGNEXTEND = _op(0x0B, "SIGNEXTEND", 2, 1, 5, Group.ARITHMETIC)

# --- 0x10s: comparison and bitwise -----------------------------------------
LT = _op(0x10, "LT", 2, 1, 3, Group.COMPARISON)
GT = _op(0x11, "GT", 2, 1, 3, Group.COMPARISON)
SLT = _op(0x12, "SLT", 2, 1, 3, Group.COMPARISON)
SGT = _op(0x13, "SGT", 2, 1, 3, Group.COMPARISON)
EQ = _op(0x14, "EQ", 2, 1, 3, Group.COMPARISON)
ISZERO = _op(0x15, "ISZERO", 1, 1, 3, Group.COMPARISON)
AND = _op(0x16, "AND", 2, 1, 3, Group.COMPARISON)
OR = _op(0x17, "OR", 2, 1, 3, Group.COMPARISON)
XOR = _op(0x18, "XOR", 2, 1, 3, Group.COMPARISON)
NOT = _op(0x19, "NOT", 1, 1, 3, Group.COMPARISON)
BYTE = _op(0x1A, "BYTE", 2, 1, 3, Group.COMPARISON)
SHL = _op(0x1B, "SHL", 2, 1, 3, Group.COMPARISON)
SHR = _op(0x1C, "SHR", 2, 1, 3, Group.COMPARISON)
SAR = _op(0x1D, "SAR", 2, 1, 3, Group.COMPARISON)

# --- 0x20: SHA3 -------------------------------------------------------------
SHA3 = _op(0x20, "SHA3", 2, 1, 30, Group.SHA3)

# --- 0x30s-0x40s: frame state and block queries -----------------------------
ADDRESS = _op(0x30, "ADDRESS", 0, 1, 2, Group.FRAME_STATE)
BALANCE = _op(0x31, "BALANCE", 1, 1, 0, Group.STORAGE)
ORIGIN = _op(0x32, "ORIGIN", 0, 1, 2, Group.FRAME_STATE)
CALLER = _op(0x33, "CALLER", 0, 1, 2, Group.FRAME_STATE)
CALLVALUE = _op(0x34, "CALLVALUE", 0, 1, 2, Group.FRAME_STATE)
CALLDATALOAD = _op(0x35, "CALLDATALOAD", 1, 1, 3, Group.MEMORY)
CALLDATASIZE = _op(0x36, "CALLDATASIZE", 0, 1, 2, Group.FRAME_STATE)
CALLDATACOPY = _op(0x37, "CALLDATACOPY", 3, 0, 3, Group.MEMORY)
CODESIZE = _op(0x38, "CODESIZE", 0, 1, 2, Group.FRAME_STATE)
CODECOPY = _op(0x39, "CODECOPY", 3, 0, 3, Group.MEMORY)
GASPRICE = _op(0x3A, "GASPRICE", 0, 1, 2, Group.FRAME_STATE)
EXTCODESIZE = _op(0x3B, "EXTCODESIZE", 1, 1, 0, Group.STORAGE)
EXTCODECOPY = _op(0x3C, "EXTCODECOPY", 4, 0, 0, Group.STORAGE)
RETURNDATASIZE = _op(0x3D, "RETURNDATASIZE", 0, 1, 2, Group.FRAME_STATE)
RETURNDATACOPY = _op(0x3E, "RETURNDATACOPY", 3, 0, 3, Group.MEMORY)
EXTCODEHASH = _op(0x3F, "EXTCODEHASH", 1, 1, 0, Group.STORAGE)
BLOCKHASH = _op(0x40, "BLOCKHASH", 1, 1, 20, Group.BLOCK)
COINBASE = _op(0x41, "COINBASE", 0, 1, 2, Group.BLOCK)
TIMESTAMP = _op(0x42, "TIMESTAMP", 0, 1, 2, Group.BLOCK)
NUMBER = _op(0x43, "NUMBER", 0, 1, 2, Group.BLOCK)
PREVRANDAO = _op(0x44, "PREVRANDAO", 0, 1, 2, Group.BLOCK)
GASLIMIT = _op(0x45, "GASLIMIT", 0, 1, 2, Group.BLOCK)
CHAINID = _op(0x46, "CHAINID", 0, 1, 2, Group.BLOCK)
SELFBALANCE = _op(0x47, "SELFBALANCE", 0, 1, 5, Group.FRAME_STATE)
BASEFEE = _op(0x48, "BASEFEE", 0, 1, 2, Group.BLOCK)

# --- 0x50s: stack, memory, storage, flow ------------------------------------
POP = _op(0x50, "POP", 1, 0, 2, Group.STACK)
MLOAD = _op(0x51, "MLOAD", 1, 1, 3, Group.MEMORY)
MSTORE = _op(0x52, "MSTORE", 2, 0, 3, Group.MEMORY)
MSTORE8 = _op(0x53, "MSTORE8", 2, 0, 3, Group.MEMORY)
SLOAD = _op(0x54, "SLOAD", 1, 1, 0, Group.STORAGE)
SSTORE = _op(0x55, "SSTORE", 2, 0, 0, Group.STORAGE)
JUMP = _op(0x56, "JUMP", 1, 0, 8, Group.JUMP)
JUMPI = _op(0x57, "JUMPI", 2, 0, 10, Group.JUMP)
PC = _op(0x58, "PC", 0, 1, 2, Group.FRAME_STATE)
MSIZE = _op(0x59, "MSIZE", 0, 1, 2, Group.FRAME_STATE)
GAS = _op(0x5A, "GAS", 0, 1, 2, Group.FRAME_STATE)
JUMPDEST = _op(0x5B, "JUMPDEST", 0, 0, 1, Group.JUMP)
PUSH0 = _op(0x5F, "PUSH0", 0, 1, 2, Group.STACK)

# --- 0x60-0x7f: PUSH1..PUSH32 ------------------------------------------------
for _n in range(1, 33):
    _op(0x5F + _n, f"PUSH{_n}", 0, 1, 3, Group.STACK)
PUSH1 = 0x60
PUSH32 = 0x7F

# --- 0x80-0x9f: DUP1..DUP16, SWAP1..SWAP16 -----------------------------------
for _n in range(1, 17):
    _op(0x7F + _n, f"DUP{_n}", _n, _n + 1, 3, Group.STACK)
    _op(0x8F + _n, f"SWAP{_n}", _n + 1, _n + 1, 3, Group.STACK)
DUP1 = 0x80
SWAP1 = 0x90

# --- 0xa0s: logging -----------------------------------------------------------
LOG0 = _op(0xA0, "LOG0", 2, 0, 375, Group.LOG)
LOG1 = _op(0xA1, "LOG1", 3, 0, 375, Group.LOG)
LOG2 = _op(0xA2, "LOG2", 4, 0, 375, Group.LOG)
LOG3 = _op(0xA3, "LOG3", 5, 0, 375, Group.LOG)
LOG4 = _op(0xA4, "LOG4", 6, 0, 375, Group.LOG)

# --- 0xf0s: call/return --------------------------------------------------------
CREATE = _op(0xF0, "CREATE", 3, 1, 32000, Group.CALL_RETURN)
CALL = _op(0xF1, "CALL", 7, 1, 0, Group.CALL_RETURN)
CALLCODE = _op(0xF2, "CALLCODE", 7, 1, 0, Group.CALL_RETURN)
RETURN = _op(0xF3, "RETURN", 2, 0, 0, Group.HALT)
DELEGATECALL = _op(0xF4, "DELEGATECALL", 6, 1, 0, Group.CALL_RETURN)
CREATE2 = _op(0xF5, "CREATE2", 4, 1, 32000, Group.CALL_RETURN)
STATICCALL = _op(0xFA, "STATICCALL", 6, 1, 0, Group.CALL_RETURN)
REVERT = _op(0xFD, "REVERT", 2, 0, 0, Group.HALT)
INVALID = _op(0xFE, "INVALID", 0, 0, 0, Group.HALT)
SELFDESTRUCT = _op(0xFF, "SELFDESTRUCT", 1, 0, 5000, Group.HALT)


def info(opcode: int) -> OpcodeInfo | None:
    """Metadata for ``opcode``, or None if unassigned."""
    return _TABLE.get(opcode)


def name(opcode: int) -> str:
    entry = _TABLE.get(opcode)
    return entry.name if entry else f"INVALID(0x{opcode:02x})"


def is_push(opcode: int) -> bool:
    return PUSH1 <= opcode <= PUSH32


def push_size(opcode: int) -> int:
    """Immediate size in bytes for PUSH1..PUSH32 (0 otherwise)."""
    if is_push(opcode):
        return opcode - 0x5F
    return 0


ALL_OPCODES = dict(_TABLE)
