"""Gas schedule and dynamic cost computation (Berlin/London rules).

Implements the costs HarDTAPE's HEVM accumulates in hardware (paper
§IV-B "Gas maintenance"): static per-opcode costs plus the dynamic parts
— memory expansion, warm/cold account and slot access (EIP-2929), SSTORE
net metering (EIP-2200/3529), copy costs, and call/create charges.
"""

from __future__ import annotations

from dataclasses import dataclass

# Intrinsic transaction costs.
TX_BASE = 21_000
TX_CREATE = 32_000
TX_DATA_ZERO = 4
TX_DATA_NONZERO = 16

# Memory / copy.
MEMORY_WORD = 3
MEMORY_QUAD_DIVISOR = 512
COPY_WORD = 3

# Keccak.
SHA3_WORD = 6

# EIP-2929 access costs.
WARM_ACCESS = 100
COLD_ACCOUNT_ACCESS = 2_600
COLD_SLOAD = 2_100

# SSTORE (EIP-2200 + EIP-3529).
SSTORE_SET = 20_000
SSTORE_RESET = 2_900  # 5000 - COLD_SLOAD
SSTORE_CLEAR_REFUND = 4_800
SSTORE_SENTRY = 2_300

# Calls.
CALL_VALUE = 9_000
CALL_STIPEND = 2_300
NEW_ACCOUNT = 25_000

# Creates.
CREATE_DEPOSIT_PER_BYTE = 200
INITCODE_WORD = 2
MAX_CODE_SIZE = 24_576
MAX_INITCODE_SIZE = 2 * MAX_CODE_SIZE

# Logs.
LOG_TOPIC = 375
LOG_DATA_BYTE = 8

# EXP dynamic.
EXP_BYTE = 50

# Selfdestruct.
SELFDESTRUCT_NEW_ACCOUNT = 25_000

# Refund cap divisor (EIP-3529).
REFUND_QUOTIENT = 5


def memory_cost(word_count: int) -> int:
    """Total gas for a memory of ``word_count`` 32-byte words."""
    return MEMORY_WORD * word_count + word_count * word_count // MEMORY_QUAD_DIVISOR


def memory_expansion_cost(current_bytes: int, offset: int, length: int) -> int:
    """Gas to expand memory to cover ``[offset, offset+length)``."""
    if length == 0:
        return 0
    new_words = (offset + length + 31) // 32
    current_words = current_bytes // 32
    if new_words <= current_words:
        return 0
    return memory_cost(new_words) - memory_cost(current_words)


def copy_cost(length: int) -> int:
    """Per-word copy gas for *COPY instructions."""
    return COPY_WORD * ((length + 31) // 32)


def sha3_cost(length: int) -> int:
    return SHA3_WORD * ((length + 31) // 32)


def exp_cost(exponent: int) -> int:
    if exponent == 0:
        return 0
    return EXP_BYTE * ((exponent.bit_length() + 7) // 8)


def intrinsic_gas(data: bytes, is_create: bool) -> int:
    """The gas charged before the first instruction executes."""
    gas = TX_BASE
    if is_create:
        gas += TX_CREATE
        gas += INITCODE_WORD * ((len(data) + 31) // 32)
    zeros = data.count(0)
    gas += TX_DATA_ZERO * zeros + TX_DATA_NONZERO * (len(data) - zeros)
    return gas


def initcode_cost(length: int) -> int:
    """EIP-3860 per-word init code charge for CREATE/CREATE2."""
    return INITCODE_WORD * ((length + 31) // 32)


@dataclass(frozen=True)
class SstoreOutcome:
    """Gas and refund delta for one SSTORE."""

    gas: int
    refund_delta: int


def sstore_outcome(original: int, current: int, new: int) -> SstoreOutcome:
    """EIP-2200 net gas metering with EIP-3529 refunds.

    ``original`` is the value at transaction start, ``current`` the value
    now, ``new`` the value being written.  Cold-slot surcharge is added
    separately by the interpreter.
    """
    if new == current:
        return SstoreOutcome(WARM_ACCESS, 0)
    refund = 0
    if current == original:
        if original == 0:
            gas = SSTORE_SET
        else:
            gas = SSTORE_RESET
            if new == 0:
                refund += SSTORE_CLEAR_REFUND
    else:
        gas = WARM_ACCESS
        if original != 0:
            if current == 0:
                refund -= SSTORE_CLEAR_REFUND
            if new == 0:
                refund += SSTORE_CLEAR_REFUND
        if new == original:
            if original == 0:
                refund += SSTORE_SET - WARM_ACCESS
            else:
                refund += SSTORE_RESET + COLD_SLOAD - WARM_ACCESS
    return SstoreOutcome(gas, refund)


def max_call_gas(remaining: int) -> int:
    """EIP-150 all-but-one-64th rule."""
    return remaining - remaining // 64
