"""EVM execution errors.

Frame-level errors (:class:`FrameError` subclasses) consume the frame's
remaining gas and fail the frame — except :class:`Revert`, which refunds
remaining gas and returns data, per the EVM spec.
"""

from __future__ import annotations


class EvmError(Exception):
    """Base class for all EVM execution errors."""


class FrameError(EvmError):
    """An error that terminates the current execution frame."""


class StackUnderflow(FrameError):
    pass


class StackOverflow(FrameError):
    pass


class OutOfGas(FrameError):
    pass


class InvalidJump(FrameError):
    pass


class InvalidOpcode(FrameError):
    def __init__(self, opcode: int) -> None:
        super().__init__(f"invalid opcode 0x{opcode:02x}")
        self.opcode = opcode


class WriteProtection(FrameError):
    """State modification attempted inside STATICCALL."""


class ReturnDataOutOfBounds(FrameError):
    pass


class CallDepthExceeded(FrameError):
    """Call stack exceeded 1024 frames."""


class Revert(FrameError):
    """Explicit REVERT: remaining gas is returned, data propagated."""

    def __init__(self, data: bytes) -> None:
        super().__init__("execution reverted")
        self.data = data


class InvalidTransaction(EvmError):
    """Transaction-level validation failure (nonce, balance, intrinsic gas)."""
