"""The observability benchmark (``obs-bench``): three seeded gates.

1. **Identity** — the real-pipeline reactor-driven serving run from the
   c10k identity scenario, executed twice: observability stack *off*
   (no async tracer, no flight recorder, no SLO monitor) and *on* (all
   three armed).  The frontend's Chrome trace, metrics snapshot,
   Prometheus text, wire bytes, and world digest must be byte-identical
   — the async plane's own tracer lives on the *reactor* clock domain,
   the flight recorder is pure bookkeeping, and the monitor only reads
   snapshots, so observing the system must not change it.
2. **Reconciliation** — a mixed workload exercises all three trace
   representations and reconciles them *exactly* through
   :mod:`repro.telemetry.unified`:

   * sync leg: transactions run on a full-security HEVM core
     (path-ORAM world state) with struct tracing on; node ground truth
     re-executes the same transactions with a StructTracer +
     CountingTracer.  Steps, counts, and Merkle commitments must agree
     three ways (node steps == HEVM steps == live ``hevm.tx`` span
     counts).
   * sharded leg: the same, with the HEVM reading through a
     :class:`~repro.sharding.ShardedObliviousStateBackend` fleet.
   * async leg: the identity gate's observability-on run doubles as a
     live async workload; the aggregate instruction/group counts of
     every ``hevm.tx`` span it emitted must equal the node's offline
     totals for the exact transaction multiset the open-loop driver
     submitted.
3. **Alerts** — a model-tier C10K run with an epoch bump mid-flight
   (every outstanding resumption ticket goes stale).  The armed flight
   recorder must seal exactly one ``StaleTicketError`` dump per
   outstanding ticket, the SLO monitor's ``stale-ticket-rate`` burn
   alert must fire, and a second identically seeded run must reproduce
   dump digests and the alert train byte-for-byte.  A zero-fault twin
   must emit no dumps and no alerts.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

from repro.core.device import DeviceConfig
from repro.core.service import HarDTAPEService
from repro.core.user import PreExecutionClient
from repro.evm.executor import execute_transaction
from repro.evm.tracer import CountingTracer, MultiTracer, StructTracer
from repro.hardware.timing import CostModel
from repro.hypervisor.bundle_codec import TransactionBundle, encode_bundle
from repro.hypervisor.hypervisor import SecurityFeatures
from repro.recovery.bench import wire_hash, world_digest
from repro.serving.gateway import (
    FleetModelExecutor,
    Gateway,
    GatewayConfig,
    ServiceExecutor,
)
from repro.serving.loadgen import LoadSession, synthetic_profiles
from repro.serving.metrics import MetricsRegistry
from repro.serving.router import ShardSessionRouter
from repro.sharding import (
    ShardedObliviousStateBackend,
    ShardedOramConfig,
    ShardedOramFleet,
)
from repro.state.journal import JournaledState
from repro.telemetry.exporters import render_chrome_trace, render_prometheus
from repro.telemetry.flight import FlightRecorder
from repro.telemetry.slo import SloMonitor, default_slo_rules
from repro.telemetry.tracer import TraceSampler, install_tracer, uninstall_tracer
from repro.telemetry.unified import (
    counts_from_events,
    counts_from_span,
    counts_from_trace,
    from_struct_logs,
    reconcile_counts,
    reconcile_step_traces,
)
from repro.workloads.generator import EvaluationSetConfig, build_evaluation_set
from repro.async_serving.reactor import VirtualReactor
from repro.async_serving.tier import (
    AsyncServingConfig,
    AsyncServingTier,
    ModelHandshakeEngine,
    drive_open_loop,
)


@dataclass
class ObsBenchConfig:
    """One obs-bench invocation."""

    seed: int = 1
    # -- identity / async-leg scenario (real pipeline) ------------------
    identity_tenants: int = 3
    identity_requests: int = 9
    identity_rate_rps: float = 40.0
    device_count: int = 2
    hevms_per_device: int = 2
    security_level: str = "full"
    blocks: int = 1
    txs_per_block: int = 4
    trace_sample_rate: float = 1.0
    flight_capacity: int = 32
    # -- reconciliation legs -------------------------------------------
    reconcile_txs: int = 3
    shard_count: int = 2
    shard_oram_height: int = 9
    # -- alert scenario (model tier, epoch bump) -----------------------
    fault_sessions: int = 48
    rounds: int = 2
    shards: int = 4
    cores_per_shard: int = 32
    open_window_us: float = 50_000.0
    round_gap_us: float = 1_000_000.0
    suspend_after_us: float = 200_000.0
    observe_every_us: float = 250_000.0
    slo_window_us: float = 500_000.0

    @classmethod
    def smoke(cls, seed: int = 1) -> "ObsBenchConfig":
        """CI-sized: fewer tenants/requests, smaller fault fleet."""
        return cls(
            seed=seed,
            identity_tenants=2,
            identity_requests=6,
            reconcile_txs=2,
            fault_sessions=24,
        )


# ----------------------------------------------------------------------
# Gate 1: identity (observability on == observability off, frontend bytes)
# ----------------------------------------------------------------------

@dataclass
class _StackArtifacts:
    trace_hash: str
    metrics_hash: str
    prometheus_hash: str
    wire_hash: str
    digest: str
    completed: int
    failed: int
    async_span_count: int
    async_plane_lines: int
    dump_count: int
    alert_count: int
    tx_span_counts: list[dict]


def _run_serving_stack(config: ObsBenchConfig,
                       observability: bool) -> _StackArtifacts:
    """One reactor-driven real-pipeline run, obs stack off or on."""
    evalset = build_evaluation_set(
        EvaluationSetConfig(blocks=config.blocks,
                            txs_per_block=config.txs_per_block)
    )
    service = HarDTAPEService(
        evalset.node,
        SecurityFeatures.from_level(config.security_level),
        device_count=config.device_count,
        device_config=DeviceConfig(hevm_count=config.hevms_per_device),
        charge_fees=False,
    )
    metrics = MetricsRegistry()
    tracer = install_tracer(
        service.clock, TraceSampler(config.trace_sample_rate, config.seed)
    )
    tier_tracer = None
    try:
        flight = (
            FlightRecorder(config.flight_capacity) if observability else None
        )
        gateway = Gateway(
            ServiceExecutor(service), GatewayConfig(),
            metrics=metrics, tracer=tracer, flight=flight,
        )
        reactor = VirtualReactor(start_us=gateway.now_us)
        monitor = None
        if observability:
            # The async plane's spans go to a tracer keyed off the
            # *reactor*: a separate clock domain, so they cannot land in
            # (or renumber) the frontend trace the identity gate hashes.
            tier_tracer = install_tracer(reactor)
            monitor = SloMonitor(default_slo_rules(
                window_us=config.slo_window_us
            ))
        tier = AsyncServingTier(
            reactor, gateway, engine=None,
            config=AsyncServingConfig(resumption=False),
            flight=flight,
        )
        sessions: list[LoadSession] = []
        transactions = evalset.transactions
        for tenant in range(config.identity_tenants):
            client = PreExecutionClient(
                service.manufacturer.root_public_key,
                rng_seed=bytes([tenant + 1]) * 32,
            )
            home = tenant % config.device_count
            user = client.connect(service, service.devices[home])

            def make_payload(ordinal: int, offset: int = tenant, user=user):
                tx = transactions[(offset + ordinal) % len(transactions)]
                bundle = TransactionBundle(
                    transactions=(tx,), block_number=service.synced_height
                )
                encoded = encode_bundle(bundle)
                return lambda: user.channel.seal(encoded)

            sessions.append(
                LoadSession(
                    session_id=user.session_id,
                    make_payload=make_payload,
                    device_index=home,
                )
            )
            tier.adopt_session(user.session_id, device_index=home)
        load = drive_open_loop(
            tier, sessions,
            rate_rps=config.identity_rate_rps,
            total_requests=config.identity_requests,
            seed=config.seed,
        )
        alert_count = 0
        if monitor is not None:
            snapshot = dict(tier.metrics.snapshot())
            snapshot.update(gateway.metrics.snapshot())
            monitor.observe(snapshot, gateway.now_us)
            alert_count = len(monitor.alerts)
        trace_json = render_chrome_trace(tracer)
        # The frontend exposition: rendered WITHOUT planes, exactly as
        # every pre-observability caller renders it.
        prometheus = render_prometheus(metrics)
        async_lines = 0
        if observability:
            with_planes = render_prometheus(
                metrics, planes={"async": tier.metrics}
            )
            async_lines = with_planes.count('plane="async"')
        tx_span_counts = [
            counts_from_span(span)
            for span in tracer.spans
            if span.name == "hevm.tx" and "instructions" in span.attributes
        ]
    finally:
        uninstall_tracer(service.clock)
        if tier_tracer is not None:
            uninstall_tracer(reactor)
    return _StackArtifacts(
        trace_hash=hashlib.sha256(trace_json.encode()).hexdigest(),
        metrics_hash=hashlib.sha256(
            json.dumps(metrics.snapshot(), sort_keys=True).encode()
        ).hexdigest(),
        prometheus_hash=hashlib.sha256(prometheus.encode()).hexdigest(),
        wire_hash=wire_hash([load]),
        digest=world_digest(service),
        completed=load.completed,
        failed=load.failed,
        async_span_count=0 if tier_tracer is None else len(tier_tracer.spans),
        async_plane_lines=async_lines,
        dump_count=0 if not observability else len(flight.dumps),
        alert_count=alert_count,
        tx_span_counts=tx_span_counts,
    )


# ----------------------------------------------------------------------
# Gate 2: three-way trace reconciliation
# ----------------------------------------------------------------------


def _node_ground_truth(evalset, service, tx):
    """Offline re-execution on the node's synced state, fees off."""
    state = JournaledState(evalset.node.state_at(service.synced_height).copy())
    struct = StructTracer(capture_stack=False)
    counting = CountingTracer()
    result = execute_transaction(
        state,
        service.pending_chain_context(),
        tx,
        tracer=MultiTracer(struct, counting),
        charge_fees=False,
    )
    return result, struct.logs, counting.counts


def _reconcile_leg(config: ObsBenchConfig, leg: str) -> dict:
    """One execution leg: node vs HEVM steps vs live span counts."""
    evalset = build_evaluation_set(
        EvaluationSetConfig(blocks=config.blocks,
                            txs_per_block=config.txs_per_block)
    )
    service = HarDTAPEService(
        evalset.node,
        SecurityFeatures.from_level("full"),
        charge_fees=False,
    )
    device = service.devices[0]
    if leg == "sharded":
        fleet = ShardedOramFleet(
            ShardedOramConfig(
                shard_count=config.shard_count,
                oram_height=config.shard_oram_height,
            ),
            hashlib.sha256(b"obs-bench-shard-%d" % config.seed).digest(),
        )
        oram_backend = ShardedObliviousStateBackend(
            fleet, clock=lambda: service.clock.now_us
        )
        oram_backend.sync_world(service._synced_state.accounts)
    else:
        oram_backend = device.oram_backend
    tracer = install_tracer(service.clock)
    txs = evalset.transactions[: config.reconcile_txs]
    steps = 0
    commitments: list[str] = []
    try:
        core = device.cores[0]
        for tx in txs:
            before = len(tracer.spans)
            results, _, _, struct_traces = core.run_bundle(
                [tx],
                service.pending_chain_context(),
                service._synced_state,
                oram_backend,
                storage_via_oram=True,
                code_via_oram=True,
                struct_trace=True,
                charge_fees=False,
            )
            core.reset()
            tx_spans = [
                span for span in tracer.spans[before:]
                if span.name == "hevm.tx"
            ]
            assert len(results) == 1 and len(tx_spans) == 1
            _, node_logs, node_counts = _node_ground_truth(
                evalset, service, tx
            )
            node_trace = from_struct_logs(node_logs)
            hevm_trace = from_struct_logs(struct_traces[0])
            root = reconcile_step_traces(
                node_trace, hevm_trace,
                expected_source=f"node/{leg}", actual_source=f"hevm/{leg}",
            )
            reconcile_counts(
                counts_from_trace(node_trace),
                counts_from_events(node_counts),
                expected_source=f"node-steps/{leg}",
                actual_source=f"node-events/{leg}",
            )
            reconcile_counts(
                counts_from_trace(hevm_trace),
                counts_from_span(tx_spans[0]),
                expected_source=f"hevm-steps/{leg}",
                actual_source=f"hevm-span/{leg}",
            )
            steps += node_trace.instructions
            commitments.append(root)
    finally:
        uninstall_tracer(service.clock)
    return {
        "leg": leg,
        "transactions": len(txs),
        "steps": steps,
        "commitments": commitments,
    }


def _reconcile_async_leg(config: ObsBenchConfig,
                         observed: _StackArtifacts) -> dict:
    """Aggregate reconciliation of the live async run's hevm.tx spans.

    The open-loop driver's submission schedule is deterministic
    (round-robin tenants, per-tenant ordinals), so the exact transaction
    multiset the run executed is recomputable offline; its node-side
    totals must equal the sum of every span's live counts.
    """
    evalset = build_evaluation_set(
        EvaluationSetConfig(blocks=config.blocks,
                            txs_per_block=config.txs_per_block)
    )
    service = HarDTAPEService(
        evalset.node,
        SecurityFeatures.from_level(config.security_level),
        charge_fees=False,
    )
    transactions = evalset.transactions
    per_tx: dict[int, dict] = {}
    expected = {"instructions": 0, "by_group": {}}
    for index in range(config.identity_requests):
        tenant = index % config.identity_tenants
        ordinal = index // config.identity_tenants
        tx_index = (tenant + ordinal) % len(transactions)
        if tx_index not in per_tx:
            _, logs, _ = _node_ground_truth(
                evalset, service, transactions[tx_index]
            )
            per_tx[tx_index] = counts_from_trace(from_struct_logs(logs))
        counts = per_tx[tx_index]
        expected["instructions"] += counts["instructions"]
        for group, n in counts["by_group"].items():
            expected["by_group"][group] = (
                expected["by_group"].get(group, 0) + n
            )
    actual = {"instructions": 0, "by_group": {}}
    for counts in observed.tx_span_counts:
        actual["instructions"] += counts["instructions"]
        for group, n in counts["by_group"].items():
            actual["by_group"][group] = actual["by_group"].get(group, 0) + n
    reconcile_counts(
        expected, actual,
        expected_source="node/async-offline", actual_source="span/async-live",
    )
    return {
        "leg": "async",
        "transactions": config.identity_requests,
        "spans": len(observed.tx_span_counts),
        "instructions": actual["instructions"],
    }


# ----------------------------------------------------------------------
# Gate 3: induced-fault alerts + sealed dumps
# ----------------------------------------------------------------------

@dataclass
class _FaultRunResult:
    dump_digests: list[str]
    dump_causes: list[str]
    alerts: list[dict]
    stale_refused: int
    completed: int
    failed: int


def _run_fault_tier(config: ObsBenchConfig, *,
                    epoch_bump: bool) -> _FaultRunResult:
    """A model-tier run with the obs stack armed, bumping the epoch
    mid-flight (or not, for the zero-fault twin)."""
    cost = CostModel()
    engine = ModelHandshakeEngine(cost, seed=config.seed)
    gateways = {
        shard: Gateway(
            FleetModelExecutor(config.cores_per_shard, cost),
            GatewayConfig(max_queue_depth=config.fault_sessions * 2,
                          max_in_flight_per_session=4),
        )
        for shard in range(config.shards)
    }
    router = ShardSessionRouter(gateways)
    reactor = VirtualReactor()
    flight = FlightRecorder(config.flight_capacity)
    tier = AsyncServingTier(
        reactor, router, engine,
        config=AsyncServingConfig(
            max_sessions=config.fault_sessions,
            suspend_after_us=config.suspend_after_us,
            resumption=True,
        ),
        flight=flight,
    )
    monitor = SloMonitor(default_slo_rules(window_us=config.slo_window_us))
    profiles = synthetic_profiles(
        cost, "mixed", count=16, seed=config.seed
    )

    def open_and_submit(rid: bytes, ordinal: int) -> None:
        tier.open_session(rid)
        tier.submit(rid, profiles[ordinal % len(profiles)])

    def burst(rid: bytes, ordinal: int) -> None:
        tier.submit(rid, profiles[ordinal % len(profiles)])

    bumped = False

    def maybe_bump() -> None:
        nonlocal bumped
        if not bumped:
            engine.advance_epoch()
            bumped = True

    def observe() -> None:
        monitor.observe(tier.metrics.snapshot(), reactor.now_us)

    stride = config.open_window_us / config.fault_sessions
    for index in range(config.fault_sessions):
        rid = b"obs-%08d" % index
        t_open = index * stride
        reactor.call_at(t_open, open_and_submit, rid, index)
        for round_no in range(1, config.rounds + 1):
            at = t_open + round_no * config.round_gap_us
            if epoch_bump and round_no == 1 and index == 0:
                reactor.call_at(at - 1.0, maybe_bump)
            reactor.call_at(at, burst, rid, index + round_no)
    horizon = (
        config.open_window_us
        + config.rounds * config.round_gap_us
        + config.suspend_after_us
        + 2 * config.observe_every_us
    )
    ticks = int(horizon / config.observe_every_us)
    for tick in range(1, ticks + 1):
        reactor.call_at(tick * config.observe_every_us, observe)
    start_us = router.now_us
    tier.run()
    load = tier.load_report(start_us)
    return _FaultRunResult(
        dump_digests=flight.dump_digests(),
        dump_causes=[dump.cause_type for dump in flight.dumps],
        alerts=monitor.alert_dicts(),
        stale_refused=int(
            tier.metrics.snapshot().get("tier.stale_tickets", 0)
        ),
        completed=load.completed,
        failed=load.failed,
    )


# ----------------------------------------------------------------------
# Report and gates
# ----------------------------------------------------------------------

@dataclass
class ObsBenchReport:
    seed: int
    identity: dict[str, bool]
    observability: dict
    reconciliation: dict
    alerts: dict
    gate_failures: list[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.gate_failures

    def to_json(self) -> str:
        return json.dumps(
            {
                "bench": "obs",
                "seed": self.seed,
                "identity": self.identity,
                "observability": self.observability,
                "reconciliation": self.reconciliation,
                "alerts": self.alerts,
                "gate_failures": self.gate_failures,
                "passed": self.passed,
            },
            indent=2,
            sort_keys=True,
        )

    def summary_lines(self) -> list[str]:
        lines = [
            "identity (observability on vs off, frontend bytes): "
            + (
                "byte-identical"
                if all(self.identity.values())
                else "DIVERGED "
                + str(sorted(k for k, v in self.identity.items() if not v))
            ),
            f"  async plane recorded {self.observability['async_spans']} "
            f"spans, {self.observability['async_plane_lines']} "
            f"plane=async series, frontend untouched",
            "reconciliation: "
            + ", ".join(
                f"{leg['leg']} {leg['steps']} steps"
                if "steps" in leg
                else f"{leg['leg']} {leg['instructions']} instructions "
                     f"across {leg['spans']} live spans"
                for leg in self.reconciliation["legs"]
            )
            + " — all exact",
            f"alerts: {self.alerts['stale_refused']} stale tickets sealed "
            f"{self.alerts['dumps']} flight dumps, "
            f"{self.alerts['alert_count']} burn-rate alerts "
            f"({', '.join(sorted(set(self.alerts['alert_rules']))) or 'none'})"
            + (", rerun byte-identical"
               if self.alerts["deterministic"] else ", RERUN DIVERGED"),
            f"  zero-fault twin: {self.alerts['quiet_dumps']} dumps, "
            f"{self.alerts['quiet_alerts']} alerts",
        ]
        if self.gate_failures:
            lines.append("gate failures:")
            lines.extend(f"  - {failure}" for failure in self.gate_failures)
        else:
            lines.append("all gates passed")
        return lines


def run_obs_bench(config: ObsBenchConfig) -> ObsBenchReport:
    failures: list[str] = []

    # 1. Identity.
    plain = _run_serving_stack(config, observability=False)
    observed = _run_serving_stack(config, observability=True)
    identity = {
        "trace": plain.trace_hash == observed.trace_hash,
        "metrics": plain.metrics_hash == observed.metrics_hash,
        "prometheus": plain.prometheus_hash == observed.prometheus_hash,
        "wire": plain.wire_hash == observed.wire_hash,
        "digest": plain.digest == observed.digest,
    }
    for name, equal in identity.items():
        if not equal:
            failures.append(
                f"identity: arming the observability stack changed the "
                f"{name} bytes of a seeded run"
            )
    observability = {
        "async_spans": observed.async_span_count,
        "async_plane_lines": observed.async_plane_lines,
        "dumps": observed.dump_count,
        "alerts": observed.alert_count,
        "completed": observed.completed,
        "failed": observed.failed,
    }
    if observed.async_span_count == 0:
        failures.append(
            "identity: observability-on run recorded no async-plane spans "
            "(the gate would be vacuous)"
        )
    if observed.async_plane_lines == 0:
        failures.append(
            "identity: plane=async exposition rendered no series"
        )
    if observed.dump_count != 0:
        failures.append(
            f"identity: {observed.dump_count} flight dumps sealed on a "
            f"zero-failure run"
        )

    # 2. Reconciliation: sync + sharded legs, then the live async leg.
    legs = []
    for leg in ("sync", "sharded"):
        legs.append(_reconcile_leg(config, leg))
    legs.append(_reconcile_async_leg(config, observed))
    if legs[0]["commitments"] != legs[1]["commitments"]:
        failures.append(
            "reconciliation: sharded-leg commitments diverge from sync "
            "(same transactions, same schema — must be identical roots)"
        )
    reconciliation = {"legs": legs, "exact": True}

    # 3. Alerts: induced fault twice (determinism) + zero-fault twin.
    fault_a = _run_fault_tier(config, epoch_bump=True)
    fault_b = _run_fault_tier(config, epoch_bump=True)
    quiet = _run_fault_tier(config, epoch_bump=False)
    deterministic = (
        fault_a.dump_digests == fault_b.dump_digests
        and fault_a.alerts == fault_b.alerts
    )
    alert_rules = [alert["rule"] for alert in fault_a.alerts]
    alerts = {
        "sessions": config.fault_sessions,
        "stale_refused": fault_a.stale_refused,
        "dumps": len(fault_a.dump_digests),
        "dump_digest": hashlib.sha256(
            "".join(fault_a.dump_digests).encode()
        ).hexdigest(),
        "alert_count": len(fault_a.alerts),
        "alert_rules": alert_rules,
        "deterministic": deterministic,
        "quiet_dumps": len(quiet.dump_digests),
        "quiet_alerts": len(quiet.alerts),
        "completed": fault_a.completed,
        "failed": fault_a.failed,
    }
    if fault_a.stale_refused != config.fault_sessions:
        failures.append(
            f"alerts: {fault_a.stale_refused} stale refusals for "
            f"{config.fault_sessions} outstanding tickets"
        )
    if len(fault_a.dump_digests) != config.fault_sessions:
        failures.append(
            f"alerts: {len(fault_a.dump_digests)} sealed dumps, expected "
            f"one per stale ticket ({config.fault_sessions})"
        )
    if any(cause != "StaleTicketError" for cause in fault_a.dump_causes):
        failures.append(
            "alerts: a sealed dump carries a cause other than "
            "StaleTicketError"
        )
    if "stale-ticket-rate" not in alert_rules:
        failures.append(
            "alerts: the stale-ticket-rate burn alert did not fire"
        )
    if not deterministic:
        failures.append(
            "alerts: seeded rerun produced different dumps or alerts"
        )
    if quiet.dump_digests or quiet.alerts:
        failures.append(
            f"alerts: zero-fault twin emitted {len(quiet.dump_digests)} "
            f"dumps / {len(quiet.alerts)} alerts"
        )
    if fault_a.failed:
        failures.append(
            f"alerts: {fault_a.failed} failed requests — stale fallbacks "
            f"must recover every session"
        )

    return ObsBenchReport(
        seed=config.seed,
        identity=identity,
        observability=observability,
        reconciliation=reconciliation,
        alerts=alerts,
        gate_failures=failures,
    )


__all__ = ["ObsBenchConfig", "ObsBenchReport", "run_obs_bench"]
