"""Deterministic virtual-time span tracing.

Every layer a request crosses — gateway queueing, scheduler dispatch,
secure-channel crypto, HEVM execution, memory swaps, ORAM accesses —
charges its cost to the shared :class:`~repro.hardware.timing.SimClock`.
This module turns those charges into a *span tree*: each span covers an
exact virtual-time interval, nests under whatever span was active when
it was created, and carries structured attributes (session ids, opcode
counts, fault events).  Because all time is virtual and single-threaded,
spans nest strictly and a span's *exclusive* time (duration minus its
children) attributes every microsecond of a request to exactly one
layer — the substrate for :mod:`repro.telemetry.critical_path`.

Tracers are looked up, not threaded: :func:`install_tracer` registers a
tracer against a clock in a weak registry and instrumented code calls
:func:`tracer_for` at each site.  With no tracer installed the lookup
returns :data:`NULL_TRACER`, whose operations are no-ops, so tracing
adds no state — and in particular never touches the clock — when off.
That invariant is what keeps traced and untraced runs byte-identical in
their results, and it is why instrumentation must always *record* spans
around existing ``advance_us`` calls rather than introduce new ones.

Two clock domains meet in one trace: the gateway keeps its own virtual
arrival clock while the device stack runs on the service's
:class:`SimClock`.  Executors bridge them by entering
:meth:`Tracer.shifted` with the (gateway − device) offset before
descending; each span snapshots the active shift at creation, and the
exporters add it back so device-side spans land inside their gateway
parent on a single timeline.

Determinism: span ids are allocated sequentially, sampling decisions
come from a seeded :class:`~repro.crypto.kdf.Drbg` drawn once per
request in submission order, and no wall-clock source is consulted
anywhere — two identically seeded runs produce byte-identical exports.
"""

from __future__ import annotations

import weakref
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.crypto.kdf import Drbg


@dataclass(slots=True)
class SpanEvent:
    """A point-in-time annotation on a span (fault fired, failover, ...)."""

    name: str
    at_us: float
    attributes: dict[str, object] = field(default_factory=dict)


@dataclass(slots=True)
class Span:
    """One timed operation: a half-open virtual-time interval on a layer.

    ``layer`` is the attribution bucket (``execution``, ``oram_storage``,
    ``encryption``, ...) the span's exclusive time is charged to.
    ``shift_us`` maps the span's clock domain onto the root timeline;
    exporters render the span at ``start_us + shift_us``.
    """

    span_id: int
    parent_id: int | None
    name: str
    layer: str
    start_us: float
    end_us: float | None = None
    shift_us: float = 0.0
    attributes: dict[str, object] = field(default_factory=dict)
    events: list[SpanEvent] = field(default_factory=list)

    @property
    def duration_us(self) -> float:
        return 0.0 if self.end_us is None else self.end_us - self.start_us

    def set(self, **attributes: object) -> "Span":
        self.attributes.update(attributes)
        return self

    def event(self, name: str, at_us: float, **attributes: object) -> "Span":
        self.events.append(SpanEvent(name, at_us, dict(attributes)))
        return self


class _NullSpan:
    """Inert span handed out while tracing is off or suppressed."""

    __slots__ = ()
    span_id = 0
    parent_id = None
    name = "null"
    layer = "null"
    start_us = 0.0
    end_us = 0.0
    shift_us = 0.0
    duration_us = 0.0
    attributes: dict[str, object] = {}
    events: tuple = ()

    def set(self, **attributes: object) -> "_NullSpan":
        return self

    def event(self, name: str, at_us: float, **attributes: object) -> "_NullSpan":
        return self


NULL_SPAN = _NullSpan()


@dataclass
class TraceContext:
    """Per-request trace handle threaded through the gateway lifecycle.

    The root spans the whole request; ``queue`` and ``execute`` are its
    direct children for the admission-to-dispatch wait and the service
    call.  A request without a context was not sampled.
    """

    root: Span
    queue: Span | None = None
    execute: Span | None = None


class TraceSampler:
    """Seeded per-request sampling: deterministic across identical runs.

    One decision is drawn per :meth:`should_sample` call from a dedicated
    DRBG stream, so the set of sampled requests depends only on
    ``(seed, rate)`` and submission order — never on what was traced.
    """

    _RESOLUTION = 1_000_000

    def __init__(self, rate: float = 1.0, seed: int = 0) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"sample rate must be in [0, 1], got {rate}")
        self.rate = rate
        self._rng = Drbg(seed.to_bytes(8, "big"), personalization=b"trace-sampler")

    def should_sample(self) -> bool:
        # Draw even at rate 1.0 so changing the rate never re-aligns the
        # stream mid-run.
        draw = self._rng.randint(self._RESOLUTION)
        return draw < int(self.rate * self._RESOLUTION)


class Tracer:
    """Collects spans against one clock; the active-span stack gives nesting.

    Three creation styles cover every instrumentation site:

    - ``with tracer.span(...)``: brackets a code block whose clock
      charges happen inside it (bundle execution, sync).
    - :meth:`record`: a known-duration span laid down *before* the
      matching ``clock.advance_us`` — the record-then-advance pattern
      used everywhere a cost is a single number.
    - :meth:`start_span` / :meth:`end_span`: open-ended spans whose end
      arrives later via the event queue (gateway request lifecycle).
    """

    enabled = True

    def __init__(
        self,
        clock: Callable[[], float] | None = None,
        sampler: TraceSampler | None = None,
    ) -> None:
        self._clock = clock
        self.sampler = sampler
        self.spans: list[Span] = []
        self._next_id = 1
        self._stack: list[Span] = []
        self._shift_us = 0.0
        self._suppressed = 0

    # -- time & context -------------------------------------------------

    def now_us(self) -> float:
        return self._clock() if self._clock is not None else 0.0

    @property
    def shift_us(self) -> float:
        """The currently active clock-domain shift (see :meth:`shifted`).

        Needed when annotating a span from *another* domain (e.g. a
        fault event on the gateway's execute span, timed by the device
        clock): pre-shift the timestamp with this value.
        """
        return self._shift_us

    @property
    def active(self) -> Span | None:
        """The innermost open span, or ``None`` outside any context."""
        if self._suppressed or not self._stack:
            return None
        return self._stack[-1]

    # -- span creation --------------------------------------------------

    def start_span(
        self,
        name: str,
        layer: str,
        *,
        start_us: float | None = None,
        parent: Span | None = None,
        attributes: dict[str, object] | None = None,
    ) -> Span:
        """Open a span; the caller ends it via :meth:`end_span`.

        Without an explicit ``parent`` the span nests under the active
        context (or becomes a root if there is none).
        """
        if self._suppressed:
            return NULL_SPAN  # type: ignore[return-value]
        if parent is None:
            parent = self._stack[-1] if self._stack else None
        span = Span(
            span_id=self._next_id,
            parent_id=None if parent is None or parent is NULL_SPAN else parent.span_id,
            name=name,
            layer=layer,
            start_us=self.now_us() if start_us is None else start_us,
            shift_us=self._shift_us,
            attributes=dict(attributes) if attributes else {},
        )
        self._next_id += 1
        self.spans.append(span)
        return span

    def end_span(self, span: Span, end_us: float | None = None) -> None:
        if span is NULL_SPAN:
            return
        span.end_us = self.now_us() if end_us is None else end_us

    @contextmanager
    def span(self, name: str, layer: str, **attributes: object) -> Iterator[Span]:
        """Bracket a block: starts now, becomes the active context, ends
        at the clock's position when the block exits (even on error)."""
        if self._suppressed:
            yield NULL_SPAN  # type: ignore[misc]
            return
        opened = self.start_span(name, layer, attributes=attributes)
        self._stack.append(opened)
        try:
            yield opened
        finally:
            self._stack.pop()
            opened.end_us = self.now_us()

    def record(
        self,
        name: str,
        layer: str,
        duration_us: float,
        *,
        start_us: float | None = None,
        **attributes: object,
    ) -> Span:
        """A completed span of known duration starting at the clock's now.

        Call *before* the matching ``clock.advance_us(duration_us)`` so
        the span covers exactly the interval the advance will consume.
        """
        if self._suppressed:
            return NULL_SPAN  # type: ignore[return-value]
        start = self.now_us() if start_us is None else start_us
        span = self.start_span(name, layer, start_us=start, attributes=attributes)
        span.end_us = start + duration_us
        return span

    # -- context plumbing ----------------------------------------------

    @contextmanager
    def attach(self, span: Span) -> Iterator[Span]:
        """Make an already-open span the parent context without owning
        its lifetime (the gateway's execute span around the executor)."""
        self._stack.append(span)
        try:
            yield span
        finally:
            self._stack.pop()

    @contextmanager
    def suppressed(self) -> Iterator[None]:
        """Drop all spans created inside: the path for unsampled requests
        (device-side spans would otherwise become orphan roots)."""
        self._suppressed += 1
        try:
            yield
        finally:
            self._suppressed -= 1

    @contextmanager
    def shifted(self, delta_us: float) -> Iterator[None]:
        """Offset spans created inside by ``delta_us`` on the exported
        timeline — the bridge between gateway time and device time."""
        previous = self._shift_us
        self._shift_us = previous + delta_us
        try:
            yield
        finally:
            self._shift_us = previous

    # -- sampling & lifecycle ------------------------------------------

    def sample(self) -> bool:
        """Draw one per-request sampling decision (True without a sampler)."""
        return True if self.sampler is None else self.sampler.should_sample()

    def reset(self) -> None:
        """Discard collected spans; sampler stream position is kept."""
        self.spans.clear()
        self._next_id = 1
        self._stack.clear()


class _NullTracer(Tracer):
    """The tracer handed out when none is installed: every operation is
    a no-op and no state accumulates, so uninstrumented runs behave —
    and cost — exactly as before tracing existed."""

    enabled = False

    def start_span(self, name, layer, *, start_us=None, parent=None, attributes=None):
        return NULL_SPAN

    def end_span(self, span, end_us=None):
        return None

    @contextmanager
    def span(self, name, layer, **attributes):
        yield NULL_SPAN

    def record(self, name, layer, duration_us, *, start_us=None, **attributes):
        return NULL_SPAN

    @contextmanager
    def attach(self, span):
        yield span

    @contextmanager
    def suppressed(self):
        yield

    @contextmanager
    def shifted(self, delta_us):
        yield

    @property
    def active(self):
        return None

    def sample(self):
        return True


NULL_TRACER = _NullTracer()

# Keyed weakly off the clock object: a tracer never outlives the
# simulation it observes, and lookups from hardware layers need no
# constructor plumbing.
_TRACERS: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def install_tracer(clock, sampler: TraceSampler | None = None) -> Tracer:
    """Register (and return) a tracer observing ``clock``.

    ``clock`` is a :class:`~repro.hardware.timing.SimClock`; every
    instrumented layer that shares it reports to this tracer.
    """
    tracer = Tracer(clock=lambda: clock.now_us, sampler=sampler)
    _TRACERS[clock] = tracer
    return tracer


def tracer_for(clock) -> Tracer:
    """The tracer installed for ``clock``, or :data:`NULL_TRACER`."""
    if clock is None:
        return NULL_TRACER
    return _TRACERS.get(clock, NULL_TRACER)


def uninstall_tracer(clock) -> None:
    _TRACERS.pop(clock, None)


__all__ = [
    "NULL_SPAN",
    "NULL_TRACER",
    "Span",
    "SpanEvent",
    "TraceContext",
    "TraceSampler",
    "Tracer",
    "install_tracer",
    "tracer_for",
    "uninstall_tracer",
]
