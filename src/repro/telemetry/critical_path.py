"""Critical-path attribution: where inside one request did the time go.

Because all charged time is sequential virtual time and spans nest
strictly, a span's *exclusive* time — its duration minus the summed
durations of its direct children — is the time spent in that span's own
layer and nowhere else.  Summing exclusive time by layer over a request's
span tree therefore partitions the end-to-end latency exactly: the
per-layer buckets add up to the root duration with no double counting
and no residue (beyond float association error).

This reproduces the paper's §VI-C decomposition as first-class
telemetry: the ``execution`` bucket is HarDTAPE-raw's EVM time, adding
``encryption`` gives -E, adding ``signature`` gives -ES, and the
``oram_storage``/``oram_code``/``swap`` buckets are the memory-oblivious
overheads that complete -full.  The trace-bench harness asserts these
buckets against the :class:`~repro.hardware.timing.CostModel` totals the
simulator accumulated independently in ``TimeBreakdown``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.telemetry.tracer import Span, Tracer

# The layer a request root span is created on (gateway lifecycle).
REQUEST_LAYER = "request"


@dataclass
class RequestAttribution:
    """One request's latency, partitioned into exclusive per-layer buckets."""

    root: Span
    buckets: dict[str, float]

    @property
    def total_us(self) -> float:
        return self.root.duration_us

    @property
    def residual_us(self) -> float:
        """Bucket sum minus root duration — zero up to float association."""
        return sum(self.buckets.values()) - self.total_us


def children_index(spans: list[Span]) -> dict[int, list[Span]]:
    """Direct children of each span id, in creation (= start) order."""
    index: dict[int, list[Span]] = {}
    for span in spans:
        if span.parent_id is not None:
            index.setdefault(span.parent_id, []).append(span)
    return index


def request_roots(tracer: Tracer) -> list[Span]:
    """Completed request roots, in creation order."""
    return [
        span
        for span in tracer.spans
        if span.parent_id is None and span.layer == REQUEST_LAYER and span.end_us is not None
    ]


def attribute(
    spans: list[Span],
    root: Span,
    index: dict[int, list[Span]] | None = None,
) -> RequestAttribution:
    """Walk ``root``'s subtree and bucket exclusive time by layer.

    Pass a prebuilt :func:`children_index` when attributing many roots
    over the same span list.
    """
    if index is None:
        index = children_index(spans)
    buckets: dict[str, float] = {}
    stack = [root]
    while stack:
        span = stack.pop()
        children = index.get(span.span_id, [])
        exclusive = span.duration_us - sum(child.duration_us for child in children)
        buckets[span.layer] = buckets.get(span.layer, 0.0) + exclusive
        stack.extend(children)
    return RequestAttribution(root=root, buckets=buckets)


def attribute_all(tracer: Tracer) -> list[RequestAttribution]:
    """One attribution per completed request root in the tracer."""
    index = children_index(tracer.spans)
    return [attribute(tracer.spans, root, index) for root in request_roots(tracer)]


def aggregate(attributions: list[RequestAttribution]) -> dict[str, float]:
    """Sum per-layer buckets across requests (keys sorted for stability)."""
    totals: dict[str, float] = {}
    for attribution in attributions:
        for layer, value in attribution.buckets.items():
            totals[layer] = totals.get(layer, 0.0) + value
    return dict(sorted(totals.items()))


def attribution_table(
    buckets: dict[str, float], requests: int | None = None
) -> str:
    """Fixed-width text table of the per-layer decomposition."""
    total = sum(buckets.values())
    header = f"{'layer':<14} {'total ms':>10} {'share':>7}"
    if requests:
        header += f" {'per-req ms':>11}"
    lines = [header, "-" * len(header)]
    for layer, value in sorted(buckets.items(), key=lambda item: -item[1]):
        share = value / total if total else 0.0
        row = f"{layer:<14} {value / 1000.0:>10.3f} {share:>6.1%}"
        if requests:
            row += f" {value / 1000.0 / requests:>11.3f}"
        lines.append(row)
    footer = f"{'end-to-end':<14} {total / 1000.0:>10.3f} {1.0:>6.1%}"
    if requests:
        footer += f" {total / 1000.0 / requests:>11.3f}"
    lines.append(footer)
    return "\n".join(lines)


__all__ = [
    "REQUEST_LAYER",
    "RequestAttribution",
    "aggregate",
    "attribute",
    "attribute_all",
    "attribution_table",
    "children_index",
    "request_roots",
]
