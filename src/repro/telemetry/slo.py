"""Deterministic SLO monitoring over MetricsRegistry snapshots.

Classic burn-rate alerting, replayed in virtual time: the monitor is
fed periodic ``MetricsRegistry.snapshot()`` dicts stamped with the
virtual clock, keeps windowed counter baselines per rule, and fires
typed :class:`SloAlert` objects when an objective is breached.  Nothing
here reads a wall clock or mutates a metric — the monitor is a pure
fold over snapshots, so identically seeded runs fire byte-identical
alert sequences (the obs-bench alert gate).

Four rule kinds cover the serving planes' health signals:

* ``burn_rate`` — windowed counter-delta ratio (shed rate, stale-ticket
  rate).  Fires when ``Δnum / Δden`` over the window exceeds the
  objective; label-expanded counters (``gateway.rejected{reason=...}``)
  are summed under their base name.
* ``level`` — a single snapshot value against a ceiling (p99 full-
  handshake cost).
* ``ratio`` — one snapshot value over another (resumed/full handshake
  cost share).
* ``gauge_max`` — the max across a labelled gauge family (per-shard
  ORAM stash occupancy, ``shard.oram.stash_blocks{shard=...}``).

Each rule re-arms only after ``window_us`` of virtual time (cooldown),
so a sustained breach produces a bounded, deterministic alert train.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Mapping

_KINDS = ("burn_rate", "level", "ratio", "gauge_max")


@dataclass(frozen=True)
class SloRule:
    """One health objective evaluated against every snapshot."""

    name: str
    kind: str                       # one of _KINDS
    metrics: tuple[str, ...]        # numerator names / the level metric
    objective: float                # breach threshold (value > objective)
    window_us: float                # burn window and re-arm cooldown
    denominators: tuple[str, ...] = ()
    description: str = ""

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown SLO rule kind {self.kind!r}")
        if self.kind in ("burn_rate", "ratio") and not self.denominators:
            raise ValueError(f"rule {self.name!r} ({self.kind}) needs denominators")
        if not self.metrics:
            raise ValueError(f"rule {self.name!r} names no metrics")


@dataclass(frozen=True, slots=True)
class SloAlert:
    """One deterministic breach: what fired, when, at what value."""

    rule: str
    kind: str
    at_us: float
    value: float
    objective: float
    window_us: float

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "kind": self.kind,
            "at_us": self.at_us,
            "value": self.value,
            "objective": self.objective,
            "window_us": self.window_us,
        }


def _sum_family(snapshot: Mapping[str, float], name: str) -> float:
    """Sum a metric family: the bare name plus every labelled expansion."""
    total = snapshot.get(name, 0.0)
    prefix = name + "{"
    for key, value in snapshot.items():
        if key.startswith(prefix):
            total += value
    return total


def _max_family(snapshot: Mapping[str, float], name: str) -> float:
    best = snapshot.get(name, 0.0)
    prefix = name + "{"
    for key, value in snapshot.items():
        if key.startswith(prefix) and value > best:
            best = value
    return best


@dataclass
class _RuleState:
    history: deque = field(default_factory=deque)  # (at_us, num, den)
    armed_at_us: float = float("-inf")


class SloMonitor:
    """Fold snapshots into alerts; deterministic, no metric mutation."""

    def __init__(self, rules: list[SloRule]) -> None:
        names = [rule.name for rule in rules]
        if len(set(names)) != len(names):
            raise ValueError("duplicate SLO rule names")
        self.rules = list(rules)
        self.alerts: list[SloAlert] = []
        self._state: dict[str, _RuleState] = {
            rule.name: _RuleState() for rule in rules
        }

    def observe(
        self, snapshot: Mapping[str, float], at_us: float
    ) -> list[SloAlert]:
        """Evaluate every rule; returns (and records) newly fired alerts."""
        fired: list[SloAlert] = []
        for rule in self.rules:
            state = self._state[rule.name]
            value = self._evaluate(rule, state, snapshot, at_us)
            if value is None:
                continue
            if value > rule.objective and at_us >= state.armed_at_us:
                alert = SloAlert(
                    rule=rule.name,
                    kind=rule.kind,
                    at_us=at_us,
                    value=value,
                    objective=rule.objective,
                    window_us=rule.window_us,
                )
                fired.append(alert)
                self.alerts.append(alert)
                state.armed_at_us = at_us + rule.window_us
        return fired

    def _evaluate(
        self,
        rule: SloRule,
        state: _RuleState,
        snapshot: Mapping[str, float],
        at_us: float,
    ) -> float | None:
        if rule.kind == "level":
            return snapshot.get(rule.metrics[0])
        if rule.kind == "gauge_max":
            return _max_family(snapshot, rule.metrics[0])
        if rule.kind == "ratio":
            numerator = snapshot.get(rule.metrics[0])
            denominator = snapshot.get(rule.denominators[0])
            if numerator is None or not denominator:
                return None
            return numerator / denominator
        # burn_rate: windowed counter deltas.
        num = sum(_sum_family(snapshot, name) for name in rule.metrics)
        den = sum(_sum_family(snapshot, name) for name in rule.denominators)
        history = state.history
        history.append((at_us, num, den))
        # Baseline: the newest sample at or beyond the window's far edge,
        # so the delta spans at least window_us once enough time passed.
        while len(history) > 1 and history[1][0] <= at_us - rule.window_us:
            history.popleft()
        base_at, base_num, base_den = history[0]
        if base_at == at_us:
            return None  # first observation: no delta yet
        delta_den = den - base_den
        if delta_den <= 0:
            return None
        return (num - base_num) / delta_den

    def alert_dicts(self) -> list[dict]:
        """The full alert train, canonical dict form (bench fingerprint)."""
        return [alert.to_dict() for alert in self.alerts]


def default_slo_rules(
    *,
    full_handshake_us: float = 100_000.0,
    max_resumed_share: float = 0.05,
    max_shed_rate: float = 0.01,
    max_stale_rate: float = 0.01,
    max_stash_blocks: float = 400.0,
    window_us: float = 1_000_000.0,
) -> list[SloRule]:
    """The serving planes' stock health rules (obs-bench's rule set)."""
    return [
        SloRule(
            name="handshake-p99-cost",
            kind="level",
            metrics=("tier.handshake_full_us.p99",),
            objective=full_handshake_us * 1.2,
            window_us=window_us,
            description="p99 full attestation+DHKE handshake cost ceiling",
        ),
        SloRule(
            name="shed-rate",
            kind="burn_rate",
            metrics=("gateway.rejected",),
            denominators=("gateway.submitted",),
            objective=max_shed_rate,
            window_us=window_us,
            description="share of admissions shed at the gateway",
        ),
        SloRule(
            name="resumed-cost-share",
            kind="ratio",
            metrics=("tier.handshake_resumed_us.p99",),
            denominators=("tier.handshake_full_us.p99",),
            objective=max_resumed_share,
            window_us=window_us,
            description="resumed handshake p99 as a share of full",
        ),
        SloRule(
            name="stale-ticket-rate",
            kind="burn_rate",
            metrics=("tier.stale_tickets",),
            denominators=("tier.resumed", "tier.stale_tickets"),
            objective=max_stale_rate,
            window_us=window_us,
            description="resume attempts refused as stale (restart burn)",
        ),
        SloRule(
            name="shard-stash-occupancy",
            kind="gauge_max",
            metrics=("shard.oram.stash_blocks",),
            objective=max_stash_blocks,
            window_us=window_us,
            description="worst per-shard ORAM stash occupancy",
        ),
    ]


__all__ = [
    "SloAlert",
    "SloMonitor",
    "SloRule",
    "default_slo_rules",
]
