"""The trace bench: one traced end-to-end serving run, reconciled (§VI-C).

One :func:`run_trace_bench` call builds a multi-device service, installs
a seeded tracer on its clock, drives the gateway with the closed-loop
load generator, and folds the collected span forest into a
:class:`TraceBenchReport`: the per-layer critical-path decomposition,
both exports (Chrome ``trace_event`` JSON and Prometheus text), and —
when every request is sampled — a reconciliation of the telemetry
buckets against the totals the simulator accumulated independently
through :class:`~repro.hardware.timing.TimeBreakdown` and the
hypervisor/cost-model counters.

The reconciliation is the bench's point: tracing observes the same
virtual-time charges the cost model makes, through a completely separate
code path (span exclusive time vs. breakdown accumulation), so agreement
within float tolerance is strong evidence neither side drops or
double-counts a microsecond.

Determinism contract: everything — load order, sampling decisions, span
ids, export bytes — derives from ``config.seed`` through seeded DRBGs
and virtual time, so identically configured runs produce byte-identical
exports (the CLI and CI assert this by running twice).

This module imports the serving layer, so it is deliberately *not*
re-exported from :mod:`repro.telemetry` (which serving itself imports);
import ``repro.telemetry.bench`` directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.device import DeviceConfig
from repro.core.service import HarDTAPEService
from repro.crypto.keccak import keccak_memo_stats
from repro.core.user import PreExecutionClient
from repro.hypervisor.bundle_codec import TransactionBundle, encode_bundle
from repro.hypervisor.hypervisor import SecurityFeatures
from repro.serving.gateway import Gateway, GatewayConfig, ServiceExecutor
from repro.serving.loadgen import LoadReport, LoadSession, run_closed_loop
from repro.serving.metrics import MetricsRegistry
from repro.telemetry.critical_path import (
    aggregate,
    attribute_all,
    attribution_table,
)
from repro.telemetry.exporters import render_chrome_trace, render_prometheus
from repro.telemetry.tracer import TraceSampler, install_tracer, uninstall_tracer


@dataclass
class TraceBenchConfig:
    """One trace-bench run: fleet shape, load shape, and sampling."""

    seed: int = 7
    sample_rate: float = 1.0
    device_count: int = 2
    hevms_per_device: int = 2
    tenants: int = 3
    requests_per_tenant: int = 4
    security_level: str = "full"
    # Bound on |traced - modeled| per reconciliation row.  The two sides
    # sum the same µs-scale charges in different association orders, so
    # the honest disagreement is ~1e-6 µs over a full run; a millionth of
    # a microsecond of slack catches real drops without false alarms.
    tolerance_us: float = 1e-3


@dataclass(frozen=True)
class ReconciliationRow:
    """One bucket's telemetry total next to the simulator's own total."""

    name: str
    traced_us: float
    model_us: float

    @property
    def delta_us(self) -> float:
        return self.traced_us - self.model_us


@dataclass
class TraceBenchReport:
    """Everything one traced run produced."""

    seed: int
    sample_rate: float
    load: LoadReport
    buckets: dict[str, float]          # exclusive µs per layer, all requests
    sampled_requests: int
    span_count: int
    residual_us: float                 # max |bucket sum - root duration|
    reconciliation: list[ReconciliationRow] = field(default_factory=list)
    chrome_json: str = ""
    prometheus_text: str = ""
    # Host-process decrypt-memo accounting across the fleet's ORAM
    # clients (repro.perf).  Diagnostics only: deliberately kept out of
    # the trace/metrics exports so memo-on and memo-off runs stay
    # byte-identical on the wire.
    memo_hits: int = 0
    memo_misses: int = 0
    # keccak256 memo activity during this run (repro.crypto.keccak) —
    # same host-process-only caveat, same exclusion from exports.
    keccak_hits: int = 0
    keccak_misses: int = 0

    @property
    def max_reconciliation_error_us(self) -> float:
        return max((abs(row.delta_us) for row in self.reconciliation), default=0.0)

    def summary_lines(self) -> list[str]:
        lines = [
            f"seed {self.seed}, sample rate {self.sample_rate:.0%}: "
            f"{self.sampled_requests}/{self.load.submitted} requests traced, "
            f"{self.span_count} spans",
            f"throughput {self.load.throughput_tps:.1f} tx/s over "
            f"{self.load.duration_us / 1e6:.2f} s (virtual)",
            "",
        ]
        lines.extend(
            attribution_table(self.buckets, requests=self.sampled_requests)
            .splitlines()
        )
        if self.reconciliation:
            lines.append("")
            lines.append("reconciliation vs cost-model accounting:")
            for row in self.reconciliation:
                lines.append(
                    f"  {row.name:<22} traced {row.traced_us / 1000:>10.3f} ms"
                    f"  model {row.model_us / 1000:>10.3f} ms"
                    f"  |d| {abs(row.delta_us):.2e} us"
                )
            lines.append(
                f"  max error {self.max_reconciliation_error_us:.2e} us, "
                f"max per-request residual {self.residual_us:.2e} us"
            )
        if self.memo_hits or self.memo_misses:
            lookups = self.memo_hits + self.memo_misses
            lines.append(
                f"oram decrypt memo: {self.memo_hits}/{lookups} hits "
                f"({self.memo_hits / lookups:.0%}; host-process cache, "
                "not simulated time)"
            )
        if self.keccak_hits or self.keccak_misses:
            lookups = self.keccak_hits + self.keccak_misses
            lines.append(
                f"keccak256 memo: {self.keccak_hits}/{lookups} hits "
                f"({self.keccak_hits / lookups:.0%}; host-process cache, "
                "not simulated time)"
            )
        return lines


def _reconcile(service: HarDTAPEService, buckets: dict[str, float]):
    """Pair each telemetry bucket with the simulator's independent total.

    Only meaningful at sample rate 1.0: the breakdown/stat totals cover
    every bundle, so the spans must too.  Buckets with no cost-model
    counterpart (queueing, idle prefetch waits, the ~0-exclusive
    request/service/session wrappers) are reported but not reconciled.
    """
    breakdowns = service.stats.per_tx_breakdowns
    model = {
        "execution": sum(b.execution_us for b in breakdowns),
        "oram_storage": sum(b.oram_storage_us for b in breakdowns),
        "oram_code": sum(b.oram_code_us for b in breakdowns),
        "swap": sum(b.swap_us for b in breakdowns),
        "other": sum(b.other_us for b in breakdowns),
        # Channel AEAD + ECDSA, accumulated per bundle on each device.
        "encryption+signature": sum(
            d.hypervisor.stats.crypto_time_us for d in service.devices
        ),
        # Fixed admission cost per executed bundle.
        "hypervisor": service.cost.bundle_admission_us
        * sum(d.hypervisor.stats.bundles_executed for d in service.devices),
    }
    traced = {name: buckets.get(name, 0.0) for name in model}
    traced["encryption+signature"] = buckets.get("encryption", 0.0) + buckets.get(
        "signature", 0.0
    )
    return [
        ReconciliationRow(name=name, traced_us=traced[name], model_us=model[name])
        for name in model
    ]


def run_trace_bench(config: TraceBenchConfig, evalset) -> TraceBenchReport:
    """One seeded, traced serving run over ``evalset``'s transactions."""
    service = HarDTAPEService(
        evalset.node,
        SecurityFeatures.from_level(config.security_level),
        device_count=config.device_count,
        device_config=DeviceConfig(hevm_count=config.hevms_per_device),
        charge_fees=False,
    )
    tracer = install_tracer(
        service.clock, TraceSampler(config.sample_rate, config.seed)
    )
    keccak_before = keccak_memo_stats()
    keccak_hits_before = keccak_before.hits
    keccak_misses_before = keccak_before.misses
    try:
        metrics = MetricsRegistry()
        transactions = evalset.transactions
        sessions: list[LoadSession] = []
        for tenant in range(config.tenants):
            client = PreExecutionClient(
                service.manufacturer.root_public_key,
                rng_seed=bytes([tenant + 1]) * 32,
            )
            home = tenant % config.device_count
            session = client.connect(service, service.devices[home])

            def make_payload(ordinal: int, offset: int = tenant, session=session):
                tx = transactions[(offset + ordinal) % len(transactions)]
                encoded = encode_bundle(
                    TransactionBundle(
                        transactions=(tx,), block_number=service.synced_height
                    )
                )

                def seal():
                    # Seal at dispatch so channel nonces stay ordered.
                    if session.device.hypervisor.features.encryption:
                        return session.channel.seal(encoded)
                    return encoded

                return seal

            sessions.append(
                LoadSession(
                    session_id=session.session_id,
                    make_payload=make_payload,
                    device_index=home,
                )
            )

        gateway = Gateway(
            ServiceExecutor(service),
            GatewayConfig(),
            metrics=metrics,
            tracer=tracer,
        )
        load = run_closed_loop(
            gateway, sessions, requests_per_session=config.requests_per_tenant
        )

        attributions = attribute_all(tracer)
        buckets = aggregate(attributions)
        residual = max(
            (abs(a.residual_us) for a in attributions), default=0.0
        )
        reconciliation = (
            _reconcile(service, buckets) if config.sample_rate >= 1.0 else []
        )
        memo_hits = memo_misses = 0
        for device in service.devices:
            backend = device.oram_backend
            if backend is not None and backend.client.memo is not None:
                memo_hits += backend.client.memo.stats.hits
                memo_misses += backend.client.memo.stats.misses
        return TraceBenchReport(
            seed=config.seed,
            sample_rate=config.sample_rate,
            load=load,
            buckets=buckets,
            sampled_requests=len(attributions),
            span_count=len(tracer.spans),
            residual_us=residual,
            reconciliation=reconciliation,
            chrome_json=render_chrome_trace(tracer),
            prometheus_text=render_prometheus(metrics, layer_totals=buckets),
            memo_hits=memo_hits,
            memo_misses=memo_misses,
            keccak_hits=keccak_memo_stats().hits - keccak_hits_before,
            keccak_misses=keccak_memo_stats().misses - keccak_misses_before,
        )
    finally:
        uninstall_tracer(service.clock)


__all__ = [
    "ReconciliationRow",
    "TraceBenchConfig",
    "TraceBenchReport",
    "run_trace_bench",
]
