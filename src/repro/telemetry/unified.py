"""One canonical committed step-trace schema across all three trace planes.

The repository accumulated three representations of "what did this
transaction execute": the node's ``debug_traceTransaction``-shaped
:class:`~repro.evm.tracer.StructLog` stream, the HEVM's
:class:`~repro.evm.tracer.EventCounts` tallies driving the timing model,
and the ``hevm.tx`` telemetry spans carrying instruction/group counts as
attributes.  The ROADMAP's verifiable-receipts item needs them unified
behind one committed schema before receipts can be signed over it; this
module is that schema.

A :class:`UnifiedStepTrace` is an ordered tuple of
:class:`StepTraceRecord` leaves with a Merkle-tree :meth:`commitment`
(domain-separated leaf/node hashing, odd level promotes), so any single
step can later be opened against the root with an O(log n) path — the
receipts substrate.  Adapters lift each existing representation into the
schema or into its derived count view, and the ``reconcile_*`` functions
enforce *exact* agreement, raising a typed
:class:`TraceReconciliationError` naming the first divergence.  No
tolerance windows: the three planes observe the same deterministic
execution, so any drift is a bug, not noise.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.evm import opcodes as _opcodes

_LEAF_DOMAIN = b"\x00hardtape.trace.leaf"
_NODE_DOMAIN = b"\x01hardtape.trace.node"
_EMPTY_DOMAIN = b"\x02hardtape.trace.empty"

# Opcode-name -> paper Figure-2 group, built once from the static table.
# Unassigned opcodes classify as "invalid", matching CountingTracer.
_GROUP_BY_OP: dict[str, str] = {
    info.name: info.group.value for info in _opcodes.ALL_OPCODES.values()
}


def group_for_op(op: str) -> str:
    """The Figure-2 instruction group for an opcode name."""
    return _GROUP_BY_OP.get(op, "invalid")


class TraceReconciliationError(Exception):
    """Two representations of the same execution disagree.

    Carries the first divergence: which field, what each side claims,
    and (for step-level divergence) the step index.  Reconciliation is
    exact — the planes observe one deterministic execution, so this is
    always a correctness bug in an adapter or an instrumentation site.
    """

    def __init__(
        self,
        message: str,
        *,
        field: str = "",
        expected: object = None,
        actual: object = None,
        index: int | None = None,
    ) -> None:
        super().__init__(message)
        self.field = field
        self.expected = expected
        self.actual = actual
        self.index = index


@dataclass(frozen=True, slots=True)
class StepTraceRecord:
    """One retired instruction: the canonical committed step.

    ``gas`` is the gas remaining *before* the step executes (the
    debug_traceTransaction convention both the node and the HEVM's
    StructTracer already follow); ``depth`` numbers frames from 1.
    """

    index: int
    depth: int
    pc: int
    op: str
    group: str
    gas: int

    def leaf_bytes(self) -> bytes:
        """Deterministic leaf encoding fed to the Merkle commitment."""
        return "|".join(
            (
                str(self.index),
                str(self.depth),
                str(self.pc),
                self.op,
                self.group,
                str(self.gas),
            )
        ).encode()

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "depth": self.depth,
            "pc": self.pc,
            "op": self.op,
            "group": self.group,
            "gas": self.gas,
        }


def _merkle_root(leaves: list[bytes]) -> str:
    if not leaves:
        return hashlib.sha256(_EMPTY_DOMAIN).hexdigest()
    level = [
        hashlib.sha256(_LEAF_DOMAIN + leaf).digest() for leaf in leaves
    ]
    while len(level) > 1:
        nxt = []
        for i in range(0, len(level) - 1, 2):
            nxt.append(
                hashlib.sha256(
                    _NODE_DOMAIN + level[i] + level[i + 1]
                ).digest()
            )
        if len(level) % 2:
            nxt.append(level[-1])  # odd node promotes unhashed
        level = nxt
    return level[0].hex()


@dataclass(frozen=True, slots=True)
class MerkleProof:
    """An O(log n) membership path from one leaf to the commitment root.

    ``path`` carries one entry per tree level, bottom-up.  Each entry is
    ``("L", digest)`` when the sibling is hashed on the left of the
    running node, ``("R", digest)`` when on the right, and ``("P", b"")``
    where the running node was the odd one out and promoted unhashed —
    mirroring :func:`_merkle_root` exactly, domains included.
    """

    index: int
    leaf: bytes
    path: tuple[tuple[str, bytes], ...]

    @property
    def hash_ops(self) -> int:
        """sha256 invocations a verification costs (the audit-cost unit)."""
        return 1 + sum(1 for side, _ in self.path if side != "P")


def merkle_proof(leaves: list[bytes], index: int) -> MerkleProof:
    """Open ``leaves[index]`` against the root :func:`_merkle_root` builds."""
    if not 0 <= index < len(leaves):
        raise IndexError(
            f"leaf index {index} out of range for {len(leaves)} leaves"
        )
    level = [
        hashlib.sha256(_LEAF_DOMAIN + leaf).digest() for leaf in leaves
    ]
    path: list[tuple[str, bytes]] = []
    pos = index
    while len(level) > 1:
        nxt = []
        for i in range(0, len(level) - 1, 2):
            nxt.append(
                hashlib.sha256(
                    _NODE_DOMAIN + level[i] + level[i + 1]
                ).digest()
            )
        odd = len(level) % 2
        if odd:
            nxt.append(level[-1])
        if odd and pos == len(level) - 1:
            path.append(("P", b""))
            pos = len(nxt) - 1
        elif pos % 2 == 0:
            path.append(("R", level[pos + 1]))
            pos //= 2
        else:
            path.append(("L", level[pos - 1]))
            pos //= 2
        level = nxt
    return MerkleProof(index=index, leaf=leaves[index], path=tuple(path))


def verify_merkle_proof(proof: MerkleProof, root: str) -> bool:
    """Does ``proof`` open its leaf against ``root``?  Pure hashing —
    cost is ``proof.hash_ops`` sha256 calls, O(log n) in trace length."""
    node = hashlib.sha256(_LEAF_DOMAIN + proof.leaf).digest()
    for side, sibling in proof.path:
        if side == "P":
            if sibling != b"":
                return False
        elif side == "R":
            node = hashlib.sha256(_NODE_DOMAIN + node + sibling).digest()
        elif side == "L":
            node = hashlib.sha256(_NODE_DOMAIN + sibling + node).digest()
        else:
            return False
    return node.hex() == root


@dataclass(frozen=True)
class UnifiedStepTrace:
    """The committed representation: ordered steps + Merkle commitment."""

    records: tuple[StepTraceRecord, ...]

    @property
    def instructions(self) -> int:
        return len(self.records)

    def group_counts(self) -> dict[str, int]:
        """Per-group retired-instruction tallies, sorted by group name."""
        counts: dict[str, int] = {}
        for record in self.records:
            counts[record.group] = counts.get(record.group, 0) + 1
        return dict(sorted(counts.items()))

    def commitment(self) -> str:
        """Merkle root over the leaf encodings (hex sha256)."""
        return _merkle_root([r.leaf_bytes() for r in self.records])

    def open_step(self, index: int) -> MerkleProof:
        """Membership proof for step ``index`` against :meth:`commitment`.

        Prover-side: the holder of the full trace pays O(n) to build the
        path; the verifier then pays only ``proof.hash_ops`` ∈ O(log n).
        """
        return merkle_proof([r.leaf_bytes() for r in self.records], index)


# ----------------------------------------------------------------------
# Adapters: lift each existing representation into the schema
# ----------------------------------------------------------------------


def from_struct_logs(logs: Iterable) -> UnifiedStepTrace:
    """Adapt a StructLog stream (node RPC shape or HEVM StructTracer)."""
    records = tuple(
        StepTraceRecord(
            index=index,
            depth=log.depth,
            pc=log.pc,
            op=log.op,
            group=group_for_op(log.op),
            gas=log.gas,
        )
        for index, log in enumerate(logs)
    )
    return UnifiedStepTrace(records=records)


def counts_from_events(counts) -> dict:
    """The count view of an :class:`~repro.evm.tracer.EventCounts`."""
    return {
        "instructions": counts.instructions,
        "by_group": dict(sorted(counts.by_group.items())),
    }


def counts_from_span(span) -> dict:
    """The count view of a ``hevm.tx`` telemetry span's attributes."""
    attrs = span.attributes
    if "instructions" not in attrs:
        raise TraceReconciliationError(
            f"span {span.name!r} carries no instruction counts "
            f"(was a tracer installed during execution?)",
            field="instructions",
        )
    return {
        "instructions": int(attrs["instructions"]),
        "by_group": dict(sorted(attrs.get("opcode_groups", {}).items())),
    }


def counts_from_trace(trace: UnifiedStepTrace) -> dict:
    """The count view derived from the committed step records."""
    return {
        "instructions": trace.instructions,
        "by_group": trace.group_counts(),
    }


# ----------------------------------------------------------------------
# Reconciliation: exact, typed
# ----------------------------------------------------------------------


def reconcile_step_traces(
    expected: UnifiedStepTrace,
    actual: UnifiedStepTrace,
    *,
    expected_source: str = "node",
    actual_source: str = "hevm",
) -> str:
    """Exact step-for-step equality; returns the shared commitment.

    Raises :class:`TraceReconciliationError` at the first diverging
    step (or on a length mismatch) naming both sources.
    """
    if len(expected.records) != len(actual.records):
        raise TraceReconciliationError(
            f"{expected_source} trace has {len(expected.records)} steps, "
            f"{actual_source} has {len(actual.records)}",
            field="instructions",
            expected=len(expected.records),
            actual=len(actual.records),
        )
    for exp, act in zip(expected.records, actual.records):
        if exp != act:
            for name in ("depth", "pc", "op", "group", "gas"):
                if getattr(exp, name) != getattr(act, name):
                    raise TraceReconciliationError(
                        f"step {exp.index}: {expected_source}.{name}="
                        f"{getattr(exp, name)!r} but {actual_source}."
                        f"{name}={getattr(act, name)!r}",
                        field=name,
                        expected=getattr(exp, name),
                        actual=getattr(act, name),
                        index=exp.index,
                    )
    root = expected.commitment()
    if root != actual.commitment():
        raise TraceReconciliationError(
            "identical records produced different commitments",
            field="commitment",
        )
    return root


def reconcile_counts(
    expected: Mapping,
    actual: Mapping,
    *,
    expected_source: str = "trace",
    actual_source: str = "counts",
) -> None:
    """Exact integer equality of two count views."""
    if expected["instructions"] != actual["instructions"]:
        raise TraceReconciliationError(
            f"{expected_source} retired {expected['instructions']} "
            f"instructions, {actual_source} says {actual['instructions']}",
            field="instructions",
            expected=expected["instructions"],
            actual=actual["instructions"],
        )
    exp_groups = dict(expected["by_group"])
    act_groups = dict(actual["by_group"])
    for group in sorted(set(exp_groups) | set(act_groups)):
        if exp_groups.get(group, 0) != act_groups.get(group, 0):
            raise TraceReconciliationError(
                f"group {group!r}: {expected_source}="
                f"{exp_groups.get(group, 0)} vs {actual_source}="
                f"{act_groups.get(group, 0)}",
                field=f"by_group.{group}",
                expected=exp_groups.get(group, 0),
                actual=act_groups.get(group, 0),
            )


__all__ = [
    "MerkleProof",
    "StepTraceRecord",
    "TraceReconciliationError",
    "UnifiedStepTrace",
    "counts_from_events",
    "counts_from_span",
    "counts_from_trace",
    "from_struct_logs",
    "group_for_op",
    "merkle_proof",
    "reconcile_step_traces",
    "reconcile_counts",
    "verify_merkle_proof",
]
