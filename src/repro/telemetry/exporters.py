"""Trace and metrics exporters: Chrome ``trace_event`` JSON + Prometheus text.

Both renderings are deterministic down to the byte: spans are emitted in
creation order, JSON keys are sorted, label sets are pre-sorted by the
registry, and no timestamps other than virtual time appear anywhere.
The trace-bench CLI and CI assert byte-identity across identically
seeded runs, so any nondeterminism added here is a test failure, not a
cosmetic wobble.

The Chrome export uses complete ("X") duration events with ``ts``/``dur``
in microseconds — virtual microseconds map one-to-one — and is loadable
in Perfetto or ``chrome://tracing`` as-is.  Each request renders on its
own thread row (``tid`` = request id) with control-plane spans
(attestation, session setup, sync) on row 0.  Span events become
instant ("i") events on the same row.

The Prometheus rendering subsumes ``MetricsRegistry.snapshot()``: every
quantity the snapshot exposes appears as a sample line, with histogram
quantiles as summary-style ``{quantile="..."}`` series, plus optional
``trace_layer_exclusive_us`` series carrying the critical-path buckets.
"""

from __future__ import annotations

import json
import re

from repro.telemetry.tracer import Span, Tracer

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")

# tid used for spans not belonging to any request tree (control plane).
CONTROL_PLANE_TID = 0


def _jsonable(value: object) -> object:
    """Span attributes restricted to what JSON carries deterministically."""
    if isinstance(value, bytes):
        return value.hex()
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def _thread_ids(spans: list[Span]) -> dict[int, int]:
    """Map each span id to its display row: the root's request id."""
    by_id = {span.span_id: span for span in spans}
    tids: dict[int, int] = {}
    for span in spans:
        walk = span
        chain = []
        while walk.parent_id is not None and walk.span_id not in tids:
            chain.append(walk.span_id)
            walk = by_id[walk.parent_id]
        if walk.span_id in tids:
            tid = tids[walk.span_id]
        else:
            request_id = walk.attributes.get("request_id")
            tid = int(request_id) if isinstance(request_id, int) else CONTROL_PLANE_TID
            tids[walk.span_id] = tid
        for span_id in chain:
            tids[span_id] = tid
    return tids


def chrome_trace_events(tracer: Tracer) -> list[dict]:
    """The ``traceEvents`` list: metadata rows, then one X event per span."""
    spans = tracer.spans
    tids = _thread_ids(spans)
    events: list[dict] = [
        {
            "args": {"name": "hardtape-repro"},
            "name": "process_name",
            "ph": "M",
            "pid": 1,
        }
    ]
    for tid in sorted(set(tids.values())):
        label = "control-plane" if tid == CONTROL_PLANE_TID else f"request-{tid}"
        events.append(
            {
                "args": {"name": label},
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": tid,
            }
        )
    for span in spans:
        tid = tids[span.span_id]
        start = span.start_us + span.shift_us
        events.append(
            {
                "args": _jsonable(dict(span.attributes)),
                "cat": span.layer,
                "dur": span.duration_us,
                "name": span.name,
                "ph": "X",
                "pid": 1,
                "tid": tid,
                "ts": start,
            }
        )
        for item in span.events:
            events.append(
                {
                    "args": _jsonable(dict(item.attributes)),
                    "cat": span.layer,
                    "name": item.name,
                    "ph": "i",
                    "pid": 1,
                    "s": "t",
                    "tid": tid,
                    "ts": item.at_us + span.shift_us,
                }
            )
    return events


def render_chrome_trace(tracer: Tracer) -> str:
    """Perfetto-loadable JSON document, byte-stable across equal runs."""
    document = {
        "displayTimeUnit": "ms",
        "traceEvents": chrome_trace_events(tracer),
    }
    return json.dumps(document, sort_keys=True, separators=(",", ":"))


# -- Prometheus-style text exposition ---------------------------------


def _metric_name(name: str, suffix: str = "") -> str:
    return _NAME_RE.sub("_", name) + suffix


def _label_str(labels, extra: tuple[tuple[str, str], ...] = ()) -> str:
    items = tuple(labels) + extra
    if not items:
        return ""
    inner = ",".join(f'{_NAME_RE.sub("_", key)}="{value}"' for key, value in items)
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    return repr(float(value))


def render_prometheus(
    registry,
    layer_totals: dict[str, float] | None = None,
    planes: dict[str, object] | None = None,
) -> str:
    """Prometheus text exposition subsuming ``registry.snapshot()``.

    Every snapshot quantity appears: counters as ``_total``, gauges with
    a ``_peak`` companion, histograms as summary quantiles plus
    ``_count``/``_sum``/``_max``/``_mean``.  Passing the critical-path
    ``layer_totals`` adds ``hardtape_trace_layer_exclusive_us`` series.

    ``planes`` maps plane names to *additional* registries (e.g.
    ``{"async": tier.metrics}``): their samples render after the main
    registry's, each line carrying a ``plane="..."`` label, so the C10K
    tier's deliberately separate registry becomes scrapeable without
    touching a single byte of the frontend exposition (regression-
    tested: ``planes=None`` output is byte-identical to before).
    """
    lines: list[str] = []
    seen_types: set[str] = set()

    def header(base: str, kind: str) -> None:
        if base not in seen_types:
            seen_types.add(base)
            lines.append(f"# TYPE {base} {kind}")

    def emit(source, extra: tuple[tuple[str, str], ...]) -> None:
        for name, labels, counter in source.iter_counters():
            base = _metric_name(name, "_total")
            header(base, "counter")
            lines.append(
                f"{base}{_label_str(labels, extra)} "
                f"{_format_value(counter.value)}"
            )
        for name, labels, gauge in source.iter_gauges():
            base = _metric_name(name)
            header(base, "gauge")
            lines.append(
                f"{base}{_label_str(labels, extra)} "
                f"{_format_value(gauge.value)}"
            )
            peak = _metric_name(name, "_peak")
            header(peak, "gauge")
            lines.append(
                f"{peak}{_label_str(labels, extra)} "
                f"{_format_value(gauge.peak)}"
            )
        for name, labels, hist in source.iter_histograms():
            base = _metric_name(name)
            header(base, "summary")
            for quantile in ("0.5", "0.95", "0.99"):
                percentile = hist.percentile(float(quantile) * 100)
                labelled = _label_str(labels, (("quantile", quantile),) + extra)
                lines.append(f"{base}{labelled} {_format_value(percentile)}")
            lines.append(
                f"{base}_count{_label_str(labels, extra)} "
                f"{_format_value(hist.count)}"
            )
            lines.append(
                f"{base}_sum{_label_str(labels, extra)} "
                f"{_format_value(hist.total)}"
            )
            for suffix, value in (("_max", hist.max), ("_mean", hist.mean)):
                gauge_name = _metric_name(name, suffix)
                header(gauge_name, "gauge")
                lines.append(
                    f"{gauge_name}{_label_str(labels, extra)} "
                    f"{_format_value(value)}"
                )

    emit(registry, ())
    for plane in sorted(planes or {}):
        emit(planes[plane], (("plane", plane),))
    if layer_totals is not None:
        base = "hardtape_trace_layer_exclusive_us"
        header(base, "counter")
        for layer in sorted(layer_totals):
            labelled = _label_str((("layer", layer),))
            lines.append(f"{base}{labelled} {_format_value(layer_totals[layer])}")
    return "\n".join(lines) + "\n"


__all__ = [
    "CONTROL_PLANE_TID",
    "chrome_trace_events",
    "render_chrome_trace",
    "render_prometheus",
]
