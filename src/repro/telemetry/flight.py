"""Per-session flight recorder: bounded rings, sealed dumps on failure.

An aircraft-style black box for the serving planes: every session gets a
bounded ring buffer of its most recent observability entries (spans laid
down by the tier, point events, metric deltas).  Recording is pure
bookkeeping — no clock access, no metric mutation — so an armed recorder
is byte-invisible to the simulation; the obs-bench identity gate hashes
exactly that.

When a request terminates with one of the typed failures the planes
treat as terminal (:class:`~repro.faults.errors.BundleFailedError`,
:class:`~repro.hypervisor.resumption.StaleTicketError`,
:class:`~repro.sharding.errors.ShardUnavailableError`), the recorder
*seals* the session's ring into an immutable :class:`SealedDump` with a
sha256 digest over its canonical JSON — deterministic down to the byte
for a seeded run, so two identical runs produce identical dumps
(property-tested).  Trigger matching is by exception *type name* so this
module never imports the fault/sharding/hypervisor planes it observes.
"""

from __future__ import annotations

import hashlib
import json
from collections import deque
from dataclasses import dataclass, field

#: Typed failures that seal a dump.  Names, not classes: the recorder
#: sits below every plane it observes and must not import them.
#: The receipt-audit trio are Byzantine verdicts (a device provably
#: lied or every failover target is gone) — exactly the moments an
#: operator wants the last seconds of session history preserved.
SEAL_CAUSES = frozenset(
    {
        "BundleFailedError",
        "StaleTicketError",
        "ShardUnavailableError",
        "ReceiptMismatchError",
        "ReceiptMissingError",
        "QuarantinedDeviceError",
    }
)


@dataclass(frozen=True, slots=True)
class FlightEntry:
    """One ring slot: a span, a point event, or a metric delta."""

    kind: str              # "span" | "event" | "metric"
    name: str
    at_us: float
    data: tuple[tuple[str, object], ...] = ()

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "name": self.name,
            "at_us": self.at_us,
            "data": {key: _jsonable(value) for key, value in self.data},
        }


def _jsonable(value: object) -> object:
    if isinstance(value, bytes):
        return value.hex()
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return str(value)


@dataclass(frozen=True)
class SealedDump:
    """An immutable snapshot of one session's ring at failure time."""

    session_id: str
    cause_type: str
    reason: str
    sealed_at_us: float
    sequence: int
    entries: tuple[FlightEntry, ...]
    digest: str = field(default="", compare=False)

    def canonical_json(self) -> str:
        return json.dumps(
            {
                "session_id": self.session_id,
                "cause_type": self.cause_type,
                "reason": self.reason,
                "sealed_at_us": self.sealed_at_us,
                "sequence": self.sequence,
                "entries": [entry.to_dict() for entry in self.entries],
            },
            sort_keys=True,
            separators=(",", ":"),
        )


class FlightRecorder:
    """Bounded per-session rings; ``seal`` freezes one into a dump.

    ``capacity`` bounds each session's ring (oldest entries fall off),
    so memory is O(sessions * capacity) regardless of run length.
    """

    def __init__(self, capacity: int = 32) -> None:
        if capacity < 1:
            raise ValueError(f"flight ring capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._rings: dict[str, deque[FlightEntry]] = {}
        self.dumps: list[SealedDump] = []

    @staticmethod
    def _session_key(session_id: object) -> str:
        if isinstance(session_id, bytes):
            return session_id.hex()
        return str(session_id)

    def _ring(self, session_id: object) -> deque:
        key = self._session_key(session_id)
        ring = self._rings.get(key)
        if ring is None:
            ring = self._rings[key] = deque(maxlen=self.capacity)
        return ring

    # -- recording ------------------------------------------------------

    def note(
        self,
        session_id: object,
        kind: str,
        name: str,
        at_us: float,
        /,
        **data: object,
    ) -> None:
        """Append one entry to the session's ring (no side effects).

        The header parameters are positional-only so ``data`` may carry
        attribute keys named ``kind``/``name`` without colliding.
        """
        self._ring(session_id).append(
            FlightEntry(
                kind=kind,
                name=name,
                at_us=at_us,
                data=tuple(sorted(data.items())),
            )
        )

    def note_span(self, session_id: object, name: str, start_us: float,
                  duration_us: float, **attrs: object) -> None:
        self.note(session_id, "span", name, start_us,
                  duration_us=duration_us, **attrs)

    def note_metric(self, session_id: object, name: str, at_us: float,
                    delta: float) -> None:
        self.note(session_id, "metric", name, at_us, delta=delta)

    # -- sealing --------------------------------------------------------

    @staticmethod
    def should_seal(cause_type: str) -> bool:
        """Is this typed failure one that triggers a sealed dump?"""
        return cause_type in SEAL_CAUSES

    def seal(
        self,
        session_id: object,
        cause_type: str,
        reason: str,
        at_us: float,
    ) -> SealedDump:
        """Freeze the session's ring into a dump (ring keeps recording)."""
        entries = tuple(self._ring(session_id))
        dump = SealedDump(
            session_id=self._session_key(session_id),
            cause_type=cause_type,
            reason=reason,
            sealed_at_us=at_us,
            sequence=len(self.dumps),
            entries=entries,
        )
        digest = hashlib.sha256(dump.canonical_json().encode()).hexdigest()
        object.__setattr__(dump, "digest", digest)
        self.dumps.append(dump)
        return dump

    def seal_if_triggered(
        self,
        session_id: object,
        cause_type: str,
        reason: str,
        at_us: float,
    ) -> SealedDump | None:
        """``seal`` iff ``cause_type`` is a registered trigger."""
        if not self.should_seal(cause_type):
            return None
        return self.seal(session_id, cause_type, reason, at_us)

    # -- inspection -----------------------------------------------------

    def ring_of(self, session_id: object) -> tuple[FlightEntry, ...]:
        return tuple(self._rings.get(self._session_key(session_id), ()))

    @property
    def session_count(self) -> int:
        return len(self._rings)

    def dump_digests(self) -> list[str]:
        """Digests in seal order — the determinism-gate fingerprint."""
        return [dump.digest for dump in self.dumps]


__all__ = [
    "SEAL_CAUSES",
    "FlightEntry",
    "FlightRecorder",
    "SealedDump",
]
