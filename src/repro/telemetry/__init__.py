"""repro.telemetry: deterministic virtual-time tracing and exporters.

- :mod:`repro.telemetry.tracer` — spans, the clock-keyed tracer
  registry, seeded sampling.
- :mod:`repro.telemetry.critical_path` — exclusive per-layer latency
  attribution over span trees (the §VI-C decomposition).
- :mod:`repro.telemetry.exporters` — Chrome ``trace_event`` JSON and
  Prometheus-style text.
- :mod:`repro.telemetry.unified` — the canonical committed step-trace
  schema reconciling node debug traces, HEVM event counts, and spans.
- :mod:`repro.telemetry.flight` — per-session ring-buffer flight
  recorder with sealed deterministic failure dumps.
- :mod:`repro.telemetry.slo` — burn-rate SLO monitoring over metrics
  snapshots in virtual time.
- :mod:`repro.telemetry.bench` / :mod:`repro.telemetry.obs_bench` —
  the seeded bench harnesses (import them directly; they pull in the
  serving stack).
"""

from repro.telemetry.critical_path import (
    RequestAttribution,
    aggregate,
    attribute,
    attribute_all,
    attribution_table,
    request_roots,
)
from repro.telemetry.exporters import render_chrome_trace, render_prometheus
from repro.telemetry.flight import (
    SEAL_CAUSES,
    FlightEntry,
    FlightRecorder,
    SealedDump,
)
from repro.telemetry.slo import SloAlert, SloMonitor, SloRule, default_slo_rules
from repro.telemetry.tracer import (
    NULL_TRACER,
    Span,
    SpanEvent,
    TraceContext,
    TraceSampler,
    Tracer,
    install_tracer,
    tracer_for,
    uninstall_tracer,
)
from repro.telemetry.unified import (
    StepTraceRecord,
    TraceReconciliationError,
    UnifiedStepTrace,
    counts_from_events,
    counts_from_span,
    counts_from_trace,
    from_struct_logs,
    reconcile_counts,
    reconcile_step_traces,
)
