"""repro.telemetry: deterministic virtual-time tracing and exporters.

- :mod:`repro.telemetry.tracer` — spans, the clock-keyed tracer
  registry, seeded sampling.
- :mod:`repro.telemetry.critical_path` — exclusive per-layer latency
  attribution over span trees (the §VI-C decomposition).
- :mod:`repro.telemetry.exporters` — Chrome ``trace_event`` JSON and
  Prometheus-style text.
- :mod:`repro.telemetry.bench` — the seeded trace-bench harness (import
  it directly; it pulls in the serving stack).
"""

from repro.telemetry.critical_path import (
    RequestAttribution,
    aggregate,
    attribute,
    attribute_all,
    attribution_table,
    request_roots,
)
from repro.telemetry.exporters import render_chrome_trace, render_prometheus
from repro.telemetry.tracer import (
    NULL_TRACER,
    Span,
    SpanEvent,
    TraceContext,
    TraceSampler,
    Tracer,
    install_tracer,
    tracer_for,
    uninstall_tracer,
)
