"""A small EVM assembler for building workload contracts.

Programs are sequences of mnemonics, integer immediates, and labels.
The assembler resolves label references in two passes, sizing each
``push_label`` to a fixed 2-byte PUSH2 so offsets stay stable.

Example::

    code = assemble([
        "PUSH1", 0x2A,
        "PUSH0",
        "SSTORE",
        label("loop"),
        "JUMPDEST",
        push_label("loop"),
        "JUMP",
    ])
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.evm import opcodes

_NAME_TO_OPCODE = {entry.name: value for value, entry in opcodes.ALL_OPCODES.items()}


@dataclass(frozen=True)
class Label:
    """Marks a position in the program (assembles to nothing)."""

    name: str


@dataclass(frozen=True)
class PushLabel:
    """Assembles to ``PUSH2 <offset of label>``."""

    name: str


@dataclass(frozen=True)
class Raw:
    """Verbatim bytes (e.g. embedded data or pre-assembled fragments)."""

    data: bytes


def label(name: str) -> Label:
    return Label(name)


def push_label(name: str) -> PushLabel:
    return PushLabel(name)


def raw(data: bytes) -> Raw:
    return Raw(data)


def push(value: int) -> list:
    """Emit the smallest PUSH for ``value`` (PUSH0 for zero)."""
    if value == 0:
        return ["PUSH0"]
    size = (value.bit_length() + 7) // 8
    return [f"PUSH{size}", value]


Item = str | int | Label | PushLabel | Raw


def assemble(program: list[Item]) -> bytes:
    """Two-pass assembly of ``program`` into EVM bytecode."""
    # Pass 1: compute offsets.
    offsets: dict[str, int] = {}
    position = 0
    pending_push: int | None = None
    for item in program:
        if isinstance(item, Label):
            if item.name in offsets:
                raise ValueError(f"duplicate label {item.name!r}")
            offsets[item.name] = position
            continue
        if isinstance(item, PushLabel):
            position += 3  # PUSH2 + 2 bytes
            continue
        if isinstance(item, Raw):
            position += len(item.data)
            continue
        if isinstance(item, str):
            opcode = _NAME_TO_OPCODE.get(item)
            if opcode is None:
                raise ValueError(f"unknown mnemonic {item!r}")
            position += 1
            pending_push = opcodes.push_size(opcode) or None
            if pending_push:
                position += pending_push
            continue
        if isinstance(item, int):
            if pending_push is None:
                raise ValueError(f"integer {item} not preceded by a PUSH mnemonic")
            pending_push = None
            continue
        raise TypeError(f"cannot assemble {item!r}")

    # Pass 2: emit bytes.
    out = bytearray()
    iterator = iter(program)
    for item in iterator:
        if isinstance(item, Label):
            continue
        if isinstance(item, PushLabel):
            target = offsets.get(item.name)
            if target is None:
                raise ValueError(f"undefined label {item.name!r}")
            out.append(0x61)  # PUSH2
            out.extend(target.to_bytes(2, "big"))
            continue
        if isinstance(item, Raw):
            out.extend(item.data)
            continue
        if isinstance(item, str):
            opcode = _NAME_TO_OPCODE[item]
            out.append(opcode)
            size = opcodes.push_size(opcode)
            if size:
                immediate = next(iterator)
                if not isinstance(immediate, int):
                    raise ValueError(f"{item} requires an integer immediate")
                out.extend((immediate % (1 << (8 * size))).to_bytes(size, "big"))
            continue
        raise TypeError(f"cannot assemble {item!r}")
    return bytes(out)


def deployer(runtime_code: bytes) -> bytes:
    """Wrap runtime code in standard init code that returns it.

    The init header CODECOPYs the runtime (which sits right after the
    header) to memory and RETURNs it.  The header's own length depends
    on how wide ``push(header_size)`` is, so the size is found by fixed
    point: re-assemble until the assumed size matches the actual one
    (converges in at most two rounds, since PUSH widths only grow).
    """
    length = len(runtime_code)

    def header_for(assumed_size: int) -> bytes:
        return assemble(
            push(length)
            + ["DUP1"]
            + push(assumed_size)   # copy source: offset of the runtime
            + push(0)
            + ["CODECOPY"]
            + push(0)
            + ["RETURN"]
        )

    header_size = len(header_for(0))
    header = header_for(header_size)
    while len(header) != header_size:
        header_size = len(header)
        header = header_for(header_size)
    return header + runtime_code
