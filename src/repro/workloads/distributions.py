"""Table I distributions from the paper's evaluation set.

The paper measured blocks #19145194–#19145293 of Ethereum Mainnet and
reports, per execution frame, the distribution of memory-like sizes and
storage records, and per transaction the call-depth distribution.  The
synthetic evaluation set samples from exactly these tables.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.kdf import Drbg

# (upper bound exclusive in bytes/keys/depth, probability)
CODE_SIZE_BANDS = [
    ((0, 1_024), 0.095),
    ((1_024, 4_096), 0.253),
    ((4_096, 12_288), 0.396),
    ((12_288, 65_536), 0.256),
]

INPUT_SIZE_BANDS = [
    ((0, 1_024), 0.950),
    ((1_024, 4_096), 0.040),
    ((4_096, 12_288), 0.002),
    ((12_288, 65_536), 0.000),
    ((65_536, 262_144), 0.001),
]

STORAGE_KEY_BANDS = [
    ((1, 5), 0.799),
    ((5, 17), 0.190),
    ((17, 65), 0.010),
    ((65, 256), 0.001),
]

CALL_DEPTH_BANDS = [
    ((1, 2), 0.408),
    ((2, 6), 0.526),
    ((6, 11), 0.063),
    ((11, 16), 0.003),
]


@dataclass
class BandSampler:
    """Samples integers from banded distributions via a DRBG."""

    bands: list[tuple[tuple[int, int], float]]
    rng: Drbg

    def sample(self) -> int:
        total = sum(weight for _, weight in self.bands)
        point = self.rng.randint(10**9) / 10**9 * total
        acc = 0.0
        for (low, high), weight in self.bands:
            acc += weight
            if point < acc or (low, high) == self.bands[-1][0]:
                if high - low <= 1:
                    return low
                return self.rng.randrange(low, high)
        raise AssertionError("unreachable")


def summarize_bands(
    values: list[int], bands: list[tuple[tuple[int, int], float]]
) -> dict[str, float]:
    """Fraction of ``values`` falling in each band (for Table I output)."""
    out: dict[str, float] = {}
    n = max(1, len(values))
    for (low, high), _ in bands:
        count = sum(1 for v in values if low <= v < high)
        out[f"{low}-{high}"] = count / n
    return out
