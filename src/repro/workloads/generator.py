"""The synthetic evaluation set.

Stands in for Ethereum Mainnet blocks #19145194–#19145293 (which we
cannot download offline): a deterministic population of contracts and a
stream of blocks whose per-frame code sizes, storage-record counts, and
per-transaction call depths follow Table I.  Transactions are a mix of
synthetic profile-contract chains (the Table I shape carriers), ERC-20
activity, and DEX swaps; rollup batches can be included to exercise the
Memory Overflow path.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.kdf import Drbg
from repro.node.node import EthereumNode
from repro.state.account import Account, Address, to_address
from repro.state.blocks import Transaction
from repro.workloads.contracts import dex, erc20, honeypot, multicall, rollup
from repro.workloads.contracts.profile import profile_calldata, profile_runtime
from repro.workloads.distributions import (
    BandSampler,
    CALL_DEPTH_BANDS,
    CODE_SIZE_BANDS,
    STORAGE_KEY_BANDS,
)

_MIN_PROFILE_CODE = 256  # the SWC runtime itself is ~180 bytes


@dataclass
class ContractPopulation:
    """The deployed contracts the evaluation set's transactions target."""

    profiles: list[Address] = field(default_factory=list)
    profile_sizes: dict[Address, int] = field(default_factory=dict)
    profiles_by_band: dict[int, list[Address]] = field(default_factory=dict)
    token_a: Address = b""
    token_b: Address = b""
    pool: Address = b""
    rollup_contract: Address = b""
    multicall_contract: Address = b""
    honeypot_contract: Address = b""
    honeypot_owner: Address = b""
    users: list[Address] = field(default_factory=list)


@dataclass
class EvaluationSetConfig:
    """Size/shape knobs; defaults give a laptop-scale evaluation set."""

    seed: int = 19_145_194
    profile_contract_count: int = 24
    user_count: int = 8
    blocks: int = 10
    txs_per_block: int = 10
    profile_fraction: float = 0.65
    erc20_fraction: float = 0.2
    multicall_fraction: float = 0.05  # remainder goes to DEX swaps
    include_rollups: bool = False
    rollup_updates: int = 600


@dataclass
class EvaluationSet:
    """A fully built chain plus the pre-executable transaction stream."""

    node: EthereumNode
    population: ContractPopulation
    transactions: list[Transaction]
    config: EvaluationSetConfig


def build_genesis(
    config: EvaluationSetConfig, rng: Drbg
) -> tuple[dict[Address, Account], ContractPopulation]:
    """Deploy the contract population directly into genesis state."""
    accounts: dict[Address, Account] = {}
    population = ContractPopulation()

    # Stratified deployment: cycle through the Table I code-size bands so
    # every band has contracts; transactions later pick a band by its
    # Table I weight, making the *per-frame* size distribution match.
    for index in range(config.profile_contract_count):
        band_index = index % len(CODE_SIZE_BANDS)
        (low, high), _ = CODE_SIZE_BANDS[band_index]
        size = max(_MIN_PROFILE_CODE, rng.randrange(max(low, _MIN_PROFILE_CODE), high))
        address = to_address(0x5000_0000 + index)
        accounts[address] = Account(code=profile_runtime(pad_to_bytes=size))
        population.profiles.append(address)
        population.profile_sizes[address] = size
        population.profiles_by_band.setdefault(band_index, []).append(address)

    population.token_a = to_address(0x6000_0001)
    population.token_b = to_address(0x6000_0002)
    population.pool = to_address(0x6000_0003)
    accounts[population.token_a] = Account(code=erc20.erc20_runtime())
    accounts[population.token_b] = Account(code=erc20.erc20_runtime())
    accounts[population.pool] = Account(
        code=dex.dex_runtime(population.token_a, population.token_b),
        storage={dex.RESERVE_A_SLOT: 10**9, dex.RESERVE_B_SLOT: 2 * 10**9},
    )

    population.rollup_contract = to_address(0x6000_0004)
    accounts[population.rollup_contract] = Account(code=rollup.rollup_runtime())

    population.multicall_contract = to_address(0x6000_0007)
    accounts[population.multicall_contract] = Account(
        code=multicall.multicall_runtime()
    )

    population.honeypot_owner = to_address(0x6000_0006)
    population.honeypot_contract = to_address(0x6000_0005)
    accounts[population.honeypot_contract] = Account(
        code=honeypot.honeypot_runtime(),
        storage={
            honeypot.OWNER_SLOT: int.from_bytes(population.honeypot_owner, "big")
        },
    )
    accounts[population.honeypot_owner] = Account(balance=10**20)

    for index in range(config.user_count):
        user = to_address(0x7000_0000 + index)
        accounts[user] = Account(balance=10**21)
        population.users.append(user)

    # Pre-seed token balances so transfers/swaps work from block 1.
    for token in (population.token_a, population.token_b):
        balances = accounts[token].storage
        for user in population.users:
            balances[erc20.balance_slot(user)] = 10**15
        balances[erc20.balance_slot(population.pool)] = 10**12
    return accounts, population


def _sample_transaction(
    population: ContractPopulation,
    rng: Drbg,
    depth_sampler: BandSampler,
    slots_sampler: BandSampler,
    config: EvaluationSetConfig,
) -> Transaction:
    user = population.users[rng.randint(len(population.users))]
    roll = rng.randint(1000) / 1000.0
    if roll < config.profile_fraction:
        depth = depth_sampler.sample()
        weights = [weight for _, weight in CODE_SIZE_BANDS]
        total_weight = sum(weights)
        chain = []
        for _ in range(depth):
            point = rng.randint(1000) / 1000.0 * total_weight
            band_index = 0
            acc = 0.0
            for i, weight in enumerate(weights):
                acc += weight
                if point < acc:
                    band_index = i
                    break
            candidates = population.profiles_by_band.get(
                band_index, population.profiles
            )
            chain.append(candidates[rng.randint(len(candidates))])
        n_slots = slots_sampler.sample()
        slot_base = rng.randint(64) * 32  # align to the ORAM's 32-key groups
        data = profile_calldata(n_slots, slot_base, chain=chain[1:])
        return Transaction(sender=user, to=chain[0], data=data)
    if roll < config.profile_fraction + config.multicall_fraction:
        # A wide batch: 2-4 sibling calls into random profile contracts.
        from repro.workloads.contracts.multicall import multicall_calldata

        fan_out = 2 + rng.randint(3)
        calls = []
        for _ in range(fan_out):
            target = population.profiles[rng.randint(len(population.profiles))]
            calls.append((target, profile_calldata(1 + rng.randint(4),
                                                   rng.randint(64) * 32)))
        return Transaction(
            sender=user,
            to=population.multicall_contract,
            data=multicall_calldata(calls),
        )
    if roll < (config.profile_fraction + config.multicall_fraction
               + config.erc20_fraction):
        token = population.token_a if rng.randint(2) else population.token_b
        peer = population.users[rng.randint(len(population.users))]
        amount = 1 + rng.randint(1000)
        if rng.randint(4) == 0:
            data = erc20.approve_calldata(population.pool, amount * 10)
        else:
            data = erc20.transfer_calldata(peer, amount)
        return Transaction(sender=user, to=token, data=data)
    amount_in = 1000 + rng.randint(100_000)
    return Transaction(
        sender=user,
        to=population.pool,
        data=dex.swap_calldata(amount_in, a_for_b=bool(rng.randint(2))),
    )


def build_evaluation_set(config: EvaluationSetConfig | None = None) -> EvaluationSet:
    """Build the chain and the pre-execution transaction stream."""
    config = config or EvaluationSetConfig()
    rng = Drbg(config.seed.to_bytes(8, "big"), personalization=b"eval-set")
    accounts, population = build_genesis(config, rng)
    node = EthereumNode(genesis_accounts=accounts)

    # Swaps pull tokens via transferFrom: pre-approve the pool for all
    # users in the first block so the stream is uniform afterwards.
    approvals = []
    for user in population.users:
        for token in (population.token_a, population.token_b):
            approvals.append(
                Transaction(
                    sender=user,
                    to=token,
                    data=erc20.approve_calldata(population.pool, 10**14),
                )
            )
    node.add_block(approvals)

    depth_sampler = BandSampler(CALL_DEPTH_BANDS, rng.fork(b"depth"))
    slots_sampler = BandSampler(STORAGE_KEY_BANDS, rng.fork(b"slots"))
    transactions: list[Transaction] = []
    for block_index in range(config.blocks):
        block_txs = []
        for _ in range(config.txs_per_block):
            block_txs.append(
                _sample_transaction(
                    population, rng, depth_sampler, slots_sampler, config
                )
            )
        if config.include_rollups and block_index % 3 == 0:
            updates = [
                (rng.randint(2**32), rng.randint(2**64))
                for _ in range(config.rollup_updates)
            ]
            block_txs.append(
                Transaction(
                    sender=population.users[0],
                    to=population.rollup_contract,
                    data=rollup.rollup_calldata(updates),
                    gas_limit=60_000_000,
                )
            )
        node.add_block(block_txs)
        transactions.extend(block_txs)
    return EvaluationSet(
        node=node,
        population=population,
        transactions=transactions,
        config=config,
    )
