"""The synthetic workload contract ("SWC") behind the evaluation set.

One bytecode template reproduces, per execution frame, the knobs Table I
measures: storage records touched, call depth, input size, and (via
padding) code size.  Calldata layout, in 32-byte words::

    word 0 : n_slots   — storage records to read-modify-write
    word 1 : slot_base — first storage key (consecutive keys, matching
                         Solidity's layout and the ORAM's 32-record
                         grouping)
    word 2 : n_addrs   — remaining call-chain length
    word 3…: addresses — the chain of contracts still to call

Each frame loads/increments/stores ``n_slots`` consecutive records,
then (if the chain is non-empty) builds the child calldata in memory
and CALLs the next address.  Returns 32 bytes so callers can check
success.
"""

from __future__ import annotations

from repro.workloads.asm import Item, assemble, label, push, push_label


def profile_runtime(pad_to_bytes: int | None = None) -> bytes:
    """Assemble the SWC runtime, optionally padded to a target size."""
    program: list[Item] = []
    # --- storage loop: stack discipline [n, base, i] ---------------------
    program += ["PUSH0", "CALLDATALOAD"]                   # [n]
    program += push(32) + ["CALLDATALOAD"]                 # [n, base]
    program += ["PUSH0"]                                   # [n, base, i=0]
    program += [label("loop"), "JUMPDEST"]
    program += ["DUP3", "DUP2", "LT"]                      # i < n
    program += ["ISZERO", push_label("loop_end"), "JUMPI"]
    program += ["DUP2", "DUP2", "ADD"]                     # slot = base + i
    program += ["DUP1", "SLOAD"]                           # [.., slot, value]
    program += push(1) + ["ADD", "SWAP1", "SSTORE"]        # slot := value + 1
    program += push(1) + ["ADD"]                           # i += 1
    program += [push_label("loop"), "JUMP"]
    program += [label("loop_end"), "JUMPDEST", "POP", "POP", "POP"]

    # --- call chain -------------------------------------------------------
    program += push(64) + ["CALLDATALOAD"]                 # [n_addrs]
    program += ["DUP1", "ISZERO", push_label("done"), "JUMPI"]
    # Child calldata: n_slots, base, n_addrs - 1, addrs[1:].
    program += ["PUSH0", "CALLDATALOAD", "PUSH0", "MSTORE"]
    program += push(32) + ["CALLDATALOAD"] + push(32) + ["MSTORE"]
    program += ["DUP1"] + push(1) + ["SWAP1", "SUB"] + push(64) + ["MSTORE"]
    # CALLDATACOPY(dest=96, offset=128, len=(n_addrs-1)*32)
    program += ["DUP1"] + push(1) + ["SWAP1", "SUB"] + push(5) + ["SHL"]
    program += push(128) + push(96) + ["CALLDATACOPY"]     # [n_addrs]
    program += push(96) + ["CALLDATALOAD"]                 # [n_addrs, addr]
    # CALL(gas, addr, 0, 0, 96 + (n_addrs-1)*32, 0, 0)
    program += ["PUSH0", "PUSH0"]                          # retLen, retOff
    program += ["DUP4"] + push(1) + ["SWAP1", "SUB"]
    program += push(5) + ["SHL"] + push(96) + ["ADD"]      # argsLen
    program += ["PUSH0", "PUSH0"]                          # argsOff, value
    program += ["DUP6", "GAS", "CALL", "POP"]              # [n_addrs, addr]
    program += ["POP"]                                     # [n_addrs]
    program += [label("done"), "JUMPDEST", "POP"]
    program += push(1) + ["PUSH0", "MSTORE"]
    program += push(32) + ["PUSH0", "RETURN"]

    code = assemble(program)
    if pad_to_bytes is not None:
        if pad_to_bytes < len(code):
            raise ValueError(
                f"runtime is {len(code)} bytes; cannot pad down to {pad_to_bytes}"
            )
        # STOP padding is unreachable and counts toward code size only.
        code = code + b"\x00" * (pad_to_bytes - len(code))
    return code


def profile_calldata(
    n_slots: int, slot_base: int, chain: list[bytes] | None = None
) -> bytes:
    """Build SWC calldata for ``n_slots`` records and a call chain."""
    chain = chain or []
    words = [
        n_slots.to_bytes(32, "big"),
        slot_base.to_bytes(32, "big"),
        len(chain).to_bytes(32, "big"),
    ]
    words += [address.rjust(32, b"\x00") for address in chain]
    return b"".join(words)
