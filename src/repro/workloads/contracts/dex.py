"""A constant-product AMM (Uniswap-V2 style) over two ERC-20 tokens.

The DEX is the canonical frontrunning-sensitive contract: a user
pre-executing a swap leaks which pool and what size they intend to
trade — exactly the MEV scenario the paper's introduction motivates.
Swaps produce call trees of depth 3 (user → DEX → tokenA, tokenB),
feeding Table I's depth distribution.

Storage: slot 0 = reserve A, slot 1 = reserve B.  Token addresses are
baked into the bytecode as immediates (like Solidity ``immutable``).
"""

from __future__ import annotations

from repro.workloads.asm import Item, assemble, label, push, push_label
from repro.workloads.contracts.erc20 import SEL_TRANSFER, SEL_TRANSFER_FROM

SEL_SWAP_A_FOR_B = 0x11111111
SEL_SWAP_B_FOR_A = 0x22222222
SEL_RESERVES = 0x33333333

RESERVE_A_SLOT = 0
RESERVE_B_SLOT = 1


def _store_selector(selector: int) -> list[Item]:
    """mem[0..4) = selector (as the high bytes of word 0)."""
    return ["PUSH4", selector] + push(224) + ["SHL", "PUSH0", "MSTORE"]


def _call_token(token: Item | bytes, args_length: int) -> list[Item]:
    """CALL the token with calldata mem[0..args_length); revert on failure."""
    token_int = int.from_bytes(token, "big") if isinstance(token, bytes) else token
    return (
        ["PUSH0", "PUSH0"]                   # retLen, retOff
        + push(args_length) + ["PUSH0"]      # argsLen, argsOff
        + ["PUSH0"]                          # value
        + ["PUSH20", token_int, "GAS", "CALL"]
        + ["ISZERO", push_label("revert"), "JUMPI"]
    )


def _swap_body(
    token_in: bytes, token_out: bytes, reserve_in: int, reserve_out: int
) -> list[Item]:
    """One direction of the constant-product swap."""
    program: list[Item] = []
    # 1) tokenIn.transferFrom(caller, this, amtIn)
    program += _store_selector(SEL_TRANSFER_FROM)
    program += ["CALLER"] + push(4) + ["MSTORE"]
    program += ["ADDRESS"] + push(36) + ["MSTORE"]
    program += push(4) + ["CALLDATALOAD"] + push(68) + ["MSTORE"]
    program += _call_token(token_in, 100)
    # 2) amtOut = rOut - (rIn * rOut) / (rIn + amtIn)
    program += push(reserve_in) + ["SLOAD"]            # [rIn]
    program += push(reserve_out) + ["SLOAD"]           # [rIn, rOut]
    program += ["DUP2", "DUP2", "MUL"]                 # [rIn, rOut, k]
    program += push(4) + ["CALLDATALOAD", "DUP4", "ADD"]  # [rIn,rOut,k,rIn+in]
    program += ["SWAP1", "DIV"]                        # [rIn, rOut, k/(rIn+in)]
    program += ["DUP2", "SUB"]                         # [rIn, rOut, amtOut]
    # 3) update reserves
    program += ["SWAP2"]                               # [out, rOut, rIn]
    program += push(4) + ["CALLDATALOAD", "ADD"]       # rIn + amtIn
    program += push(reserve_in) + ["SSTORE"]           # [out, rOut]
    program += ["DUP2", "SWAP1", "SUB"]                # rOut - out
    program += push(reserve_out) + ["SSTORE"]          # [out]
    # 4) tokenOut.transfer(caller, amtOut)
    program += _store_selector(SEL_TRANSFER)
    program += ["CALLER"] + push(4) + ["MSTORE"]
    program += ["DUP1"] + push(36) + ["MSTORE"]
    program += _call_token(token_out, 68)
    # 5) return amtOut
    program += ["PUSH0", "MSTORE"] + push(32) + ["PUSH0", "RETURN"]
    return program


def dex_runtime(token_a: bytes, token_b: bytes) -> bytes:
    """Assemble the pool's runtime bytecode for the given token pair."""
    program: list[Item] = []
    program += ["PUSH0", "CALLDATALOAD"] + push(224) + ["SHR"]
    program += ["DUP1", "PUSH4", SEL_SWAP_A_FOR_B, "EQ", push_label("swap_ab"), "JUMPI"]
    program += ["DUP1", "PUSH4", SEL_SWAP_B_FOR_A, "EQ", push_label("swap_ba"), "JUMPI"]
    program += ["DUP1", "PUSH4", SEL_RESERVES, "EQ", push_label("reserves"), "JUMPI"]
    program += ["PUSH0", "PUSH0", "REVERT"]

    program += [label("swap_ab"), "JUMPDEST", "POP"]
    program += _swap_body(token_a, token_b, RESERVE_A_SLOT, RESERVE_B_SLOT)

    program += [label("swap_ba"), "JUMPDEST", "POP"]
    program += _swap_body(token_b, token_a, RESERVE_B_SLOT, RESERVE_A_SLOT)

    program += [label("reserves"), "JUMPDEST", "POP"]
    program += push(RESERVE_A_SLOT) + ["SLOAD", "PUSH0", "MSTORE"]
    program += push(RESERVE_B_SLOT) + ["SLOAD"] + push(32) + ["MSTORE"]
    program += push(64) + ["PUSH0", "RETURN"]

    program += [label("revert"), "JUMPDEST", "PUSH0", "PUSH0", "REVERT"]
    return assemble(program)


def swap_calldata(amount_in: int, a_for_b: bool = True) -> bytes:
    selector = SEL_SWAP_A_FOR_B if a_for_b else SEL_SWAP_B_FOR_A
    return selector.to_bytes(4, "big") + amount_in.to_bytes(32, "big")


def reserves_calldata() -> bytes:
    return SEL_RESERVES.to_bytes(4, "big")


def expected_output(amount_in: int, reserve_in: int, reserve_out: int) -> int:
    """The constant-product output the contract computes (no fee)."""
    k = reserve_in * reserve_out
    return reserve_out - k // (reserve_in + amount_in)
