"""Hand-assembled EVM workload contracts."""

from repro.workloads.contracts import dex, erc20, honeypot, multicall, profile, rollup

__all__ = ["dex", "erc20", "honeypot", "multicall", "profile", "rollup"]
