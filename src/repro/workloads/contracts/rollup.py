"""A roll-up batch-settlement contract.

The paper (§II-A) describes roll-up transactions as submitting
"thousands of storage record updates with very few other operations",
and notes (§VI-B) that they can exceed the layer-2 frame limit and
abort with a Memory Overflow Error — support is left as future work.
This contract reproduces that shape: calldata carries ``n`` (key,
value) pairs; the contract copies the full batch into memory (the large
Memory footprint that trips the frame limit) and writes every record.

Calldata layout: word 0 = n, then pairs ``key_i`` at 32 + 64·i and
``value_i`` at 64 + 64·i.
"""

from __future__ import annotations

from repro.workloads.asm import Item, assemble, label, push, push_label


def rollup_runtime() -> bytes:
    program: list[Item] = []
    program += ["PUSH0", "CALLDATALOAD"]                # [n]
    # Pull the whole batch into Memory (the overflow-triggering step).
    program += ["CALLDATASIZE", "PUSH0", "PUSH0", "CALLDATACOPY"]
    program += ["PUSH0"]                                # [n, i]
    program += [label("loop"), "JUMPDEST"]
    program += ["DUP2", "DUP2", "LT", "ISZERO", push_label("end"), "JUMPI"]
    program += ["DUP1"] + push(6) + ["SHL"]             # [n, i, i*64]
    program += ["DUP1"] + push(64) + ["ADD", "MLOAD"]   # [n, i, off, value]
    program += ["SWAP1"] + push(32) + ["ADD", "MLOAD"]  # [n, i, value, key]
    program += ["SSTORE"]                               # [n, i]
    program += push(1) + ["ADD", push_label("loop"), "JUMP"]
    program += [label("end"), "JUMPDEST", "POP", "POP"]
    program += ["PUSH0", "PUSH0", "RETURN"]
    return assemble(program)


def rollup_calldata(updates: list[tuple[int, int]]) -> bytes:
    """Encode a batch of (key, value) storage updates."""
    words = [len(updates).to_bytes(32, "big")]
    for key, value in updates:
        words.append(key.to_bytes(32, "big"))
        words.append(value.to_bytes(32, "big"))
    return b"".join(words)
