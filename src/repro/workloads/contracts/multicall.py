"""A multicall batch executor (Multicall3-style).

Aggregates many independent calls into one transaction — the other
common call-tree shape besides the profile contract's chains: a *wide*
tree (one frame fanning out to N sibling frames) instead of a deep one.
Used by the evaluation workloads to exercise sibling-frame call-stack
management and by tests as a fan-out fixture.

Calldata layout (32-byte words)::

    word 0 : n — number of calls
    then per call:
      target  (32 B)
      datalen (32 B)
      data    (datalen bytes, zero-padded to a word boundary)

Returns ``n`` so callers can confirm the loop ran.
"""

from __future__ import annotations

from repro.workloads.asm import Item, assemble, label, push, push_label


def multicall_runtime() -> bytes:
    program: list[Item] = []
    program += ["PUSH0", "CALLDATALOAD"]          # [n]
    program += push(32)                           # [n, off]
    program += ["PUSH0"]                          # [n, off, i]
    program += [label("loop"), "JUMPDEST"]
    program += ["DUP3", "DUP2", "LT", "ISZERO", push_label("end"), "JUMPI"]
    # target and datalen of the current record.
    program += ["DUP2", "CALLDATALOAD"]           # [n, off, i, target]
    program += ["DUP3"] + push(32) + ["ADD", "CALLDATALOAD"]  # [.., len]
    # Stage the call data at memory offset 0.
    program += ["DUP1", "DUP5"] + push(64) + ["ADD", "PUSH0", "CALLDATACOPY"]
    # CALL(gas, target, 0, 0, len, 0, 0)
    program += ["PUSH0", "PUSH0"]                 # retLen, retOff
    program += ["DUP3"]                           # argsLen = len
    program += ["PUSH0", "PUSH0"]                 # argsOff, value
    program += ["DUP7", "GAS", "CALL", "POP"]     # [n, off, i, target, len]
    # off += 64 + ceil32(len)
    program += push(31) + ["ADD"] + push(5) + ["SHR"] + push(5) + ["SHL"]
    program += push(64) + ["ADD"]                 # [n, off, i, target, rec]
    program += ["SWAP1", "POP"]                   # [n, off, i, rec]
    program += ["DUP3", "ADD"]                    # [n, off, i, off']
    program += ["SWAP2", "POP"]                   # [n, off', i]
    program += push(1) + ["ADD"]                  # i += 1
    program += [push_label("loop"), "JUMP"]
    program += [label("end"), "JUMPDEST", "POP", "POP", "POP"]
    program += ["PUSH0", "CALLDATALOAD", "PUSH0", "MSTORE"]
    program += push(32) + ["PUSH0", "RETURN"]
    return assemble(program)


def multicall_calldata(calls: list[tuple[bytes, bytes]]) -> bytes:
    """Encode a batch of ``(target_address, calldata)`` pairs."""
    words = [len(calls).to_bytes(32, "big")]
    for target, data in calls:
        words.append(target.rjust(32, b"\x00"))
        words.append(len(data).to_bytes(32, "big"))
        padded_length = (len(data) + 31) // 32 * 32
        words.append(data.ljust(padded_length, b"\x00"))
    return b"".join(words)
