"""A hand-assembled ERC-20 token contract.

Uses the genuine Solidity storage layout (balances in the mapping at
slot 0, allowances nested under slot 1, total supply in slot 2) and the
real 4-byte ABI selectors, so its execution profile — keccak-heavy slot
derivation, LOG3 Transfer events, consecutive-call warm storage — is the
one the paper's Figure 5 "Transfer" benchmark and the pre-execution use
case (trading an ERC-20 token) exercise.
"""

from __future__ import annotations

from repro.crypto.keccak import keccak256
from repro.workloads.asm import Item, assemble, label, push, push_label

# Real ABI selectors.
SEL_TRANSFER = 0xA9059CBB      # transfer(address,uint256)
SEL_BALANCE_OF = 0x70A08231    # balanceOf(address)
SEL_MINT = 0x40C10F19          # mint(address,uint256)
SEL_TOTAL_SUPPLY = 0x18160DDD  # totalSupply()
SEL_APPROVE = 0x095EA7B3       # approve(address,uint256)
SEL_ALLOWANCE = 0xDD62ED3E     # allowance(address,address)
SEL_TRANSFER_FROM = 0x23B872DD  # transferFrom(address,address,uint256)

BALANCES_SLOT = 0
ALLOWANCES_SLOT = 1
TOTAL_SUPPLY_SLOT = 2

TRANSFER_EVENT_SIG = int.from_bytes(
    keccak256(b"Transfer(address,address,uint256)"), "big"
)


def _map_slot(base_slot: int) -> list[Item]:
    """keccak256(key ++ base_slot) with the key on the stack top."""
    return (
        ["PUSH0", "MSTORE"]                 # mem[0] = key
        + push(base_slot) + push(32) + ["MSTORE"]  # mem[32] = base
        + push(64) + ["PUSH0", "SHA3"]
    )


def _map_slot_dyn() -> list[Item]:
    """keccak256(key ++ base) with stack [base, key] (key on top)."""
    return (
        ["PUSH0", "MSTORE"]                 # mem[0] = key
        + push(32) + ["MSTORE"]             # mem[32] = base
        + push(64) + ["PUSH0", "SHA3"]
    )


def _return_one() -> list[Item]:
    return push(1) + ["PUSH0", "MSTORE"] + push(32) + ["PUSH0", "RETURN"]


def _dispatch(selector: int, target: str) -> list[Item]:
    return ["DUP1", "PUSH4", selector, "EQ", push_label(target), "JUMPI"]


def erc20_runtime() -> bytes:
    """Assemble the token's runtime bytecode."""
    program: list[Item] = []
    # Selector dispatch.
    program += ["PUSH0", "CALLDATALOAD"] + push(224) + ["SHR"]
    program += _dispatch(SEL_TRANSFER, "transfer")
    program += _dispatch(SEL_BALANCE_OF, "balance_of")
    program += _dispatch(SEL_MINT, "mint")
    program += _dispatch(SEL_TOTAL_SUPPLY, "total_supply")
    program += _dispatch(SEL_APPROVE, "approve")
    program += _dispatch(SEL_ALLOWANCE, "allowance")
    program += _dispatch(SEL_TRANSFER_FROM, "transfer_from")
    program += ["PUSH0", "PUSH0", "REVERT"]

    # -- transfer(to, amount) ------------------------------------------------
    program += [label("transfer"), "JUMPDEST", "POP"]
    program += push(36) + ["CALLDATALOAD"]            # [amt]
    program += push(4) + ["CALLDATALOAD"]             # [amt, to]
    program += ["CALLER"] + _map_slot(BALANCES_SLOT)  # [amt, to, fromSlot]
    program += ["DUP1", "SLOAD"]                      # [amt, to, fs, fromBal]
    program += ["DUP4", "DUP2", "LT", push_label("revert"), "JUMPI"]
    program += ["DUP4", "SWAP1", "SUB"]               # fromBal - amt
    program += ["SWAP1", "SSTORE"]                    # [amt, to]
    program += ["DUP1"] + _map_slot(BALANCES_SLOT)    # [amt, to, toSlot]
    program += ["DUP1", "SLOAD", "DUP4", "ADD", "SWAP1", "SSTORE"]
    # LOG3 Transfer(caller, to, amt)
    program += ["DUP2", "PUSH0", "MSTORE"]            # data = amt
    program += ["CALLER", "PUSH32", TRANSFER_EVENT_SIG]
    program += push(32) + ["PUSH0", "LOG3", "POP"]
    program += _return_one()

    # -- balanceOf(addr) -------------------------------------------------------
    program += [label("balance_of"), "JUMPDEST", "POP"]
    program += push(4) + ["CALLDATALOAD"] + _map_slot(BALANCES_SLOT)
    program += ["SLOAD", "PUSH0", "MSTORE"] + push(32) + ["PUSH0", "RETURN"]

    # -- mint(to, amount) --------------------------------------------------------
    program += [label("mint"), "JUMPDEST", "POP"]
    program += push(36) + ["CALLDATALOAD"]            # [amt]
    program += push(4) + ["CALLDATALOAD"]             # [amt, to]
    program += _map_slot(BALANCES_SLOT)               # [amt, slot]
    program += ["DUP1", "SLOAD", "DUP3", "ADD", "SWAP1", "SSTORE"]  # [amt]
    program += push(TOTAL_SUPPLY_SLOT) + ["SLOAD", "ADD"]
    program += push(TOTAL_SUPPLY_SLOT) + ["SSTORE"]
    program += _return_one()

    # -- totalSupply() ---------------------------------------------------------------
    program += [label("total_supply"), "JUMPDEST", "POP"]
    program += push(TOTAL_SUPPLY_SLOT) + ["SLOAD", "PUSH0", "MSTORE"]
    program += push(32) + ["PUSH0", "RETURN"]

    # -- approve(spender, amount) ----------------------------------------------------
    program += [label("approve"), "JUMPDEST", "POP"]
    program += push(36) + ["CALLDATALOAD"]            # [amt]
    program += ["CALLER"] + _map_slot(ALLOWANCES_SLOT)  # [amt, inner]
    program += push(4) + ["CALLDATALOAD"] + _map_slot_dyn()  # [amt, slot]
    program += ["SSTORE"]
    program += _return_one()

    # -- allowance(owner, spender) ---------------------------------------------------
    program += [label("allowance"), "JUMPDEST", "POP"]
    program += push(4) + ["CALLDATALOAD"] + _map_slot(ALLOWANCES_SLOT)
    program += push(36) + ["CALLDATALOAD"] + _map_slot_dyn()
    program += ["SLOAD", "PUSH0", "MSTORE"] + push(32) + ["PUSH0", "RETURN"]

    # -- transferFrom(from, to, amount) ------------------------------------------------
    program += [label("transfer_from"), "JUMPDEST", "POP"]
    program += push(68) + ["CALLDATALOAD"]            # [amt]
    program += push(4) + ["CALLDATALOAD"] + _map_slot(ALLOWANCES_SLOT)
    program += ["CALLER"] + _map_slot_dyn()           # [amt, aSlot]
    program += ["DUP1", "SLOAD"]                      # [amt, aSlot, allow]
    program += ["DUP3", "DUP2", "LT", push_label("revert"), "JUMPI"]
    program += ["DUP3", "SWAP1", "SUB", "SWAP1", "SSTORE"]  # [amt]
    program += push(4) + ["CALLDATALOAD"] + _map_slot(BALANCES_SLOT)
    program += ["DUP1", "SLOAD"]                      # [amt, fSlot, fBal]
    program += ["DUP3", "DUP2", "LT", push_label("revert"), "JUMPI"]
    program += ["DUP3", "SWAP1", "SUB", "SWAP1", "SSTORE"]  # [amt]
    program += push(36) + ["CALLDATALOAD"] + _map_slot(BALANCES_SLOT)
    program += ["DUP1", "SLOAD", "DUP3", "ADD", "SWAP1", "SSTORE", "POP"]
    program += _return_one()

    # -- shared revert ------------------------------------------------------------------
    program += [label("revert"), "JUMPDEST", "PUSH0", "PUSH0", "REVERT"]

    return assemble(program)


def transfer_calldata(to: bytes, amount: int) -> bytes:
    return (
        SEL_TRANSFER.to_bytes(4, "big")
        + to.rjust(32, b"\x00")
        + amount.to_bytes(32, "big")
    )


def balance_of_calldata(owner: bytes) -> bytes:
    return SEL_BALANCE_OF.to_bytes(4, "big") + owner.rjust(32, b"\x00")


def mint_calldata(to: bytes, amount: int) -> bytes:
    return (
        SEL_MINT.to_bytes(4, "big")
        + to.rjust(32, b"\x00")
        + amount.to_bytes(32, "big")
    )


def approve_calldata(spender: bytes, amount: int) -> bytes:
    return (
        SEL_APPROVE.to_bytes(4, "big")
        + spender.rjust(32, b"\x00")
        + amount.to_bytes(32, "big")
    )


def allowance_calldata(owner: bytes, spender: bytes) -> bytes:
    return (
        SEL_ALLOWANCE.to_bytes(4, "big")
        + owner.rjust(32, b"\x00")
        + spender.rjust(32, b"\x00")
    )


def transfer_from_calldata(source: bytes, to: bytes, amount: int) -> bytes:
    return (
        SEL_TRANSFER_FROM.to_bytes(4, "big")
        + source.rjust(32, b"\x00")
        + to.rjust(32, b"\x00")
        + amount.to_bytes(32, "big")
    )


def total_supply_calldata() -> bytes:
    return SEL_TOTAL_SUPPLY.to_bytes(4, "big")


def balance_slot(owner: bytes) -> int:
    """The storage slot holding ``owner``'s balance (Solidity layout)."""
    return int.from_bytes(
        keccak256(owner.rjust(32, b"\x00") + BALANCES_SLOT.to_bytes(32, "big")),
        "big",
    )
