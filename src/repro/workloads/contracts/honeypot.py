"""A honeypot contract — the scam class pre-execution exists to catch.

The contract advertises ``deposit()``/``withdraw()``: anyone can deposit
ether and apparently withdraw it.  The trap: ``withdraw`` silently
requires the caller to equal a hidden owner stored in slot 1, so
victims' deposits are stuck.  Simulating a deposit-then-withdraw bundle
on HarDTAPE reveals the revert *before* any funds move on-chain — the
paper's motivating use case (§I: Phishing/Ponzi/Honeypot protection).

Storage: mapping at slot 0 = per-depositor balances; slot 1 = owner.
"""

from __future__ import annotations

from repro.workloads.asm import Item, assemble, label, push, push_label
from repro.workloads.contracts.erc20 import _map_slot

SEL_DEPOSIT = 0xD0E30DB0   # deposit()
SEL_WITHDRAW = 0x3CCFD60B  # withdraw()

OWNER_SLOT = 1


def honeypot_runtime() -> bytes:
    program: list[Item] = []
    program += ["PUSH0", "CALLDATALOAD"] + push(224) + ["SHR"]
    program += ["DUP1", "PUSH4", SEL_DEPOSIT, "EQ", push_label("deposit"), "JUMPI"]
    program += ["DUP1", "PUSH4", SEL_WITHDRAW, "EQ", push_label("withdraw"), "JUMPI"]
    program += ["PUSH0", "PUSH0", "REVERT"]

    # -- deposit(): balances[caller] += msg.value ---------------------------
    program += [label("deposit"), "JUMPDEST", "POP"]
    program += ["CALLVALUE", "CALLER"] + _map_slot(0)   # [value, slot]
    program += ["DUP1", "SLOAD", "DUP3", "ADD", "SWAP1", "SSTORE", "POP"]
    program += push(1) + ["PUSH0", "MSTORE"] + push(32) + ["PUSH0", "RETURN"]

    # -- withdraw(): the hidden owner check is the trap ----------------------
    program += [label("withdraw"), "JUMPDEST", "POP"]
    program += ["CALLER"] + push(OWNER_SLOT) + ["SLOAD", "EQ"]
    program += ["ISZERO", push_label("revert"), "JUMPI"]
    program += ["CALLER"] + _map_slot(0)                # [slot]
    program += ["DUP1", "SLOAD"]                        # [slot, bal]
    program += ["PUSH0", "DUP3", "SSTORE"]              # zero the slot
    program += ["SWAP1", "POP"]                         # [bal]
    program += ["PUSH0", "PUSH0", "PUSH0", "PUSH0"]     # retLen retOff argsLen argsOff
    program += ["DUP5", "CALLER", "GAS", "CALL", "POP", "POP"]
    program += push(1) + ["PUSH0", "MSTORE"] + push(32) + ["PUSH0", "RETURN"]

    program += [label("revert"), "JUMPDEST", "PUSH0", "PUSH0", "REVERT"]
    return assemble(program)


def deposit_calldata() -> bytes:
    return SEL_DEPOSIT.to_bytes(4, "big")


def withdraw_calldata() -> bytes:
    return SEL_WITHDRAW.to_bytes(4, "big")
