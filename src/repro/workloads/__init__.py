"""Workloads: EVM assembler, contract library, evaluation-set generator."""

from repro.workloads.asm import assemble, deployer, label, push, push_label, raw
from repro.workloads.distributions import (
    BandSampler,
    CALL_DEPTH_BANDS,
    CODE_SIZE_BANDS,
    INPUT_SIZE_BANDS,
    STORAGE_KEY_BANDS,
    summarize_bands,
)
from repro.workloads.generator import (
    ContractPopulation,
    EvaluationSet,
    EvaluationSetConfig,
    build_evaluation_set,
    build_genesis,
)

__all__ = [
    "BandSampler",
    "CALL_DEPTH_BANDS",
    "CODE_SIZE_BANDS",
    "ContractPopulation",
    "EvaluationSet",
    "EvaluationSetConfig",
    "INPUT_SIZE_BANDS",
    "STORAGE_KEY_BANDS",
    "assemble",
    "build_evaluation_set",
    "build_genesis",
    "deployer",
    "label",
    "push",
    "push_label",
    "raw",
    "summarize_bands",
]
