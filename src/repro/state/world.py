"""The full node's authenticated world state (MPT-backed).

:class:`WorldState` is a :class:`~repro.state.backend.StateBackend` that
additionally maintains the Merkle Patricia Tries so it can report state
roots and serve Merkle proofs — the role the paper's (SP-controlled)
Node plays during block synchronization.
"""

from __future__ import annotations

from repro import rlp
from repro.crypto.keccak import keccak256
from repro.state.account import Account, AccountMeta, Address
from repro.state.backend import DictBackend
from repro.trie import MerklePatriciaTrie, verify_proof
from dataclasses import dataclass


@dataclass(frozen=True)
class ProvenAccount:
    """An account record authenticated by a Merkle proof."""

    meta: AccountMeta
    storage_root: bytes


class WorldState(DictBackend):
    """Accounts plus on-demand trie commitment and proofs."""

    def __init__(self, accounts: dict[Address, Account] | None = None) -> None:
        super().__init__(accounts)
        self._committed_root: bytes | None = None
        self._account_trie: MerklePatriciaTrie | None = None

    # -- commitment ----------------------------------------------------

    def _invalidate(self) -> None:
        self._committed_root = None
        self._account_trie = None

    def ensure(self, address: Address) -> Account:
        self._invalidate()
        return super().ensure(address)

    def apply_writes(self, *args, **kwargs) -> None:  # type: ignore[override]
        self._invalidate()
        super().apply_writes(*args, **kwargs)

    def commit(self) -> bytes:
        """Build the account trie and return the state root."""
        if self._committed_root is not None:
            return self._committed_root
        trie = MerklePatriciaTrie()
        for address, account in self.accounts.items():
            if account.is_empty:
                continue
            trie.put(keccak256(address), account.rlp_encode())
        self._account_trie = trie
        self._committed_root = trie.root_hash()
        return self._committed_root

    # -- proofs (A6 defense surface) ------------------------------------

    def prove_account(self, address: Address) -> list[bytes]:
        """Merkle proof for the account record under the current root."""
        self.commit()
        assert self._account_trie is not None
        return self._account_trie.prove(keccak256(address))

    def prove_storage(self, address: Address, key: int) -> list[bytes]:
        """Merkle proof for one storage slot under the account's root."""
        account = self.accounts.get(address, Account())
        trie = MerklePatriciaTrie()
        for slot_key, value in account.storage.items():
            if value:
                trie.put(
                    keccak256(slot_key.to_bytes(32, "big")),
                    rlp.encode(rlp.encode_uint(value)),
                )
        return trie.prove(keccak256(key.to_bytes(32, "big")))

    @staticmethod
    def verify_account_proof(
        state_root: bytes, address: Address, proof: list[bytes]
    ) -> "ProvenAccount | None":
        """Verify an account proof; returns the proven record or None.

        Raises :class:`repro.trie.ProofError` on forgery, the check that
        blocks attack A6 during block synchronization.
        """
        encoded = verify_proof(state_root, keccak256(address), proof)
        if encoded is None:
            return None
        nonce_b, balance_b, storage_root, code_hash = rlp.decode(encoded)  # type: ignore[misc]
        meta = AccountMeta(
            balance=rlp.decode_uint(bytes(balance_b)),
            nonce=rlp.decode_uint(bytes(nonce_b)),
            code_hash=bytes(code_hash),
            code_size=-1,  # not part of the on-chain record
        )
        return ProvenAccount(meta, bytes(storage_root))

    @staticmethod
    def verify_storage_proof(
        storage_root: bytes, key: int, proof: list[bytes]
    ) -> int:
        """Verify a storage proof; returns the proven value (0 if absent)."""
        encoded = verify_proof(
            storage_root, keccak256(key.to_bytes(32, "big")), proof
        )
        if encoded is None:
            return 0
        decoded = rlp.decode(encoded)
        return rlp.decode_uint(bytes(decoded))  # type: ignore[arg-type]

    def storage_root_of(self, address: Address) -> bytes:
        account = self.accounts.get(address, Account())
        return account.storage_root()

    def copy(self) -> "WorldState":
        return WorldState(
            {address: account.copy() for address, account in self.accounts.items()}
        )
