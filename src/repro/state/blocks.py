"""Transaction, block, and chain-context datatypes."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import rlp
from repro.crypto.keccak import keccak256
from repro.state.account import Address


@dataclass(frozen=True)
class Transaction:
    """A (pre-)executable transaction.

    ``to is None`` means contract creation.  The simulation carries the
    sender explicitly instead of recovering it from a signature — user
    bundles are authenticated at the channel layer, matching the paper's
    use case where the bundle arrives over the attested secure channel.
    """

    sender: Address
    to: Address | None
    value: int = 0
    data: bytes = b""
    gas_limit: int = 30_000_000
    gas_price: int = 1
    nonce: int | None = None  # None: use the sender's current nonce.

    def tx_hash(self) -> bytes:
        """Identifier hash over the canonical RLP of the fields."""
        return keccak256(
            rlp.encode(
                [
                    self.sender,
                    self.to if self.to is not None else b"",
                    rlp.encode_uint(self.value),
                    self.data,
                    rlp.encode_uint(self.gas_limit),
                    rlp.encode_uint(self.gas_price),
                    rlp.encode_uint(self.nonce or 0),
                ]
            )
        )


@dataclass(frozen=True)
class BlockHeader:
    """Header fields the EVM exposes through BLOCK instructions."""

    number: int
    parent_hash: bytes
    state_root: bytes
    timestamp: int
    coinbase: Address
    gas_limit: int = 30_000_000
    base_fee: int = 10
    prev_randao: int = 0
    chain_id: int = 1

    def block_hash(self) -> bytes:
        return keccak256(
            rlp.encode(
                [
                    rlp.encode_uint(self.number),
                    self.parent_hash,
                    self.state_root,
                    rlp.encode_uint(self.timestamp),
                    self.coinbase,
                    rlp.encode_uint(self.gas_limit),
                    rlp.encode_uint(self.base_fee),
                    rlp.encode_uint(self.prev_randao),
                    rlp.encode_uint(self.chain_id),
                ]
            )
        )


@dataclass
class Block:
    """A sealed block: header plus ordered transactions."""

    header: BlockHeader
    transactions: list[Transaction] = field(default_factory=list)

    @property
    def number(self) -> int:
        return self.header.number

    def block_hash(self) -> bytes:
        return self.header.block_hash()
