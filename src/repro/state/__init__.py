"""World-state substrate: accounts, journaled overlays, blocks, backends."""

from repro.state.account import (
    Account,
    AccountMeta,
    Address,
    EMPTY_CODE_HASH,
    EMPTY_META,
    WORD,
    to_address,
)
from repro.state.backend import (
    CODE_PAGE_SIZE,
    DictBackend,
    STORAGE_GROUP_SIZE,
    StateBackend,
    assemble_code,
)
from repro.state.blocks import Block, BlockHeader, Transaction
from repro.state.journal import JournaledState, WriteSet
from repro.state.receipts import (
    Bloom,
    Receipt,
    block_bloom,
    find_logs,
    receipts_root,
)
from repro.state.world import ProvenAccount, WorldState

__all__ = [
    "Account",
    "AccountMeta",
    "Address",
    "Block",
    "Bloom",
    "BlockHeader",
    "CODE_PAGE_SIZE",
    "DictBackend",
    "EMPTY_CODE_HASH",
    "EMPTY_META",
    "JournaledState",
    "STORAGE_GROUP_SIZE",
    "StateBackend",
    "ProvenAccount",
    "Receipt",
    "Transaction",
    "WORD",
    "WorldState",
    "WriteSet",
    "block_bloom",
    "assemble_code",
    "find_logs",
    "receipts_root",
    "to_address",
]
