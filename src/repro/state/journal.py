"""Journaled state overlay: per-transaction mutable world-state view.

The EVM executes against a :class:`JournaledState` layered over a
read-only :class:`~repro.state.backend.StateBackend`.  Mutations are
buffered; :meth:`snapshot`/:meth:`revert` implement the frame semantics
of CALL/REVERT (paper §II-A: "world state modifications are discarded or
committed depending on whether the transaction is reverted").

It also tracks EIP-2929 warm/cold access sets (which feed dynamic gas)
and gas refunds.  Pre-execution never persists: the service reads the
final write set out of the journal for the user's trace report and then
drops it (paper workflow step 10).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.state.account import AccountMeta, Address, EMPTY_CODE_HASH
from repro.state.backend import StateBackend
from repro.crypto.keccak import keccak256


@dataclass
class WriteSet:
    """The committed effects of a pre-executed transaction."""

    balances: dict[Address, int] = field(default_factory=dict)
    nonces: dict[Address, int] = field(default_factory=dict)
    storage: dict[tuple[Address, int], int] = field(default_factory=dict)
    codes: dict[Address, bytes] = field(default_factory=dict)
    deleted: set[Address] = field(default_factory=set)


class JournaledState:
    """Mutable overlay with O(1) snapshot/revert via an undo journal."""

    def __init__(self, backend: StateBackend) -> None:
        self._backend = backend
        self._balances: dict[Address, int] = {}
        self._nonces: dict[Address, int] = {}
        self._storage: dict[tuple[Address, int], int] = {}
        self._codes: dict[Address, bytes] = {}
        self._deleted: set[Address] = set()
        # Undo journal: (kind, key, previous_value) entries.
        self._journal: list[tuple[str, Any, Any]] = []
        # EIP-2929 access sets (transaction scoped, revert-protected).
        self._warm_addresses: set[Address] = set()
        self._warm_slots: set[tuple[Address, int]] = set()
        self.refund: int = 0
        # Original (pre-transaction) storage values for SSTORE pricing.
        self._original_storage: dict[tuple[Address, int], int] = {}

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    def get_balance(self, address: Address) -> int:
        if address in self._deleted and address not in self._balances:
            return 0
        if address in self._balances:
            return self._balances[address]
        return self._backend.get_meta(address).balance

    def get_nonce(self, address: Address) -> int:
        if address in self._deleted and address not in self._nonces:
            return 0
        if address in self._nonces:
            return self._nonces[address]
        return self._backend.get_meta(address).nonce

    def get_code(self, address: Address) -> bytes:
        if address in self._codes:
            return self._codes[address]
        if address in self._deleted:
            return b""
        return self._backend.get_code(address)

    def get_code_size(self, address: Address) -> int:
        if address in self._codes:
            return len(self._codes[address])
        if address in self._deleted:
            return 0
        return self._backend.get_meta(address).code_size

    def get_code_hash(self, address: Address) -> bytes:
        code = self.get_code(address)
        if code:
            return keccak256(code)
        if self.account_exists(address):
            return EMPTY_CODE_HASH
        return b"\x00" * 32  # EXTCODEHASH of a non-existent account is 0.

    def get_storage(self, address: Address, key: int) -> int:
        slot = (address, key)
        if slot in self._storage:
            return self._storage[slot]
        if address in self._deleted:
            return 0
        if address in self._codes:
            # Deployed within this bundle: storage starts empty.
            return 0
        return self._backend.get_storage(address, key)

    def get_original_storage(self, address: Address, key: int) -> int:
        """Value at transaction start (for EIP-2200 SSTORE pricing)."""
        slot = (address, key)
        if slot in self._original_storage:
            return self._original_storage[slot]
        return self._backend.get_storage(address, key)

    def account_exists(self, address: Address) -> bool:
        if address in self._deleted:
            return False
        if (
            address in self._balances
            or address in self._nonces
            or address in self._codes
        ):
            return (
                self.get_balance(address) != 0
                or self.get_nonce(address) != 0
                or bool(self.get_code(address))
            )
        return self._backend.get_meta(address).exists

    def meta(self, address: Address) -> AccountMeta:
        """Current overlay view of the account header."""
        code = self.get_code(address)
        return AccountMeta(
            self.get_balance(address),
            self.get_nonce(address),
            keccak256(code) if code else EMPTY_CODE_HASH,
            len(code),
        )

    # ------------------------------------------------------------------
    # Writes (journaled)
    # ------------------------------------------------------------------

    def set_balance(self, address: Address, value: int) -> None:
        previous = self._balances.get(address)
        self._journal.append(("balance", address, previous))
        self._balances[address] = value

    def add_balance(self, address: Address, delta: int) -> None:
        self.set_balance(address, self.get_balance(address) + delta)

    def sub_balance(self, address: Address, delta: int) -> None:
        balance = self.get_balance(address)
        if balance < delta:
            raise ValueError("insufficient balance")
        self.set_balance(address, balance - delta)

    def set_nonce(self, address: Address, value: int) -> None:
        previous = self._nonces.get(address)
        self._journal.append(("nonce", address, previous))
        self._nonces[address] = value

    def increment_nonce(self, address: Address) -> None:
        self.set_nonce(address, self.get_nonce(address) + 1)

    def set_code(self, address: Address, code: bytes) -> None:
        previous = self._codes.get(address)
        self._journal.append(("code", address, previous))
        self._codes[address] = code

    def set_storage(self, address: Address, key: int, value: int) -> None:
        slot = (address, key)
        if slot not in self._original_storage:
            self._original_storage[slot] = self._backend.get_storage(address, key)
        previous = self._storage.get(slot)
        self._journal.append(("storage", slot, previous))
        self._storage[slot] = value

    def delete_account(self, address: Address) -> None:
        """SELFDESTRUCT: mark for deletion at transaction end."""
        if address in self._deleted:
            return
        self._journal.append(("delete", address, None))
        self._deleted.add(address)

    def add_refund(self, amount: int) -> None:
        self._journal.append(("refund", None, self.refund))
        self.refund += amount

    def sub_refund(self, amount: int) -> None:
        self._journal.append(("refund", None, self.refund))
        self.refund -= amount

    # ------------------------------------------------------------------
    # Warm/cold access tracking (EIP-2929)
    # ------------------------------------------------------------------

    def warm_address(self, address: Address) -> bool:
        """Mark warm; returns True if it was already warm."""
        if address in self._warm_addresses:
            return True
        self._journal.append(("warm_addr", address, None))
        self._warm_addresses.add(address)
        return False

    def warm_slot(self, address: Address, key: int) -> bool:
        """Mark a storage slot warm; returns True if already warm."""
        slot = (address, key)
        if slot in self._warm_slots:
            return True
        self._journal.append(("warm_slot", slot, None))
        self._warm_slots.add(slot)
        return False

    def is_warm_address(self, address: Address) -> bool:
        return address in self._warm_addresses

    # ------------------------------------------------------------------
    # Snapshot / revert
    # ------------------------------------------------------------------

    def snapshot(self) -> int:
        """Return a snapshot id for a later :meth:`revert`."""
        return len(self._journal)

    def revert(self, snapshot_id: int) -> None:
        """Undo all mutations made after ``snapshot_id``."""
        while len(self._journal) > snapshot_id:
            kind, key, previous = self._journal.pop()
            if kind == "balance":
                self._restore(self._balances, key, previous)
            elif kind == "nonce":
                self._restore(self._nonces, key, previous)
            elif kind == "code":
                self._restore(self._codes, key, previous)
            elif kind == "storage":
                self._restore(self._storage, key, previous)
            elif kind == "delete":
                self._deleted.discard(key)
            elif kind == "refund":
                self.refund = previous
            elif kind == "warm_addr":
                self._warm_addresses.discard(key)
            elif kind == "warm_slot":
                self._warm_slots.discard(key)
            else:  # pragma: no cover - defensive
                raise AssertionError(f"unknown journal entry {kind}")

    @staticmethod
    def _restore(mapping: dict, key: Any, previous: Any) -> None:
        if previous is None:
            mapping.pop(key, None)
        else:
            mapping[key] = previous

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def write_set(self) -> WriteSet:
        """The transaction's net effect (what the trace reports)."""
        return WriteSet(
            balances=dict(self._balances),
            nonces=dict(self._nonces),
            storage=dict(self._storage),
            codes=dict(self._codes),
            deleted=set(self._deleted),
        )

    def begin_transaction(self) -> None:
        """Reset per-transaction scratch (access sets, refunds, originals).

        Buffered writes persist across transactions within a bundle so
        later transactions see earlier ones' effects (paper §II-A).
        """
        self._warm_addresses = set()
        self._warm_slots = set()
        self.refund = 0
        self._original_storage = {}
        self._journal = []
