"""State backends: where committed world state is read from.

The EVM core sees the committed world state through the
:class:`StateBackend` protocol.  Implementations:

* :class:`DictBackend` — plain in-memory mapping (Geth baseline, tests).
* :class:`repro.oram.adapter.ObliviousStateBackend` — the HarDTAPE path:
  every read becomes fixed-size Path ORAM page queries.
* :class:`repro.state.world.WorldState` — the full node's authenticated
  store (MPT-backed, serves Merkle proofs).

Code reads are exposed both whole (``get_code``) and paged
(``get_code_page``): HarDTAPE splits bytecode into ``CODE_PAGE_SIZE``
*blocks* so code and storage queries are indistinguishable (paper §IV-D).
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from repro.state.account import Account, AccountMeta, Address, EMPTY_META

CODE_PAGE_SIZE = 1024  # 1 KB ORAM *blocks*, per the paper.
STORAGE_GROUP_SIZE = 32  # 32 consecutive 32-byte records per 1 KB block.


@runtime_checkable
class StateBackend(Protocol):
    """Read-only view of a committed world state version."""

    def get_meta(self, address: Address) -> AccountMeta:
        """Fetch the account header (balance, nonce, code hash/size)."""
        ...

    def get_storage(self, address: Address, key: int) -> int:
        """Fetch one 256-bit storage record (0 when absent)."""
        ...

    def get_code_page(self, address: Address, page_index: int) -> bytes:
        """Fetch one 1 KB code page (zero-padded at the tail)."""
        ...

    def get_code(self, address: Address) -> bytes:
        """Fetch the full bytecode."""
        ...


def assemble_code(backend: StateBackend, address: Address) -> bytes:
    """Reconstruct full bytecode from paged reads."""
    size = backend.get_meta(address).code_size
    if size == 0:
        return b""
    pages = []
    for page_index in range((size + CODE_PAGE_SIZE - 1) // CODE_PAGE_SIZE):
        pages.append(backend.get_code_page(address, page_index))
    return b"".join(pages)[:size]


class DictBackend:
    """Committed state held in a plain dict of :class:`Account`."""

    def __init__(self, accounts: dict[Address, Account] | None = None) -> None:
        self.accounts: dict[Address, Account] = accounts or {}

    def get_meta(self, address: Address) -> AccountMeta:
        account = self.accounts.get(address)
        if account is None:
            return EMPTY_META
        return AccountMeta(
            account.balance, account.nonce, account.code_hash, len(account.code)
        )

    def get_storage(self, address: Address, key: int) -> int:
        account = self.accounts.get(address)
        if account is None:
            return 0
        return account.storage.get(key, 0)

    def get_code_page(self, address: Address, page_index: int) -> bytes:
        code = self.get_code(address)
        page = code[page_index * CODE_PAGE_SIZE:(page_index + 1) * CODE_PAGE_SIZE]
        return page.ljust(CODE_PAGE_SIZE, b"\x00")

    def get_code(self, address: Address) -> bytes:
        account = self.accounts.get(address)
        return account.code if account else b""

    # Mutation helpers for test/workload setup.

    def ensure(self, address: Address) -> Account:
        """Get or create the account at ``address``."""
        account = self.accounts.get(address)
        if account is None:
            account = Account()
            self.accounts[address] = account
        return account

    def apply_writes(
        self,
        balances: dict[Address, int],
        nonces: dict[Address, int],
        storage: dict[tuple[Address, int], int],
        codes: dict[Address, bytes],
        deleted: set[Address] = frozenset(),
    ) -> None:
        """Apply a committed transaction's write set."""
        for address, balance in balances.items():
            self.ensure(address).balance = balance
        for address, nonce in nonces.items():
            self.ensure(address).nonce = nonce
        for (address, key), value in storage.items():
            slot = self.ensure(address).storage
            if value:
                slot[key] = value
            else:
                slot.pop(key, None)
        for address, code in codes.items():
            self.ensure(address).code = code
        for address in deleted:
            self.accounts.pop(address, None)
