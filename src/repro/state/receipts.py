"""Transaction receipts and log bloom filters (yellow paper §4.3.1).

Receipts give the node a queryable, authenticated record of execution
outcomes: status, cumulative gas, logs, and the 2048-bit bloom filter
over log addresses and topics that lets clients skip blocks that cannot
contain their events.  The receipts trie root goes into the block
header like mainnet's ``receiptsRoot``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from typing import TYPE_CHECKING

from repro import rlp
from repro.crypto.keccak import keccak256
from repro.state.account import Address

if TYPE_CHECKING:  # avoid a state <-> evm import cycle; Log is duck-typed
    from repro.evm.frame import Log

BLOOM_BITS = 2048
BLOOM_BYTES = BLOOM_BITS // 8


def _bloom_bits_for(entry: bytes) -> tuple[int, int, int]:
    """The three bit indices Ethereum's bloom uses per entry.

    Take the keccak256 of the entry; the low 11 bits of each of the
    first three 16-bit words select the bits.
    """
    digest = keccak256(entry)
    return tuple(
        int.from_bytes(digest[i:i + 2], "big") & (BLOOM_BITS - 1)
        for i in (0, 2, 4)
    )  # type: ignore[return-value]


class Bloom:
    """A 2048-bit log bloom."""

    def __init__(self, value: int = 0) -> None:
        self.value = value

    def add(self, entry: bytes) -> None:
        for bit in _bloom_bits_for(entry):
            self.value |= 1 << bit

    def might_contain(self, entry: bytes) -> bool:
        return all(self.value >> bit & 1 for bit in _bloom_bits_for(entry))

    def add_log(self, log: "Log") -> None:
        self.add(log.address)
        for topic in log.topics:
            self.add(topic.to_bytes(32, "big"))

    def __or__(self, other: "Bloom") -> "Bloom":
        return Bloom(self.value | other.value)

    def to_bytes(self) -> bytes:
        return self.value.to_bytes(BLOOM_BYTES, "big")

    @classmethod
    def from_logs(cls, logs: "list[Log]") -> "Bloom":
        bloom = cls()
        for log in logs:
            bloom.add_log(log)
        return bloom


@dataclass
class Receipt:
    """One transaction's execution receipt."""

    status: int
    cumulative_gas: int
    logs: "list[Log]" = field(default_factory=list)

    def bloom(self) -> Bloom:
        return Bloom.from_logs(self.logs)

    def rlp_encode(self) -> bytes:
        return rlp.encode(
            [
                rlp.encode_uint(self.status),
                rlp.encode_uint(self.cumulative_gas),
                self.bloom().to_bytes(),
                [
                    [
                        log.address,
                        [topic.to_bytes(32, "big") for topic in log.topics],
                        log.data,
                    ]
                    for log in self.logs
                ],
            ]
        )


def receipts_root(receipts: list[Receipt]) -> bytes:
    """The Merkle root over RLP(index) -> RLP(receipt), as on mainnet."""
    from repro.trie import MerklePatriciaTrie

    trie = MerklePatriciaTrie()
    for index, receipt in enumerate(receipts):
        trie.put(rlp.encode(rlp.encode_uint(index)), receipt.rlp_encode())
    return trie.root_hash()


def block_bloom(receipts: list[Receipt]) -> Bloom:
    """The union bloom stored in the block header."""
    bloom = Bloom()
    for receipt in receipts:
        bloom.value |= receipt.bloom().value
    return bloom


def find_logs(
    receipts: list[Receipt],
    address: Address | None = None,
    topic: int | None = None,
) -> "list[tuple[int, Log]]":
    """eth_getLogs-style filter over a block's receipts.

    Uses the blooms to skip receipts that cannot match, then confirms
    exactly — the same two-phase structure clients use against nodes.
    """
    matches: "list[tuple[int, Log]]" = []
    for index, receipt in enumerate(receipts):
        bloom = receipt.bloom()
        if address is not None and not bloom.might_contain(address):
            continue
        if topic is not None and not bloom.might_contain(
            topic.to_bytes(32, "big")
        ):
            continue
        for log in receipt.logs:
            if address is not None and log.address != address:
                continue
            if topic is not None and topic not in log.topics:
                continue
            matches.append((index, log))
    return matches
