"""Account model and canonical Ethereum encodings."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import rlp
from repro.crypto.keccak import keccak256

# keccak256(b"") — the code hash of every non-contract account.
EMPTY_CODE_HASH = keccak256(b"")

Address = bytes  # 20 bytes
StorageKey = int  # 256-bit
StorageValue = int  # 256-bit

WORD = 2**256


def to_address(value: int | bytes) -> Address:
    """Normalize an int or bytes into a 20-byte address."""
    if isinstance(value, int):
        return (value % 2**160).to_bytes(20, "big")
    if len(value) > 20:
        return bytes(value[-20:])
    return bytes(value).rjust(20, b"\x00")


@dataclass
class Account:
    """A mutable world-state account.

    ``storage`` maps 256-bit keys to 256-bit values; zero-valued slots
    are treated as absent, matching Ethereum semantics.
    """

    balance: int = 0
    nonce: int = 0
    code: bytes = b""
    storage: dict[StorageKey, StorageValue] = field(default_factory=dict)

    @property
    def code_hash(self) -> bytes:
        return keccak256(self.code) if self.code else EMPTY_CODE_HASH

    @property
    def is_empty(self) -> bool:
        """EIP-161 emptiness: no balance, no nonce, no code."""
        return self.balance == 0 and self.nonce == 0 and not self.code

    def copy(self) -> "Account":
        return Account(self.balance, self.nonce, self.code, dict(self.storage))

    def storage_root(self) -> bytes:
        """Compute the storage trie root (secure trie: hashed keys)."""
        from repro.trie import MerklePatriciaTrie

        trie = MerklePatriciaTrie()
        for key, value in self.storage.items():
            if value:
                trie.put(
                    keccak256(key.to_bytes(32, "big")),
                    rlp.encode(rlp.encode_uint(value)),
                )
        return trie.root_hash()

    def rlp_encode(self) -> bytes:
        """RLP account record: [nonce, balance, storage_root, code_hash]."""
        return rlp.encode(
            [
                rlp.encode_uint(self.nonce),
                rlp.encode_uint(self.balance),
                self.storage_root(),
                self.code_hash,
            ]
        )


@dataclass(frozen=True)
class AccountMeta:
    """The fixed-size account header HarDTAPE fetches as a K-V query."""

    balance: int
    nonce: int
    code_hash: bytes
    code_size: int

    @property
    def exists(self) -> bool:
        return (
            self.balance != 0
            or self.nonce != 0
            or self.code_hash != EMPTY_CODE_HASH
        )


EMPTY_META = AccountMeta(0, 0, EMPTY_CODE_HASH, 0)
