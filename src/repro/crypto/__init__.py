"""Cryptographic substrate for the HarDTAPE simulation.

Everything is implemented from scratch in pure Python and validated
against public test vectors: Keccak-256 (Ethereum's hash), AES-GCM,
secp256k1 ECDSA/ECDH, HKDF, a deterministic DRBG, and a simulated PUF
root of trust.

Hot-path primitives additionally come in registered *backend* tiers
(:mod:`repro.crypto.backend`): the pure-Python reference, the numpy
vectorized engine, and a stdlib/OpenSSL-accelerated tier — all
provably byte-identical, selected per device config.
"""

from repro.crypto.aes import AES
from repro.crypto.ecc import (
    InvalidSignature,
    Point,
    PrivateKey,
    PublicKey,
    Signature,
    batch_verify,
)
from repro.crypto.gcm import AesGcm, AuthenticationError
from repro.crypto.kdf import Drbg, hkdf_sha256
from repro.crypto.keccak import (
    Keccak256,
    keccak256,
    keccak256_many,
    keccak_memo_stats,
)
from repro.crypto.puf import DeviceIdentity, Manufacturer, SimulatedPuf
from repro.crypto.backend import (
    CryptoBackend,
    UnknownBackendError,
    activate,
    active_backend,
    available_backends,
    get_backend,
)

__all__ = [
    "AES",
    "AesGcm",
    "AuthenticationError",
    "CryptoBackend",
    "DeviceIdentity",
    "Drbg",
    "InvalidSignature",
    "Keccak256",
    "keccak256",
    "keccak256_many",
    "keccak_memo_stats",
    "Manufacturer",
    "Point",
    "PrivateKey",
    "PublicKey",
    "Signature",
    "SimulatedPuf",
    "UnknownBackendError",
    "activate",
    "active_backend",
    "available_backends",
    "batch_verify",
    "get_backend",
    "hkdf_sha256",
]
