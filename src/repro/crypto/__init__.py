"""Cryptographic substrate for the HarDTAPE simulation.

Everything is implemented from scratch in pure Python and validated
against public test vectors: Keccak-256 (Ethereum's hash), AES-GCM,
secp256k1 ECDSA/ECDH, HKDF, a deterministic DRBG, and a simulated PUF
root of trust.
"""

from repro.crypto.aes import AES
from repro.crypto.ecc import (
    InvalidSignature,
    Point,
    PrivateKey,
    PublicKey,
    Signature,
)
from repro.crypto.gcm import AesGcm, AuthenticationError
from repro.crypto.kdf import Drbg, hkdf_sha256
from repro.crypto.keccak import Keccak256, keccak256
from repro.crypto.puf import DeviceIdentity, Manufacturer, SimulatedPuf

__all__ = [
    "AES",
    "AesGcm",
    "AuthenticationError",
    "DeviceIdentity",
    "Drbg",
    "InvalidSignature",
    "Keccak256",
    "keccak256",
    "Manufacturer",
    "Point",
    "PrivateKey",
    "PublicKey",
    "Signature",
    "SimulatedPuf",
    "hkdf_sha256",
]
