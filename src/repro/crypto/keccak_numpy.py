"""Lane-wise vectorized Keccak-f[1600]: batch-hash many inputs per sweep.

The pure-Python sponge in :mod:`repro.crypto.keccak` spends its time in
interpreter overhead: ~200 lane operations per round, 24 rounds per
136-byte block, all on Python ints.  Trie commits and sync-root
computation hash *hundreds of independent nodes at once*, so the lanes
of many sponges can ride one numpy operation: this engine packs the
states of N in-flight messages into an ``(N, 25)`` ``uint64`` array and
runs each theta/rho-pi/chi/iota step across the whole batch.  The
permutation count is unchanged — only the Python-level loop count drops
from O(messages x rounds x lanes) to O(rounds x lanes).

Inputs of different lengths are handled by masking: each message is
multi-rate padded up front, and block step ``b`` permutes only the
subset of states that still have a ``b``-th block.  Output is
byte-identical to the sponge for every input (property-tested and gated
by perf-bench's pairwise backend identity check).

Small batches fall back to the scalar sponge: below ``_MIN_BATCH``
messages the numpy dispatch overhead exceeds the win.
"""

from __future__ import annotations

import numpy as np

from repro.crypto.keccak import (
    _RATE_BYTES,
    _ROTATION,
    _ROUND_CONSTANTS,
    Keccak256,
    pad_keccak,
)

_MIN_BATCH = 4  # scalar sponge wins below this many messages

_U64 = np.uint64

# Flat-lane index maps for rho+pi and chi, precomputed once.  Lane i
# holds (x, y) = (i % 5, i // 5); rho+pi moves lane (x, y) to
# (y, (2x + 3y) % 5) with a fixed rotation.
_PI_SOURCE = [0] * 25
_RHO_BITS = [0] * 25
for _x in range(5):
    for _y in range(5):
        _dest = _y + 5 * ((2 * _x + 3 * _y) % 5)
        _PI_SOURCE[_dest] = _x + 5 * _y
        _RHO_BITS[_dest] = _ROTATION[_x][_y] % 64
_CHI_1 = [(_j % 5 + 1) % 5 + 5 * (_j // 5) for _j in range(25)]
_CHI_2 = [(_j % 5 + 2) % 5 + 5 * (_j // 5) for _j in range(25)]

_RC_U64 = [np.uint64(rc) for rc in _ROUND_CONSTANTS]


def _rol_vec(lanes: np.ndarray, bits: int) -> np.ndarray:
    """Rotate every uint64 in ``lanes`` left by ``bits``."""
    if bits == 0:
        return lanes
    left = np.uint64(bits)
    right = np.uint64(64 - bits)
    return (lanes << left) | (lanes >> right)


def keccak_f1600_batch(states: np.ndarray) -> None:
    """Apply Keccak-f[1600] in place to ``states`` of shape ``(N, 25)``."""
    for rc in _RC_U64:
        # theta: column parity, then mix into every lane of the column.
        grid = states.reshape(-1, 5, 5)  # [message, y, x]
        parity = grid[:, 0, :] ^ grid[:, 1, :] ^ grid[:, 2, :] ^ grid[:, 3, :] ^ grid[:, 4, :]
        d = np.roll(parity, 1, axis=1) ^ _rol_vec(np.roll(parity, -1, axis=1), 1)
        grid ^= d[:, None, :]
        # rho + pi: gather rotated lanes into their destination slots.
        moved = np.empty_like(states)
        for dest in range(25):
            moved[:, dest] = _rol_vec(states[:, _PI_SOURCE[dest]], _RHO_BITS[dest])
        # chi
        states[:] = moved ^ (~moved[:, _CHI_1] & moved[:, _CHI_2])
        # iota
        states[:, 0] ^= rc


class VectorKeccakEngine:
    """Batch Keccak-256 over the numpy lane-parallel permutation."""

    name = "numpy-lanes"

    def hash_one(self, data: bytes) -> bytes:
        return Keccak256(data).digest()

    def hash_many(self, items: list[bytes]) -> list[bytes]:
        count = len(items)
        if count < _MIN_BATCH:
            return [Keccak256(data).digest() for data in items]
        padded = [pad_keccak(data) for data in items]
        block_counts = np.array(
            [len(p) // _RATE_BYTES for p in padded], dtype=np.int64
        )
        states = np.zeros((count, 25), dtype=_U64)
        lanes_per_block = _RATE_BYTES // 8  # 17
        for block in range(int(block_counts.max())):
            active = np.flatnonzero(block_counts > block)
            # XOR the next 136-byte block of every still-absorbing
            # message into its first 17 lanes, then permute the subset
            # together in one lane-parallel sweep.
            blocks = np.frombuffer(
                b"".join(
                    padded[i][block * _RATE_BYTES:(block + 1) * _RATE_BYTES]
                    for i in active
                ),
                dtype="<u8",
            ).reshape(len(active), lanes_per_block)
            subset = states[active]
            subset[:, :lanes_per_block] ^= blocks
            keccak_f1600_batch(subset)
            states[active] = subset
        # Squeeze: digest = first 4 lanes, little-endian.
        out_lanes = np.ascontiguousarray(states[:, :4]).astype("<u8")
        raw = out_lanes.tobytes()
        return [raw[i * 32:(i + 1) * 32] for i in range(count)]
