"""Pure-Python AES-128/192/256 block cipher (FIPS 197).

Encryption uses precomputed T-tables for speed; decryption uses the
equivalent inverse tables.  This module provides only the raw block
transform — authenticated modes live in :mod:`repro.crypto.gcm`.

The implementation is for the HarDTAPE *functional* simulation: it is
byte-for-byte compatible with standard AES (checked against FIPS test
vectors in the test suite) but makes no constant-time claims, which is
irrelevant here because adversary timing in the simulation is modeled by
:mod:`repro.hardware.timing`, not by wall clock.
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# S-box generation (from GF(2^8) arithmetic, so no magic tables are pasted).
# ---------------------------------------------------------------------------


def _gf_mul(a: int, b: int) -> int:
    """Multiply in GF(2^8) with the AES polynomial x^8+x^4+x^3+x+1."""
    result = 0
    for _ in range(8):
        if b & 1:
            result ^= a
        high = a & 0x80
        a = (a << 1) & 0xFF
        if high:
            a ^= 0x1B
        b >>= 1
    return result


def _build_sbox() -> tuple[list[int], list[int]]:
    # Multiplicative inverses via exp/log tables over generator 3.
    exp = [0] * 256
    log = [0] * 256
    x = 1
    for i in range(255):
        exp[i] = x
        log[x] = i
        x = _gf_mul(x, 3)
    exp[255] = exp[0]

    def inverse(v: int) -> int:
        if v == 0:
            return 0
        return exp[255 - log[v]]

    sbox = [0] * 256
    inv_sbox = [0] * 256
    for value in range(256):
        inv = inverse(value)
        # Affine transform.
        transformed = 0
        for bit in range(8):
            b = (
                (inv >> bit)
                ^ (inv >> ((bit + 4) % 8))
                ^ (inv >> ((bit + 5) % 8))
                ^ (inv >> ((bit + 6) % 8))
                ^ (inv >> ((bit + 7) % 8))
                ^ (0x63 >> bit)
            ) & 1
            transformed |= b << bit
        sbox[value] = transformed
        inv_sbox[transformed] = value
    return sbox, inv_sbox


_SBOX, _INV_SBOX = _build_sbox()

# T-tables: each maps a state byte to a 32-bit column contribution.
_T0 = [0] * 256
_T1 = [0] * 256
_T2 = [0] * 256
_T3 = [0] * 256
for _i in range(256):
    _s = _SBOX[_i]
    _word = (
        (_gf_mul(_s, 2) << 24) | (_s << 16) | (_s << 8) | _gf_mul(_s, 3)
    )
    _T0[_i] = _word
    _T1[_i] = ((_word >> 8) | (_word << 24)) & 0xFFFFFFFF
    _T2[_i] = ((_word >> 16) | (_word << 16)) & 0xFFFFFFFF
    _T3[_i] = ((_word >> 24) | (_word << 8)) & 0xFFFFFFFF

_RCON = [0x01]
while len(_RCON) < 14:
    _RCON.append(_gf_mul(_RCON[-1], 2))


class AES:
    """Raw AES block cipher for 16/24/32-byte keys."""

    block_size = 16

    def __init__(self, key: bytes) -> None:
        if len(key) not in (16, 24, 32):
            raise ValueError(f"invalid AES key length: {len(key)}")
        self._rounds = {16: 10, 24: 12, 32: 14}[len(key)]
        self._round_keys = self._expand_key(key)

    def _expand_key(self, key: bytes) -> list[int]:
        nk = len(key) // 4
        words = [
            int.from_bytes(key[4 * i:4 * i + 4], "big") for i in range(nk)
        ]
        total = 4 * (self._rounds + 1)
        for i in range(nk, total):
            temp = words[i - 1]
            if i % nk == 0:
                temp = ((temp << 8) | (temp >> 24)) & 0xFFFFFFFF
                temp = (
                    (_SBOX[(temp >> 24) & 0xFF] << 24)
                    | (_SBOX[(temp >> 16) & 0xFF] << 16)
                    | (_SBOX[(temp >> 8) & 0xFF] << 8)
                    | _SBOX[temp & 0xFF]
                )
                temp ^= _RCON[i // nk - 1] << 24
            elif nk > 6 and i % nk == 4:
                temp = (
                    (_SBOX[(temp >> 24) & 0xFF] << 24)
                    | (_SBOX[(temp >> 16) & 0xFF] << 16)
                    | (_SBOX[(temp >> 8) & 0xFF] << 8)
                    | _SBOX[temp & 0xFF]
                )
            words.append(words[i - nk] ^ temp)
        return words

    def encrypt_block(self, block: bytes) -> bytes:
        """Encrypt one 16-byte block."""
        if len(block) != 16:
            raise ValueError("AES block must be 16 bytes")
        rk = self._round_keys
        s0 = int.from_bytes(block[0:4], "big") ^ rk[0]
        s1 = int.from_bytes(block[4:8], "big") ^ rk[1]
        s2 = int.from_bytes(block[8:12], "big") ^ rk[2]
        s3 = int.from_bytes(block[12:16], "big") ^ rk[3]
        t0, t1, t2, t3 = _T0, _T1, _T2, _T3
        k = 4
        for _ in range(self._rounds - 1):
            n0 = (
                t0[(s0 >> 24) & 0xFF] ^ t1[(s1 >> 16) & 0xFF]
                ^ t2[(s2 >> 8) & 0xFF] ^ t3[s3 & 0xFF] ^ rk[k]
            )
            n1 = (
                t0[(s1 >> 24) & 0xFF] ^ t1[(s2 >> 16) & 0xFF]
                ^ t2[(s3 >> 8) & 0xFF] ^ t3[s0 & 0xFF] ^ rk[k + 1]
            )
            n2 = (
                t0[(s2 >> 24) & 0xFF] ^ t1[(s3 >> 16) & 0xFF]
                ^ t2[(s0 >> 8) & 0xFF] ^ t3[s1 & 0xFF] ^ rk[k + 2]
            )
            n3 = (
                t0[(s3 >> 24) & 0xFF] ^ t1[(s0 >> 16) & 0xFF]
                ^ t2[(s1 >> 8) & 0xFF] ^ t3[s2 & 0xFF] ^ rk[k + 3]
            )
            s0, s1, s2, s3 = n0, n1, n2, n3
            k += 4
        sbox = _SBOX
        out = bytearray(16)
        for i, (a, b, c, d) in enumerate(
            ((s0, s1, s2, s3), (s1, s2, s3, s0), (s2, s3, s0, s1), (s3, s0, s1, s2))
        ):
            # Final round: SubBytes + ShiftRows + AddRoundKey (no MixColumns).
            word = (
                (sbox[(a >> 24) & 0xFF] << 24)
                | (sbox[(b >> 16) & 0xFF] << 16)
                | (sbox[(c >> 8) & 0xFF] << 8)
                | sbox[d & 0xFF]
            ) ^ rk[k + i]
            out[4 * i:4 * i + 4] = word.to_bytes(4, "big")
        return bytes(out)

    def decrypt_block(self, block: bytes) -> bytes:
        """Decrypt one 16-byte block (straightforward inverse rounds)."""
        if len(block) != 16:
            raise ValueError("AES block must be 16 bytes")
        rk = self._round_keys
        state = [
            int.from_bytes(block[4 * i:4 * i + 4], "big")
            ^ rk[4 * self._rounds + i]
            for i in range(4)
        ]
        state_bytes = bytearray(16)
        for i in range(4):
            state_bytes[4 * i:4 * i + 4] = state[i].to_bytes(4, "big")

        def inv_shift_rows(b: bytearray) -> bytearray:
            out = bytearray(16)
            for col in range(4):
                for row in range(4):
                    out[4 * ((col + row) % 4) + row] = b[4 * col + row]
            return out

        def inv_mix_columns(b: bytearray) -> bytearray:
            out = bytearray(16)
            for col in range(4):
                c = b[4 * col:4 * col + 4]
                out[4 * col + 0] = (
                    _gf_mul(c[0], 14) ^ _gf_mul(c[1], 11)
                    ^ _gf_mul(c[2], 13) ^ _gf_mul(c[3], 9)
                )
                out[4 * col + 1] = (
                    _gf_mul(c[0], 9) ^ _gf_mul(c[1], 14)
                    ^ _gf_mul(c[2], 11) ^ _gf_mul(c[3], 13)
                )
                out[4 * col + 2] = (
                    _gf_mul(c[0], 13) ^ _gf_mul(c[1], 9)
                    ^ _gf_mul(c[2], 14) ^ _gf_mul(c[3], 11)
                )
                out[4 * col + 3] = (
                    _gf_mul(c[0], 11) ^ _gf_mul(c[1], 13)
                    ^ _gf_mul(c[2], 9) ^ _gf_mul(c[3], 14)
                )
            return out

        for round_index in range(self._rounds - 1, 0, -1):
            state_bytes = inv_shift_rows(state_bytes)
            state_bytes = bytearray(_INV_SBOX[b] for b in state_bytes)
            for i in range(4):
                word = int.from_bytes(state_bytes[4 * i:4 * i + 4], "big")
                word ^= rk[4 * round_index + i]
                state_bytes[4 * i:4 * i + 4] = word.to_bytes(4, "big")
            state_bytes = inv_mix_columns(state_bytes)
        state_bytes = inv_shift_rows(state_bytes)
        state_bytes = bytearray(_INV_SBOX[b] for b in state_bytes)
        for i in range(4):
            word = int.from_bytes(state_bytes[4 * i:4 * i + 4], "big")
            word ^= rk[i]
            state_bytes[4 * i:4 * i + 4] = word.to_bytes(4, "big")
        return bytes(state_bytes)

    def ctr_keystream(self, counter_block: bytes, length: int) -> bytes:
        """Generate ``length`` keystream bytes in CTR mode.

        ``counter_block`` is the initial 16-byte counter; the final 32-bit
        word is incremented per block (the GCM convention).
        """
        prefix = counter_block[:12]
        counter = int.from_bytes(counter_block[12:], "big")
        out = bytearray()
        blocks = (length + 15) // 16
        for _ in range(blocks):
            out.extend(self.encrypt_block(prefix + counter.to_bytes(4, "big")))
            counter = (counter + 1) & 0xFFFFFFFF
        return bytes(out[:length])
