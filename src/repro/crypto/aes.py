"""Pure-Python AES-128/192/256 block cipher (FIPS 197).

Encryption uses precomputed T-tables for speed; decryption uses the
equivalent inverse tables.  This module provides only the raw block
transform — authenticated modes live in :mod:`repro.crypto.gcm`.

The implementation is for the HarDTAPE *functional* simulation: it is
byte-for-byte compatible with standard AES (checked against FIPS test
vectors in the test suite) but makes no constant-time claims, which is
irrelevant here because adversary timing in the simulation is modeled by
:mod:`repro.hardware.timing`, not by wall clock.

CTR keystream generation is the simulator's hottest loop (64 block
transforms per 1 KB ORAM block), so :meth:`AES.ctr_keystream` has two
tuned paths: a numpy one that runs the T-table rounds as uint32 gathers
over all counter blocks at once, and a scalar fallback with the rounds
inlined and the output buffer preallocated.  Both produce bytes
identical to a block-at-a-time reference (see
``tests/unit/test_aes_gcm.py``).
"""

from __future__ import annotations

try:  # numpy is a declared dependency, but the scalar path keeps the
    import numpy as _np  # module usable if it is ever absent.
except ImportError:  # pragma: no cover - exercised only without numpy
    _np = None

# ---------------------------------------------------------------------------
# S-box generation (from GF(2^8) arithmetic, so no magic tables are pasted).
# ---------------------------------------------------------------------------


def _gf_mul(a: int, b: int) -> int:
    """Multiply in GF(2^8) with the AES polynomial x^8+x^4+x^3+x+1."""
    result = 0
    for _ in range(8):
        if b & 1:
            result ^= a
        high = a & 0x80
        a = (a << 1) & 0xFF
        if high:
            a ^= 0x1B
        b >>= 1
    return result


def _build_sbox() -> tuple[list[int], list[int]]:
    # Multiplicative inverses via exp/log tables over generator 3.
    exp = [0] * 256
    log = [0] * 256
    x = 1
    for i in range(255):
        exp[i] = x
        log[x] = i
        x = _gf_mul(x, 3)
    exp[255] = exp[0]

    def inverse(v: int) -> int:
        if v == 0:
            return 0
        return exp[255 - log[v]]

    sbox = [0] * 256
    inv_sbox = [0] * 256
    for value in range(256):
        inv = inverse(value)
        # Affine transform.
        transformed = 0
        for bit in range(8):
            b = (
                (inv >> bit)
                ^ (inv >> ((bit + 4) % 8))
                ^ (inv >> ((bit + 5) % 8))
                ^ (inv >> ((bit + 6) % 8))
                ^ (inv >> ((bit + 7) % 8))
                ^ (0x63 >> bit)
            ) & 1
            transformed |= b << bit
        sbox[value] = transformed
        inv_sbox[transformed] = value
    return sbox, inv_sbox


_SBOX, _INV_SBOX = _build_sbox()

# T-tables: each maps a state byte to a 32-bit column contribution.
_T0 = [0] * 256
_T1 = [0] * 256
_T2 = [0] * 256
_T3 = [0] * 256
for _i in range(256):
    _s = _SBOX[_i]
    _word = (
        (_gf_mul(_s, 2) << 24) | (_s << 16) | (_s << 8) | _gf_mul(_s, 3)
    )
    _T0[_i] = _word
    _T1[_i] = ((_word >> 8) | (_word << 24)) & 0xFFFFFFFF
    _T2[_i] = ((_word >> 16) | (_word << 16)) & 0xFFFFFFFF
    _T3[_i] = ((_word >> 24) | (_word << 8)) & 0xFFFFFFFF

_RCON = [0x01]
while len(_RCON) < 14:
    _RCON.append(_gf_mul(_RCON[-1], 2))


def xor_bytes(a: bytes, b: bytes) -> bytes:
    """XOR two equal-length byte strings via big-int arithmetic.

    Orders of magnitude faster than a per-byte generator for the 1 KB
    payloads the ORAM and layer-3 paths move.
    """
    return (
        int.from_bytes(a, "little") ^ int.from_bytes(b, "little")
    ).to_bytes(len(a), "little")


# numpy mirrors of the T-tables / S-box, built on first vector use.
_NP_TABLES = None


def _numpy_tables():
    global _NP_TABLES
    if _NP_TABLES is None:
        _NP_TABLES = (
            _np.array(_T0, dtype=_np.uint32),
            _np.array(_T1, dtype=_np.uint32),
            _np.array(_T2, dtype=_np.uint32),
            _np.array(_T3, dtype=_np.uint32),
            _np.array(_SBOX, dtype=_np.uint32),
        )
    return _NP_TABLES


# Below this many counter blocks the numpy dispatch overhead beats the
# gather win; secure-channel headers stay on the scalar path.
_VECTOR_MIN_BLOCKS = 4


class AES:
    """Raw AES block cipher for 16/24/32-byte keys."""

    block_size = 16

    def __init__(self, key: bytes) -> None:
        if len(key) not in (16, 24, 32):
            raise ValueError(f"invalid AES key length: {len(key)}")
        self._rounds = {16: 10, 24: 12, 32: 14}[len(key)]
        self._round_keys = self._expand_key(key)
        # uint32 round keys for the vectorized CTR path, built lazily so
        # key expansion itself never touches numpy.
        self._rk_vector = None

    def _expand_key(self, key: bytes) -> list[int]:
        nk = len(key) // 4
        words = [
            int.from_bytes(key[4 * i:4 * i + 4], "big") for i in range(nk)
        ]
        total = 4 * (self._rounds + 1)
        for i in range(nk, total):
            temp = words[i - 1]
            if i % nk == 0:
                temp = ((temp << 8) | (temp >> 24)) & 0xFFFFFFFF
                temp = (
                    (_SBOX[(temp >> 24) & 0xFF] << 24)
                    | (_SBOX[(temp >> 16) & 0xFF] << 16)
                    | (_SBOX[(temp >> 8) & 0xFF] << 8)
                    | _SBOX[temp & 0xFF]
                )
                temp ^= _RCON[i // nk - 1] << 24
            elif nk > 6 and i % nk == 4:
                temp = (
                    (_SBOX[(temp >> 24) & 0xFF] << 24)
                    | (_SBOX[(temp >> 16) & 0xFF] << 16)
                    | (_SBOX[(temp >> 8) & 0xFF] << 8)
                    | _SBOX[temp & 0xFF]
                )
            words.append(words[i - nk] ^ temp)
        return words

    def encrypt_block(self, block: bytes) -> bytes:
        """Encrypt one 16-byte block."""
        if len(block) != 16:
            raise ValueError("AES block must be 16 bytes")
        rk = self._round_keys
        s0 = int.from_bytes(block[0:4], "big") ^ rk[0]
        s1 = int.from_bytes(block[4:8], "big") ^ rk[1]
        s2 = int.from_bytes(block[8:12], "big") ^ rk[2]
        s3 = int.from_bytes(block[12:16], "big") ^ rk[3]
        t0, t1, t2, t3 = _T0, _T1, _T2, _T3
        k = 4
        for _ in range(self._rounds - 1):
            n0 = (
                t0[(s0 >> 24) & 0xFF] ^ t1[(s1 >> 16) & 0xFF]
                ^ t2[(s2 >> 8) & 0xFF] ^ t3[s3 & 0xFF] ^ rk[k]
            )
            n1 = (
                t0[(s1 >> 24) & 0xFF] ^ t1[(s2 >> 16) & 0xFF]
                ^ t2[(s3 >> 8) & 0xFF] ^ t3[s0 & 0xFF] ^ rk[k + 1]
            )
            n2 = (
                t0[(s2 >> 24) & 0xFF] ^ t1[(s3 >> 16) & 0xFF]
                ^ t2[(s0 >> 8) & 0xFF] ^ t3[s1 & 0xFF] ^ rk[k + 2]
            )
            n3 = (
                t0[(s3 >> 24) & 0xFF] ^ t1[(s0 >> 16) & 0xFF]
                ^ t2[(s1 >> 8) & 0xFF] ^ t3[s2 & 0xFF] ^ rk[k + 3]
            )
            s0, s1, s2, s3 = n0, n1, n2, n3
            k += 4
        sbox = _SBOX
        out = bytearray(16)
        for i, (a, b, c, d) in enumerate(
            ((s0, s1, s2, s3), (s1, s2, s3, s0), (s2, s3, s0, s1), (s3, s0, s1, s2))
        ):
            # Final round: SubBytes + ShiftRows + AddRoundKey (no MixColumns).
            word = (
                (sbox[(a >> 24) & 0xFF] << 24)
                | (sbox[(b >> 16) & 0xFF] << 16)
                | (sbox[(c >> 8) & 0xFF] << 8)
                | sbox[d & 0xFF]
            ) ^ rk[k + i]
            out[4 * i:4 * i + 4] = word.to_bytes(4, "big")
        return bytes(out)

    def decrypt_block(self, block: bytes) -> bytes:
        """Decrypt one 16-byte block (straightforward inverse rounds)."""
        if len(block) != 16:
            raise ValueError("AES block must be 16 bytes")
        rk = self._round_keys
        state = [
            int.from_bytes(block[4 * i:4 * i + 4], "big")
            ^ rk[4 * self._rounds + i]
            for i in range(4)
        ]
        state_bytes = bytearray(16)
        for i in range(4):
            state_bytes[4 * i:4 * i + 4] = state[i].to_bytes(4, "big")

        def inv_shift_rows(b: bytearray) -> bytearray:
            out = bytearray(16)
            for col in range(4):
                for row in range(4):
                    out[4 * ((col + row) % 4) + row] = b[4 * col + row]
            return out

        def inv_mix_columns(b: bytearray) -> bytearray:
            out = bytearray(16)
            for col in range(4):
                c = b[4 * col:4 * col + 4]
                out[4 * col + 0] = (
                    _gf_mul(c[0], 14) ^ _gf_mul(c[1], 11)
                    ^ _gf_mul(c[2], 13) ^ _gf_mul(c[3], 9)
                )
                out[4 * col + 1] = (
                    _gf_mul(c[0], 9) ^ _gf_mul(c[1], 14)
                    ^ _gf_mul(c[2], 11) ^ _gf_mul(c[3], 13)
                )
                out[4 * col + 2] = (
                    _gf_mul(c[0], 13) ^ _gf_mul(c[1], 9)
                    ^ _gf_mul(c[2], 14) ^ _gf_mul(c[3], 11)
                )
                out[4 * col + 3] = (
                    _gf_mul(c[0], 11) ^ _gf_mul(c[1], 13)
                    ^ _gf_mul(c[2], 9) ^ _gf_mul(c[3], 14)
                )
            return out

        for round_index in range(self._rounds - 1, 0, -1):
            state_bytes = inv_shift_rows(state_bytes)
            state_bytes = bytearray(_INV_SBOX[b] for b in state_bytes)
            for i in range(4):
                word = int.from_bytes(state_bytes[4 * i:4 * i + 4], "big")
                word ^= rk[4 * round_index + i]
                state_bytes[4 * i:4 * i + 4] = word.to_bytes(4, "big")
            state_bytes = inv_mix_columns(state_bytes)
        state_bytes = inv_shift_rows(state_bytes)
        state_bytes = bytearray(_INV_SBOX[b] for b in state_bytes)
        for i in range(4):
            word = int.from_bytes(state_bytes[4 * i:4 * i + 4], "big")
            word ^= rk[i]
            state_bytes[4 * i:4 * i + 4] = word.to_bytes(4, "big")
        return bytes(state_bytes)

    def ctr_keystream(self, counter_block: bytes, length: int) -> bytes:
        """Generate ``length`` keystream bytes in CTR mode.

        ``counter_block`` is the initial 16-byte counter; the final
        32-bit word is incremented per block modulo 2^32 (the GCM
        convention — the 96-bit nonce prefix never carries).
        """
        if len(counter_block) != 16:
            raise ValueError("CTR counter block must be 16 bytes")
        if length <= 0:
            return b""
        blocks = (length + 15) // 16
        if _np is not None and blocks >= _VECTOR_MIN_BLOCKS:
            return self._ctr_keystream_vector(counter_block, length, blocks)
        return self._ctr_keystream_scalar(counter_block, length, blocks)

    def _ctr_keystream_scalar(
        self, counter_block: bytes, length: int, blocks: int
    ) -> bytes:
        """Inlined-rounds CTR loop writing into a preallocated buffer.

        The nonce prefix contributes three state words that are constant
        across blocks, so they are mixed with the first round key once.
        """
        rk = self._round_keys
        p0 = int.from_bytes(counter_block[0:4], "big") ^ rk[0]
        p1 = int.from_bytes(counter_block[4:8], "big") ^ rk[1]
        p2 = int.from_bytes(counter_block[8:12], "big") ^ rk[2]
        rk3 = rk[3]
        counter = int.from_bytes(counter_block[12:16], "big")
        rounds_minus_1 = self._rounds - 1
        t0, t1, t2, t3 = _T0, _T1, _T2, _T3
        sbox = _SBOX
        out = bytearray(blocks * 16)
        pos = 0
        for _ in range(blocks):
            s0, s1, s2, s3 = p0, p1, p2, counter ^ rk3
            k = 4
            for _ in range(rounds_minus_1):
                n0 = (
                    t0[(s0 >> 24) & 0xFF] ^ t1[(s1 >> 16) & 0xFF]
                    ^ t2[(s2 >> 8) & 0xFF] ^ t3[s3 & 0xFF] ^ rk[k]
                )
                n1 = (
                    t0[(s1 >> 24) & 0xFF] ^ t1[(s2 >> 16) & 0xFF]
                    ^ t2[(s3 >> 8) & 0xFF] ^ t3[s0 & 0xFF] ^ rk[k + 1]
                )
                n2 = (
                    t0[(s2 >> 24) & 0xFF] ^ t1[(s3 >> 16) & 0xFF]
                    ^ t2[(s0 >> 8) & 0xFF] ^ t3[s1 & 0xFF] ^ rk[k + 2]
                )
                n3 = (
                    t0[(s3 >> 24) & 0xFF] ^ t1[(s0 >> 16) & 0xFF]
                    ^ t2[(s1 >> 8) & 0xFF] ^ t3[s2 & 0xFF] ^ rk[k + 3]
                )
                s0, s1, s2, s3 = n0, n1, n2, n3
                k += 4
            w0 = (
                (sbox[(s0 >> 24) & 0xFF] << 24) | (sbox[(s1 >> 16) & 0xFF] << 16)
                | (sbox[(s2 >> 8) & 0xFF] << 8) | sbox[s3 & 0xFF]
            ) ^ rk[k]
            w1 = (
                (sbox[(s1 >> 24) & 0xFF] << 24) | (sbox[(s2 >> 16) & 0xFF] << 16)
                | (sbox[(s3 >> 8) & 0xFF] << 8) | sbox[s0 & 0xFF]
            ) ^ rk[k + 1]
            w2 = (
                (sbox[(s2 >> 24) & 0xFF] << 24) | (sbox[(s3 >> 16) & 0xFF] << 16)
                | (sbox[(s0 >> 8) & 0xFF] << 8) | sbox[s1 & 0xFF]
            ) ^ rk[k + 2]
            w3 = (
                (sbox[(s3 >> 24) & 0xFF] << 24) | (sbox[(s0 >> 16) & 0xFF] << 16)
                | (sbox[(s1 >> 8) & 0xFF] << 8) | sbox[s2 & 0xFF]
            ) ^ rk[k + 3]
            out[pos:pos + 16] = (
                (w0 << 96) | (w1 << 64) | (w2 << 32) | w3
            ).to_bytes(16, "big")
            pos += 16
            counter = (counter + 1) & 0xFFFFFFFF
        if length != len(out):
            del out[length:]
        return bytes(out)

    def _ctr_keystream_vector(
        self, counter_block: bytes, length: int, blocks: int
    ) -> bytes:
        """All counter blocks at once: rounds as uint32 table gathers."""
        np = _np
        rk = self._rk_vector
        if rk is None:
            rk = self._rk_vector = np.array(self._round_keys, dtype=np.uint32)
        counter = int.from_bytes(counter_block[12:16], "big")
        counters = (
            counter + np.arange(blocks, dtype=np.uint64)
        ) & np.uint64(0xFFFFFFFF)
        s0 = np.full(
            blocks,
            np.uint32(int.from_bytes(counter_block[0:4], "big")) ^ rk[0],
            dtype=np.uint32,
        )
        s1 = np.full(
            blocks,
            np.uint32(int.from_bytes(counter_block[4:8], "big")) ^ rk[1],
            dtype=np.uint32,
        )
        s2 = np.full(
            blocks,
            np.uint32(int.from_bytes(counter_block[8:12], "big")) ^ rk[2],
            dtype=np.uint32,
        )
        s3 = counters.astype(np.uint32) ^ rk[3]
        return self._rounds_vector(s0, s1, s2, s3)[:length]

    def ctr_keystream_many(
        self, counter_blocks: list[bytes], lengths: list[int]
    ) -> list[bytes]:
        """CTR keystreams for many messages in one vectorized pass.

        The batched seal/open path concentrates an entire ORAM path
        write — Z x (height+1) slots — into a single round computation,
        which is where the numpy gathers actually amortize.  Falls back
        to per-message :meth:`ctr_keystream` without numpy.
        """
        if len(counter_blocks) != len(lengths):
            raise ValueError("counter_blocks and lengths differ in size")
        if not counter_blocks:
            return []
        block_counts = [(max(length, 0) + 15) // 16 for length in lengths]
        total = sum(block_counts)
        if _np is None or total < _VECTOR_MIN_BLOCKS:
            return [
                self.ctr_keystream(cb, length)
                for cb, length in zip(counter_blocks, lengths)
            ]
        np = _np
        rk = self._rk_vector
        if rk is None:
            rk = self._rk_vector = np.array(self._round_keys, dtype=np.uint32)
        counts = np.array(block_counts, dtype=np.int64)
        prefix_words = np.empty((len(counter_blocks), 3), dtype=np.uint32)
        ctr0 = np.empty(len(counter_blocks), dtype=np.uint64)
        for i, cb in enumerate(counter_blocks):
            if len(cb) != 16:
                raise ValueError("CTR counter block must be 16 bytes")
            prefix_words[i, 0] = int.from_bytes(cb[0:4], "big")
            prefix_words[i, 1] = int.from_bytes(cb[4:8], "big")
            prefix_words[i, 2] = int.from_bytes(cb[8:12], "big")
            ctr0[i] = int.from_bytes(cb[12:16], "big")
        # Per-block message index and within-message block offset.
        offsets = np.zeros(len(counter_blocks), dtype=np.int64)
        np.cumsum(counts[:-1], out=offsets[1:])
        within = np.arange(total, dtype=np.int64) - np.repeat(offsets, counts)
        counters = (
            np.repeat(ctr0, counts) + within.astype(np.uint64)
        ) & np.uint64(0xFFFFFFFF)
        s0 = np.repeat(prefix_words[:, 0], counts) ^ rk[0]
        s1 = np.repeat(prefix_words[:, 1], counts) ^ rk[1]
        s2 = np.repeat(prefix_words[:, 2], counts) ^ rk[2]
        s3 = counters.astype(np.uint32) ^ rk[3]
        stream = self._rounds_vector(s0, s1, s2, s3)
        out: list[bytes] = []
        for i, length in enumerate(lengths):
            start = int(offsets[i]) * 16
            out.append(stream[start:start + max(length, 0)])
        return out

    def _rounds_vector(self, s0, s1, s2, s3) -> bytes:
        """Run the full rounds over parallel uint32 state arrays."""
        np = _np
        t0, t1, t2, t3, sbox = _numpy_tables()
        rk = self._rk_vector
        blocks = len(s0)
        k = 4
        for _ in range(self._rounds - 1):
            n0 = (
                t0[s0 >> 24] ^ t1[(s1 >> 16) & 0xFF]
                ^ t2[(s2 >> 8) & 0xFF] ^ t3[s3 & 0xFF] ^ rk[k]
            )
            n1 = (
                t0[s1 >> 24] ^ t1[(s2 >> 16) & 0xFF]
                ^ t2[(s3 >> 8) & 0xFF] ^ t3[s0 & 0xFF] ^ rk[k + 1]
            )
            n2 = (
                t0[s2 >> 24] ^ t1[(s3 >> 16) & 0xFF]
                ^ t2[(s0 >> 8) & 0xFF] ^ t3[s1 & 0xFF] ^ rk[k + 2]
            )
            n3 = (
                t0[s3 >> 24] ^ t1[(s0 >> 16) & 0xFF]
                ^ t2[(s1 >> 8) & 0xFF] ^ t3[s2 & 0xFF] ^ rk[k + 3]
            )
            s0, s1, s2, s3 = n0, n1, n2, n3
            k += 4
        w0 = (
            (sbox[s0 >> 24] << 24) | (sbox[(s1 >> 16) & 0xFF] << 16)
            | (sbox[(s2 >> 8) & 0xFF] << 8) | sbox[s3 & 0xFF]
        ) ^ rk[k]
        w1 = (
            (sbox[s1 >> 24] << 24) | (sbox[(s2 >> 16) & 0xFF] << 16)
            | (sbox[(s3 >> 8) & 0xFF] << 8) | sbox[s0 & 0xFF]
        ) ^ rk[k + 1]
        w2 = (
            (sbox[s2 >> 24] << 24) | (sbox[(s3 >> 16) & 0xFF] << 16)
            | (sbox[(s0 >> 8) & 0xFF] << 8) | sbox[s1 & 0xFF]
        ) ^ rk[k + 2]
        w3 = (
            (sbox[s3 >> 24] << 24) | (sbox[(s0 >> 16) & 0xFF] << 16)
            | (sbox[(s1 >> 8) & 0xFF] << 8) | sbox[s2 & 0xFF]
        ) ^ rk[k + 3]
        words = np.empty((blocks, 4), dtype=">u4")
        words[:, 0] = w0
        words[:, 1] = w1
        words[:, 2] = w2
        words[:, 3] = w3
        return words.tobytes()
