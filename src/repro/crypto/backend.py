"""The pluggable CryptoBackend tier: one interface, three engines.

HarDTAPE offloads contract-processing primitives to dedicated hardware
units; the software analogue is a registry of interchangeable crypto
*backends*, each a bundle of implementations for the three primitives
on the hot path — Keccak-256 (trie nodes, sync roots, SHA3 opcodes),
AES-GCM (secure channel, ORAM sealing), and ECDSA verification
(channel signatures) — selected per
:class:`~repro.core.device.DeviceConfig` exactly like ``oram_backend``.

Three tiers register at import time:

* ``reference`` — the pure-Python sponge/T-table/double-and-add code
  the repo shipped with; the ground truth every other tier is gated
  against.
* ``numpy`` — lane-wise batch Keccak-f[1600]
  (:mod:`repro.crypto.keccak_numpy`), the vectorized T-table AES-GCM
  from PR 4, and shared-precomputation windowed ECDSA.
* ``hashlib`` — the stdlib/OpenSSL-accelerated tier: AES-GCM through
  the ``cryptography`` package when present and ECDSA verification via
  OpenSSL's secp256k1; hashing rides the vector engine.  Every
  acceleration is *gated*: a container without ``cryptography`` still
  registers this tier, falling back to the numpy implementations.

The contract every backend must honour — and perf-bench's pairwise
identity gate enforces — is **byte identity**: same wire bytes, same
digests, same accept/reject decisions on the same inputs.  A backend
may only change wall clock, never a single protocol byte.
"""

from __future__ import annotations

from repro.crypto import ecc
from repro.crypto.ecc import InvalidSignature, PublicKey, Signature
from repro.crypto.keccak import SpongeKeccakEngine, set_keccak_engine
from repro.crypto.suite import (
    HAVE_OPENSSL_AESGCM,
    AcceleratedAesGcmAead,
    AeadCipher,
    AesGcmAead,
)


class UnknownBackendError(ValueError):
    """A config named a backend that is not registered.

    Raised *eagerly* — at :class:`~repro.core.device.DeviceConfig`
    construction — so a typo'd deployment dies with a typed error
    naming the known choices instead of failing deep inside device
    setup.  ``kind`` is ``"crypto"`` or ``"oram"``.
    """

    def __init__(self, kind: str, name: str, known: tuple[str, ...]) -> None:
        super().__init__(
            f"unknown {kind} backend {name!r}; registered: {', '.join(known)}"
        )
        self.kind = kind
        self.name = name
        self.known = known


class CryptoBackend:
    """One tier of crypto implementations (see module docstring).

    Subclasses override the factory hooks; the base class carries the
    reference behaviour so a backend only specifies what it
    accelerates.
    """

    name = "reference"
    description = "pure-Python sponge, T-table AES, double-and-add ECDSA"

    def keccak_engine(self):
        """The Keccak engine this backend installs process-wide."""
        return SpongeKeccakEngine()

    def aead_factory(self, key: bytes) -> AeadCipher:
        """An AES-GCM cipher for the secure channel (wire-identical)."""
        return AesGcmAead(key)

    def verifier(self, public_key: PublicKey):
        """A per-peer-key message verifier (``verify``/``verify_many``)."""
        return _ReferenceVerifier(public_key)

    def ecdsa_verify_many(
        self, items: list[tuple[PublicKey, bytes, Signature]]
    ) -> None:
        """Verify many triples; raise on the first failure."""
        for public_key, message_hash, signature in items:
            public_key.verify(message_hash, signature)


class _ReferenceVerifier:
    """Sequential verification against one key, no precomputation."""

    def __init__(self, public_key: PublicKey) -> None:
        self.public_key = public_key

    def verify(self, message_hash: bytes, signature: Signature) -> None:
        self.public_key.verify(message_hash, signature)

    def verify_many(self, items: list[tuple[bytes, Signature]]) -> None:
        for message_hash, signature in items:
            self.public_key.verify(message_hash, signature)


class NumpyBackend(CryptoBackend):
    """Vectorized tier: batch keccak lanes, T-table AES, windowed ECDSA."""

    name = "numpy"
    description = (
        "lane-wise batch Keccak-f[1600], vectorized T-table AES-GCM, "
        "shared-precomputation windowed ECDSA"
    )

    def keccak_engine(self):
        from repro.crypto.keccak_numpy import VectorKeccakEngine

        return VectorKeccakEngine()

    def verifier(self, public_key: PublicKey):
        return ecc.precomputed_verifier(public_key)

    def ecdsa_verify_many(
        self, items: list[tuple[PublicKey, bytes, Signature]]
    ) -> None:
        ecc.batch_verify(items)


class _OpensslVerifier:
    """ECDSA verification through OpenSSL's secp256k1.

    Maps OpenSSL's refusal to the repo's typed
    :class:`~repro.crypto.ecc.InvalidSignature`, with the reference
    range pre-checks so out-of-range scalars fail with the same typed
    error before any point math runs.
    """

    def __init__(self, public_key: PublicKey) -> None:
        from cryptography.hazmat.primitives.asymmetric import ec as _ec

        self.public_key = public_key
        self._openssl_key = _ec.EllipticCurvePublicNumbers(
            public_key.point.x, public_key.point.y, _ec.SECP256K1()
        ).public_key()

    def verify(self, message_hash: bytes, signature: Signature) -> None:
        from cryptography.exceptions import InvalidSignature as _OsslInvalid
        from cryptography.hazmat.primitives import hashes as _hashes
        from cryptography.hazmat.primitives.asymmetric import ec as _ec
        from cryptography.hazmat.primitives.asymmetric.utils import (
            Prehashed,
            encode_dss_signature,
        )

        if len(message_hash) != 32:
            raise ValueError("message hash must be 32 bytes")
        r, s = signature.r, signature.s
        if not (1 <= r < ecc.N and 1 <= s < ecc.N):
            raise InvalidSignature("signature scalars out of range")
        try:
            self._openssl_key.verify(
                encode_dss_signature(r, s),
                message_hash,
                _ec.ECDSA(Prehashed(_hashes.SHA256())),
            )
        except _OsslInvalid as exc:
            raise InvalidSignature("r mismatch") from exc

    def verify_many(self, items: list[tuple[bytes, Signature]]) -> None:
        for message_hash, signature in items:
            self.verify(message_hash, signature)


class HashlibBackend(NumpyBackend):
    """The stdlib/OpenSSL-accelerated tier; numpy fallbacks when gated."""

    name = "hashlib"
    description = (
        "OpenSSL AES-GCM + secp256k1 ECDSA via `cryptography` "
        "(numpy fallback when absent), lane-wise batch Keccak-f[1600]"
    )

    def aead_factory(self, key: bytes) -> AeadCipher:
        if HAVE_OPENSSL_AESGCM:
            return AcceleratedAesGcmAead(key)
        return AesGcmAead(key)

    def verifier(self, public_key: PublicKey):
        if HAVE_OPENSSL_AESGCM:
            return _OpensslVerifier(public_key)
        return ecc.precomputed_verifier(public_key)

    def ecdsa_verify_many(
        self, items: list[tuple[PublicKey, bytes, Signature]]
    ) -> None:
        if not HAVE_OPENSSL_AESGCM:
            ecc.batch_verify(items)
            return
        verifiers: dict[object, _OpensslVerifier] = {}
        for public_key, message_hash, signature in items:
            verifier = verifiers.get(public_key.point)
            if verifier is None:
                verifier = _OpensslVerifier(public_key)
                verifiers[public_key.point] = verifier
            verifier.verify(message_hash, signature)


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

_BACKENDS: dict[str, CryptoBackend] = {}

# The tier new devices get unless their DeviceConfig says otherwise:
# the numpy engine (the PR 4 production cipher plus batch hashing).
DEFAULT_BACKEND = "numpy"


def register_backend(backend: CryptoBackend) -> CryptoBackend:
    """Register ``backend`` under its ``name`` (last registration wins)."""
    _BACKENDS[backend.name] = backend
    return backend


def available_backends() -> tuple[str, ...]:
    """Registered backend names, registration order."""
    return tuple(_BACKENDS)


def get_backend(name: str) -> CryptoBackend:
    """Look up a backend; raises :class:`UnknownBackendError`."""
    backend = _BACKENDS.get(name)
    if backend is None:
        raise UnknownBackendError("crypto", name, available_backends())
    return backend


register_backend(CryptoBackend())  # "reference"
register_backend(NumpyBackend())
register_backend(HashlibBackend())

_active = _BACKENDS[DEFAULT_BACKEND]


def active_backend() -> CryptoBackend:
    """The process-wide backend (hash engine + bench selection)."""
    return _active


def activate(name: str) -> CryptoBackend:
    """Switch the process-wide backend and install its Keccak engine.

    Per-device AEAD/verifier choices are threaded through
    ``DeviceConfig.crypto_backend``; the *hash* engine is necessarily
    process-global (``keccak256`` has no device context), and this is
    the one supported switch point.  Safe to call at any time: engines
    are byte-identical, so in-flight state never becomes inconsistent.
    """
    global _active
    backend = get_backend(name)
    _active = backend
    set_keccak_engine(backend.keccak_engine())
    return backend


# Install the default tier's engine at import so trie commits batch
# through the vector engine out of the box.
activate(DEFAULT_BACKEND)
