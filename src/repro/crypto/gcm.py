"""AES-GCM authenticated encryption (NIST SP 800-38D).

Used by HarDTAPE for three data flows (paper §IV-C):

* the user↔Hypervisor secure channel (session key from DHKE),
* layer-3 swapped-out call-stack pages,
* ORAM *block* re-encryption (shared ORAM key).

GHASH uses an 8-bit lookup table built from the hash subkey, which keeps
1 KB-page encryption fast enough for the functional simulation.  The
update loop is unrolled with the sixteen position tables bound to locals
and reads full 16-byte chunks through a memoryview, so only the final
short chunk ever allocates a padded copy.

:meth:`AesGcm.seal_blocks` / :meth:`AesGcm.open_blocks` process many
same-key messages per call, generating every CTR keystream in one
vectorized pass (see :meth:`repro.crypto.aes.AES.ctr_keystream_many`) —
the shape of an ORAM path write, where Z x (height+1) slots are sealed
back-to-back.
"""

from __future__ import annotations

from repro.crypto.aes import AES, xor_bytes


class AuthenticationError(Exception):
    """Raised when a GCM tag does not verify (tampered or wrong key)."""


def _ghash_table(h: int) -> list[list[int]]:
    """Precompute 16 tables of 256 entries for byte-at-a-time GHASH."""
    # GF(2^128) with the GCM polynomial, bits reflected per the spec.
    def gf_mul(x: int, y: int) -> int:
        result = 0
        for i in range(127, -1, -1):
            if (y >> i) & 1:
                result ^= x
            if x & 1:
                x = (x >> 1) ^ (0xE1 << 120)
            else:
                x >>= 1
        return result

    tables: list[list[int]] = []
    for byte_index in range(16):
        table = [0] * 256
        for byte_value in range(256):
            block = byte_value << (8 * (15 - byte_index))
            table[byte_value] = gf_mul(block, h)
        tables.append(table)
    return tables


class _Ghash:
    """Incremental GHASH over the subkey ``H``."""

    __slots__ = ("_tables", "_acc")

    def __init__(self, tables: list[list[int]]) -> None:
        self._tables = tables
        self._acc = 0

    def update(self, data: bytes) -> None:
        (
            t0, t1, t2, t3, t4, t5, t6, t7,
            t8, t9, t10, t11, t12, t13, t14, t15,
        ) = self._tables
        acc = self._acc
        n = len(data)
        full = n - (n % 16)
        view = memoryview(data)
        for offset in range(0, full, 16):
            acc ^= int.from_bytes(view[offset:offset + 16], "big")
            acc = (
                t0[(acc >> 120) & 0xFF] ^ t1[(acc >> 112) & 0xFF]
                ^ t2[(acc >> 104) & 0xFF] ^ t3[(acc >> 96) & 0xFF]
                ^ t4[(acc >> 88) & 0xFF] ^ t5[(acc >> 80) & 0xFF]
                ^ t6[(acc >> 72) & 0xFF] ^ t7[(acc >> 64) & 0xFF]
                ^ t8[(acc >> 56) & 0xFF] ^ t9[(acc >> 48) & 0xFF]
                ^ t10[(acc >> 40) & 0xFF] ^ t11[(acc >> 32) & 0xFF]
                ^ t12[(acc >> 24) & 0xFF] ^ t13[(acc >> 16) & 0xFF]
                ^ t14[(acc >> 8) & 0xFF] ^ t15[acc & 0xFF]
            )
        if full < n:
            # Only the trailing short chunk pays for a padded copy.
            tail = bytes(view[full:]) + b"\x00" * (16 - (n - full))
            acc ^= int.from_bytes(tail, "big")
            acc = (
                t0[(acc >> 120) & 0xFF] ^ t1[(acc >> 112) & 0xFF]
                ^ t2[(acc >> 104) & 0xFF] ^ t3[(acc >> 96) & 0xFF]
                ^ t4[(acc >> 88) & 0xFF] ^ t5[(acc >> 80) & 0xFF]
                ^ t6[(acc >> 72) & 0xFF] ^ t7[(acc >> 64) & 0xFF]
                ^ t8[(acc >> 56) & 0xFF] ^ t9[(acc >> 48) & 0xFF]
                ^ t10[(acc >> 40) & 0xFF] ^ t11[(acc >> 32) & 0xFF]
                ^ t12[(acc >> 24) & 0xFF] ^ t13[(acc >> 16) & 0xFF]
                ^ t14[(acc >> 8) & 0xFF] ^ t15[acc & 0xFF]
            )
        self._acc = acc

    def digest(self) -> int:
        return self._acc


class AesGcm:
    """AES-GCM with 12-byte nonces and 16-byte tags."""

    nonce_size = 12
    tag_size = 16

    def __init__(self, key: bytes) -> None:
        self._aes = AES(key)
        h = int.from_bytes(self._aes.encrypt_block(b"\x00" * 16), "big")
        self._tables = _ghash_table(h)

    def _tag(self, j0: bytes, aad: bytes, ciphertext: bytes) -> bytes:
        ghash = _Ghash(self._tables)
        ghash.update(aad)
        ghash.update(ciphertext)
        lengths = (len(aad) * 8).to_bytes(8, "big") + (
            len(ciphertext) * 8
        ).to_bytes(8, "big")
        ghash.update(lengths)
        s = ghash.digest().to_bytes(16, "big")
        ek = self._aes.encrypt_block(j0)
        return xor_bytes(s, ek)

    def encrypt(self, nonce: bytes, plaintext: bytes, aad: bytes = b"") -> bytes:
        """Return ``ciphertext || tag`` for ``plaintext`` under ``nonce``.

        The caller is responsible for nonce uniqueness per key; HarDTAPE
        components derive nonces from monotonic message counters.
        """
        if len(nonce) != self.nonce_size:
            raise ValueError("GCM nonce must be 12 bytes")
        j0 = nonce + b"\x00\x00\x00\x01"
        counter_block = nonce + b"\x00\x00\x00\x02"
        keystream = self._aes.ctr_keystream(counter_block, len(plaintext))
        ciphertext = xor_bytes(plaintext, keystream)
        return ciphertext + self._tag(j0, aad, ciphertext)

    def decrypt(self, nonce: bytes, data: bytes, aad: bytes = b"") -> bytes:
        """Verify the tag and return the plaintext.

        Raises :class:`AuthenticationError` when the tag does not match,
        which HarDTAPE treats as evidence of tampering by the SP (attack
        A4 / A6 in the threat model).
        """
        if len(nonce) != self.nonce_size:
            raise ValueError("GCM nonce must be 12 bytes")
        if len(data) < self.tag_size:
            raise AuthenticationError("message shorter than a GCM tag")
        ciphertext, tag = data[:-self.tag_size], data[-self.tag_size:]
        j0 = nonce + b"\x00\x00\x00\x01"
        expected = self._tag(j0, aad, ciphertext)
        if expected != tag:
            raise AuthenticationError("GCM tag mismatch")
        counter_block = nonce + b"\x00\x00\x00\x02"
        keystream = self._aes.ctr_keystream(counter_block, len(ciphertext))
        return xor_bytes(ciphertext, keystream)

    # -- batched same-key paths ----------------------------------------

    def seal_blocks(
        self, items: list[tuple[bytes, bytes, bytes]]
    ) -> list[bytes]:
        """Encrypt many ``(nonce, plaintext, aad)`` messages at once.

        Byte-for-byte equivalent to calling :meth:`encrypt` per item;
        all CTR keystreams (payloads and the per-message J0 blocks for
        the tags) come from one vectorized AES pass.
        """
        if not items:
            return []
        counter_blocks: list[bytes] = []
        lengths: list[int] = []
        for nonce, plaintext, _aad in items:
            if len(nonce) != self.nonce_size:
                raise ValueError("GCM nonce must be 12 bytes")
            counter_blocks.append(nonce + b"\x00\x00\x00\x02")
            lengths.append(len(plaintext))
            counter_blocks.append(nonce + b"\x00\x00\x00\x01")
            lengths.append(16)
        streams = self._aes.ctr_keystream_many(counter_blocks, lengths)
        out: list[bytes] = []
        tag = self._tag_from_ek
        for index, (nonce, plaintext, aad) in enumerate(items):
            ciphertext = xor_bytes(plaintext, streams[2 * index])
            out.append(
                ciphertext + tag(streams[2 * index + 1], aad, ciphertext)
            )
        return out

    def open_blocks(
        self, items: list[tuple[bytes, bytes, bytes]]
    ) -> list[bytes]:
        """Verify and decrypt many ``(nonce, data, aad)`` messages.

        All tags are checked *before* any plaintext is produced, so a
        single tampered message aborts the whole batch — matching the
        ORAM client's all-or-nothing path absorption.
        """
        if not items:
            return []
        counter_blocks: list[bytes] = []
        lengths: list[int] = []
        for nonce, data, _aad in items:
            if len(nonce) != self.nonce_size:
                raise ValueError("GCM nonce must be 12 bytes")
            if len(data) < self.tag_size:
                raise AuthenticationError("message shorter than a GCM tag")
            counter_blocks.append(nonce + b"\x00\x00\x00\x02")
            lengths.append(len(data) - self.tag_size)
            counter_blocks.append(nonce + b"\x00\x00\x00\x01")
            lengths.append(16)
        streams = self._aes.ctr_keystream_many(counter_blocks, lengths)
        tag_size = self.tag_size
        tag = self._tag_from_ek
        ciphertexts: list[bytes] = []
        for index, (nonce, data, aad) in enumerate(items):
            ciphertext = data[:-tag_size]
            if tag(streams[2 * index + 1], aad, ciphertext) != data[-tag_size:]:
                raise AuthenticationError("GCM tag mismatch")
            ciphertexts.append(ciphertext)
        return [
            xor_bytes(ciphertext, streams[2 * index])
            for index, ciphertext in enumerate(ciphertexts)
        ]

    def _tag_from_ek(self, ek_j0: bytes, aad: bytes, ciphertext: bytes) -> bytes:
        """Tag computation given the already-encrypted J0 block."""
        ghash = _Ghash(self._tables)
        ghash.update(aad)
        ghash.update(ciphertext)
        lengths = (len(aad) * 8).to_bytes(8, "big") + (
            len(ciphertext) * 8
        ).to_bytes(8, "big")
        ghash.update(lengths)
        return xor_bytes(ghash.digest().to_bytes(16, "big"), ek_j0)
