"""AES-GCM authenticated encryption (NIST SP 800-38D).

Used by HarDTAPE for three data flows (paper §IV-C):

* the user↔Hypervisor secure channel (session key from DHKE),
* layer-3 swapped-out call-stack pages,
* ORAM *block* re-encryption (shared ORAM key).

GHASH uses an 8-bit lookup table built from the hash subkey, which keeps
1 KB-page encryption fast enough for the functional simulation.
"""

from __future__ import annotations

from repro.crypto.aes import AES


class AuthenticationError(Exception):
    """Raised when a GCM tag does not verify (tampered or wrong key)."""


def _ghash_table(h: int) -> list[list[int]]:
    """Precompute 16 tables of 256 entries for byte-at-a-time GHASH."""
    # GF(2^128) with the GCM polynomial, bits reflected per the spec.
    def gf_mul(x: int, y: int) -> int:
        result = 0
        for i in range(127, -1, -1):
            if (y >> i) & 1:
                result ^= x
            if x & 1:
                x = (x >> 1) ^ (0xE1 << 120)
            else:
                x >>= 1
        return result

    tables: list[list[int]] = []
    for byte_index in range(16):
        table = [0] * 256
        for byte_value in range(256):
            block = byte_value << (8 * (15 - byte_index))
            table[byte_value] = gf_mul(block, h)
        tables.append(table)
    return tables


class _Ghash:
    """Incremental GHASH over the subkey ``H``."""

    def __init__(self, tables: list[list[int]]) -> None:
        self._tables = tables
        self._acc = 0

    def update(self, data: bytes) -> None:
        tables = self._tables
        acc = self._acc
        for offset in range(0, len(data), 16):
            chunk = data[offset:offset + 16]
            if len(chunk) < 16:
                chunk = chunk + b"\x00" * (16 - len(chunk))
            acc ^= int.from_bytes(chunk, "big")
            result = 0
            for i in range(16):
                result ^= tables[i][(acc >> (8 * (15 - i))) & 0xFF]
            acc = result
        self._acc = acc

    def digest(self) -> int:
        return self._acc


class AesGcm:
    """AES-GCM with 12-byte nonces and 16-byte tags."""

    nonce_size = 12
    tag_size = 16

    def __init__(self, key: bytes) -> None:
        self._aes = AES(key)
        h = int.from_bytes(self._aes.encrypt_block(b"\x00" * 16), "big")
        self._tables = _ghash_table(h)

    def _tag(self, j0: bytes, aad: bytes, ciphertext: bytes) -> bytes:
        ghash = _Ghash(self._tables)
        ghash.update(aad)
        ghash.update(ciphertext)
        lengths = (len(aad) * 8).to_bytes(8, "big") + (
            len(ciphertext) * 8
        ).to_bytes(8, "big")
        ghash.update(lengths)
        s = ghash.digest().to_bytes(16, "big")
        ek = self._aes.encrypt_block(j0)
        return bytes(a ^ b for a, b in zip(s, ek))

    def encrypt(self, nonce: bytes, plaintext: bytes, aad: bytes = b"") -> bytes:
        """Return ``ciphertext || tag`` for ``plaintext`` under ``nonce``.

        The caller is responsible for nonce uniqueness per key; HarDTAPE
        components derive nonces from monotonic message counters.
        """
        if len(nonce) != self.nonce_size:
            raise ValueError("GCM nonce must be 12 bytes")
        j0 = nonce + b"\x00\x00\x00\x01"
        counter_block = nonce + b"\x00\x00\x00\x02"
        keystream = self._aes.ctr_keystream(counter_block, len(plaintext))
        ciphertext = bytes(a ^ b for a, b in zip(plaintext, keystream))
        return ciphertext + self._tag(j0, aad, ciphertext)

    def decrypt(self, nonce: bytes, data: bytes, aad: bytes = b"") -> bytes:
        """Verify the tag and return the plaintext.

        Raises :class:`AuthenticationError` when the tag does not match,
        which HarDTAPE treats as evidence of tampering by the SP (attack
        A4 / A6 in the threat model).
        """
        if len(nonce) != self.nonce_size:
            raise ValueError("GCM nonce must be 12 bytes")
        if len(data) < self.tag_size:
            raise AuthenticationError("message shorter than a GCM tag")
        ciphertext, tag = data[:-self.tag_size], data[-self.tag_size:]
        j0 = nonce + b"\x00\x00\x00\x01"
        expected = self._tag(j0, aad, ciphertext)
        if expected != tag:
            raise AuthenticationError("GCM tag mismatch")
        counter_block = nonce + b"\x00\x00\x00\x02"
        keystream = self._aes.ctr_keystream(counter_block, len(ciphertext))
        return bytes(a ^ b for a, b in zip(ciphertext, keystream))
