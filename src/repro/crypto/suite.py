"""Pluggable authenticated-encryption suites.

The real HarDTAPE uses AES-GCM hardware (the A.E.DMA units).  The
functional simulation defaults to :class:`AesGcmAead` wherever protocol
correctness is the point (secure channel, tamper tests).  For large
benchmark sweeps that perform tens of thousands of 1 KB ORAM *block*
re-encryptions, :class:`Blake2Aead` provides the same interface and the
same security *semantics in the simulation* (randomized ciphertexts,
integrity tag) at ~100x the speed; simulated time is charged by the
hardware cost model either way, so the choice never affects reported
numbers — only wall clock.
"""

from __future__ import annotations

import hashlib
import hmac
from typing import Protocol

from repro.crypto.aes import xor_bytes
from repro.crypto.gcm import AesGcm, AuthenticationError

# Batch items are (nonce, payload, aad) triples; payload is plaintext
# for sealing and ciphertext||tag for opening.
AeadItem = tuple[bytes, bytes, bytes]


class AeadCipher(Protocol):
    """Nonce-based authenticated encryption."""

    nonce_size: int
    tag_size: int

    def encrypt(self, nonce: bytes, plaintext: bytes, aad: bytes = b"") -> bytes:
        ...

    def decrypt(self, nonce: bytes, data: bytes, aad: bytes = b"") -> bytes:
        ...


def seal_blocks(cipher: AeadCipher, items: list[AeadItem]) -> list[bytes]:
    """Encrypt many ``(nonce, plaintext, aad)`` items under one cipher.

    Uses the cipher's native batch path when it has one (AES-GCM
    vectorizes all CTR keystreams in a single pass; the memoized
    wrapper records every sealed block) and falls back to per-item
    :meth:`encrypt` otherwise.  Output is byte-identical either way.
    """
    native = getattr(cipher, "seal_blocks", None)
    if native is not None:
        return native(items)
    return [cipher.encrypt(nonce, pt, aad) for nonce, pt, aad in items]


def open_blocks(cipher: AeadCipher, items: list[AeadItem]) -> list[bytes]:
    """Verify-and-decrypt many ``(nonce, data, aad)`` items.

    Like :func:`seal_blocks`, dispatches to a native batch
    implementation when available.  Any authentication failure raises
    before plaintexts are returned.
    """
    native = getattr(cipher, "open_blocks", None)
    if native is not None:
        return native(items)
    return [cipher.decrypt(nonce, data, aad) for nonce, data, aad in items]


class AesGcmAead:
    """AES-GCM (the paper's cipher)."""

    nonce_size = 12
    tag_size = 16

    def __init__(self, key: bytes) -> None:
        self._gcm = AesGcm(key)

    def encrypt(self, nonce: bytes, plaintext: bytes, aad: bytes = b"") -> bytes:
        return self._gcm.encrypt(nonce, plaintext, aad)

    def decrypt(self, nonce: bytes, data: bytes, aad: bytes = b"") -> bytes:
        return self._gcm.decrypt(nonce, data, aad)

    def seal_blocks(self, items: list[AeadItem]) -> list[bytes]:
        return self._gcm.seal_blocks(items)

    def open_blocks(self, items: list[AeadItem]) -> list[bytes]:
        return self._gcm.open_blocks(items)


try:  # Optional acceleration: OpenSSL-backed AES-GCM via ``cryptography``.
    from cryptography.exceptions import InvalidTag as _InvalidTag
    from cryptography.hazmat.primitives.ciphers.aead import AESGCM as _OpensslAesGcm

    HAVE_OPENSSL_AESGCM = True
except ImportError:  # pragma: no cover - container without cryptography
    _InvalidTag = None
    _OpensslAesGcm = None
    HAVE_OPENSSL_AESGCM = False


class AcceleratedAesGcmAead:
    """AES-GCM through OpenSSL (the ``hashlib``/stdlib-accelerated tier).

    Wire-identical to :class:`AesGcmAead` — same ``ciphertext || tag``
    layout, same 12-byte nonces, same accept/reject decisions — which
    perf-bench's pairwise backend identity gate enforces on every run.
    Only constructable when the :mod:`cryptography` package is present;
    :func:`repro.crypto.backend.get_backend` falls back to the numpy
    engine otherwise.
    """

    nonce_size = 12
    tag_size = 16

    def __init__(self, key: bytes) -> None:
        if not HAVE_OPENSSL_AESGCM:  # pragma: no cover - gated at registry
            raise RuntimeError("cryptography package not available")
        self._aead = _OpensslAesGcm(key)

    def encrypt(self, nonce: bytes, plaintext: bytes, aad: bytes = b"") -> bytes:
        if len(nonce) != self.nonce_size:
            raise ValueError("nonce must be 12 bytes")
        return self._aead.encrypt(nonce, plaintext, aad)

    def decrypt(self, nonce: bytes, data: bytes, aad: bytes = b"") -> bytes:
        if len(nonce) != self.nonce_size:
            raise ValueError("nonce must be 12 bytes")
        if len(data) < self.tag_size:
            raise AuthenticationError("message shorter than a tag")
        try:
            return self._aead.decrypt(nonce, data, aad)
        except _InvalidTag as exc:
            raise AuthenticationError("tag mismatch") from exc

    def seal_blocks(self, items: list[AeadItem]) -> list[bytes]:
        return [self.encrypt(nonce, pt, aad) for nonce, pt, aad in items]

    def open_blocks(self, items: list[AeadItem]) -> list[bytes]:
        # One authenticated decrypt per item: any bad tag raises before
        # the list is returned, so no caller ever sees a partial batch —
        # the same externally visible contract as the GCM batch path.
        return [self.decrypt(nonce, data, aad) for nonce, data, aad in items]


class Blake2Aead:
    """Fast AEAD: BLAKE2b keystream (counter mode) + keyed-BLAKE2b tag.

    Functionally interchangeable with AES-GCM for the simulation; used
    by default in the ORAM layer to keep wall-clock reasonable.
    """

    nonce_size = 12
    tag_size = 16

    def __init__(self, key: bytes) -> None:
        self._enc_key = hashlib.blake2b(key, digest_size=32, person=b"enc-key-deriv").digest()
        self._mac_key = hashlib.blake2b(key, digest_size=32, person=b"mac-key-deriv").digest()

    def _keystream(self, nonce: bytes, length: int) -> bytes:
        # SHAKE-256 as an XOF produces the whole keystream in one call.
        return hashlib.shake_256(self._enc_key + nonce).digest(length)

    def _tag(self, nonce: bytes, ciphertext: bytes, aad: bytes) -> bytes:
        mac = hashlib.blake2b(key=self._mac_key, digest_size=16)
        mac.update(len(aad).to_bytes(8, "big"))
        mac.update(aad)
        mac.update(nonce)
        mac.update(ciphertext)
        return mac.digest()

    def encrypt(self, nonce: bytes, plaintext: bytes, aad: bytes = b"") -> bytes:
        if len(nonce) != self.nonce_size:
            raise ValueError("nonce must be 12 bytes")
        keystream = self._keystream(nonce, len(plaintext))
        ciphertext = xor_bytes(plaintext, keystream)
        return ciphertext + self._tag(nonce, ciphertext, aad)

    def decrypt(self, nonce: bytes, data: bytes, aad: bytes = b"") -> bytes:
        if len(nonce) != self.nonce_size:
            raise ValueError("nonce must be 12 bytes")
        if len(data) < self.tag_size:
            raise AuthenticationError("message shorter than a tag")
        ciphertext, tag = data[:-self.tag_size], data[-self.tag_size:]
        if not hmac.compare_digest(tag, self._tag(nonce, ciphertext, aad)):
            raise AuthenticationError("tag mismatch")
        keystream = self._keystream(nonce, len(ciphertext))
        return xor_bytes(ciphertext, keystream)

    def open_blocks(self, items: list[AeadItem]) -> list[bytes]:
        """Batch open with the all-tags-first contract of the GCM path."""
        for nonce, data, aad in items:
            if len(nonce) != self.nonce_size:
                raise ValueError("nonce must be 12 bytes")
            if len(data) < self.tag_size:
                raise AuthenticationError("message shorter than a tag")
            tag = data[-self.tag_size:]
            if not hmac.compare_digest(
                tag, self._tag(nonce, data[:-self.tag_size], aad)
            ):
                raise AuthenticationError("tag mismatch")
        return [
            xor_bytes(
                data[:-self.tag_size],
                self._keystream(nonce, len(data) - self.tag_size),
            )
            for nonce, data, aad in items
        ]


class CounterNonceSealer:
    """Sequence-numbered sealing for the recovery plane.

    Checkpoint and journal records are identified by a strictly
    increasing sequence number, so the AEAD nonce *is* the sequence
    number: uniqueness is structural (the journal never reuses a seq)
    instead of depending on persisted counter state — exactly what a
    sealer used to survive crashes must avoid.  The AAD binds each
    record to its role and position so the untrusted store cannot
    splice records across kinds or epochs.
    """

    def __init__(self, key: bytes, cipher_factory=Blake2Aead) -> None:
        self._cipher: AeadCipher = cipher_factory(key)

    def seal(self, seq: int, plaintext: bytes, aad: bytes = b"") -> bytes:
        nonce = seq.to_bytes(self._cipher.nonce_size, "big")
        return self._cipher.encrypt(nonce, plaintext, aad)

    def open(self, seq: int, data: bytes, aad: bytes = b"") -> bytes:
        nonce = seq.to_bytes(self._cipher.nonce_size, "big")
        return self._cipher.decrypt(nonce, data, aad)
